#!/usr/bin/env bash
# Fetches real SteinLib instance sets into scenarios/suite/steinlib/.
#
# The suite manifest lists these as `optional-stp` sources: absent files are
# skipped (and recorded in the baseline), so the wall runs offline on the
# committed lookalike corpus alone. After fetching, the manifest digest
# changes — regenerate the baseline deliberately:
#
#   scripts/fetch_steinlib.sh        # downloads set B (b01.stp, ...)
#   ./build/dsf suite --record
#
# SteinLib home: https://steinlib.zib.de/ (Koch, Martin, Voss). Sets are
# distributed as .tgz archives of .stp files.
set -euo pipefail

cd "$(dirname "$0")/.."
DEST=scenarios/suite/steinlib
BASE_URL=${STEINLIB_BASE_URL:-https://steinlib.zib.de/download}
SETS=${STEINLIB_SETS:-B}

command -v curl >/dev/null || { echo "fetch_steinlib: needs curl" >&2; exit 1; }
mkdir -p "$DEST"

for set_name in $SETS; do
  archive="$DEST/$set_name.tgz"
  echo "fetching SteinLib set $set_name ..."
  curl -fsSL "$BASE_URL/$set_name.tgz" -o "$archive"
  tar -xzf "$archive" -C "$DEST"
  rm -f "$archive"
done

# Archives may unpack into a per-set subdirectory; flatten to $DEST.
find "$DEST" -mindepth 2 -name '*.stp' -exec mv -n {} "$DEST"/ \;
find "$DEST" -mindepth 1 -type d -empty -delete

count=$(find "$DEST" -maxdepth 1 -name '*.stp' | wc -l)
echo "fetched $count .stp files into $DEST"
echo "the manifest digest changed: re-record the baseline with"
echo "  ./build/dsf suite --record"
