#include "steiner/greedy.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "graph/union_find.hpp"

namespace dsf {

namespace {

// Early-exit multi-source Dijkstra out of one cluster: returns the first
// settled node owned by a foreign terminal cluster (and its distance), or
// kNoNode when none is reachable. `dist`/`parent`/`stamp` are caller-owned
// scratch reused across calls via the version counter `cur` (no O(n) clear
// per merge); the caller walks `parent` afterwards to realize the path.
struct Probe {
  NodeId target = kNoNode;
  Weight dist = kInfWeight;
  bool cancelled = false;
};

Probe NearestForeignCluster(const Graph& g, const std::vector<NodeId>& sources,
                            UnionFind& uf, int home,
                            const std::vector<char>& is_terminal_root,
                            std::vector<Weight>& dist,
                            std::vector<EdgeId>& parent,
                            std::vector<std::uint32_t>& stamp,
                            std::uint32_t cur, const CancelToken* cancel) {
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (const NodeId s : sources) {
    const auto sz = static_cast<std::size_t>(s);
    stamp[sz] = cur;
    dist[sz] = 0;
    parent[sz] = kNoEdge;
    heap.push({0, s});
  }
  Probe probe;
  std::size_t pops = 0;
  while (!heap.empty()) {
    if (cancel != nullptr && (++pops & 0xFFFu) == 0 && cancel->Expired()) {
      probe.cancelled = true;
      return probe;
    }
    const auto [d, v] = heap.top();
    heap.pop();
    const auto vz = static_cast<std::size_t>(v);
    if (d > dist[vz]) continue;  // stale heap entry
    const int root = uf.Find(v);
    if (root != home && is_terminal_root[static_cast<std::size_t>(root)]) {
      probe.target = v;
      probe.dist = d;
      return probe;
    }
    for (const auto& inc : g.Neighbors(v)) {
      const Weight nd = d + g.GetEdge(inc.edge).w;
      const auto nz = static_cast<std::size_t>(inc.neighbor);
      if (stamp[nz] == cur && nd >= dist[nz]) continue;
      stamp[nz] = cur;
      dist[nz] = nd;
      parent[nz] = inc.edge;
      heap.push({nd, inc.neighbor});
    }
  }
  return probe;
}

}  // namespace

GreedyResult GluttonousSteinerForest(const Graph& g, const IcInstance& ic,
                                     const GreedyOptions& options) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  const int n = g.NumNodes();
  GreedyResult result;
  const std::vector<NodeId> terminals = ic.Terminals();
  if (terminals.size() < 2) return result;

  std::map<Label, int> total;  // label -> total terminal count
  for (const NodeId v : terminals) ++total[ic.LabelOf(v)];

  UnionFind uf(n);
  // Invariant: the node list of a cluster lives at members[current root]
  // and holds exactly the cluster's nodes (terminals + realized path
  // nodes). Everything else is empty.
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(n));
  for (const NodeId v : terminals) {
    members[static_cast<std::size_t>(v)] = {v};
  }

  // Dijkstra scratch (version-stamped, reused across merges).
  std::vector<Weight> dist(static_cast<std::size_t>(n), 0);
  std::vector<EdgeId> parent(static_cast<std::size_t>(n), kNoEdge);
  std::vector<std::uint32_t> stamp(static_cast<std::size_t>(n), 0);
  std::uint32_t cur = 0;

  std::vector<char> is_terminal_root(static_cast<std::size_t>(n), 0);

  for (;;) {
    if (IsCancelled(options.cancel)) {
      result.cancelled = true;
      break;
    }
    // Classify clusters: per-root label counts decide activity; a root is
    // active while some label is split across its cluster boundary. The
    // std::map keeps roots in ascending order, which fixes every tie-break
    // below.
    std::map<int, std::map<Label, int>> counts;
    for (const NodeId v : terminals) {
      ++counts[uf.Find(v)][ic.LabelOf(v)];
    }
    std::fill(is_terminal_root.begin(), is_terminal_root.end(), 0);
    std::vector<int> active;
    for (const auto& [root, by_label] : counts) {
      is_terminal_root[static_cast<std::size_t>(root)] = 1;
      for (const auto& [label, c] : by_label) {
        if (c < total[label]) {
          active.push_back(root);
          break;
        }
      }
    }
    if (active.empty()) break;  // all demands satisfied -> feasible

    // Closest (active cluster, foreign terminal cluster) pair; strict <
    // over ascending home roots keeps the selection deterministic.
    Weight best_d = kInfWeight;
    int best_home = -1;
    for (const int home : active) {
      ++cur;
      const Probe p = NearestForeignCluster(
          g, members[static_cast<std::size_t>(home)], uf, home,
          is_terminal_root, dist, parent, stamp, cur, options.cancel);
      if (p.cancelled) {
        result.cancelled = true;
        break;
      }
      if (p.target != kNoNode && p.dist < best_d) {
        best_d = p.dist;
        best_home = home;
      }
    }
    if (result.cancelled) break;
    DSF_CHECK_MSG(best_home >= 0,
                  "gluttonous greedy: active cluster cannot reach any other "
                  "terminal cluster — infeasible instance");

    // Re-probe the winner to rebuild its parent tree (identical search,
    // identical result), then realize the path union-guarded. Interior path
    // nodes are fresh singletons: the search stops at the FIRST foreign
    // terminal-cluster node, and every multi-node cluster is a terminal
    // cluster, so nothing between the source and the target belongs to any
    // cluster yet.
    ++cur;
    const Probe win = NearestForeignCluster(
        g, members[static_cast<std::size_t>(best_home)], uf, best_home,
        is_terminal_root, dist, parent, stamp, cur, options.cancel);
    if (win.cancelled || win.target == kNoNode) {
      result.cancelled = true;
      break;
    }
    const int old_target_root = uf.Find(win.target);
    std::vector<NodeId> fresh;  // interior path nodes (not in any cluster)
    NodeId v = win.target;
    while (parent[static_cast<std::size_t>(v)] != kNoEdge) {
      const EdgeId e = parent[static_cast<std::size_t>(v)];
      const auto& edge = g.GetEdge(e);
      if (uf.Union(edge.u, edge.v)) result.forest.push_back(e);
      if (v != win.target) fresh.push_back(v);
      v = (edge.u == v) ? edge.v : edge.u;
    }
    // Restore the members invariant at the merged cluster's new root.
    const int new_root = uf.Find(best_home);
    std::vector<NodeId> merged;
    merged.swap(members[static_cast<std::size_t>(best_home)]);
    if (old_target_root != best_home) {
      auto& tl = members[static_cast<std::size_t>(old_target_root)];
      merged.insert(merged.end(), tl.begin(), tl.end());
      tl.clear();
      tl.shrink_to_fit();
    }
    merged.insert(merged.end(), fresh.begin(), fresh.end());
    members[static_cast<std::size_t>(new_root)] = std::move(merged);
    ++result.merges;
  }

  std::sort(result.forest.begin(), result.forest.end());
  return result;
}

}  // namespace dsf
