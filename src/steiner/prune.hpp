// Minimal-subforest extraction ("return minimal feasible subset of F_i",
// Algorithm 1 line 34; implemented distributively in Appendix F.3).
//
// Given a feasible forest F, the minimal feasible subset is unique: a tree
// edge is kept iff some input component has terminals on both of its sides.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// Returns the unique minimal subset of `forest` that still connects every
// input component. `forest` must be a cycle-free, feasible edge set.
std::vector<EdgeId> MinimalFeasibleSubforest(const Graph& g,
                                             const IcInstance& ic,
                                             std::span<const EdgeId> forest);

}  // namespace dsf
