#include "steiner/prune.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "steiner/validate.hpp"

namespace dsf {

std::vector<EdgeId> MinimalFeasibleSubforest(const Graph& g,
                                             const IcInstance& ic,
                                             std::span<const EdgeId> forest) {
  DSF_CHECK_MSG(g.IsForest(forest), "input edge set contains a cycle");
  DSF_CHECK_MSG(IsFeasible(g, ic, forest),
                FeasibilityDiagnostic(g, ic, forest));

  const int n = g.NumNodes();
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(
      static_cast<std::size_t>(n));
  for (const EdgeId id : forest) {
    const auto& e = g.GetEdge(id);
    adj[static_cast<std::size_t>(e.u)].push_back({e.v, id});
    adj[static_cast<std::size_t>(e.v)].push_back({e.u, id});
  }

  std::map<Label, int> total;
  for (const Label l : ic.labels) {
    if (l != kNoLabel) ++total[l];
  }

  std::vector<EdgeId> kept;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<std::map<Label, int>> counts(static_cast<std::size_t>(n));
  for (NodeId r = 0; r < n; ++r) {
    if (visited[static_cast<std::size_t>(r)]) continue;
    std::vector<std::tuple<NodeId, NodeId, EdgeId>> order;  // node, parent, edge
    std::vector<std::tuple<NodeId, NodeId, EdgeId>> stack;
    stack.push_back({r, kNoNode, kNoEdge});
    visited[static_cast<std::size_t>(r)] = 1;
    while (!stack.empty()) {
      auto [u, p, pe] = stack.back();
      stack.pop_back();
      order.push_back({u, p, pe});
      for (const auto& [nb, id] : adj[static_cast<std::size_t>(u)]) {
        if (!visited[static_cast<std::size_t>(nb)]) {
          visited[static_cast<std::size_t>(nb)] = 1;
          stack.push_back({nb, u, id});
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      auto [u, p, pe] = *it;
      const Label lu = ic.LabelOf(u);
      if (lu != kNoLabel) ++counts[static_cast<std::size_t>(u)][lu];
      if (p != kNoNode) {
        bool split = false;
        for (const auto& [lab, c] : counts[static_cast<std::size_t>(u)]) {
          if (c > 0 && c < total[lab]) {
            split = true;
            break;
          }
        }
        if (split) kept.push_back(pe);
        auto& pc = counts[static_cast<std::size_t>(p)];
        for (const auto& [lab, c] : counts[static_cast<std::size_t>(u)]) {
          pc[lab] += c;
        }
        counts[static_cast<std::size_t>(u)].clear();
      }
    }
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace dsf
