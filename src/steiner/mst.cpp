#include "steiner/mst.hpp"

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"

namespace dsf {

std::vector<EdgeId> KruskalMst(const Graph& g, const CancelToken* cancel) {
  // Heap-based Kruskal instead of a full sort: make_heap is O(m), and the
  // pop loop stops as soon as the forest is complete (n-1 unions on a
  // connected graph), so the common case never pays for ordering the heavy
  // tail of the edge list. Pops come off the heap in exactly the (w, id)
  // order the sorting implementation used, so the output — and every
  // golden test pinned to it — is bit-identical.
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.NumEdges()));
  std::iota(ids.begin(), ids.end(), 0);
  // Max-heap under `cmp` => invert the (w, id) order so the cheapest edge
  // surfaces first.
  const auto cmp = [&](EdgeId a, EdgeId b) {
    const Weight wa = g.GetEdge(a).w;
    const Weight wb = g.GetEdge(b).w;
    return wa != wb ? wa > wb : a > b;
  };
  std::make_heap(ids.begin(), ids.end(), cmp);
  UnionFind uf(g.NumNodes());
  std::vector<EdgeId> mst;
  const int full = g.NumNodes() - 1;  // forest size when g is connected
  auto end = ids.end();
  std::size_t pops = 0;
  while (end != ids.begin()) {
    // Cancellation checkpoint every 4096 pops: a portfolio loser stops
    // within a bounded slice of work (the partial forest is returned as-is
    // and reported cancelled by the caller).
    if (cancel != nullptr && (++pops & 0xFFFu) == 0 && cancel->Expired()) {
      break;
    }
    std::pop_heap(ids.begin(), end, cmp);
    --end;
    const auto& e = g.GetEdge(*end);
    if (uf.Union(e.u, e.v)) {
      mst.push_back(*end);
      if (static_cast<int>(mst.size()) == full) break;
    }
  }
  return mst;
}

Weight MstWeight(const Graph& g) {
  Weight sum = 0;
  for (const EdgeId id : KruskalMst(g)) sum += g.GetEdge(id).w;
  return sum;
}

}  // namespace dsf
