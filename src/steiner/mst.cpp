#include "steiner/mst.hpp"

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"

namespace dsf {

std::vector<EdgeId> KruskalMst(const Graph& g) {
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.NumEdges()));
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    const Weight wa = g.GetEdge(a).w;
    const Weight wb = g.GetEdge(b).w;
    return wa != wb ? wa < wb : a < b;
  });
  UnionFind uf(g.NumNodes());
  std::vector<EdgeId> mst;
  for (const EdgeId id : ids) {
    const auto& e = g.GetEdge(id);
    if (uf.Union(e.u, e.v)) mst.push_back(id);
  }
  return mst;
}

Weight MstWeight(const Graph& g) {
  Weight sum = 0;
  for (const EdgeId id : KruskalMst(g)) sum += g.GetEdge(id).w;
  return sum;
}

}  // namespace dsf
