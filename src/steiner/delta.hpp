// Instance deltas: the edit language of the incremental re-solve tier.
//
// Production traffic mutates a mostly-stable instance — demand pairs arrive
// and depart on a fixed topology — so the service layer's `revise` op and the
// churn workload sampler both speak in terms of an `InstanceDelta` applied to
// a base instance. CR edits add/remove symmetric request pairs (Definition
// 2.1); IC edits add/remove terminal-label assignments (Definition 2.2).
// Application is deterministic and order-fixed (removals before additions),
// so a delta names exactly one revised instance — the property the canonical
// cache key of the revised instance relies on.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct InstanceDelta {
  // CR edits: symmetric pairs, applied to CrInstance::requests both ways.
  std::vector<std::pair<NodeId, NodeId>> add_pairs;
  std::vector<std::pair<NodeId, NodeId>> remove_pairs;
  // IC edits: terminal assignments. Removal clears the node's label.
  std::vector<std::pair<NodeId, Label>> add_terminals;
  std::vector<NodeId> remove_terminals;

  [[nodiscard]] bool Empty() const noexcept {
    return add_pairs.empty() && remove_pairs.empty() &&
           add_terminals.empty() && remove_terminals.empty();
  }
  // Total number of edits (the "delta size" of the warm-path eligibility
  // test in solve/incremental.hpp).
  [[nodiscard]] int Size() const noexcept {
    return static_cast<int>(add_pairs.size() + remove_pairs.size() +
                            add_terminals.size() + remove_terminals.size());
  }
  // True when the delta only carries edits meaningful for the given input
  // form (CR deltas must not carry terminal edits and vice versa).
  [[nodiscard]] bool MatchesForm(bool use_cr) const noexcept {
    return use_cr ? (add_terminals.empty() && remove_terminals.empty())
                  : (add_pairs.empty() && remove_pairs.empty());
  }
};

// Applies removals, then additions. Throws std::runtime_error (with the
// offending edit) on: a node out of [0, n), a removal of a request that is
// not present, an addition of a request already present, a degenerate pair
// (u == v), removing a non-terminal, or re-labelling an existing terminal.
// Strictness is deliberate: the revise op must reject deltas that silently
// no-op, or the revised canonical key would not describe what the caller
// believes it does.
CrInstance ApplyDelta(const CrInstance& base, const InstanceDelta& delta);
IcInstance ApplyDelta(const IcInstance& base, const InstanceDelta& delta);

}  // namespace dsf
