#include "steiner/delta.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsf {
namespace {

[[noreturn]] void FailDelta(const std::string& message) {
  throw std::runtime_error("delta: " + message);
}

void CheckNode(NodeId v, int n, const char* what) {
  if (v < 0 || v >= n) {
    FailDelta(std::string(what) + " node " + std::to_string(v) +
              " out of range [0, " + std::to_string(n) + ")");
  }
}

// Removes exactly one occurrence of `w` from `requests`; false if absent.
bool EraseRequest(std::vector<NodeId>& requests, NodeId w) {
  const auto it = std::find(requests.begin(), requests.end(), w);
  if (it == requests.end()) return false;
  requests.erase(it);
  return true;
}

}  // namespace

CrInstance ApplyDelta(const CrInstance& base, const InstanceDelta& delta) {
  if (!delta.MatchesForm(/*use_cr=*/true)) {
    FailDelta("terminal edits do not apply to a CR instance");
  }
  const int n = base.NumNodes();
  CrInstance out = base;
  for (const auto& [u, v] : delta.remove_pairs) {
    CheckNode(u, n, "remove_pairs");
    CheckNode(v, n, "remove_pairs");
    if (u == v) FailDelta("remove_pairs pair is degenerate (u == v)");
    auto& ru = out.requests[static_cast<std::size_t>(u)];
    auto& rv = out.requests[static_cast<std::size_t>(v)];
    if (!EraseRequest(ru, v) || !EraseRequest(rv, u)) {
      FailDelta("remove_pairs pair (" + std::to_string(u) + ", " +
                std::to_string(v) + ") is not an active request");
    }
  }
  for (const auto& [u, v] : delta.add_pairs) {
    CheckNode(u, n, "add_pairs");
    CheckNode(v, n, "add_pairs");
    if (u == v) FailDelta("add_pairs pair is degenerate (u == v)");
    auto& ru = out.requests[static_cast<std::size_t>(u)];
    if (std::find(ru.begin(), ru.end(), v) != ru.end()) {
      FailDelta("add_pairs pair (" + std::to_string(u) + ", " +
                std::to_string(v) + ") is already requested");
    }
    ru.push_back(v);
    out.requests[static_cast<std::size_t>(v)].push_back(u);
  }
  // Keep per-node request lists sorted so the revised instance is a pure
  // function of the (base, delta) pair, independent of edit order within
  // the delta.
  for (auto& r : out.requests) std::sort(r.begin(), r.end());
  return out;
}

IcInstance ApplyDelta(const IcInstance& base, const InstanceDelta& delta) {
  if (!delta.MatchesForm(/*use_cr=*/false)) {
    FailDelta("pair edits do not apply to an IC instance");
  }
  const int n = base.NumNodes();
  IcInstance out = base;
  for (const NodeId v : delta.remove_terminals) {
    CheckNode(v, n, "remove_terminals");
    auto& label = out.labels[static_cast<std::size_t>(v)];
    if (label == kNoLabel) {
      FailDelta("remove_terminals node " + std::to_string(v) +
                " is not a terminal");
    }
    label = kNoLabel;
  }
  for (const auto& [v, l] : delta.add_terminals) {
    CheckNode(v, n, "add_terminals");
    if (l == kNoLabel || l < 0) {
      FailDelta("add_terminals label " + std::to_string(l) + " is invalid");
    }
    auto& label = out.labels[static_cast<std::size_t>(v)];
    if (label != kNoLabel) {
      FailDelta("add_terminals node " + std::to_string(v) +
                " is already a terminal");
    }
    label = l;
  }
  return out;
}

}  // namespace dsf
