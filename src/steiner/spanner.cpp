#include "steiner/spanner.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "common/check.hpp"

namespace dsf {

namespace {

// Dijkstra over an adjacency-list spanner graph.
std::vector<Weight> SpannerDistances(
    int m, const std::vector<std::vector<std::pair<int, Weight>>>& adj,
    int source) {
  std::vector<Weight> d(static_cast<std::size_t>(m), kInfWeight);
  using Entry = std::pair<Weight, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  d[static_cast<std::size_t>(source)] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [dist, u] = pq.top();
    pq.pop();
    if (dist != d[static_cast<std::size_t>(u)]) continue;
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      if (dist + w < d[static_cast<std::size_t>(v)]) {
        d[static_cast<std::size_t>(v)] = dist + w;
        pq.push({d[static_cast<std::size_t>(v)], v});
      }
    }
  }
  return d;
}

}  // namespace

std::vector<MetricSpannerEdge> GreedyMetricSpanner(
    const std::vector<std::vector<Weight>>& dist, int stretch_k) {
  const int m = static_cast<int>(dist.size());
  DSF_CHECK(stretch_k >= 1);
  std::vector<std::tuple<Weight, int, int>> pairs;
  for (int a = 0; a < m; ++a) {
    DSF_CHECK(static_cast<int>(dist[static_cast<std::size_t>(a)].size()) == m);
    for (int b = a + 1; b < m; ++b) {
      const Weight w = dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (w < kInfWeight) pairs.push_back({w, a, b});
    }
  }
  std::sort(pairs.begin(), pairs.end());

  const Weight stretch = 2 * static_cast<Weight>(stretch_k) - 1;
  std::vector<std::vector<std::pair<int, Weight>>> adj(
      static_cast<std::size_t>(m));
  std::vector<MetricSpannerEdge> result;
  for (const auto& [w, a, b] : pairs) {
    // Greedy criterion: keep (a, b) unless the current spanner already
    // provides a path of weight <= stretch * w.
    const auto da = SpannerDistances(m, adj, a);
    if (da[static_cast<std::size_t>(b)] <= stretch * w) continue;
    adj[static_cast<std::size_t>(a)].push_back({b, w});
    adj[static_cast<std::size_t>(b)].push_back({a, w});
    result.push_back(MetricSpannerEdge{a, b, w});
  }
  return result;
}

double SpannerStretch(const std::vector<std::vector<Weight>>& dist,
                      const std::vector<MetricSpannerEdge>& spanner) {
  const int m = static_cast<int>(dist.size());
  if (m <= 1) return 1.0;
  std::vector<std::vector<std::pair<int, Weight>>> adj(
      static_cast<std::size_t>(m));
  for (const auto& e : spanner) {
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.w});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.w});
  }
  double stretch = 1.0;
  for (int a = 0; a < m; ++a) {
    const auto d = SpannerDistances(m, adj, a);
    for (int b = 0; b < m; ++b) {
      const Weight metric =
          dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (a == b || metric >= kInfWeight || metric == 0) continue;
      DSF_CHECK_MSG(d[static_cast<std::size_t>(b)] < kInfWeight,
                    "spanner disconnected a finite-distance pair");
      stretch = std::max(
          stretch, static_cast<double>(d[static_cast<std::size_t>(b)]) /
                       static_cast<double>(metric));
    }
  }
  return stretch;
}

}  // namespace dsf
