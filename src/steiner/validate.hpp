// Output validation: feasibility, forest-ness, weights.
//
// The problem definition requires F ⊆ E such that all terminals of each input
// component are connected by F (Definition 2.2) / all connection requests are
// satisfied (Definition 2.1). Every algorithm's output passes through these
// checkers in tests and benchmarks.
#pragma once

#include <span>
#include <string>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// True iff F connects all terminals of each input component.
bool IsFeasible(const Graph& g, const IcInstance& ic, std::span<const EdgeId> f);

// True iff F satisfies every connection request.
bool IsFeasibleCr(const Graph& g, const CrInstance& cr, std::span<const EdgeId> f);

// True iff F is feasible AND removing any single edge breaks feasibility.
bool IsMinimalFeasible(const Graph& g, const IcInstance& ic,
                       std::span<const EdgeId> f);

// Diagnostic: empty string if feasible, otherwise a human-readable reason.
std::string FeasibilityDiagnostic(const Graph& g, const IcInstance& ic,
                                  std::span<const EdgeId> f);

}  // namespace dsf
