#include "steiner/local_search.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "graph/union_find.hpp"
#include "steiner/mst.hpp"
#include "steiner/prune.hpp"
#include "steiner/validate.hpp"

namespace dsf {

namespace {

// Per-call scratch: version-stamped arrays shared by the side BFS and the
// reconnection Dijkstra so no move pays an O(n) clear.
struct Scratch {
  std::vector<std::uint32_t> side1, side2;  // BFS membership stamps
  std::vector<Weight> dist;
  std::vector<EdgeId> parent;
  std::vector<std::uint32_t> seen;  // Dijkstra stamp
  std::uint32_t cur = 0;

  explicit Scratch(int n)
      : side1(static_cast<std::size_t>(n), 0),
        side2(static_cast<std::size_t>(n), 0),
        dist(static_cast<std::size_t>(n), 0),
        parent(static_cast<std::size_t>(n), kNoEdge),
        seen(static_cast<std::size_t>(n), 0) {}
};

using ForestAdj = std::vector<std::vector<std::pair<NodeId, EdgeId>>>;

void BuildAdj(const Graph& g, const std::vector<EdgeId>& forest,
              ForestAdj& adj) {
  for (auto& a : adj) a.clear();
  for (const EdgeId id : forest) {
    const auto& e = g.GetEdge(id);
    adj[static_cast<std::size_t>(e.u)].push_back({e.v, id});
    adj[static_cast<std::size_t>(e.v)].push_back({e.u, id});
  }
}

// Marks the component of `start` in the forest minus `skip` with `cur` in
// `mark`, collecting the nodes.
void MarkSide(const ForestAdj& adj, NodeId start, EdgeId skip,
              std::vector<std::uint32_t>& mark, std::uint32_t cur,
              std::vector<NodeId>& out) {
  out.clear();
  out.push_back(start);
  mark[static_cast<std::size_t>(start)] = cur;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const NodeId u = out[i];
    for (const auto& [nb, id] : adj[static_cast<std::size_t>(u)]) {
      if (id == skip) continue;
      if (mark[static_cast<std::size_t>(nb)] == cur) continue;
      mark[static_cast<std::size_t>(nb)] = cur;
      out.push_back(nb);
    }
  }
}

}  // namespace

LocalSearchResult LocalSearchSteinerForest(const Graph& g,
                                           const IcInstance& ic,
                                           const LocalSearchOptions& options) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  DSF_CHECK(options.max_passes >= 1);
  const int n = g.NumNodes();
  const int m = g.NumEdges();

  LocalSearchResult result;

  // Seed: the caller's warm start, or the Kruskal-prune baseline.
  std::vector<EdgeId> forest;
  if (options.warm_start != nullptr) {
    DSF_CHECK_MSG(g.IsForest(*options.warm_start) &&
                      IsFeasible(g, ic, *options.warm_start),
                  "local search warm start must be a feasible forest");
    forest = *options.warm_start;
  } else {
    std::vector<EdgeId> mst = KruskalMst(g, options.cancel);
    if (IsCancelled(options.cancel)) {
      // Cancelled mid-seed: the only case where the result may be
      // infeasible — there is no incumbent yet to fall back on.
      std::sort(mst.begin(), mst.end());
      result.forest = std::move(mst);
      result.cancelled = true;
      return result;
    }
    forest = MinimalFeasibleSubforest(g, ic, mst);
  }
  std::sort(forest.begin(), forest.end());

  std::vector<char> in_forest(static_cast<std::size_t>(m), 0);
  for (const EdgeId id : forest) in_forest[static_cast<std::size_t>(id)] = 1;

  const std::vector<NodeId> terminals = ic.Terminals();
  ForestAdj adj(static_cast<std::size_t>(n));
  BuildAdj(g, forest, adj);

  Scratch s(n);
  std::vector<NodeId> side1_nodes, side2_nodes;

  using Item = std::pair<Weight, NodeId>;

  const bool focused = options.focus != nullptr && !options.focus->empty() &&
                       options.focus_radius >= 0;
  std::vector<char> near_focus;           // nodes within focus_radius hops
  std::vector<NodeId> frontier, next_frontier;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    const std::vector<EdgeId> snapshot = forest;  // edge-id order
    if (focused) {
      // Re-mark the focus neighbourhood against the current forest: a BFS
      // over forest adjacency, depth-limited to focus_radius. Moves
      // accepted later in the pass change the forest; the stale marking
      // then merely skips some candidates until the next pass — a smaller
      // move set, never a wrong one.
      near_focus.assign(static_cast<std::size_t>(n), 0);
      frontier.clear();
      for (const NodeId v : *options.focus) {
        if (v >= 0 && v < n && !near_focus[static_cast<std::size_t>(v)]) {
          near_focus[static_cast<std::size_t>(v)] = 1;
          frontier.push_back(v);
        }
      }
      for (int depth = 0; depth < options.focus_radius && !frontier.empty();
           ++depth) {
        next_frontier.clear();
        for (const NodeId u : frontier) {
          for (const auto& [nb, id] : adj[static_cast<std::size_t>(u)]) {
            if (!near_focus[static_cast<std::size_t>(nb)]) {
              near_focus[static_cast<std::size_t>(nb)] = 1;
              next_frontier.push_back(nb);
            }
          }
        }
        frontier.swap(next_frontier);
      }
    }
    for (const EdgeId e : snapshot) {
      if (IsCancelled(options.cancel)) {
        result.cancelled = true;
        break;
      }
      if (!in_forest[static_cast<std::size_t>(e)]) continue;  // removed earlier
      const auto& edge = g.GetEdge(e);
      if (focused && !near_focus[static_cast<std::size_t>(edge.u)] &&
          !near_focus[static_cast<std::size_t>(edge.v)]) {
        continue;  // outside the delta's neighbourhood
      }

      // Split e's tree into its two sides.
      ++s.cur;
      const std::uint32_t c1 = s.cur;
      MarkSide(adj, edge.u, e, s.side1, c1, side1_nodes);
      ++s.cur;
      const std::uint32_t c2 = s.cur;
      MarkSide(adj, edge.v, e, s.side2, c2, side2_nodes);

      // A label is broken by the removal iff it has terminals on both
      // sides (terminals in other trees are unaffected).
      bool broken = false;
      std::map<Label, std::pair<char, char>> hit;
      for (const NodeId t : terminals) {
        const auto tz = static_cast<std::size_t>(t);
        const bool in1 = s.side1[tz] == c1;
        const bool in2 = s.side2[tz] == c2;
        if (!in1 && !in2) continue;
        auto& h = hit[ic.LabelOf(t)];
        if (in1) h.first = 1;
        if (in2) h.second = 1;
        if (h.first && h.second) {
          broken = true;
          break;
        }
      }

      if (!broken) {
        // remove move: a pure win of w(e).
        in_forest[static_cast<std::size_t>(e)] = 0;
        forest.erase(std::find(forest.begin(), forest.end(), e));
        BuildAdj(g, forest, adj);
        improved = true;
        ++result.moves;
        continue;
      }
      if (edge.w <= 1) continue;  // any reconnection costs >= 1: no win

      // swap move: cheapest reconnection in the metric where surviving
      // forest edges are free. Multi-source Dijkstra from side1, early
      // exit at the first settled side2 node.
      ++s.cur;
      const std::uint32_t cd = s.cur;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
      for (const NodeId src : side1_nodes) {
        const auto sz = static_cast<std::size_t>(src);
        s.seen[sz] = cd;
        s.dist[sz] = 0;
        s.parent[sz] = kNoEdge;
        heap.push({0, src});
      }
      NodeId target = kNoNode;
      Weight cost = kInfWeight;
      std::size_t pops = 0;
      while (!heap.empty()) {
        if (options.cancel != nullptr && (++pops & 0xFFFu) == 0 &&
            options.cancel->Expired()) {
          result.cancelled = true;
          break;
        }
        const auto [d, v] = heap.top();
        heap.pop();
        const auto vz = static_cast<std::size_t>(v);
        if (d > s.dist[vz]) continue;
        if (s.side2[vz] == c2) {
          target = v;
          cost = d;
          break;
        }
        if (d >= edge.w) break;  // cannot beat keeping e
        for (const auto& inc : g.Neighbors(v)) {
          const bool free = inc.edge != e &&
                            in_forest[static_cast<std::size_t>(inc.edge)];
          const Weight nd = d + (free ? 0 : g.GetEdge(inc.edge).w);
          const auto nz = static_cast<std::size_t>(inc.neighbor);
          if (s.seen[nz] == cd && nd >= s.dist[nz]) continue;
          s.seen[nz] = cd;
          s.dist[nz] = nd;
          s.parent[nz] = inc.edge;
          heap.push({nd, inc.neighbor});
        }
      }
      if (result.cancelled) break;
      if (target == kNoNode || cost >= edge.w) continue;

      // Accept: drop e, add the path's non-forest edges union-guarded over
      // the surviving forest (a simple path can tunnel through several
      // trees; the guard keeps the result cycle-free).
      in_forest[static_cast<std::size_t>(e)] = 0;
      forest.erase(std::find(forest.begin(), forest.end(), e));
      UnionFind uf(n);
      for (const EdgeId id : forest) {
        const auto& fe = g.GetEdge(id);
        uf.Union(fe.u, fe.v);
      }
      NodeId v = target;
      while (s.parent[static_cast<std::size_t>(v)] != kNoEdge) {
        const EdgeId pe = s.parent[static_cast<std::size_t>(v)];
        const auto& pedge = g.GetEdge(pe);
        if (!in_forest[static_cast<std::size_t>(pe)] &&
            uf.Union(pedge.u, pedge.v)) {
          in_forest[static_cast<std::size_t>(pe)] = 1;
          forest.push_back(pe);
        }
        v = (pedge.u == v) ? pedge.v : pedge.u;
      }
      std::sort(forest.begin(), forest.end());
      BuildAdj(g, forest, adj);
      improved = true;
      ++result.moves;
    }
    if (result.cancelled) break;
    ++result.passes;
    if (!improved) break;
  }

  std::sort(forest.begin(), forest.end());
  result.forest = std::move(forest);
  return result;
}

}  // namespace dsf
