#include "steiner/instance.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/union_find.hpp"

namespace dsf {

std::vector<NodeId> IcInstance::Terminals() const {
  std::vector<NodeId> t;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    if (IsTerminal(v)) t.push_back(v);
  }
  return t;
}

std::vector<Label> IcInstance::DistinctLabels() const {
  std::set<Label> s;
  for (const Label l : labels) {
    if (l != kNoLabel) s.insert(l);
  }
  return {s.begin(), s.end()};
}

int IcInstance::NumTerminals() const { return static_cast<int>(Terminals().size()); }

int IcInstance::NumComponents() const {
  return static_cast<int>(DistinctLabels().size());
}

int IcInstance::NumNontrivialComponents() const {
  std::map<Label, int> count;
  for (const Label l : labels) {
    if (l != kNoLabel) ++count[l];
  }
  int k0 = 0;
  for (const auto& [l, c] : count) {
    if (c >= 2) ++k0;
  }
  return k0;
}

bool IcInstance::IsMinimal() const {
  std::map<Label, int> count;
  for (const Label l : labels) {
    if (l != kNoLabel) ++count[l];
  }
  return std::all_of(count.begin(), count.end(),
                     [](const auto& kv) { return kv.second >= 2; });
}

std::vector<NodeId> CrInstance::Terminals() const {
  std::set<NodeId> t;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    const auto& rv = requests[static_cast<std::size_t>(v)];
    if (!rv.empty()) t.insert(v);
    for (const NodeId w : rv) t.insert(w);
  }
  return {t.begin(), t.end()};
}

int CrInstance::NumTerminals() const { return static_cast<int>(Terminals().size()); }

int CrInstance::NumRequests() const {
  int total = 0;
  for (const auto& rv : requests) total += static_cast<int>(rv.size());
  return total;
}

IcInstance MakeIcInstance(int n,
                          const std::vector<std::pair<NodeId, Label>>& assignment) {
  IcInstance ic;
  ic.labels.assign(static_cast<std::size_t>(n), kNoLabel);
  for (const auto& [v, l] : assignment) {
    DSF_CHECK(v >= 0 && v < n);
    DSF_CHECK(l != kNoLabel);
    ic.labels[static_cast<std::size_t>(v)] = l;
  }
  return ic;
}

CrInstance MakeCrInstance(int n,
                          const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  CrInstance cr;
  cr.requests.assign(static_cast<std::size_t>(n), {});
  for (const auto& [v, w] : pairs) {
    DSF_CHECK(v >= 0 && v < n && w >= 0 && w < n && v != w);
    cr.requests[static_cast<std::size_t>(v)].push_back(w);
    cr.requests[static_cast<std::size_t>(w)].push_back(v);
  }
  return cr;
}

IcInstance CrToIc(const CrInstance& cr) {
  const int n = cr.NumNodes();
  UnionFind uf(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : cr.requests[static_cast<std::size_t>(v)]) {
      uf.Union(v, w);
    }
  }
  IcInstance ic;
  ic.labels.assign(static_cast<std::size_t>(n), kNoLabel);
  for (const NodeId v : cr.Terminals()) {
    // Component label := smallest terminal id in the request component
    // (matches Lemma 2.3's "smallest ID in the component").
    ic.labels[static_cast<std::size_t>(v)] = static_cast<Label>(uf.Find(v));
  }
  // Normalize representative to the smallest terminal id per class.
  std::map<Label, Label> smallest;
  for (NodeId v = 0; v < n; ++v) {
    const Label l = ic.labels[static_cast<std::size_t>(v)];
    if (l == kNoLabel) continue;
    auto it = smallest.find(l);
    if (it == smallest.end()) {
      smallest[l] = static_cast<Label>(v);
    } else {
      it->second = std::min(it->second, static_cast<Label>(v));
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    Label& l = ic.labels[static_cast<std::size_t>(v)];
    if (l != kNoLabel) l = smallest[l];
  }
  return ic;
}

IcInstance MakeMinimal(const IcInstance& ic) {
  std::map<Label, int> count;
  for (const Label l : ic.labels) {
    if (l != kNoLabel) ++count[l];
  }
  IcInstance out = ic;
  for (Label& l : out.labels) {
    if (l != kNoLabel && count[l] < 2) l = kNoLabel;
  }
  return out;
}

bool EquivalentInstances(const IcInstance& a, const IcInstance& b) {
  if (a.NumNodes() != b.NumNodes()) return false;
  const IcInstance ma = MakeMinimal(a);
  const IcInstance mb = MakeMinimal(b);
  // Group terminals by label; the grouping (as a set partition) must match.
  const auto group = [](const IcInstance& ic) {
    std::map<Label, std::vector<NodeId>> g;
    for (NodeId v = 0; v < ic.NumNodes(); ++v) {
      if (ic.IsTerminal(v)) g[ic.LabelOf(v)].push_back(v);
    }
    std::set<std::vector<NodeId>> parts;
    for (auto& [l, nodes] : g) parts.insert(nodes);
    return parts;
  };
  return group(ma) == group(mb);
}

}  // namespace dsf
