// Exact Steiner tree / forest solvers (ground truth for approximation
// ratios; Steiner Forest is NP-hard, so these are exponential in k / t and
// used on small instances only).
//
// Steiner tree: Dreyfus–Wagner dynamic program, O(3^t n + 2^t n^2).
// Steiner forest: the connected components of an optimal forest induce a
// partition of the input components, and each part is an optimal Steiner
// tree over its terminals; we minimize over all set partitions of Λ.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// Weight of an optimal Steiner tree connecting `terminals` (<= ~16 of them).
// Returns 0 when |terminals| <= 1 and kInfWeight when disconnected.
Weight ExactSteinerTreeWeight(const Graph& g, std::span<const NodeId> terminals);

// Weight of an optimal Steiner forest for the instance (k <= ~7 components).
Weight ExactSteinerForestWeight(const Graph& g, const IcInstance& ic);

}  // namespace dsf
