// Exact Steiner tree / forest solvers (ground truth for approximation
// ratios; Steiner Forest is NP-hard, so these are exponential in k / t and
// used on small instances only).
//
// Steiner tree: Dreyfus–Wagner dynamic program, O(3^t n + 2^t n^2), with
// edge reconstruction so the optimum is available as an actual forest (the
// registry's `exact` reference solver validates its output like any other).
// Steiner forest: the connected components of an optimal forest induce a
// partition of the input components, and each part is an optimal Steiner
// tree over its terminals; we minimize over all set partitions of Λ.
//
// Hard limits (DSF_CHECK, fail loudly instead of hanging): a Steiner tree
// call takes at most kExactTreeMaxTerminals terminals; a forest instance at
// most kExactForestMaxComponents components and — because the partition DP
// evaluates Dreyfus–Wagner on unions of components, up to the full terminal
// set — kExactForestMaxTerminals terminals in total after minimization.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// 3^20 subset splits is the practical ceiling of the tree DP.
inline constexpr int kExactTreeMaxTerminals = 20;
// The forest DP runs the tree DP on the full terminal set; 3^14 · n keeps
// the worst call in the seconds range on small graphs.
inline constexpr int kExactForestMaxTerminals = 14;
inline constexpr int kExactForestMaxComponents = 8;

// An optimum together with a realizing edge set (edge ids, no duplicates).
// `edges` is empty when the optimum is 0 or unreachable (kInfWeight).
struct ExactSolution {
  Weight weight = kInfWeight;
  std::vector<EdgeId> edges;
};

// Optimal Steiner tree connecting `terminals` (<= kExactTreeMaxTerminals).
// weight == 0 when |terminals| <= 1, kInfWeight when disconnected.
ExactSolution ExactSteinerTree(const Graph& g, std::span<const NodeId> terminals);

// Optimal Steiner forest for the instance (<= kExactForestMaxComponents
// components and <= kExactForestMaxTerminals terminals after MakeMinimal).
ExactSolution ExactSteinerForest(const Graph& g, const IcInstance& ic);

// Weight-only wrappers (same limits).
Weight ExactSteinerTreeWeight(const Graph& g, std::span<const NodeId> terminals);
Weight ExactSteinerForestWeight(const Graph& g, const IcInstance& ic);

}  // namespace dsf
