// Problem definitions (Section 2 of the paper).
//
// DSF-IC (Definition 2.2): every node holds a component label λ(v) ∈ Λ ∪ {⊥};
// the output forest must connect all terminals sharing a label.
// DSF-CR (Definition 2.1): every node holds a set of connection requests
// R_v ⊆ V; the output must connect v to every w ∈ R_v.
//
// Centralized reference transformations mirror Lemmas 2.3 and 2.4; the
// distributed protocols implementing them (RunDistributedCrToIc and
// RunDistributedMakeMinimal) live in src/dist/transform.{hpp,cpp}.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace dsf {

// DSF with Input Components. labels[v] == kNoLabel means v is not a terminal.
struct IcInstance {
  std::vector<Label> labels;

  [[nodiscard]] int NumNodes() const noexcept {
    return static_cast<int>(labels.size());
  }
  [[nodiscard]] bool IsTerminal(NodeId v) const {
    return labels[static_cast<std::size_t>(v)] != kNoLabel;
  }
  [[nodiscard]] Label LabelOf(NodeId v) const {
    return labels[static_cast<std::size_t>(v)];
  }

  // Terminals in increasing node order.
  [[nodiscard]] std::vector<NodeId> Terminals() const;
  // Distinct labels in increasing order.
  [[nodiscard]] std::vector<Label> DistinctLabels() const;
  // t := |T|.
  [[nodiscard]] int NumTerminals() const;
  // k := |Λ|.
  [[nodiscard]] int NumComponents() const;
  // Number of components with >= 2 terminals (k0 in Corollary 4.21).
  [[nodiscard]] int NumNontrivialComponents() const;
  // True if every component has >= 2 terminals (Definition: minimal instance).
  [[nodiscard]] bool IsMinimal() const;
};

// DSF with Connection Requests.
struct CrInstance {
  std::vector<std::vector<NodeId>> requests;  // R_v per node

  [[nodiscard]] int NumNodes() const noexcept {
    return static_cast<int>(requests.size());
  }
  // Terminal set per Definition 2.1.
  [[nodiscard]] std::vector<NodeId> Terminals() const;
  [[nodiscard]] int NumTerminals() const;
  // Total number of requests (counting each direction as given).
  [[nodiscard]] int NumRequests() const;
};

// Builds an IcInstance with the given (node, label) pairs; all other nodes ⊥.
IcInstance MakeIcInstance(int n, const std::vector<std::pair<NodeId, Label>>& assignment);

// Builds a CrInstance from symmetric terminal pairs.
CrInstance MakeCrInstance(int n, const std::vector<std::pair<NodeId, NodeId>>& pairs);

// Lemma 2.3 (centralized reference): the equivalent IC instance — labels are
// the connected components of the "request graph" on terminals.
IcInstance CrToIc(const CrInstance& cr);

// Lemma 2.4 (centralized reference): drops labels with a single terminal.
IcInstance MakeMinimal(const IcInstance& ic);

// True iff the two instances admit exactly the same feasible edge sets.
// (Checked structurally: same grouping of terminals into components after
// dropping singletons.)
bool EquivalentInstances(const IcInstance& a, const IcInstance& b);

}  // namespace dsf
