// Moat growing (Agrawal–Klein–Ravi primal-dual), Algorithms 1 and 2 of the
// paper (Appendix C / D), plus the shared bookkeeping (`MoatBook`) and the
// shared event-selection engine (`ComputeMoatSchedule`) that both the
// centralized reference and the distributed protocol in dist/det_moat.*
// drive — keeping the two in lockstep is what makes the merge-by-merge
// equivalence tests meaningful.
//
// Arithmetic: moat radii live on a fixed-point grid of 2^-12 weight units
// (type `Fixed`). Event times of Algorithm 1 are dyadic rationals whose
// denominators can deepen by one bit per merge; quantizing the half-step
// µ' = (wd - rad_v - rad_w)/2 to the grid (rounding up) keeps all arithmetic
// exact in int64, makes the centralized and distributed implementations
// bit-identical, and perturbs event times by < 2^-12 per merge — an error
// that is orders of magnitude below the unit minimum edge weight and hence
// immaterial to the approximation guarantee (verified against exact optima
// in tests).
#pragma once

#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// ---------------------------------------------------------------------------
// Fixed-point scalar.
// ---------------------------------------------------------------------------

using Fixed = std::int64_t;
inline constexpr int kFixedShift = 12;
inline constexpr Fixed kFixedOne = Fixed{1} << kFixedShift;

[[nodiscard]] constexpr Fixed ToFixed(Weight w) noexcept {
  return static_cast<Fixed>(w) << kFixedShift;
}
[[nodiscard]] constexpr Real FixedToReal(Fixed f) noexcept {
  return static_cast<Real>(f) / static_cast<Real>(kFixedOne);
}
// Half of x, rounded up onto the grid (deterministic in both implementations).
[[nodiscard]] constexpr Fixed HalfUp(Fixed x) noexcept { return (x + 1) >> 1; }

// ---------------------------------------------------------------------------
// Merge records and shared moat bookkeeping.
// ---------------------------------------------------------------------------

// One merge step of Algorithm 1/2: the moats of terminals v and w are joined
// after the active moats have grown by µ (Fixed units) since the previous
// merge. `both_active` distinguishes µ'-type (2µ closes the gap) from
// µ''-type (only v's side grows) merges.
struct MergeRecord {
  NodeId v = kNoNode;       // terminal on the (always) active side
  NodeId w = kNoNode;       // other terminal
  Fixed mu = 0;             // growth increment that triggered the merge
  bool both_active = false;
  int phase = 0;            // merge-phase index (Definition 4.3 / 4.19)
  EdgeId via_edge = kNoEdge;  // witnessing boundary edge (distributed only)
};

enum class MoatMode {
  kExact,    // Algorithm 1: deactivation immediately upon satisfaction
  kRounded,  // Algorithm 2: deactivation only at µ̂ checkpoints
};

// Bookkeeping of moats, component labels, radii, and activity, exactly as in
// Algorithm 1 lines 1-5 and 20-33 (and Algorithm 2's checkpoint variant).
// Both the centralized solver and every node of the distributed protocol run
// an identical MoatBook fed with the same merge sequence.
class MoatBook {
 public:
  MoatBook(std::span<const NodeId> terminals, std::span<const Label> labels,
           MoatMode mode);

  [[nodiscard]] int NumTerminals() const noexcept {
    return static_cast<int>(terminals_.size());
  }
  [[nodiscard]] NodeId TerminalAt(int i) const {
    return terminals_[static_cast<std::size_t>(i)];
  }
  // Index of a terminal in the book's order, or -1.
  [[nodiscard]] int IndexOf(NodeId v) const;

  [[nodiscard]] bool ActiveTerminal(int idx) const;
  [[nodiscard]] Fixed RadOf(int idx) const {
    return rad_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] int MoatOf(int idx) const;  // canonical moat representative
  [[nodiscard]] int NumActiveMoats() const;
  [[nodiscard]] bool AnyActive() const { return NumActiveMoats() > 0; }

  struct ApplyResult {
    bool activity_changed = false;    // some terminal's act flipped (Def 4.3)
    bool involved_inactive = false;   // one side was inactive (Def 4.19)
    bool became_inactive = false;     // merged moat satisfied (kExact only)
  };

  // Grows all active moats by µ, then merges the moats of terminal indices
  // iv and iw (must be distinct moats). `phase` and `via_edge` are recorded
  // in the merge log verbatim.
  ApplyResult GrowAndMerge(Fixed mu, int iv, int iw, int phase,
                           EdgeId via_edge = kNoEdge);

  // Algorithm 2 checkpoint: grows active moats by µ (the residual up to µ̂),
  // then deactivates every satisfied moat. Returns #deactivated.
  int GrowAndCheckpoint(Fixed mu);

  [[nodiscard]] Fixed TotalGrowth() const noexcept { return total_growth_; }
  // Σ_i act_i µ_i — the dual lower bound of Lemma C.4: any feasible solution
  // weighs at least this (Algorithm 1) / this divided by 1 + ε/2 (Alg. 2).
  [[nodiscard]] Fixed DualSum() const noexcept { return dual_sum_; }

  [[nodiscard]] const std::vector<MergeRecord>& Merges() const noexcept {
    return merges_;
  }

  // The subset of merge edges (as a forest on terminal indices) that is
  // minimal w.r.t. connecting every label class — the Fmin of Section E.1
  // step 4. Returns indices into Merges().
  [[nodiscard]] std::vector<int> MinimalMergeSubset() const;

 private:
  void RecomputeActivity(int moat_root);
  [[nodiscard]] bool Satisfied(int moat_root) const;

  MoatMode mode_;
  std::vector<NodeId> terminals_;
  std::vector<Label> labels_;  // per terminal index (original labels)

  // Moat partition (union-find over terminal indices).
  mutable std::vector<int> moat_parent_;
  std::vector<int> moat_size_;

  // Label-class partition (classes merge when moats merge, Alg. 1 l. 21-27).
  mutable std::vector<int> class_parent_;  // over terminal indices as class seeds
  std::vector<int> class_total_;           // #terminals whose label is in class

  std::vector<int> moat_class_;   // class root per moat root
  std::vector<char> moat_active_;  // per moat root
  std::vector<Fixed> rad_;         // per terminal
  std::vector<MergeRecord> merges_;
  Fixed total_growth_ = 0;
  Fixed dual_sum_ = 0;

  int FindMoat(int x) const;
  int FindClass(int x) const;
};

// ---------------------------------------------------------------------------
// Centralized algorithms.
// ---------------------------------------------------------------------------

struct MoatOptions {
  // ε of Algorithm 2; epsilon == 0 runs Algorithm 1 (exact events).
  Real epsilon = 0.0L;
  // Cooperative cancellation, polled per terminal Dijkstra and per merge
  // event. A cancelled run returns the partial (possibly infeasible)
  // forest with MoatResult::cancelled set. Borrowed; may be nullptr.
  const CancelToken* cancel = nullptr;
};

struct MoatResult {
  std::vector<EdgeId> forest;       // minimal feasible subforest (the output)
  std::vector<EdgeId> raw_forest;   // F_imax before final pruning
  std::vector<MergeRecord> merges;
  Fixed dual_sum = 0;      // lower bound on OPT (divide by 1+ε/2 for Alg. 2)
  int merge_phases = 0;    // jmax (Definition 4.3 / 4.19)
  int growth_phases = 0;   // gmax (Algorithm 2 only; 0 for Algorithm 1)
  bool cancelled = false;  // stopped early by MoatOptions::cancel
};

// ---------------------------------------------------------------------------
// Shared selection engine.
// ---------------------------------------------------------------------------

// The full fixed-point schedule of Algorithm 1/2 given the terminal-terminal
// distance matrix: the ordered merge log, the (i, j) pair whose least-weight
// path realizes each merge, and the phase/checkpoint structure. This is the
// single place the event selection, µ̂ rounding, and tie-breaking live;
// `CentralizedMoatGrowing` drives it with Dijkstra distances, the distributed
// coordinator of dist/det_moat.* with distances convergecast from the
// network's Bellman-Ford labels. Merge-by-merge equality of the two
// implementations follows by construction.
struct MoatSchedule {
  std::vector<MergeRecord> merges;
  // Per merge: the (terminal-index) pair as selected, before the active-side
  // orientation swap — path edges come from index `first`'s shortest-path
  // tree toward index `second`'s terminal, in source-to-target order.
  std::vector<std::pair<int, int>> merge_pairs;
  Fixed dual_sum = 0;
  int merge_phases = 0;   // jmax (Definition 4.3 / 4.19)
  int growth_phases = 0;  // gmax (Algorithm 2 only; 0 for Algorithm 1)
};

// `dist[i][j]` must hold wd(terminals[i], terminals[j]) (kInfWeight when
// unreachable). The instance described by (terminals, labels) must be
// minimal; infeasible instances fail a DSF_CHECK.
MoatSchedule ComputeMoatSchedule(std::span<const NodeId> terminals,
                                 std::span<const Label> labels,
                                 const std::vector<std::vector<Weight>>& dist,
                                 const MoatOptions& options = {});

// Runs Algorithm 1 (options.epsilon == 0) or Algorithm 2 (> 0) on a minimal
// DSF-IC instance. Non-minimal instances are reduced via MakeMinimal first.
MoatResult CentralizedMoatGrowing(const Graph& g, const IcInstance& ic,
                                  const MoatOptions& options = {});

}  // namespace dsf
