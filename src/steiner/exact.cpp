#include "steiner/exact.hpp"

#include <algorithm>
#include <map>

#include "graph/shortest_paths.hpp"

namespace dsf {

namespace {

// Dreyfus–Wagner state for one terminal set: dp plus the transition taken,
// so the optimum can be expanded into edges afterwards. Flat [mask * n + v]
// indexing.
struct DwTable {
  int n = 0;
  std::uint32_t full = 0;
  std::vector<Weight> dp;
  // Transition per (mask, v): merge_sub != 0 means dp[sub][v] + dp[mask^sub][v];
  // otherwise reroot_from != kNoNode means dp[mask][from] + wd(from, v);
  // otherwise the singleton base case (path from the mask's terminal to v).
  std::vector<std::uint32_t> merge_sub;
  std::vector<NodeId> reroot_from;

  [[nodiscard]] std::size_t At(std::uint32_t mask, NodeId v) const {
    return static_cast<std::size_t>(mask) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(v);
  }
};

DwTable RunDreyfusWagner(const Graph& g, std::span<const NodeId> terminals,
                         const std::vector<ShortestPathTree>& spt) {
  const int t = static_cast<int>(terminals.size());
  const int n = g.NumNodes();
  DwTable tab;
  tab.n = n;
  tab.full = (1u << t) - 1;
  const std::size_t cells =
      (static_cast<std::size_t>(tab.full) + 1) * static_cast<std::size_t>(n);
  tab.dp.assign(cells, kInfWeight);
  tab.merge_sub.assign(cells, 0);
  tab.reroot_from.assign(cells, kNoNode);

  for (int i = 0; i < t; ++i) {
    const NodeId ti = terminals[static_cast<std::size_t>(i)];
    const auto& dist_ti = spt[static_cast<std::size_t>(ti)].dist;
    for (NodeId v = 0; v < n; ++v) {
      tab.dp[tab.At(1u << i, v)] = dist_ti[static_cast<std::size_t>(v)];
    }
  }
  for (std::uint32_t s = 1; s <= tab.full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singletons initialized above
    Weight* row = tab.dp.data() + tab.At(s, 0);
    std::uint32_t* row_sub = tab.merge_sub.data() + tab.At(s, 0);
    NodeId* row_from = tab.reroot_from.data() + tab.At(s, 0);
    // Combine two subtrees at a common node.
    for (std::uint32_t sub = (s - 1) & s; sub != 0; sub = (sub - 1) & s) {
      if (sub < (s ^ sub)) continue;  // each split once
      const Weight* a = tab.dp.data() + tab.At(sub, 0);
      const Weight* b = tab.dp.data() + tab.At(s ^ sub, 0);
      for (NodeId v = 0; v < n; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (a[vi] < kInfWeight && b[vi] < kInfWeight &&
            a[vi] + b[vi] < row[vi]) {
          row[vi] = a[vi] + b[vi];
          row_sub[vi] = sub;
          row_from[vi] = kNoNode;
        }
      }
    }
    // Re-root through shortest paths. One pass suffices because `spt`
    // distances form a metric closure (chaining relaxations cannot beat the
    // triangle inequality), and every improvement overwrites the transition,
    // so reroot chains strictly decrease dp and cannot cycle.
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (row[vi] >= kInfWeight) continue;
      const auto& dist_v = spt[vi].dist;
      for (NodeId u = 0; u < n; ++u) {
        const auto ui = static_cast<std::size_t>(u);
        if (dist_v[ui] >= kInfWeight) continue;
        const Weight via = row[vi] + dist_v[ui];
        if (via < row[ui]) {
          row[ui] = via;
          row_sub[ui] = 0;
          row_from[ui] = v;
        }
      }
    }
  }
  return tab;
}

void AddPathEdges(const ShortestPathTree& tree, NodeId to,
                  std::vector<char>& in_forest, std::vector<EdgeId>& edges) {
  for (const EdgeId e : tree.PathTo(to)) {
    if (!in_forest[static_cast<std::size_t>(e)]) {
      in_forest[static_cast<std::size_t>(e)] = 1;
      edges.push_back(e);
    }
  }
}

// Expands the optimum tree of (mask, v) into edges (deduplicated through
// `in_forest`). Iterative worklist; each merge strictly shrinks the mask and
// each reroot strictly shrinks dp, so expansion terminates.
void ExpandTree(const DwTable& tab, std::span<const NodeId> terminals,
                const std::vector<ShortestPathTree>& spt, std::uint32_t mask,
                NodeId v, std::vector<char>& in_forest,
                std::vector<EdgeId>& edges) {
  std::vector<std::pair<std::uint32_t, NodeId>> work{{mask, v}};
  while (!work.empty()) {
    const auto [s, x] = work.back();
    work.pop_back();
    if ((s & (s - 1)) == 0) {
      // Singleton base case: the shortest path terminal -> x.
      int i = 0;
      while (!(s & (1u << i))) ++i;
      const NodeId ti = terminals[static_cast<std::size_t>(i)];
      AddPathEdges(spt[static_cast<std::size_t>(ti)], x, in_forest, edges);
      continue;
    }
    const std::size_t at = tab.At(s, x);
    if (const std::uint32_t sub = tab.merge_sub[at]; sub != 0) {
      work.push_back({sub, x});
      work.push_back({s ^ sub, x});
    } else {
      const NodeId from = tab.reroot_from[at];
      DSF_CHECK(from != kNoNode);
      AddPathEdges(spt[static_cast<std::size_t>(from)], x, in_forest, edges);
      work.push_back({s, from});
    }
  }
}

std::vector<ShortestPathTree> AllPairsTrees(const Graph& g) {
  std::vector<ShortestPathTree> spt;
  spt.reserve(static_cast<std::size_t>(g.NumNodes()));
  for (NodeId v = 0; v < g.NumNodes(); ++v) spt.push_back(Dijkstra(g, v));
  return spt;
}

ExactSolution SteinerTreeWithTrees(const Graph& g,
                                   std::span<const NodeId> terminals,
                                   const std::vector<ShortestPathTree>& spt,
                                   std::vector<char>& in_forest) {
  ExactSolution out;
  const int t = static_cast<int>(terminals.size());
  if (t <= 1) {
    out.weight = 0;
    return out;
  }
  const DwTable tab = RunDreyfusWagner(g, terminals, spt);
  const NodeId root = terminals[0];
  out.weight = tab.dp[tab.At(tab.full, root)];
  if (out.weight >= kInfWeight) return out;
  ExpandTree(tab, terminals, spt, tab.full, root, in_forest, out.edges);
  return out;
}

}  // namespace

ExactSolution ExactSteinerTree(const Graph& g,
                               std::span<const NodeId> terminals) {
  const int t = static_cast<int>(terminals.size());
  if (t <= 1) return {.weight = 0, .edges = {}};
  DSF_CHECK_MSG(t <= kExactTreeMaxTerminals,
                "Dreyfus-Wagner limited to " << kExactTreeMaxTerminals
                                             << " terminals, got " << t);
  const auto spt = AllPairsTrees(g);
  std::vector<char> in_forest(static_cast<std::size_t>(g.NumEdges()), 0);
  ExactSolution out = SteinerTreeWithTrees(g, terminals, spt, in_forest);
  // An optimal tree realized through shortest paths cannot retain a cycle:
  // weights are >= 1, so dropping any cycle edge would beat the optimum.
  DSF_CHECK(out.weight >= kInfWeight || g.WeightOf(out.edges) == out.weight);
  return out;
}

Weight ExactSteinerTreeWeight(const Graph& g,
                              std::span<const NodeId> terminals) {
  return ExactSteinerTree(g, terminals).weight;
}

ExactSolution ExactSteinerForest(const Graph& g, const IcInstance& ic) {
  const IcInstance inst = MakeMinimal(ic);
  const auto labels = inst.DistinctLabels();
  const int k = static_cast<int>(labels.size());
  if (k == 0) return {.weight = 0, .edges = {}};
  DSF_CHECK_MSG(k <= kExactForestMaxComponents,
                "partition enumeration limited to "
                    << kExactForestMaxComponents << " components, got " << k);
  // The partition DP evaluates Dreyfus-Wagner on unions of components — up
  // to every terminal at once — so the terminal count is what makes large
  // instances hang, not the component count. Fail loudly instead.
  const int t = inst.NumTerminals();
  DSF_CHECK_MSG(t <= kExactForestMaxTerminals,
                "exact forest solver limited to " << kExactForestMaxTerminals
                                                  << " terminals, got " << t);

  std::map<Label, std::vector<NodeId>> members;
  for (NodeId v = 0; v < inst.NumNodes(); ++v) {
    if (inst.IsTerminal(v)) members[inst.LabelOf(v)].push_back(v);
  }

  const auto spt = AllPairsTrees(g);

  // Memoize Steiner-tree weights per subset of components.
  std::vector<Weight> tree_weight(1u << k, -1);
  std::vector<std::vector<NodeId>> subset_terms(1u << k);
  const auto subset_weight = [&](std::uint32_t mask) -> Weight {
    Weight& memo = tree_weight[mask];
    if (memo >= 0) return memo;
    auto& terms = subset_terms[mask];
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) {
        const auto& m = members[labels[static_cast<std::size_t>(i)]];
        terms.insert(terms.end(), m.begin(), m.end());
      }
    }
    // Weight-only probe: the realizing edges are expanded below, only for
    // the parts of the winning partition.
    const DwTable tab = RunDreyfusWagner(g, terms, spt);
    memo = tab.dp[tab.At(tab.full, terms[0])];
    return memo;
  };

  // dp over subsets: opt[S] = min over nonempty T ⊆ S (containing lowest bit)
  // of subset_weight(T) + opt[S \ T]. Equivalent to minimizing over set
  // partitions, without explicit partition enumeration. `part_of[S]` records
  // the winning T for reconstruction.
  const std::uint32_t full = (1u << k) - 1;
  std::vector<Weight> opt(full + 1, kInfWeight);
  std::vector<std::uint32_t> part_of(full + 1, 0);
  opt[0] = 0;
  for (std::uint32_t s = 1; s <= full; ++s) {
    const std::uint32_t low = s & (~s + 1);
    for (std::uint32_t sub = s; sub != 0; sub = (sub - 1) & s) {
      if (!(sub & low)) continue;
      const Weight tw = subset_weight(sub);
      const Weight rest = opt[s ^ sub];
      if (tw < kInfWeight && rest < kInfWeight && tw + rest < opt[s]) {
        opt[s] = tw + rest;
        part_of[s] = sub;
      }
    }
  }

  ExactSolution out;
  out.weight = opt[full];
  if (out.weight >= kInfWeight) return out;
  // Expand the winning partition part by part. Parts cannot share edges: the
  // union is feasible and weighs at most the sum, so a shared edge would
  // contradict optimality (weights >= 1); the result is a forest of weight
  // opt[full], which the weight check below pins.
  std::vector<char> in_forest(static_cast<std::size_t>(g.NumEdges()), 0);
  for (std::uint32_t s = full; s != 0; s ^= part_of[s]) {
    const std::uint32_t part = part_of[s];
    DSF_CHECK(part != 0);
    const ExactSolution tree =
        SteinerTreeWithTrees(g, subset_terms[part], spt, in_forest);
    out.edges.insert(out.edges.end(), tree.edges.begin(), tree.edges.end());
  }
  std::sort(out.edges.begin(), out.edges.end());
  DSF_CHECK(g.WeightOf(out.edges) == out.weight);
  return out;
}

Weight ExactSteinerForestWeight(const Graph& g, const IcInstance& ic) {
  return ExactSteinerForest(g, ic).weight;
}

}  // namespace dsf
