#include "steiner/exact.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "graph/shortest_paths.hpp"

namespace dsf {

Weight ExactSteinerTreeWeight(const Graph& g,
                              std::span<const NodeId> terminals) {
  const int t = static_cast<int>(terminals.size());
  if (t <= 1) return 0;
  DSF_CHECK_MSG(t <= 20, "Dreyfus-Wagner limited to 20 terminals, got " << t);
  const int n = g.NumNodes();

  // All-pairs shortest distances (n Dijkstras — small instances only).
  std::vector<std::vector<Weight>> dist;
  dist.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) dist.push_back(Dijkstra(g, v).dist);

  const std::uint32_t full = (1u << t) - 1;
  // dp[S][v] = min weight of a tree spanning {terminals in S} ∪ {v}.
  std::vector<std::vector<Weight>> dp(
      full + 1, std::vector<Weight>(static_cast<std::size_t>(n), kInfWeight));
  for (int i = 0; i < t; ++i) {
    const NodeId ti = terminals[static_cast<std::size_t>(i)];
    for (NodeId v = 0; v < n; ++v) {
      dp[1u << i][static_cast<std::size_t>(v)] =
          dist[static_cast<std::size_t>(ti)][static_cast<std::size_t>(v)];
    }
  }
  for (std::uint32_t s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singletons initialized above
    auto& row = dp[s];
    // Combine two subtrees at a common node.
    for (std::uint32_t sub = (s - 1) & s; sub != 0; sub = (sub - 1) & s) {
      if (sub < (s ^ sub)) continue;  // each split once
      const auto& a = dp[sub];
      const auto& b = dp[s ^ sub];
      for (NodeId v = 0; v < n; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (a[vi] < kInfWeight && b[vi] < kInfWeight) {
          row[vi] = std::min(row[vi], a[vi] + b[vi]);
        }
      }
    }
    // Re-root through shortest paths (metric closure relaxation).
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (row[vi] >= kInfWeight) continue;
      for (NodeId u = 0; u < n; ++u) {
        const auto ui = static_cast<std::size_t>(u);
        const Weight via = row[vi] + dist[vi][ui];
        row[ui] = std::min(row[ui], via);
      }
    }
  }
  Weight best = kInfWeight;
  const NodeId t0 = terminals[0];
  best = dp[full][static_cast<std::size_t>(t0)];
  return best;
}

Weight ExactSteinerForestWeight(const Graph& g, const IcInstance& ic) {
  const IcInstance inst = MakeMinimal(ic);
  const auto labels = inst.DistinctLabels();
  const int k = static_cast<int>(labels.size());
  if (k == 0) return 0;
  DSF_CHECK_MSG(k <= 8, "partition enumeration limited to 8 components");

  std::map<Label, std::vector<NodeId>> members;
  for (NodeId v = 0; v < inst.NumNodes(); ++v) {
    if (inst.IsTerminal(v)) members[inst.LabelOf(v)].push_back(v);
  }

  // Memoize Steiner-tree weights per subset of components.
  std::vector<Weight> tree_weight(1u << k, -1);
  const auto subset_weight = [&](std::uint32_t mask) -> Weight {
    Weight& memo = tree_weight[mask];
    if (memo >= 0) return memo;
    std::vector<NodeId> terms;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) {
        const auto& m = members[labels[static_cast<std::size_t>(i)]];
        terms.insert(terms.end(), m.begin(), m.end());
      }
    }
    memo = ExactSteinerTreeWeight(g, terms);
    return memo;
  };

  // dp over subsets: opt[S] = min over nonempty T ⊆ S (containing lowest bit)
  // of subset_weight(T) + opt[S \ T]. Equivalent to minimizing over set
  // partitions, without explicit partition enumeration.
  const std::uint32_t full = (1u << k) - 1;
  std::vector<Weight> opt(full + 1, kInfWeight);
  opt[0] = 0;
  for (std::uint32_t s = 1; s <= full; ++s) {
    const std::uint32_t low = s & (~s + 1);
    for (std::uint32_t sub = s; sub != 0; sub = (sub - 1) & s) {
      if (!(sub & low)) continue;
      const Weight tw = subset_weight(sub);
      const Weight rest = opt[s ^ sub];
      if (tw < kInfWeight && rest < kInfWeight) {
        opt[s] = std::min(opt[s], tw + rest);
      }
    }
  }
  return opt[full];
}

}  // namespace dsf
