// Local-search Steiner forest (Groß et al., arXiv:1707.02753).
//
// Starts from a feasible forest (the Kruskal-prune baseline, or a caller-
// supplied warm start) and improves it by the paper's move families,
// applied per forest edge in ascending edge-id order:
//   * remove  — drop an edge whose removal keeps every input component
//               connected (pure win);
//   * swap    — if removal breaks demands, find the cheapest reconnection
//               of the two sides in the metric where surviving forest
//               edges cost 0, and take it when it is strictly cheaper.
// Passes repeat until a fixed point (or the pass budget / cancellation).
// Groß et al. prove constant-factor local optima for these moves; in this
// codebase the solver doubles as the *anytime* member of the portfolio:
// the incumbent is feasible after every accepted move, so a deadline can
// stop it at any checkpoint and still return a valid forest — and the
// warm-start hook is what the ROADMAP's incremental/online item builds on.
#pragma once

#include <vector>

#include "common/cancel.hpp"
#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct LocalSearchOptions {
  // Improvement passes over the forest edge list; a pass with no accepted
  // move ends the search early.
  int max_passes = 4;
  // Optional warm start: a feasible, cycle-free forest to optimize instead
  // of the Kruskal-prune seed. Borrowed; validated with a DSF_CHECK.
  const std::vector<EdgeId>* warm_start = nullptr;
  // Optional refinement focus: when non-empty, each pass only attempts
  // moves on forest edges with an endpoint within `focus_radius` forest
  // hops of a focus node (the region is re-marked at the start of every
  // pass). The incremental tier passes the delta-touched region here so a
  // warm re-solve pays for the neighbourhood the delta disturbed, not the
  // whole forest — edges far from the delta were already at the base
  // solve's fixed point. Purely a restriction of the move set: feasibility
  // and the never-worse-than-warm-start guarantee are unaffected.
  // Borrowed; out-of-range nodes are ignored.
  const std::vector<NodeId>* focus = nullptr;
  int focus_radius = 16;
  // Cooperative cancellation, polled per move. Unlike the constructive
  // solvers, a cancelled local search still returns a FEASIBLE forest
  // (the incumbent) unless the seed itself was cancelled mid-build.
  const CancelToken* cancel = nullptr;
};

struct LocalSearchResult {
  std::vector<EdgeId> forest;  // sorted; feasible unless seed was cancelled
  int passes = 0;              // passes fully completed
  long moves = 0;              // accepted improving moves
  bool cancelled = false;      // stopped early by LocalSearchOptions::cancel
};

// Deterministic given (g, ic, options): move order is edge-id order and all
// Dijkstra ties break by node id.
LocalSearchResult LocalSearchSteinerForest(
    const Graph& g, const IcInstance& ic,
    const LocalSearchOptions& options = {});

}  // namespace dsf
