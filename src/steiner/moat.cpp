#include "steiner/moat.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "graph/shortest_paths.hpp"
#include "graph/union_find.hpp"
#include "steiner/prune.hpp"

namespace dsf {

// ---------------------------------------------------------------------------
// MoatBook
// ---------------------------------------------------------------------------

MoatBook::MoatBook(std::span<const NodeId> terminals,
                   std::span<const Label> labels, MoatMode mode)
    : mode_(mode),
      terminals_(terminals.begin(), terminals.end()),
      labels_(labels.begin(), labels.end()) {
  DSF_CHECK(terminals_.size() == labels_.size());
  const int t = NumTerminals();
  moat_parent_.resize(static_cast<std::size_t>(t));
  class_parent_.resize(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    moat_parent_[static_cast<std::size_t>(i)] = i;
    class_parent_[static_cast<std::size_t>(i)] = i;
  }
  moat_size_.assign(static_cast<std::size_t>(t), 1);
  class_total_.assign(static_cast<std::size_t>(t), 1);
  moat_class_.resize(static_cast<std::size_t>(t));
  moat_active_.assign(static_cast<std::size_t>(t), 1);
  rad_.assign(static_cast<std::size_t>(t), 0);

  // Terminals sharing an input label start in the same label class.
  std::map<Label, int> first_with_label;
  for (int i = 0; i < t; ++i) {
    DSF_CHECK(labels_[static_cast<std::size_t>(i)] != kNoLabel);
    auto [it, inserted] =
        first_with_label.try_emplace(labels_[static_cast<std::size_t>(i)], i);
    if (!inserted) {
      const int a = FindClass(it->second);
      const int b = FindClass(i);
      if (a != b) {
        class_parent_[static_cast<std::size_t>(b)] = a;
        class_total_[static_cast<std::size_t>(a)] +=
            class_total_[static_cast<std::size_t>(b)];
      }
    }
  }
  for (int i = 0; i < t; ++i) {
    moat_class_[static_cast<std::size_t>(i)] = FindClass(i);
    // A singleton class is satisfied from the start (non-minimal instance);
    // its moat never activates.
    moat_active_[static_cast<std::size_t>(i)] = Satisfied(i) ? 0 : 1;
  }
}

int MoatBook::FindMoat(int x) const {
  while (moat_parent_[static_cast<std::size_t>(x)] != x) {
    const int p = moat_parent_[static_cast<std::size_t>(x)];
    moat_parent_[static_cast<std::size_t>(x)] =
        moat_parent_[static_cast<std::size_t>(p)];
    x = moat_parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

int MoatBook::FindClass(int x) const {
  while (class_parent_[static_cast<std::size_t>(x)] != x) {
    const int p = class_parent_[static_cast<std::size_t>(x)];
    class_parent_[static_cast<std::size_t>(x)] =
        class_parent_[static_cast<std::size_t>(p)];
    x = class_parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

int MoatBook::IndexOf(NodeId v) const {
  for (int i = 0; i < NumTerminals(); ++i) {
    if (terminals_[static_cast<std::size_t>(i)] == v) return i;
  }
  return -1;
}

bool MoatBook::ActiveTerminal(int idx) const {
  return moat_active_[static_cast<std::size_t>(FindMoat(idx))] != 0;
}

int MoatBook::MoatOf(int idx) const { return FindMoat(idx); }

int MoatBook::NumActiveMoats() const {
  int count = 0;
  for (int i = 0; i < NumTerminals(); ++i) {
    if (FindMoat(i) == i && moat_active_[static_cast<std::size_t>(i)] != 0) {
      ++count;
    }
  }
  return count;
}

bool MoatBook::Satisfied(int moat_root) const {
  const int cls = FindClass(moat_class_[static_cast<std::size_t>(moat_root)]);
  return moat_size_[static_cast<std::size_t>(moat_root)] ==
         class_total_[static_cast<std::size_t>(cls)];
}

MoatBook::ApplyResult MoatBook::GrowAndMerge(Fixed mu, int iv, int iw,
                                             int phase, EdgeId via_edge) {
  DSF_CHECK(mu >= 0);
  // Growth (Algorithm 1 lines 15-16): all terminals in active moats grow.
  dual_sum_ += static_cast<Fixed>(NumActiveMoats()) * mu;
  total_growth_ += mu;
  for (int i = 0; i < NumTerminals(); ++i) {
    if (ActiveTerminal(i)) rad_[static_cast<std::size_t>(i)] += mu;
  }

  const int mv = FindMoat(iv);
  const int mw = FindMoat(iw);
  DSF_CHECK_MSG(mv != mw, "merge within a single moat");
  const bool act_v = moat_active_[static_cast<std::size_t>(mv)] != 0;
  const bool act_w = moat_active_[static_cast<std::size_t>(mw)] != 0;
  DSF_CHECK_MSG(act_v || act_w, "merge between two inactive moats");

  // Merge moats (union by size, keep bookkeeping on the new root).
  int root = mv;
  int child = mw;
  if (moat_size_[static_cast<std::size_t>(root)] <
      moat_size_[static_cast<std::size_t>(child)]) {
    std::swap(root, child);
  }
  moat_parent_[static_cast<std::size_t>(child)] = root;
  moat_size_[static_cast<std::size_t>(root)] +=
      moat_size_[static_cast<std::size_t>(child)];

  // Merge label classes (Algorithm 1 lines 21-27).
  const int cv = FindClass(moat_class_[static_cast<std::size_t>(mv)]);
  const int cw = FindClass(moat_class_[static_cast<std::size_t>(mw)]);
  if (cv != cw) {
    class_parent_[static_cast<std::size_t>(cw)] = cv;
    class_total_[static_cast<std::size_t>(cv)] +=
        class_total_[static_cast<std::size_t>(cw)];
  }
  moat_class_[static_cast<std::size_t>(root)] = FindClass(cv);

  // Activity of the merged moat: Algorithm 1 lines 28-31 deactivate when the
  // component is satisfied; Algorithm 2 line 33 keeps merged moats active
  // until the next checkpoint.
  bool new_active = true;
  if (mode_ == MoatMode::kExact && Satisfied(root)) new_active = false;
  moat_active_[static_cast<std::size_t>(root)] = new_active ? 1 : 0;

  MergeRecord rec;
  rec.v = act_v ? terminals_[static_cast<std::size_t>(iv)]
                : terminals_[static_cast<std::size_t>(iw)];
  rec.w = act_v ? terminals_[static_cast<std::size_t>(iw)]
                : terminals_[static_cast<std::size_t>(iv)];
  rec.mu = mu;
  rec.both_active = act_v && act_w;
  rec.phase = phase;
  rec.via_edge = via_edge;
  merges_.push_back(rec);

  ApplyResult result;
  result.involved_inactive = !(act_v && act_w);
  result.became_inactive = !new_active;
  result.activity_changed = (new_active != act_v) || (new_active != act_w);
  return result;
}

int MoatBook::GrowAndCheckpoint(Fixed mu) {
  DSF_CHECK(mu >= 0);
  DSF_CHECK(mode_ == MoatMode::kRounded);
  dual_sum_ += static_cast<Fixed>(NumActiveMoats()) * mu;
  total_growth_ += mu;
  for (int i = 0; i < NumTerminals(); ++i) {
    if (ActiveTerminal(i)) rad_[static_cast<std::size_t>(i)] += mu;
  }
  int deactivated = 0;
  for (int i = 0; i < NumTerminals(); ++i) {
    if (FindMoat(i) != i) continue;
    if (moat_active_[static_cast<std::size_t>(i)] != 0 && Satisfied(i)) {
      moat_active_[static_cast<std::size_t>(i)] = 0;
      ++deactivated;
    }
  }
  return deactivated;
}

std::vector<int> MoatBook::MinimalMergeSubset() const {
  const int t = NumTerminals();
  // Forest on terminal indices induced by the merge log.
  std::vector<std::vector<std::pair<int, int>>> adj(
      static_cast<std::size_t>(t));  // (neighbor terminal idx, merge idx)
  for (int m = 0; m < static_cast<int>(merges_.size()); ++m) {
    const auto& rec = merges_[static_cast<std::size_t>(m)];
    const int a = IndexOf(rec.v);
    const int b = IndexOf(rec.w);
    adj[static_cast<std::size_t>(a)].push_back({b, m});
    adj[static_cast<std::size_t>(b)].push_back({a, m});
  }
  std::map<Label, int> total;
  for (const Label l : labels_) ++total[l];

  std::vector<int> needed;
  std::vector<char> visited(static_cast<std::size_t>(t), 0);
  // Iterative DFS computing per-subtree label counts; an edge is needed iff
  // some label has terminals strictly on both of its sides.
  std::vector<std::map<Label, int>> counts(static_cast<std::size_t>(t));
  for (int r = 0; r < t; ++r) {
    if (visited[static_cast<std::size_t>(r)]) continue;
    // Post-order over the tree containing r.
    std::vector<std::tuple<int, int, int>> stack;  // (node, parent, merge idx)
    std::vector<std::tuple<int, int, int>> order;
    stack.push_back({r, -1, -1});
    visited[static_cast<std::size_t>(r)] = 1;
    while (!stack.empty()) {
      auto [u, p, me] = stack.back();
      stack.pop_back();
      order.push_back({u, p, me});
      for (const auto& [nb, m] : adj[static_cast<std::size_t>(u)]) {
        if (!visited[static_cast<std::size_t>(nb)]) {
          visited[static_cast<std::size_t>(nb)] = 1;
          stack.push_back({nb, u, m});
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      auto [u, p, me] = *it;
      ++counts[static_cast<std::size_t>(u)][labels_[static_cast<std::size_t>(u)]];
      if (p >= 0) {
        // Does the subtree of u split some label?
        bool split = false;
        for (const auto& [lab, c] : counts[static_cast<std::size_t>(u)]) {
          if (c > 0 && c < total[lab]) {
            split = true;
            break;
          }
        }
        if (split) needed.push_back(me);
        // Merge counts into parent (small-to-large not needed at this scale).
        for (const auto& [lab, c] : counts[static_cast<std::size_t>(u)]) {
          counts[static_cast<std::size_t>(p)][lab] += c;
        }
      }
    }
  }
  std::sort(needed.begin(), needed.end());
  return needed;
}

// ---------------------------------------------------------------------------
// Shared selection engine (Algorithm 1 / Algorithm 2 event loop)
// ---------------------------------------------------------------------------

MoatSchedule ComputeMoatSchedule(std::span<const NodeId> terminals,
                                 std::span<const Label> labels,
                                 const std::vector<std::vector<Weight>>& dist,
                                 const MoatOptions& options) {
  DSF_CHECK(options.epsilon >= 0.0L);
  DSF_CHECK(terminals.size() == labels.size());
  DSF_CHECK(dist.size() == terminals.size());
  const int t = static_cast<int>(terminals.size());

  MoatSchedule schedule;
  if (t == 0) return schedule;

  const bool rounded = options.epsilon > 0.0L;
  MoatBook book(terminals, labels,
                rounded ? MoatMode::kRounded : MoatMode::kExact);

  Fixed muhat = kFixedOne;  // µ̂ := 1 (Algorithm 2 line 8)
  int phase = 0;
  int growth_phases = 0;

  const long merge_budget = 4L * t + 64;
  long iterations = 0;
  while (book.AnyActive()) {
    DSF_CHECK_MSG(++iterations < 16L * merge_budget,
                  "moat growing failed to terminate");
    // Merge events are the engine's phase boundaries — the cancellation
    // checkpoints of the (2+ε) solver. A partial schedule realizes a
    // partial forest; the caller reports it cancelled.
    if (IsCancelled(options.cancel)) break;
    // Find the minimal growth µ at which two moats meet (lines 10-14).
    Fixed best_mu = -1;
    int best_i = -1;
    int best_j = -1;
    for (int i = 0; i < t; ++i) {
      for (int j = i + 1; j < t; ++j) {
        if (book.MoatOf(i) == book.MoatOf(j)) continue;
        const bool ai = book.ActiveTerminal(i);
        const bool aj = book.ActiveTerminal(j);
        if (!ai && !aj) continue;
        const Weight d =
            dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (d >= kInfWeight) continue;
        const Fixed slack =
            std::max<Fixed>(0, ToFixed(d) - book.RadOf(i) - book.RadOf(j));
        const Fixed mu = (ai && aj) ? HalfUp(slack) : slack;
        if (best_mu < 0 || mu < best_mu) {
          best_mu = mu;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_mu < 0 && rounded) {
      // No pair of distinct moats is left to merge (e.g. everything already
      // merged into satisfied-but-still-active moats): Algorithm 2 keeps
      // growing to the next checkpoint, where deactivation happens.
      const int deactivated =
          book.GrowAndCheckpoint(std::max<Fixed>(0, muhat - book.TotalGrowth()));
      ++growth_phases;
      ++phase;
      const Fixed by_ratio = static_cast<Fixed>(std::ceil(
          static_cast<Real>(muhat) * (1.0L + options.epsilon / 2.0L)));
      muhat = std::max(muhat + 1, by_ratio);
      DSF_CHECK_MSG(deactivated > 0 || !book.AnyActive(),
                    "active moats remain but no merge is possible — "
                    "infeasible instance");
      continue;
    }
    DSF_CHECK_MSG(best_mu >= 0,
                  "active moats remain but no merge is possible — infeasible "
                  "instance (terminals of one component in different graph "
                  "components)");

    if (rounded && book.TotalGrowth() + best_mu >= muhat) {
      // Algorithm 2 lines 16-26: stop growth at µ̂ and re-check activity.
      book.GrowAndCheckpoint(muhat - book.TotalGrowth());
      ++growth_phases;
      ++phase;
      const Fixed by_ratio = static_cast<Fixed>(std::ceil(
          static_cast<Real>(muhat) * (1.0L + options.epsilon / 2.0L)));
      muhat = std::max(muhat + 1, by_ratio);
      continue;
    }

    // Orient so the recorded v-side is active (µ''-type bookkeeping).
    int iv = best_i;
    int iw = best_j;
    if (!book.ActiveTerminal(iv)) std::swap(iv, iw);
    const auto applied = book.GrowAndMerge(best_mu, iv, iw, phase);
    schedule.merge_pairs.push_back({best_i, best_j});

    const bool phase_boundary = rounded
                                    ? applied.involved_inactive
                                    : applied.activity_changed;
    if (phase_boundary) ++phase;
  }

  schedule.merges = book.Merges();
  schedule.dual_sum = book.DualSum();
  schedule.merge_phases = phase;
  schedule.growth_phases = growth_phases;
  return schedule;
}

// ---------------------------------------------------------------------------
// Centralized Algorithm 1 / Algorithm 2
// ---------------------------------------------------------------------------

MoatResult CentralizedMoatGrowing(const Graph& g, const IcInstance& ic,
                                  const MoatOptions& options) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  const IcInstance inst = MakeMinimal(ic);
  const std::vector<NodeId> terminals = inst.Terminals();
  const int t = static_cast<int>(terminals.size());

  MoatResult result;
  if (t == 0) return result;

  std::vector<Label> labels;
  labels.reserve(static_cast<std::size_t>(t));
  for (const NodeId v : terminals) labels.push_back(inst.LabelOf(v));

  // Exact terminal-terminal distances and path trees.
  std::vector<ShortestPathTree> trees;
  trees.reserve(static_cast<std::size_t>(t));
  for (const NodeId v : terminals) {
    if (IsCancelled(options.cancel)) {
      result.cancelled = true;
      return result;
    }
    // Cancellable: a loser stops mid-scan; the partial tree is harmless
    // because ComputeMoatSchedule breaks before consuming any distance and
    // the result is reported cancelled below.
    trees.push_back(Dijkstra(g, v, options.cancel));
  }

  std::vector<std::vector<Weight>> dist(
      static_cast<std::size_t>(t),
      std::vector<Weight>(static_cast<std::size_t>(t), 0));
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          trees[static_cast<std::size_t>(i)]
              .dist[static_cast<std::size_t>(terminals[static_cast<std::size_t>(j)])];
    }
  }

  const MoatSchedule schedule =
      ComputeMoatSchedule(terminals, labels, dist, options);

  // Materialize the merge paths: add each least-weight path's edges, dropping
  // those closing cycles (Algorithm 1 lines 17-19).
  UnionFind forest_uf(g.NumNodes());
  std::vector<EdgeId> raw;
  for (const auto& [src, dst] : schedule.merge_pairs) {
    const NodeId target = terminals[static_cast<std::size_t>(dst)];
    for (const EdgeId e :
         trees[static_cast<std::size_t>(src)].PathTo(target)) {
      const auto& edge = g.GetEdge(e);
      if (forest_uf.Union(edge.u, edge.v)) raw.push_back(e);
    }
  }

  result.raw_forest = raw;
  result.merges = schedule.merges;
  result.dual_sum = schedule.dual_sum;
  result.merge_phases = schedule.merge_phases;
  result.growth_phases = schedule.growth_phases;
  result.cancelled = IsCancelled(options.cancel);
  if (result.cancelled) {
    // The schedule may be partial; hand the raw forest back unpruned.
    result.forest = raw;
    return result;
  }
  result.forest = MinimalFeasibleSubforest(g, inst, raw);
  return result;
}

}  // namespace dsf
