// Gluttonous greedy Steiner forest (Gupta–Kumar, arXiv:1412.7693).
//
// The algorithm maintains a partition of the picked forest into clusters
// and repeatedly merges the closest pair (A, B) where A is *active* —
// contains a terminal whose input component is not yet fully inside A —
// and B is any other terminal cluster, realizing the merge by a
// least-weight path. "Gluttonous" because it merges even pairs with no
// demand between them; Gupta–Kumar prove this timing-oblivious greedy is a
// constant-factor approximation for Steiner forest.
//
// Engineering notes (DESIGN.md §3):
//   * each candidate distance comes from a multi-source Dijkstra out of a
//     cluster that STOPS at the first settled node of a foreign terminal
//     cluster — on instances with clustered terminals the searched ball is
//     a vanishing fraction of the graph, which is what makes this solver
//     the latency winner of the portfolio on sparse-demand traffic;
//   * path edges are inserted union-guarded, so the output is cycle-free
//     by construction and, run to completion, feasible;
//   * the merge loop and the Dijkstra inner loop are cancellation
//     checkpoints: an expired token returns the partial forest with
//     `cancelled` set (portfolio loser / deadline semantics).
#pragma once

#include <vector>

#include "common/cancel.hpp"
#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct GreedyOptions {
  // Cooperative cancellation; borrowed, may be nullptr.
  const CancelToken* cancel = nullptr;
};

struct GreedyResult {
  std::vector<EdgeId> forest;  // cycle-free; feasible unless cancelled
  int merges = 0;              // cluster merges performed
  bool cancelled = false;      // stopped early by GreedyOptions::cancel
};

// Runs the gluttonous greedy on a finalized graph and an IC instance
// (minimality not required — satisfied labels simply never activate).
// Deterministic: ties break by (distance, cluster root id, node id).
GreedyResult GluttonousSteinerForest(const Graph& g, const IcInstance& ic,
                                     const GreedyOptions& options = {});

}  // namespace dsf
