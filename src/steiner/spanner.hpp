// Greedy metric spanner.
//
// Substitute for the spanner machinery of [17] (Lenzen & Patt-Shamir,
// STOC'13) that the randomized algorithm's second stage invokes to solve the
// F-reduced instance (Lemma G.15): a greedy (2k-1)-spanner of the
// super-terminal metric has stretch 2k-1 and O(m^{1+1/k}) edges; with
// k = ceil(log2 m) the stretch is O(log m) and the size is O(m), exactly the
// properties the paper's analysis uses. See DESIGN.md "Substitutions".
#pragma once

#include <vector>

#include "common/ids.hpp"

namespace dsf {

struct MetricSpannerEdge {
  int a = 0;
  int b = 0;
  Weight w = 0;
};

// Builds a greedy (2k-1)-spanner of the complete graph on m points whose
// pairwise distances are given by `dist` (an m x m symmetric matrix).
// Pairs at distance >= kInfWeight are treated as absent.
std::vector<MetricSpannerEdge> GreedyMetricSpanner(
    const std::vector<std::vector<Weight>>& dist, int stretch_k);

// Stretch of the spanner w.r.t. the metric: max over pairs of
// (spanner distance) / (metric distance). Returns 1.0 for m <= 1.
double SpannerStretch(const std::vector<std::vector<Weight>>& dist,
                      const std::vector<MetricSpannerEdge>& spanner);

}  // namespace dsf
