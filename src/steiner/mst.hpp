// Minimum spanning tree (Kruskal) — baseline and special-case oracle.
//
// The paper notes (Section 1, "Main Techniques") that for k = 1 the moat
// algorithm specializes to an MST of the terminal metric, and for the MST
// problem proper (t = n, k = 1) it returns an exact MST. The benchmark
// bench_mst_special verifies both against this implementation.
#pragma once

#include <vector>

#include "common/cancel.hpp"
#include "graph/graph.hpp"

namespace dsf {

// Edge ids of a minimum spanning forest of g (deterministic tie-breaking by
// edge id). Heap-based with early exit: stops after n-1 unions without
// ordering the rest of the edge list. An expired `cancel` token stops the
// pop loop within ~4096 edges and returns the partial forest.
std::vector<EdgeId> KruskalMst(const Graph& g,
                               const CancelToken* cancel = nullptr);

// Total weight of the minimum spanning forest.
Weight MstWeight(const Graph& g);

}  // namespace dsf
