#include "steiner/validate.hpp"

#include <map>
#include <sstream>

#include "graph/union_find.hpp"

namespace dsf {

namespace {

UnionFind BuildUf(const Graph& g, std::span<const EdgeId> f) {
  UnionFind uf(g.NumNodes());
  for (const EdgeId id : f) {
    const auto& e = g.GetEdge(id);
    uf.Union(e.u, e.v);
  }
  return uf;
}

}  // namespace

bool IsFeasible(const Graph& g, const IcInstance& ic, std::span<const EdgeId> f) {
  return FeasibilityDiagnostic(g, ic, f).empty();
}

std::string FeasibilityDiagnostic(const Graph& g, const IcInstance& ic,
                                  std::span<const EdgeId> f) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  UnionFind uf = BuildUf(g, f);
  std::map<Label, NodeId> representative;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const Label l = ic.LabelOf(v);
    if (l == kNoLabel) continue;
    auto [it, inserted] = representative.try_emplace(l, v);
    if (!inserted && !uf.Connected(it->second, v)) {
      std::ostringstream os;
      os << "terminals " << it->second << " and " << v << " of component " << l
         << " are not connected by F";
      return os.str();
    }
  }
  return {};
}

bool IsFeasibleCr(const Graph& g, const CrInstance& cr,
                  std::span<const EdgeId> f) {
  DSF_CHECK(cr.NumNodes() == g.NumNodes());
  UnionFind uf = BuildUf(g, f);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const NodeId w : cr.requests[static_cast<std::size_t>(v)]) {
      if (!uf.Connected(v, w)) return false;
    }
  }
  return true;
}

bool IsMinimalFeasible(const Graph& g, const IcInstance& ic,
                       std::span<const EdgeId> f) {
  if (!IsFeasible(g, ic, f)) return false;
  std::vector<EdgeId> reduced(f.begin(), f.end());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    std::vector<EdgeId> without = reduced;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    if (IsFeasible(g, ic, without)) return false;
  }
  return true;
}

}  // namespace dsf
