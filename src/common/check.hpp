// Lightweight invariant checking that stays on in release builds.
//
// Distributed protocols are state machines with many subtle invariants; we
// prefer loudly failing over silently diverging from the paper's semantics.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dsf {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace dsf

#define DSF_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::dsf::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define DSF_CHECK_MSG(expr, msg)                                \
  do {                                                          \
    if (!(expr)) {                                              \
      std::ostringstream dsf_check_os;                          \
      dsf_check_os << msg;                                      \
      ::dsf::CheckFailed(__FILE__, __LINE__, #expr,             \
                         dsf_check_os.str());                   \
    }                                                           \
  } while (0)
