// Fundamental scalar types shared by every module.
//
// The paper works with a weighted graph G = (V, E, W), W : E -> N with weights
// polynomially bounded in n; we use 64-bit integers for weights and derived
// sums, and `Real` (x86-64 extended precision) for moat radii / event times,
// which are dyadic rationals and hence exactly representable at the instance
// sizes this library targets (see DESIGN.md §8).
#pragma once

#include <cstdint>
#include <limits>

namespace dsf {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::int64_t;
using Label = std::int32_t;  // input-component identifier; kNoLabel == "⊥"
using Real = long double;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;
inline constexpr Label kNoLabel = -1;
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::max() / 4;
inline constexpr Real kInfReal = std::numeric_limits<Real>::max() / 4;

}  // namespace dsf
