// Shared non-cryptographic hashing.
//
// Every place the library turns structured data into a 64-bit digest — seed
// derivation (common/random.*), the service layer's canonical instance
// hashing (serve/cache.*), and hash-container key scrambling
// (congest/protocols.hpp) — goes through these two primitives instead of
// ad-hoc mixing:
//
//   * `Mix64`: the SplitMix64 finalizer, a full-avalanche bijection on
//     64-bit words. Cheap enough for per-element container hashing, strong
//     enough that sequential ids do not collide into the same buckets.
//   * `Fnv1a`: streaming FNV-1a over bytes/words for variable-length
//     structures (graphs, instances, option blocks). Callers that need a
//     wider key hash twice with different offset bases (see serve/cache.*).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dsf {

// SplitMix64's golden-gamma increment; exposed so seed-sequence code
// (common/random.*) and hashing agree on one constant.
inline constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

// SplitMix64 finalizer (Stafford's Mix13 variant): bijective, full
// avalanche — flipping any input bit flips each output bit with
// probability ~1/2.
[[nodiscard]] constexpr std::uint64_t Mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Folds `v` into an accumulated digest (boost::hash_combine shape with the
// stronger Mix64 scramble).
[[nodiscard]] constexpr std::uint64_t HashCombine(std::uint64_t seed,
                                                  std::uint64_t v) noexcept {
  return Mix64(seed ^ (Mix64(v) + kGoldenGamma + (seed << 6) + (seed >> 2)));
}

// Streaming 64-bit FNV-1a. Word updates hash the value's 8 little-endian
// bytes, so digests are independent of host byte order semantics (we only
// ever hash values, not memory images).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr Fnv1a() noexcept = default;
  constexpr explicit Fnv1a(std::uint64_t offset) noexcept : state_(offset) {}

  constexpr Fnv1a& Byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  constexpr Fnv1a& U64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) Byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  constexpr Fnv1a& I64(std::int64_t v) noexcept {
    return U64(static_cast<std::uint64_t>(v));
  }

  constexpr Fnv1a& Bytes(std::string_view s) noexcept {
    for (const char c : s) Byte(static_cast<std::uint8_t>(c));
    return *this;
  }

  // Raw FNV state. Pass through Mix64 when the digest keys a power-of-two
  // bucket table (FNV's low bits are its weakest).
  [[nodiscard]] constexpr std::uint64_t Digest() const noexcept {
    return state_;
  }
  [[nodiscard]] constexpr std::uint64_t MixedDigest() const noexcept {
    return Mix64(state_);
  }

 private:
  std::uint64_t state_ = kOffset;
};

// Hash functor for unordered containers keyed by integral ids. libstdc++'s
// std::hash<int> is the identity, which makes bucket occupancy mirror the
// key distribution; routing through Mix64 decorrelates them.
struct IdHash {
  [[nodiscard]] std::size_t operator()(std::uint64_t v) const noexcept {
    return static_cast<std::size_t>(Mix64(v));
  }
  [[nodiscard]] std::size_t operator()(std::int64_t v) const noexcept {
    return static_cast<std::size_t>(Mix64(static_cast<std::uint64_t>(v)));
  }
  [[nodiscard]] std::size_t operator()(std::int32_t v) const noexcept {
    return static_cast<std::size_t>(Mix64(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(v))));
  }
};

}  // namespace dsf
