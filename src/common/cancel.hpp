// Cooperative cancellation for the solve pipeline (DESIGN.md §3 "Portfolio
// racing & cancellation").
//
// A CancelToken is a thread-safe "stop asking for more work" signal: racers
// poll `Expired()` at their natural checkpoints (the simulator between
// rounds, sequential solvers at phase boundaries / every few thousand heap
// pops) and wind down early when it fires. It never interrupts anything —
// a solver observing an expired token returns whatever partial output it
// has, and the pipeline reports the result as cancelled instead of
// validating a half-built forest as feasible.
//
// Tokens compose: a deadline (`SetDeadlineAfterMs`) arms a steady-clock
// expiry, `Cancel()` fires immediately (the portfolio's loser kill), and a
// parent pointer chains an inner token to an outer one (a portfolio member
// expires when either its own race is decided or the whole solve's deadline
// passes). Flag and deadline are atomics so any number of racers may poll
// while one coordinator fires; the parent link must be set before the token
// is shared.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace dsf {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Fires the token immediately. Thread-safe, idempotent.
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  // Arms (or re-arms) the deadline `ms` milliseconds from now; ms <= 0
  // disarms. Thread-safe, but normally called once before sharing.
  void SetDeadlineAfterMs(long ms) noexcept {
    if (ms <= 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    deadline_ns_.store(now_ns + ms * 1'000'000, std::memory_order_relaxed);
  }

  // Chains this token below `parent`: Expired() also reports true once the
  // parent expires. Must be set before the token is shared across threads.
  void SetParent(const CancelToken* parent) noexcept { parent_ = parent; }

  // True once cancelled, past the deadline, or the parent expired. The
  // deadline branch reads the clock, so poll at checkpoint granularity
  // (between rounds / phases), not per element.
  [[nodiscard]] bool Expired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != 0) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
          d) {
        return true;
      }
    }
    return parent_ != nullptr && parent_->Expired();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // steady-clock ns; 0 = unarmed
  const CancelToken* parent_ = nullptr;       // set before sharing
};

// Null-safe poll helper for the `const CancelToken*` knobs threaded through
// options structs.
[[nodiscard]] inline bool IsCancelled(const CancelToken* token) noexcept {
  return token != nullptr && token->Expired();
}

}  // namespace dsf
