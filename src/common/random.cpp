#include "common/random.hpp"

#include <vector>

namespace dsf {

std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index) noexcept {
  // Historically the second SplitMix64 output of a decorrelated state; kept
  // bit-for-bit (every recorded workload depends on it) but expressed via
  // the shared avalanche: output #2 is Mix64(state + 2·gamma).
  const std::uint64_t state =
      master ^ (0x517cc1b727220a95ULL + index * 0x2545f4914f6cdd1dULL);
  return Mix64(state + 2 * kGoldenGamma);
}

std::vector<NodeId> RandomPermutation(int n, SplitMix64& rng) {
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace dsf
