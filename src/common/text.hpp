// Shared line reading for every text-format parser (workload specs,
// SteinLib/DIMACS imports, the wire protocol).
//
// All of the repo's formats are line-oriented; files and protocol payloads
// authored on Windows (or sent by CRLF-framing clients) terminate lines
// with "\r\n". std::getline leaves the '\r' on the line, where it would
// ride along inside the last token of the line. Every parser reads through
// `ReadLine`, which strips it exactly once, at the framing layer.
#pragma once

#include <istream>
#include <string>
#include <string_view>

namespace dsf {

// std::getline with the trailing carriage return (if any) removed. Returns
// false at end of input, like the getline it wraps.
inline bool ReadLine(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

// The same strip for callers that frame lines themselves (the socket
// server splits its receive buffer on '\n' without an istream).
[[nodiscard]] inline std::string_view StripCr(std::string_view line) noexcept {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace dsf
