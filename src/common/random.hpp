// Seeded, reproducible randomness.
//
// The CONGEST model grants each node an unlimited supply of independent random
// bits; we derive per-node streams from a master seed via SplitMix64 so that
// every experiment is bit-reproducible (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/ids.hpp"

namespace dsf {

// SplitMix64: tiny, high-quality mixer; used both as a standalone generator
// and to derive independent seeds for per-node engines. The output function
// is the shared Mix64 avalanche (common/hash.hpp) over a golden-gamma
// counter.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t Next() noexcept { return Mix64(state_ += kGoldenGamma); }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for bound << 2^64 and irrelevant to correctness.
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double NextDouble() noexcept {  // uniform in [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Derives a deterministic per-entity seed from a master seed and an index.
std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index) noexcept;

// Generates a uniformly random permutation of {0, ..., n-1} (used for node
// ranks in the randomized algorithm's virtual-tree embedding).
std::vector<NodeId> RandomPermutation(int n, SplitMix64& rng);

}  // namespace dsf
