#include "congest/network.hpp"

#include <algorithm>

namespace dsf {

namespace detail {

RoundPool::RoundPool(int threads) : executors_(threads) {
  // The calling thread participates in ParallelFor, so `threads` total
  // executors means threads - 1 workers.
  DSF_CHECK(threads >= 2);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RoundPool::~RoundPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void RoundPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    RunChunks();
  }
}

void RoundPool::RunChunks() {
  for (;;) {
    int lo = 0;
    int hi = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= total_) return;
      lo = next_;
      hi = std::min(total_, lo + chunk_);
      next_ = hi;
    }
    for (int i = lo; i < hi; ++i) {
      try {
        (*task_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ -= hi - lo;
      all_done = pending_ == 0 && next_ >= total_;
    }
    if (all_done) done_cv_.notify_all();
  }
}

void RoundPool::ParallelFor(int n, const std::function<void(int)>& task) {
  if (n <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    total_ = n;
    // ~4 claims per executor balances cursor contention against tail
    // imbalance; small n still splits so every executor can participate.
    chunk_ = std::max(1, n / (executors_ * 4));
    next_ = 0;
    pending_ = n;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  RunChunks();  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace detail

NodeApi::NodeApi(Network& net, NodeId id)
    : net_(net), id_(id), nb_(net.graph_.Neighbors(id)) {}

Weight NodeApi::EdgeWeight(int local) const {
  DSF_CHECK(local >= 0 && local < Degree());
  return net_.graph_.GetEdge(nb_[static_cast<std::size_t>(local)].edge).w;
}

const StaticKnowledge& NodeApi::Known() const noexcept { return net_.known_; }

long NodeApi::Round() const noexcept { return net_.round_; }

SplitMix64& NodeApi::Rng() noexcept {
  return *net_.nodes_[static_cast<std::size_t>(id_)].rng;
}

std::span<const Delivery> NodeApi::Inbox() const noexcept {
  return net_.nodes_[static_cast<std::size_t>(id_)].inbox;
}

void NodeApi::Send(int local, Message msg) {
  DSF_CHECK(local >= 0 && local < Degree());
  auto& st = net_.nodes_[static_cast<std::size_t>(id_)];
  // BFS-tree setup, the detector itself, and control broadcasts are
  // coordination scaffolding; "application activity" (what quiescence
  // detection watches) is everything else.
  if (msg.channel != kChQuiesce && msg.channel != kChBfs &&
      msg.channel != kChCtrl) {
    st.last_app_activity = net_.round_;
  }
  st.outbox.emplace_back(local, std::move(msg));
}

void NodeApi::MarkEdge(int local) {
  const EdgeId e = GlobalEdgeId(local);
  net_.nodes_[static_cast<std::size_t>(id_)].mark_ops.emplace_back(e, true);
}

void NodeApi::UnmarkEdge(int local) {
  const EdgeId e = GlobalEdgeId(local);
  net_.nodes_[static_cast<std::size_t>(id_)].mark_ops.emplace_back(e, false);
}

long NodeApi::LastAppActivity() const noexcept {
  return net_.nodes_[static_cast<std::size_t>(id_)].last_app_activity;
}

void NodeApi::NotePhases(long phases) {
  net_.nodes_[static_cast<std::size_t>(id_)].phase_delta += phases;
}

Network::Network(const Graph& g, StaticKnowledge known, std::uint64_t seed,
                 NetworkOptions options)
    : graph_(g), known_(known), seed_(seed), options_(options) {
  DSF_CHECK(g.Finalized());
  if (known_.n == 0) known_.n = g.NumNodes();
  if (known_.bandwidth_bits == 0) {
    // Default bandwidth: c * ceil(log2 n) with a small constant, min 64 bits,
    // matching CONGEST(log n) up to the constant hidden in O(log n). The
    // shift runs in 64-bit so huge n cannot overflow a plain int.
    std::int64_t log_n = 1;
    while ((std::int64_t{1} << log_n) < static_cast<std::int64_t>(known_.n)) {
      ++log_n;
    }
    known_.bandwidth_bits = std::max<std::int64_t>(64, 8 * log_n);
  }
  nodes_.resize(static_cast<std::size_t>(g.NumNodes()));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    nodes_[static_cast<std::size_t>(v)].rng = std::make_unique<SplitMix64>(
        DeriveSeed(seed_, static_cast<std::uint64_t>(v)));
  }
  in_cut_.assign(static_cast<std::size_t>(g.NumEdges()), false);
  marked_.assign(static_cast<std::size_t>(g.NumEdges()), false);
  edge_bits_.assign(static_cast<std::size_t>(g.NumEdges()) * 2, 0);
  touched_dirs_.reserve(64);
  receivers_.reserve(static_cast<std::size_t>(g.NumNodes()));

  int threads = options_.threads;
  if (threads == 0) {
    // Auto: a pool only pays off when a round has enough nodes to amortize
    // the per-round wakeup; small graphs run inline. An explicit
    // threads >= 2 is always honored (the golden tests force the pool on).
    if (g.NumNodes() >= detail::RoundPool::kAutoMinNodes) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = static_cast<int>(std::min(hw, 8u));
    } else {
      threads = 1;
    }
  }
  // A pool below two executors cannot beat the inline loop.
  if (threads >= 2 && g.NumNodes() >= 2) {
    pool_ = std::make_unique<detail::RoundPool>(threads);
  }
}

Network::~Network() = default;

void Network::Start(const ProgramFactory& factory) {
  programs_.clear();
  programs_.reserve(static_cast<std::size_t>(graph_.NumNodes()));
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    programs_.push_back(factory(v));
    DSF_CHECK(programs_.back() != nullptr);
  }
}

void Network::RegisterCut(std::span<const EdgeId> cut_edges) {
  for (const EdgeId e : cut_edges) {
    DSF_CHECK(e >= 0 && e < graph_.NumEdges());
    in_cut_[static_cast<std::size_t>(e)] = true;
  }
}

void Network::TickNode(NodeId v) {
  auto& st = nodes_[static_cast<std::size_t>(v)];
  auto& program = *programs_[static_cast<std::size_t>(v)];
  // Active-set scheduling: an idle program (empty inbox, !WantsTick) is
  // skipped; by the WantsTick contract its OnRound would have been a no-op.
  if (options_.active_set && st.inbox.empty() && !program.WantsTick()) return;
  NodeApi api(*this, v);
  program.OnRound(api);
}

void Network::ApplyDeferredEffects() {
  // Marked-edge and phase effects are applied in node order regardless of
  // which thread ran the node, reproducing the sequential schedule bit for
  // bit (the §8 determinism contract).
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    auto& st = nodes_[static_cast<std::size_t>(v)];
    if (!st.mark_ops.empty()) {
      for (const auto& [e, on] : st.mark_ops) {
        marked_[static_cast<std::size_t>(e)] = on;
      }
      st.mark_ops.clear();
    }
    if (st.phase_delta != 0) {
      stats_.phases += st.phase_delta;
      st.phase_delta = 0;
    }
  }
}

bool Network::Step() {
  DSF_CHECK_MSG(!programs_.empty(), "Start() must be called before Step()");

  // (i) + (ii): local computation and sends. OnRound touches only the node's
  // own NodeState (inbox read, outbox append, RNG); cross-node effects are
  // deferred, so the loop is safe to run concurrently.
  const int n = graph_.NumNodes();
  if (pool_ != nullptr) {
    pool_->ParallelFor(n, [this](int v) { TickNode(static_cast<NodeId>(v)); });
  } else {
    for (NodeId v = 0; v < n; ++v) TickNode(v);
  }
  ApplyDeferredEffects();

  // (iii): deliver, serially in node order. Inboxes consumed this round are
  // recycled first (capacity is retained, so the steady state allocates
  // nothing); per-edge bandwidth accounting goes through the persistent
  // edge_bits_ buffer and the touched-directed-edge dirty list.
  for (const NodeId v : receivers_) {
    nodes_[static_cast<std::size_t>(v)].inbox.clear();
  }
  receivers_.clear();
  long delivered = 0;
  for (NodeId v = 0; v < n; ++v) {
    auto& st = nodes_[static_cast<std::size_t>(v)];
    if (st.outbox.empty()) continue;
    const auto nb = graph_.Neighbors(v);
    const auto mirrors = graph_.MirrorLocals(v);
    for (auto& [local, msg] : st.outbox) {
      const auto& inc = nb[static_cast<std::size_t>(local)];
      const auto bits = static_cast<long>(msg.BitSize());
      const auto& e = graph_.GetEdge(inc.edge);
      const std::size_t dir_idx =
          static_cast<std::size_t>(inc.edge) * 2 + (v == e.u ? 0 : 1);
      if (edge_bits_[dir_idx] == 0) touched_dirs_.push_back(dir_idx);
      edge_bits_[dir_idx] += bits;
      stats_.total_bits += bits;
      ++stats_.messages;
      if (in_cut_[static_cast<std::size_t>(inc.edge)]) {
        stats_.cut_bits += bits;
        ++stats_.cut_messages;
      }
      auto& dst = nodes_[static_cast<std::size_t>(inc.neighbor)];
      // Receiving application traffic counts as activity in the round the
      // message is processed (the next one).
      if (msg.channel != kChQuiesce && msg.channel != kChBfs &&
          msg.channel != kChCtrl) {
        dst.last_app_activity = round_ + 1;
      }
      // The receiver-side local index is the precomputed mirror of ours.
      const int from_local =
          static_cast<int>(mirrors[static_cast<std::size_t>(local)]);
      if (dst.inbox.empty()) receivers_.push_back(inc.neighbor);
      dst.inbox.push_back(Delivery{from_local, v, std::move(msg)});
      ++delivered;
    }
    st.outbox.clear();
  }
  for (const std::size_t dir : touched_dirs_) {
    stats_.max_bits_per_edge_round =
        std::max(stats_.max_bits_per_edge_round, edge_bits_[dir]);
    edge_bits_[dir] = 0;
  }
  touched_dirs_.clear();
  in_flight_ = delivered;
  ++round_;
  stats_.rounds = round_;

  // Finished?
  if (in_flight_ > 0) return true;
  for (const auto& p : programs_) {
    if (!p->Done()) return true;
  }
  return false;
}

RunStats Network::Run(long max_rounds) {
  while (round_ < max_rounds) {
    if (!Step()) return stats_;
  }
  stats_.hit_round_limit = true;
  return stats_;
}

std::vector<EdgeId> Network::MarkedEdges() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    if (marked_[static_cast<std::size_t>(e)]) out.push_back(e);
  }
  return out;
}

}  // namespace dsf
