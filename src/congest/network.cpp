#include "congest/network.hpp"

#include <algorithm>

namespace dsf {

NodeApi::NodeApi(Network& net, NodeId id) : net_(net), id_(id) {}

int NodeApi::Degree() const noexcept {
  return net_.graph_.Degree(id_);
}

NodeId NodeApi::NeighborId(int local) const {
  const auto nb = net_.graph_.Neighbors(id_);
  DSF_CHECK(local >= 0 && local < static_cast<int>(nb.size()));
  return nb[static_cast<std::size_t>(local)].neighbor;
}

Weight NodeApi::EdgeWeight(int local) const {
  const auto nb = net_.graph_.Neighbors(id_);
  DSF_CHECK(local >= 0 && local < static_cast<int>(nb.size()));
  return net_.graph_.GetEdge(nb[static_cast<std::size_t>(local)].edge).w;
}

EdgeId NodeApi::GlobalEdgeId(int local) const {
  const auto nb = net_.graph_.Neighbors(id_);
  DSF_CHECK(local >= 0 && local < static_cast<int>(nb.size()));
  return nb[static_cast<std::size_t>(local)].edge;
}

const StaticKnowledge& NodeApi::Known() const noexcept { return net_.known_; }

long NodeApi::Round() const noexcept { return net_.round_; }

SplitMix64& NodeApi::Rng() noexcept {
  return *net_.nodes_[static_cast<std::size_t>(id_)].rng;
}

std::span<const Delivery> NodeApi::Inbox() const noexcept {
  return net_.nodes_[static_cast<std::size_t>(id_)].inbox;
}

void NodeApi::Send(int local, Message msg) {
  DSF_CHECK(local >= 0 && local < Degree());
  auto& st = net_.nodes_[static_cast<std::size_t>(id_)];
  // BFS-tree setup, the detector itself, and control broadcasts are
  // coordination scaffolding; "application activity" (what quiescence
  // detection watches) is everything else.
  if (msg.channel != kChQuiesce && msg.channel != kChBfs &&
      msg.channel != kChCtrl) {
    st.last_app_activity = net_.round_;
  }
  st.outbox.emplace_back(local, std::move(msg));
}

void NodeApi::MarkEdge(int local) {
  const EdgeId e = GlobalEdgeId(local);
  net_.marked_[static_cast<std::size_t>(e)] = true;
}

void NodeApi::UnmarkEdge(int local) {
  const EdgeId e = GlobalEdgeId(local);
  net_.marked_[static_cast<std::size_t>(e)] = false;
}

long NodeApi::LastAppActivity() const noexcept {
  return net_.nodes_[static_cast<std::size_t>(id_)].last_app_activity;
}

void NodeApi::NotePhases(long phases) { net_.stats_.phases += phases; }

Network::Network(const Graph& g, StaticKnowledge known, std::uint64_t seed)
    : graph_(g), known_(known), seed_(seed) {
  DSF_CHECK(g.Finalized());
  if (known_.n == 0) known_.n = g.NumNodes();
  if (known_.bandwidth_bits == 0) {
    // Default bandwidth: c * ceil(log2 n) with a small constant, min 64 bits,
    // matching CONGEST(log n) up to the constant hidden in O(log n).
    int log_n = 1;
    while ((1 << log_n) < known_.n) ++log_n;
    known_.bandwidth_bits = std::max<std::int64_t>(64, 8L * log_n);
  }
  nodes_.resize(static_cast<std::size_t>(g.NumNodes()));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    nodes_[static_cast<std::size_t>(v)].rng = std::make_unique<SplitMix64>(
        DeriveSeed(seed_, static_cast<std::uint64_t>(v)));
  }
  in_cut_.assign(static_cast<std::size_t>(g.NumEdges()), false);
  marked_.assign(static_cast<std::size_t>(g.NumEdges()), false);
}

void Network::Start(const ProgramFactory& factory) {
  programs_.clear();
  programs_.reserve(static_cast<std::size_t>(graph_.NumNodes()));
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    programs_.push_back(factory(v));
    DSF_CHECK(programs_.back() != nullptr);
  }
}

void Network::RegisterCut(std::span<const EdgeId> cut_edges) {
  for (const EdgeId e : cut_edges) {
    DSF_CHECK(e >= 0 && e < graph_.NumEdges());
    in_cut_[static_cast<std::size_t>(e)] = true;
  }
}

bool Network::Step() {
  DSF_CHECK_MSG(!programs_.empty(), "Start() must be called before Step()");

  // (i) + (ii): local computation and sends.
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    NodeApi api(*this, v);
    programs_[static_cast<std::size_t>(v)]->OnRound(api);
  }

  // (iii): deliver. Also account bandwidth per directed edge use.
  // Per-edge-per-round bits, indexed by (edge, direction).
  std::vector<long> edge_bits(static_cast<std::size_t>(graph_.NumEdges()) * 2, 0);
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    auto& st = nodes_[static_cast<std::size_t>(v)];
    st.inbox.clear();
  }
  long delivered = 0;
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    auto& st = nodes_[static_cast<std::size_t>(v)];
    if (st.outbox.empty()) continue;
    const auto nb = graph_.Neighbors(v);
    for (auto& [local, msg] : st.outbox) {
      const auto& inc = nb[static_cast<std::size_t>(local)];
      const auto bits = static_cast<long>(msg.BitSize());
      const auto& e = graph_.GetEdge(inc.edge);
      const std::size_t dir_idx =
          static_cast<std::size_t>(inc.edge) * 2 + (v == e.u ? 0 : 1);
      edge_bits[dir_idx] += bits;
      stats_.total_bits += bits;
      ++stats_.messages;
      if (in_cut_[static_cast<std::size_t>(inc.edge)]) {
        stats_.cut_bits += bits;
        ++stats_.cut_messages;
      }
      auto& dst = nodes_[static_cast<std::size_t>(inc.neighbor)];
      // Receiving application traffic counts as activity in the round the
      // message is processed (the next one).
      if (msg.channel != kChQuiesce && msg.channel != kChBfs &&
          msg.channel != kChCtrl) {
        dst.last_app_activity = round_ + 1;
      }
      // Locate the reverse local index lazily: receiver's incidence entry
      // with this edge id.
      int from_local = -1;
      const auto rnb = graph_.Neighbors(inc.neighbor);
      for (int i = 0; i < static_cast<int>(rnb.size()); ++i) {
        if (rnb[static_cast<std::size_t>(i)].edge == inc.edge) {
          from_local = i;
          break;
        }
      }
      dst.inbox.push_back(Delivery{from_local, v, std::move(msg)});
      ++delivered;
    }
    st.outbox.clear();
  }
  for (const long b : edge_bits) {
    stats_.max_bits_per_edge_round = std::max(stats_.max_bits_per_edge_round, b);
  }
  in_flight_ = delivered;
  ++round_;
  stats_.rounds = round_;

  // Finished?
  if (in_flight_ > 0) return true;
  for (const auto& p : programs_) {
    if (!p->Done()) return true;
  }
  return false;
}

RunStats Network::Run(long max_rounds) {
  while (round_ < max_rounds) {
    if (!Step()) return stats_;
  }
  stats_.hit_round_limit = true;
  return stats_;
}

std::vector<EdgeId> Network::MarkedEdges() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    if (marked_[static_cast<std::size_t>(e)]) out.push_back(e);
  }
  return out;
}

}  // namespace dsf
