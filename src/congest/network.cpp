#include "congest/network.hpp"

#include <algorithm>
#include <bit>

namespace dsf {

namespace detail {

RoundPool::RoundPool(int threads) : executors_(threads) {
  // The calling thread participates in ParallelFor, so `threads` total
  // executors means threads - 1 workers. Executor 0 is the calling thread;
  // workers are 1..threads-1.
  DSF_CHECK(threads >= 2);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

RoundPool::~RoundPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void RoundPool::WorkerLoop(int executor) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    RunChunks(executor);
  }
}

void RoundPool::RunChunks(int executor) {
  for (;;) {
    int lo = 0;
    int hi = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= total_) return;
      lo = next_;
      hi = std::min(total_, lo + chunk_);
      next_ = hi;
    }
    for (int i = lo; i < hi; ++i) {
      try {
        (*task_)(i, executor);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ -= hi - lo;
      all_done = pending_ == 0 && next_ >= total_;
    }
    if (all_done) done_cv_.notify_all();
  }
}

void RoundPool::ParallelFor(int n, const std::function<void(int, int)>& task) {
  if (n <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    total_ = n;
    // ~4 claims per executor balances cursor contention against tail
    // imbalance; small n still splits so every executor can participate.
    chunk_ = std::max(1, n / (executors_ * 4));
    next_ = 0;
    pending_ = n;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  RunChunks(0);  // the calling thread participates as executor 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace detail

namespace {

inline void SetBit(std::vector<std::uint64_t>& bits, NodeId v) {
  bits[static_cast<std::size_t>(v) >> 6] |= std::uint64_t{1} << (v & 63);
}

}  // namespace

NodeApi::NodeApi(Network& net, NodeId id, int executor)
    : net_(net),
      id_(id),
      executor_(executor),
      slot_base_(static_cast<std::uint32_t>(net.graph_.IncidenceBase(id))),
      nb_(net.graph_.Neighbors(id)) {}

Weight NodeApi::EdgeWeight(int local) const {
  DSF_CHECK(local >= 0 && local < Degree());
  return net_.graph_.GetEdge(nb_[static_cast<std::size_t>(local)].edge).w;
}

const StaticKnowledge& NodeApi::Known() const noexcept { return net_.known_; }

long NodeApi::Round() const noexcept { return net_.round_; }

SplitMix64& NodeApi::Rng() noexcept {
  return *net_.nodes_[static_cast<std::size_t>(id_)].rng;
}

void NodeApi::MarkEdge(int local) {
  const EdgeId e = GlobalEdgeId(local);
  auto& st = net_.nodes_[static_cast<std::size_t>(id_)];
  net_.NoteEffects(st, id_, executor_);
  st.mark_ops.emplace_back(e, true);
}

void NodeApi::UnmarkEdge(int local) {
  const EdgeId e = GlobalEdgeId(local);
  auto& st = net_.nodes_[static_cast<std::size_t>(id_)];
  net_.NoteEffects(st, id_, executor_);
  st.mark_ops.emplace_back(e, false);
}

long NodeApi::LastAppActivity() const noexcept {
  return net_.last_app_[static_cast<std::size_t>(id_)];
}

void NodeApi::NotePhases(long phases) {
  auto& st = net_.nodes_[static_cast<std::size_t>(id_)];
  net_.NoteEffects(st, id_, executor_);
  st.phase_delta += phases;
}

Network::Network(const Graph& g, StaticKnowledge known, std::uint64_t seed,
                 NetworkOptions options)
    : graph_(g), known_(known), seed_(seed), options_(options) {
  DSF_CHECK(g.Finalized());
  if (known_.n == 0) known_.n = g.NumNodes();
  if (known_.bandwidth_bits == 0) {
    // Default bandwidth: c * ceil(log2 n) with a small constant, min 64 bits,
    // matching CONGEST(log n) up to the constant hidden in O(log n). The
    // shift runs in 64-bit so huge n cannot overflow a plain int.
    std::int64_t log_n = 1;
    while ((std::int64_t{1} << log_n) < static_cast<std::int64_t>(known_.n)) {
      ++log_n;
    }
    known_.bandwidth_bits = std::max<std::int64_t>(64, 8 * log_n);
  }
  const auto n = static_cast<std::size_t>(g.NumNodes());
  nodes_.resize(n);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    nodes_[static_cast<std::size_t>(v)].rng = std::make_unique<SplitMix64>(
        DeriveSeed(seed_, static_cast<std::uint64_t>(v)));
  }
  in_cut_.assign(static_cast<std::size_t>(g.NumEdges()), false);
  marked_.assign(static_cast<std::size_t>(g.NumEdges()), false);
  edge_bits_.assign(static_cast<std::size_t>(g.NumEdges()) * 2, 0);
  out_ref_.assign(n, OutRef{});
  senders_.reserve(n);
  in_off_.assign(n, 0);
  in_len_.assign(n, 0);
  in_cur_.assign(n, 0);
  last_app_.assign(n, -1);
  receivers_.reserve(n);
  in_cnt_.assign(n, 0);
  next_receivers_.reserve(n);
  const std::size_t words = (n + 63) / 64;
  recv_bits_.assign(words, 0);
  wants_bits_.assign(words, 0);
  tick_bits_.assign(words, 0);
  if (!options_.active_set) {
    // Without active-set scheduling every node ticks every round: the tick
    // bitset is constant all-ones (masked to n) and never recomposed.
    for (std::size_t w = 0; w < words; ++w) tick_bits_[w] = ~std::uint64_t{0};
    if (n % 64 != 0 && words > 0) {
      tick_bits_[words - 1] = (std::uint64_t{1} << (n % 64)) - 1;
    }
  }

  int threads = options_.threads;
  if (threads == 0) {
    // Auto: a pool only pays off when a round has enough nodes to amortize
    // the per-round wakeup; small graphs run inline. An explicit
    // threads >= 2 is always honored (the golden tests force the pool on).
    if (g.NumNodes() >= detail::RoundPool::kAutoMinNodes) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = static_cast<int>(std::min(hw, 8u));
    } else {
      threads = 1;
    }
  }
  // A pool below two executors cannot beat the inline loop.
  if (threads >= 2 && g.NumNodes() >= 2) {
    pool_ = std::make_unique<detail::RoundPool>(threads);
  }
  fused_ = pool_ == nullptr;
  send_arenas_.resize(pool_ ? static_cast<std::size_t>(pool_->Executors()) : 1);
  fields_cur_.assign(send_arenas_.size(), 0);
  effect_nodes_.resize(send_arenas_.size());
}

Network::~Network() = default;

void Network::Start(const ProgramFactory& factory) {
  programs_.clear();
  programs_.reserve(static_cast<std::size_t>(graph_.NumNodes()));
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    programs_.push_back(factory(v));
    DSF_CHECK(programs_.back() != nullptr);
  }
  if (options_.active_set) {
    // Seed the cached WantsTick bits. Program state only changes inside
    // OnRound, so each bit stays valid until its node is next ticked.
    std::fill(wants_bits_.begin(), wants_bits_.end(), 0);
    for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
      if (programs_[static_cast<std::size_t>(v)]->WantsTick()) {
        SetBit(wants_bits_, v);
      }
    }
  }
}

void Network::RegisterCut(std::span<const EdgeId> cut_edges) {
  for (const EdgeId e : cut_edges) {
    DSF_CHECK(e >= 0 && e < graph_.NumEdges());
    in_cut_[static_cast<std::size_t>(e)] = true;
    has_cut_ = true;
  }
}

void Network::TickWord(int word, int executor) {
  std::uint64_t bits = tick_bits_[static_cast<std::size_t>(word)];
  if (bits == 0) return;
  const bool track = options_.active_set;
  std::uint64_t wants = track ? wants_bits_[static_cast<std::size_t>(word)] : 0;
  const NodeId base = static_cast<NodeId>(word) * 64;
  while (bits != 0) {
    const int b = std::countr_zero(bits);
    bits &= bits - 1;
    const NodeId v = base + b;
    NodeApi api(*this, v, executor);
    programs_[static_cast<std::size_t>(v)]->OnRound(api);
    if (track) {
      // Refresh the cached bit: state can only have changed in this tick.
      const std::uint64_t mask = std::uint64_t{1} << b;
      if (programs_[static_cast<std::size_t>(v)]->WantsTick()) {
        wants |= mask;
      } else {
        wants &= ~mask;
      }
    }
  }
  // Words are never split across executors, so this store has one writer.
  if (track) wants_bits_[static_cast<std::size_t>(word)] = wants;
}

void Network::ApplyDeferredEffects() {
  // Marked-edge and phase effects are applied in node order regardless of
  // which thread ran the node, reproducing the sequential schedule bit for
  // bit (the §8 determinism contract). Only nodes that actually deferred an
  // effect are visited: each executor kept its own dirty list (raceless),
  // and sorting the merged list restores node order — rounds that defer
  // nothing (the common case) cost a handful of empty-list checks, not an
  // O(n) sweep over node state.
  effect_merge_.clear();
  for (auto& lst : effect_nodes_) {
    effect_merge_.insert(effect_merge_.end(), lst.begin(), lst.end());
    lst.clear();
  }
  if (effect_merge_.empty()) return;
  std::sort(effect_merge_.begin(), effect_merge_.end());
  for (const NodeId v : effect_merge_) {
    auto& st = nodes_[static_cast<std::size_t>(v)];
    st.effects_pending = false;
    if (!st.mark_ops.empty()) {
      for (const auto& [e, on] : st.mark_ops) {
        marked_[static_cast<std::size_t>(e)] = on;
      }
      st.mark_ops.clear();
    }
    if (st.phase_delta != 0) {
      stats_.phases += st.phase_delta;
      st.phase_delta = 0;
    }
  }
}

void Network::DeliverRound() {
  // Retire last round's inboxes: their spans were consumed by phase (i).
  // The receiver bitset is bulk-cleared word-wise; lengths are reset
  // through the receiver dirty list.
  for (const NodeId r : receivers_) {
    in_len_[static_cast<std::size_t>(r)] = 0;
  }
  receivers_.clear();
  std::fill(recv_bits_.begin(), recv_bits_.end(), 0);

  std::uint32_t acc = 0;
  if (fused_) {
    // Sequential fast path: Send() already ran the counting pass into the
    // next-round buffers (in_cnt_ / next_receivers_ / senders_), so
    // delivery is O(active) — prefix-sum the dirty receivers and fill in
    // the sender run lengths; no header re-scan, no O(n) out_ref_ sweep.
    for (const NodeId r : next_receivers_) {
      const auto ri = static_cast<std::size_t>(r);
      const std::uint32_t raw = in_cnt_[ri];
      const std::uint32_t cnt = raw & kCountMask;
      // Receiving application traffic counts as activity in the round the
      // message is processed (the next one).
      if (raw & kAppBit) last_app_[ri] = round_ + 1;
      in_off_[ri] = acc;
      in_cur_[ri] = acc;
      in_len_[ri] = cnt;
      acc += cnt;
      in_cnt_[ri] = 0;
      SetBit(recv_bits_, r);
    }
    receivers_.swap(next_receivers_);
    for (auto& s : senders_) {
      auto& ref = out_ref_[static_cast<std::size_t>(s.v)];
      s.count = ref.count;
      ref.count = 0;
    }
  } else {
    // Counting pass (headers only): walk senders in node order — the
    // determinism anchor — accumulating per-receiver counts. A receiver's
    // first message puts it on the dirty list and in the bitset.
    const int n = graph_.NumNodes();
    for (NodeId v = 0; v < n; ++v) {
      auto& ref = out_ref_[static_cast<std::size_t>(v)];
      if (ref.count == 0) continue;
      senders_.push_back(SenderRange{v, ref.arena, ref.begin, ref.count});
      const auto* h = send_arenas_[ref.arena].hdr.data() + ref.begin;
      for (std::uint32_t i = 0; i < ref.count; ++i) {
        const auto to = static_cast<std::size_t>(h[i].to);
        auto& cnt = in_len_[to];
        if ((cnt & kCountMask) == 0) {
          receivers_.push_back(h[i].to);
          SetBit(recv_bits_, h[i].to);
        }
        cnt = (cnt + 1) | (h[i].app != 0 ? kAppBit : 0);
      }
      ref.count = 0;
    }

    // Prefix sum: assign every receiver a contiguous span of the delivery
    // arena (discovery order; the spans are what Inbox() hands out, their
    // relative placement is irrelevant). The arena only grows, so the
    // steady state allocates nothing.
    for (const NodeId r : receivers_) {
      const auto ri = static_cast<std::size_t>(r);
      const std::uint32_t raw = in_len_[ri];
      const std::uint32_t cnt = raw & kCountMask;
      if (raw & kAppBit) last_app_[ri] = round_ + 1;
      in_len_[ri] = cnt;
      in_off_[ri] = acc;
      in_cur_[ri] = acc;
      acc += cnt;
    }
  }
  const std::size_t total = acc;
  if (arena_.size() < acc) arena_.resize(acc);
  const bool parallel_scatter = pool_ != nullptr && total >= kParallelScatterMin;
  if (parallel_scatter && scatter_src_.size() < total) {
    scatter_src_.resize(total);
    scatter_foff_.resize(total);
  }

  // Accounting + placement pass (headers only, serial, node order): per-slot
  // bandwidth via the persistent dirty-list buffer, cut metering, receiver
  // app-activity stamps, and each send's delivery-arena slot via the
  // counting-sort cursors. Walking senders in node order makes every
  // slot-indexed access (edge_bits_, mirrors) an ascending sweep, and drains
  // each arena's packed field pool front-to-back with a plain cursor.
  const auto slot_dirs = graph_.SlotDirs();
  const auto mirrors = graph_.SlotMirrors();
  for (auto& c : fields_cur_) c = 0;
  long total_bits = 0;
  long max_bits = stats_.max_bits_per_edge_round;
  for (const auto& s : senders_) {
    auto& arena = send_arenas_[s.arena];
    std::uint32_t foff = fields_cur_[s.arena];
    const std::uint32_t end = s.begin + s.count;
    for (std::uint32_t i = s.begin; i < end; ++i) {
      const detail::SendHeader& h = arena.hdr[i];
      // The delivery slot of header i+K is (approximately) its receiver's
      // current cursor; fetching that line ahead of time hides the L2 miss
      // the random counting-sort write would otherwise stall on.
      if (i + kScatterPrefetch < end) {
        const detail::SendHeader& hp = arena.hdr[i + kScatterPrefetch];
        __builtin_prefetch(
            arena_.data() + in_cur_[static_cast<std::size_t>(hp.to)], 1, 1);
      }
      // Bandwidth accumulates per sender-side incidence slot — a bijection
      // with (edge, direction), so the reported stats are unchanged.
      edge_bits_[h.slot] += h.bits;
      total_bits += h.bits;
      if (has_cut_ && in_cut_[slot_dirs[h.slot] >> 1]) {
        stats_.cut_bits += h.bits;
        ++stats_.cut_messages;
      }
      const std::uint32_t p = in_cur_[static_cast<std::size_t>(h.to)]++;
      if (parallel_scatter) {
        scatter_src_[p] = (static_cast<std::uint64_t>(s.arena) << 32) | i;
        scatter_foff_[p] = foff;
      } else {
        Delivery& d = arena_[p];
        d.from_local = mirrors[h.slot];
        d.from_node = h.from;
        d.msg.channel = h.channel;
        d.msg.fields.assign(arena.fields.data() + foff, h.fsize);
      }
      foff += h.fsize;
    }
    fields_cur_[s.arena] = foff;
    // Every slot this sender touched lies in its own incidence range, so
    // the per-edge-round maximum folds and the counters reset with one
    // contiguous sweep that stays in L1 — no global dirty list.
    const auto base = static_cast<std::size_t>(graph_.IncidenceBase(s.v));
    const std::size_t deg = graph_.Neighbors(s.v).size();
    for (std::size_t slot = base; slot < base + deg; ++slot) {
      if (edge_bits_[slot] != 0) {
        max_bits = std::max(max_bits, edge_bits_[slot]);
        edge_bits_[slot] = 0;
      }
    }
  }
  stats_.total_bits += total_bits;
  stats_.max_bits_per_edge_round = max_bits;
  stats_.messages += static_cast<long>(total);

  if (parallel_scatter) {
    // Payload scatter across the pool, partitioned by contiguous ranges of
    // the delivery arena — i.e. by receiver ranges, since each receiver's
    // span is contiguous — so executors write disjoint cache lines. The
    // placement is a fixed permutation, so the result is identical to the
    // serial scatter.
    const int blocks =
        static_cast<int>((total + kScatterBlock - 1) / kScatterBlock);
    pool_->ParallelFor(blocks, [&](int blk, int) {
      const std::size_t lo = static_cast<std::size_t>(blk) * kScatterBlock;
      const std::size_t hi = std::min(total, lo + kScatterBlock);
      for (std::size_t p = lo; p < hi; ++p) {
        const std::uint64_t src = scatter_src_[p];
        auto& arena = send_arenas_[src >> 32];
        const auto i = static_cast<std::uint32_t>(src);
        const detail::SendHeader& h = arena.hdr[i];
        Delivery& d = arena_[p];
        d.from_local = mirrors[h.slot];
        d.from_node = h.from;
        d.msg.channel = h.channel;
        d.msg.fields.assign(arena.fields.data() + scatter_foff_[p], h.fsize);
      }
    });
  }

  senders_.clear();
  for (auto& arena : send_arenas_) {
    arena.hdr.clear();
    arena.fields.clear();
  }
  in_flight_ = static_cast<long>(total);
}

bool Network::Step() {
  DSF_CHECK_MSG(!programs_.empty(), "Start() must be called before Step()");

  // (i) + (ii): local computation and sends, driven by the tick bitset.
  // OnRound touches only the node's own state (inbox span read, send-arena
  // append, RNG); cross-node effects are deferred, so words are safe to run
  // concurrently — an executor owns every node of a word, which also makes
  // it the sole writer of that word's cached WantsTick bits.
  const auto words = static_cast<int>(tick_bits_.size());
  if (options_.active_set) {
    for (int w = 0; w < words; ++w) {
      tick_bits_[static_cast<std::size_t>(w)] =
          recv_bits_[static_cast<std::size_t>(w)] |
          wants_bits_[static_cast<std::size_t>(w)];
    }
  }
  if (pool_ != nullptr) {
    pool_->ParallelFor(words,
                       [this](int w, int executor) { TickWord(w, executor); });
  } else {
    for (int w = 0; w < words; ++w) TickWord(w, 0);
  }
  ApplyDeferredEffects();

  // (iii): flatten this round's traffic into the delivery arena.
  DeliverRound();
  ++round_;
  stats_.rounds = round_;

  // Finished?
  if (in_flight_ > 0) return true;
  for (const auto& p : programs_) {
    if (!p->Done()) return true;
  }
  return false;
}

RunStats Network::Run(long max_rounds) {
  while (round_ < max_rounds) {
    // The round boundary is the simulator's cancellation checkpoint: a
    // cancelled run keeps every bit delivered so far (stats stay truthful)
    // but stops paying for rounds a portfolio loser no longer needs.
    if (options_.cancel != nullptr && options_.cancel->Expired()) {
      stats_.cancelled = true;
      return stats_;
    }
    if (!Step()) return stats_;
  }
  stats_.hit_round_limit = true;
  return stats_;
}

std::vector<EdgeId> Network::MarkedEdges() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    if (marked_[static_cast<std::size_t>(e)]) out.push_back(e);
  }
  return out;
}

}  // namespace dsf
