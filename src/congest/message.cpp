#include "congest/message.hpp"

// Message is header-only today; this translation unit pins the vtable-free
// type into the library and provides a home for future codec helpers.

namespace dsf {}  // namespace dsf
