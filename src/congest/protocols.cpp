#include "congest/protocols.hpp"

#include <algorithm>

namespace dsf {

namespace {

// BFS channel opcodes.
constexpr std::int64_t kBfsAnnounce = 1;
constexpr std::int64_t kBfsChildClaim = 2;

}  // namespace

void TreeProgramBase::OnRound(NodeApi& api) {
  if (done_) return;
  const long r = api.Round();
  const int n = api.Known().n;

  if (r == 0) {
    child_last_activity_.assign(static_cast<std::size_t>(api.Degree()), -1);
    if (id_ == n - 1) {
      // The node with the largest identifier roots the BFS tree (Lemma 2.3).
      is_root_ = true;
      depth_ = 0;
      announced_ = true;
      for (int i = 0; i < api.Degree(); ++i) {
        api.Send(i, Message{kChBfs, {kBfsAnnounce, 0}});
      }
    }
    if (n == 1) {
      is_root_ = true;
      depth_ = 0;
    }
  }

  HandleBfs(api);
  HandleDetector(api);
  HandleCtrl(api);

  if (!tree_ready_ && r >= api.Known().diameter_bound + 2) {
    DSF_CHECK_MSG(depth_ >= 0, "node " << id_ << " not reached by BFS tree; "
                                       << "graph disconnected or D bound wrong");
    tree_ready_ = true;
    OnTreeReady(api);
  }

  if (tree_ready_) {
    // Deliver at most one queued control message per round (pipelining).
    if (!ctrl_queue_.empty()) {
      Message msg = std::move(ctrl_queue_.front());
      ctrl_queue_.pop_front();
      for (const int c : child_locals_) api.Send(c, msg);
      if (!msg.fields.empty() && msg.fields[0] == kCtrlFinish) {
        finish_seen_ = true;
      }
      OnCtrl(api, msg);
    }
    OnAppRound(api);
    // Detector tick: report the subtree's latest activity when it changed.
    const long own = api.LastAppActivity();
    long subtree = std::max(subtree_last_activity_, own);
    for (const long c : child_last_activity_) subtree = std::max(subtree, c);
    subtree_last_activity_ = subtree;
    if (!is_root_ && subtree_last_activity_ != reported_last_activity_ &&
        parent_local_ >= 0) {
      reported_last_activity_ = subtree_last_activity_;
      api.Send(parent_local_, Message{kChQuiesce, {subtree_last_activity_}});
    }
  }

  if (finish_seen_ && ctrl_queue_.empty()) done_ = true;
}

void TreeProgramBase::HandleBfs(NodeApi& api) {
  // Adopt a parent on the first round any announcement arrives; among
  // same-round announcements choose the smallest sender id (deterministic).
  int best_local = -1;
  NodeId best_id = kNoNode;
  std::int64_t best_depth = 0;
  for (const auto& d : api.Inbox()) {
    if (d.msg.channel != kChBfs) continue;
    if (d.msg.fields[0] == kBfsAnnounce) {
      if (depth_ < 0 && (best_local < 0 || d.from_node < best_id)) {
        best_local = d.from_local;
        best_id = d.from_node;
        best_depth = d.msg.fields[1];
      }
    } else if (d.msg.fields[0] == kBfsChildClaim) {
      child_locals_.push_back(d.from_local);
    }
  }
  if (best_local >= 0 && depth_ < 0) {
    parent_local_ = best_local;
    depth_ = static_cast<int>(best_depth) + 1;
    api.Send(parent_local_, Message{kChBfs, {kBfsChildClaim}});
    if (!announced_) {
      announced_ = true;
      for (int i = 0; i < api.Degree(); ++i) {
        if (i == parent_local_) continue;
        api.Send(i, Message{kChBfs, {kBfsAnnounce, best_depth + 1}});
      }
    }
  }
}

void TreeProgramBase::HandleDetector(NodeApi& api) {
  for (const auto& d : api.Inbox()) {
    if (d.msg.channel != kChQuiesce) continue;
    auto& cached = child_last_activity_[static_cast<std::size_t>(d.from_local)];
    cached = std::max(cached, d.msg.fields[0]);
  }
}

void TreeProgramBase::HandleCtrl(NodeApi& api) {
  for (const auto& d : api.Inbox()) {
    if (d.msg.channel != kChCtrl) continue;
    ctrl_queue_.push_back(d.msg);
  }
}

void TreeProgramBase::BroadcastCtrl(Message msg) {
  DSF_CHECK_MSG(is_root_, "only the root issues control broadcasts");
  msg.channel = kChCtrl;
  ctrl_queue_.push_back(std::move(msg));
}

void TreeProgramBase::Finish() {
  BroadcastCtrl(Message{kChCtrl, {kCtrlFinish}});
}

void CollectPipeline::OnReceive(const Message& msg, bool collect_at_this_node,
                                std::vector<std::vector<std::int64_t>>* received) {
  DSF_CHECK(msg.channel == channel_);
  if (!msg.fields.empty() && msg.fields[0] == kDoneSentinel) {
    DSF_CHECK(children_pending_ > 0);
    --children_pending_;
    return;
  }
  if (collect_at_this_node) {
    DSF_CHECK(received != nullptr);
    received->push_back(msg.fields);
  } else {
    queue_.push_back(msg.fields);
  }
}

void CollectPipeline::Tick(NodeApi& api, int parent_local,
                           std::vector<std::vector<std::int64_t>>* root_collect) {
  if (parent_local < 0) {
    // Root: drain local seeds straight into the collection.
    while (!queue_.empty()) {
      if (root_collect != nullptr) root_collect->push_back(queue_.front());
      queue_.pop_front();
    }
    return;
  }
  if (!queue_.empty()) {
    Message m;
    m.channel = channel_;
    m.fields = queue_.front();
    queue_.pop_front();
    api.Send(parent_local, std::move(m));
  } else if (own_done_ && children_pending_ == 0 && !done_sent_) {
    done_sent_ = true;
    api.Send(parent_local, Message{channel_, {kDoneSentinel}});
  }
}

void KeyedEdgeQueues::EnqueueAll(NodeId key, int except_local) {
  for (std::size_t e = 0; e < queue_.size(); ++e) {
    if (static_cast<int>(e) == except_local) continue;
    if (queued_[e].insert(key).second) {
      queue_[e].push_back(key);
      ++pending_;
    }
  }
}

void KeyedEdgeQueues::PopInto(int local, int budget, std::vector<NodeId>& out) {
  out.clear();
  auto& q = queue_[static_cast<std::size_t>(local)];
  auto& members = queued_[static_cast<std::size_t>(local)];
  while (budget-- > 0 && !q.empty()) {
    out.push_back(q.front());
    members.erase(q.front());
    q.pop_front();
    --pending_;
  }
}

void BfsProbeProgram::OnTreeReady(NodeApi& api) {
  observed_depth = TreeDepth();
  observed_parent = IsRoot() ? Id() : api.NeighborId(ParentLocal());
  if (IsRoot()) Finish();
}

}  // namespace dsf
