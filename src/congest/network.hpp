// Synchronous CONGEST network simulator.
//
// Faithful to Section 2 of the paper: computation proceeds in synchronous
// rounds; per round every node (i) performs arbitrary local computation,
// (ii) sends at most one bounded-size message per incident edge and channel,
// and (iii) receives what its neighbors sent this round (delivered at the
// start of the next round). The simulator meters bits per edge per round so
// experiments can verify the O(log n) bandwidth discipline, and can meter a
// registered edge cut (used by the Set-Disjointness lower-bound harness).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/random.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace dsf {

class Network;

// Globally known quantities every node may use. The paper grants n; s and D
// bounds are justified by footnote 2 (they are computable in O(D + min{s,√n})
// rounds, which is below all our algorithms' budgets).
struct StaticKnowledge {
  int n = 0;
  int diameter_bound = 0;        // D
  int spd_bound = 0;             // s (shortest-path diameter)
  Weight weighted_diameter_bound = 0;  // WD (randomized algorithm's levels)
  std::int64_t bandwidth_bits = 0;  // per edge per round, O(log n)
};

// Per-node view handed to programs each round. Local: the node knows its id,
// its incident edges (neighbor ids + weights), and nothing else about G.
class NodeApi {
 public:
  NodeApi(Network& net, NodeId id);

  [[nodiscard]] NodeId Id() const noexcept { return id_; }
  [[nodiscard]] int Degree() const noexcept;
  [[nodiscard]] NodeId NeighborId(int local) const;
  [[nodiscard]] Weight EdgeWeight(int local) const;
  [[nodiscard]] EdgeId GlobalEdgeId(int local) const;
  [[nodiscard]] const StaticKnowledge& Known() const noexcept;
  [[nodiscard]] long Round() const noexcept;
  [[nodiscard]] SplitMix64& Rng() noexcept;

  // Messages received this round (sent by neighbors last round).
  [[nodiscard]] std::span<const Delivery> Inbox() const noexcept;

  // Queues a message on the incident edge `local` for delivery next round.
  void Send(int local, Message msg);

  // Declares the incident edge part of the algorithm's output F. Idempotent.
  void MarkEdge(int local);
  void UnmarkEdge(int local);

  // Round index of this node's most recent send or receive on channels other
  // than kChQuiesce/kChBfs (used by the quiescence detector), or -1.
  [[nodiscard]] long LastAppActivity() const noexcept;

  // Phase accounting: the coordinator of a phased protocol (moat growing,
  // Borůvka) reports completed algorithm phases so RunStats can expose them
  // alongside rounds/bits.
  void NotePhases(long phases);

 private:
  friend class Network;
  Network& net_;
  NodeId id_;
};

// Per-node behavior: a state machine invoked once per round.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  // Called every round, including round 0 (empty inbox).
  virtual void OnRound(NodeApi& api) = 0;
  // When every program reports done and no messages are in flight, the run ends.
  [[nodiscard]] virtual bool Done() const = 0;
};

struct RunStats {
  long rounds = 0;
  long messages = 0;
  long total_bits = 0;
  long max_bits_per_edge_round = 0;
  long cut_bits = 0;        // bits across the registered cut
  long cut_messages = 0;
  long charged_rounds = 0;  // extra rounds charged for substituted subroutines
  long phases = 0;          // algorithm phases reported via NodeApi::NotePhases
  bool hit_round_limit = false;
};

class Network {
 public:
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

  Network(const Graph& g, StaticKnowledge known, std::uint64_t seed);

  // Instantiates one program per node.
  void Start(const ProgramFactory& factory);

  // Registers edges whose traffic is metered separately (lower-bound harness).
  void RegisterCut(std::span<const EdgeId> cut_edges);

  // Runs until all programs are Done() and no messages are in flight, or the
  // round limit is hit (then stats.hit_round_limit is set).
  RunStats Run(long max_rounds);

  // Executes exactly one round; returns false when the run has finished.
  bool Step();

  // Adds rounds "charged" (not simulated) for substituted subroutines.
  void ChargeRounds(long rounds) { stats_.charged_rounds += rounds; }

  [[nodiscard]] const Graph& GraphRef() const noexcept { return graph_; }
  [[nodiscard]] const StaticKnowledge& Known() const noexcept { return known_; }
  [[nodiscard]] const RunStats& Stats() const noexcept { return stats_; }
  [[nodiscard]] long Round() const noexcept { return round_; }

  // The distributed output: union of all marked incident edges.
  [[nodiscard]] std::vector<EdgeId> MarkedEdges() const;

  // Test hook: access a node's program (for inspecting final local state).
  [[nodiscard]] NodeProgram& ProgramAt(NodeId v) {
    return *programs_[static_cast<std::size_t>(v)];
  }

 private:
  friend class NodeApi;

  struct NodeState {
    std::vector<Delivery> inbox;
    std::vector<std::pair<int, Message>> outbox;  // (local edge idx, msg)
    std::unique_ptr<SplitMix64> rng;
    long last_app_activity = -1;
  };

  const Graph& graph_;
  StaticKnowledge known_;
  std::uint64_t seed_;
  long round_ = 0;
  RunStats stats_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<NodeState> nodes_;
  std::vector<bool> in_cut_;
  std::vector<bool> marked_;
  long in_flight_ = 0;
};

}  // namespace dsf
