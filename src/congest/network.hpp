// Synchronous CONGEST network simulator.
//
// Faithful to Section 2 of the paper: computation proceeds in synchronous
// rounds; per round every node (i) performs arbitrary local computation,
// (ii) sends at most one bounded-size message per incident edge and channel,
// and (iii) receives what its neighbors sent this round (delivered at the
// start of the next round). The simulator meters bits per edge per round so
// experiments can verify the O(log n) bandwidth discipline, and can meter a
// registered edge cut (used by the Set-Disjointness lower-bound harness).
//
// The per-round path is engineered to be memory-bandwidth-bound without
// changing a single delivered bit (see DESIGN.md §2 "Simulator scheduling"):
//   * all outgoing traffic of a round lands in per-executor SoA send arenas
//     (20-byte header: sender/receiver/incidence-slot/channel/bits; fields
//     densely packed in a separate int64 pool), so header passes never touch
//     payload bytes and a k-field send writes exactly 20 + 8k bytes,
//   * receiver offsets are computed by a counting-sort-style prefix sum and
//     every node's inbox becomes a zero-copy span into one contiguous
//     per-round delivery arena — there are no per-node inbox vectors,
//   * per-message topology lookups key off the sender's global incidence
//     slot (Graph::SlotDirs / SlotMirrors, precomputed in Finalize()) —
//     the Edge array is never read during delivery,
//   * the active set is a word-scanned uint64 bitset: nodes with a pending
//     delivery OR'd with cached NodeProgram::WantsTick() bits (refreshed
//     only when a node is ticked — program state only changes in OnRound),
//   * phase (i) runs across a reusable thread pool in 64-node word chunks;
//     large rounds scatter payloads in parallel, partitioned by contiguous
//     receiver ranges of the delivery arena, so workers write disjoint
//     cache lines with no per-node locks. Output-side effects (MarkEdge/
//     UnmarkEdge, NotePhases) are deferred into per-node queues and applied
//     serially in node order, so runs stay bit-identical to the sequential
//     schedule (§8 reproducibility).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "common/random.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace dsf {

class Network;

// Globally known quantities every node may use. The paper grants n; s and D
// bounds are justified by footnote 2 (they are computable in O(D + min{s,√n})
// rounds, which is below all our algorithms' budgets).
struct StaticKnowledge {
  int n = 0;
  int diameter_bound = 0;        // D
  int spd_bound = 0;             // s (shortest-path diameter)
  Weight weighted_diameter_bound = 0;  // WD (randomized algorithm's levels)
  std::int64_t bandwidth_bits = 0;  // per edge per round, O(log n)
};

// Scheduler configuration. Every setting produces bit-identical runs (same
// RunStats, same marked edges, same RNG streams); they differ only in wall
// clock. The golden-stats regression test pins this contract.
struct NetworkOptions {
  // Honor NodeProgram::WantsTick(): a program reporting false is not ticked
  // in rounds where its inbox is empty.
  bool active_set = true;
  // Worker threads for phase (i). 0 = auto (hardware concurrency, capped);
  // 1 = sequential fallback (no pool). Values <= 1 run inline.
  int threads = 0;
  // Cooperative cancellation: Run() polls this between rounds and returns
  // early (stats.cancelled set) once it expires. Borrowed; may be nullptr.
  const CancelToken* cancel = nullptr;
};

// Per-node view handed to programs each round. Local: the node knows its id,
// its incident edges (neighbor ids + weights), and nothing else about G.
// The incidence span is cached at construction, so the per-edge accessors
// are branch-checked array reads.
class NodeApi {
 public:
  NodeApi(Network& net, NodeId id, int executor = 0);

  [[nodiscard]] NodeId Id() const noexcept { return id_; }
  [[nodiscard]] int Degree() const noexcept {
    return static_cast<int>(nb_.size());
  }
  [[nodiscard]] NodeId NeighborId(int local) const {
    DSF_CHECK(local >= 0 && local < Degree());
    return nb_[static_cast<std::size_t>(local)].neighbor;
  }
  [[nodiscard]] Weight EdgeWeight(int local) const;
  [[nodiscard]] EdgeId GlobalEdgeId(int local) const {
    DSF_CHECK(local >= 0 && local < Degree());
    return nb_[static_cast<std::size_t>(local)].edge;
  }
  [[nodiscard]] const StaticKnowledge& Known() const noexcept;
  [[nodiscard]] long Round() const noexcept;
  [[nodiscard]] SplitMix64& Rng() noexcept;

  // Messages received this round (sent by neighbors last round): a zero-copy
  // span into the round's delivery arena, grouped by sender in ascending
  // node order, send order preserved within a sender.
  [[nodiscard]] std::span<const Delivery> Inbox() const noexcept;

  // Queues a message on the incident edge `local` for delivery next round.
  void Send(int local, Message msg);

  // Declares the incident edge part of the algorithm's output F. Idempotent.
  // Applied in node order after phase (i) completes, so the effect is
  // identical under every scheduler configuration.
  void MarkEdge(int local);
  void UnmarkEdge(int local);

  // Round index of this node's most recent send or receive on channels other
  // than kChQuiesce/kChBfs (used by the quiescence detector), or -1.
  [[nodiscard]] long LastAppActivity() const noexcept;

  // Phase accounting: the coordinator of a phased protocol (moat growing,
  // Borůvka) reports completed algorithm phases so RunStats can expose them
  // alongside rounds/bits.
  void NotePhases(long phases);

 private:
  friend class Network;
  Network& net_;
  NodeId id_;
  int executor_;                   // which send arena this tick appends to
  std::uint32_t slot_base_;        // graph_.IncidenceBase(id_)
  std::span<const Incidence> nb_;  // cached Neighbors(id_)
};

// Per-node behavior: a state machine invoked once per round.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  // Called every round, including round 0 (empty inbox).
  virtual void OnRound(NodeApi& api) = 0;
  // When every program reports done and no messages are in flight, the run ends.
  [[nodiscard]] virtual bool Done() const = 0;
  // Active-set scheduling hook: a program may return false to signal that,
  // with an empty inbox, its OnRound would neither send a message nor change
  // any state the run's outcome depends on; the simulator then skips the
  // tick. Rounds where the inbox is non-empty are always ticked. Default:
  // always tick (safe for arbitrary programs).
  //
  // Contract note the bitset scheduler relies on: the value may only change
  // as a consequence of the program's own OnRound (program state is mutated
  // nowhere else), so the simulator caches it per node and re-queries only
  // after ticking that node.
  [[nodiscard]] virtual bool WantsTick() const { return true; }
};

struct RunStats {
  long rounds = 0;
  long messages = 0;
  long total_bits = 0;
  long max_bits_per_edge_round = 0;
  long cut_bits = 0;        // bits across the registered cut
  long cut_messages = 0;
  long charged_rounds = 0;  // extra rounds charged for substituted subroutines
  long phases = 0;          // algorithm phases reported via NodeApi::NotePhases
  bool hit_round_limit = false;
  bool cancelled = false;   // run stopped early by NetworkOptions::cancel
};

namespace detail {

// Minimal reusable thread pool for phase (i): executors pull contiguous
// index chunks off a shared cursor. Each task invocation also receives the
// executor index (0 = the calling thread) so callers can maintain
// per-executor state — e.g. the simulator's send arenas — without locks.
// Determinism does not depend on the chunking — all cross-node effects are
// deferred and applied in node order.
class RoundPool {
 public:
  // Below this node count an auto-configured Network (threads == 0) skips
  // the pool entirely: the per-round wakeup cost cannot be amortized.
  static constexpr int kAutoMinNodes = 256;

  explicit RoundPool(int threads);
  ~RoundPool();

  [[nodiscard]] int Executors() const noexcept { return executors_; }

  // Runs task(v, executor) for v in [0, n); blocks until every index
  // completed. Rethrows the first exception thrown by any task.
  void ParallelFor(int n, const std::function<void(int, int)>& task);

 private:
  void WorkerLoop(int executor);
  void RunChunks(int executor);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* task_ = nullptr;
  int executors_ = 1;  // workers + the calling thread
  int total_ = 0;
  int chunk_ = 1;    // per-claim range size for the current ParallelFor
  int next_ = 0;     // next unclaimed index (under mu_)
  int pending_ = 0;  // indices not yet completed (under mu_)
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

// One executor's share of a round's outgoing traffic, structure-of-arrays:
// the 20-byte headers carry everything the accounting and prefix-sum passes
// need (receiver, global incidence slot, channel, encoded bits, app-activity
// flag, field count); message fields ride in a densely packed int64 pool —
// there is no Message staging at all, so the send path writes 20 + 8*k bytes
// for a k-field message and the scatter reads exactly those back. Because
// senders are consumed in node order and an executor's runs are appended in
// ascending order, each arena's field pool is drained front-to-back by a
// plain cursor.
struct SendHeader {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint32_t slot = 0;    // sender-side global incidence slot
  std::int32_t channel = 0;  // Message::channel
  std::uint16_t bits = 0;    // Message::BitSize(), computed at send time
  std::uint8_t app = 0;      // counts as application activity?
  std::uint8_t fsize = 0;    // field count (run length in `fields`)
};

struct SendArena {
  std::vector<SendHeader> hdr;
  std::vector<std::int64_t> fields;  // packed payload runs, hdr order
};

}  // namespace detail

class Network {
 public:
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

  Network(const Graph& g, StaticKnowledge known, std::uint64_t seed,
          NetworkOptions options = {});
  ~Network();

  // Instantiates one program per node.
  void Start(const ProgramFactory& factory);

  // Registers edges whose traffic is metered separately (lower-bound harness).
  void RegisterCut(std::span<const EdgeId> cut_edges);

  // Runs until all programs are Done() and no messages are in flight, or the
  // round limit is hit (then stats.hit_round_limit is set).
  RunStats Run(long max_rounds);

  // Executes exactly one round; returns false when the run has finished.
  bool Step();

  // Adds rounds "charged" (not simulated) for substituted subroutines.
  void ChargeRounds(long rounds) { stats_.charged_rounds += rounds; }

  [[nodiscard]] const Graph& GraphRef() const noexcept { return graph_; }
  [[nodiscard]] const StaticKnowledge& Known() const noexcept { return known_; }
  [[nodiscard]] const NetworkOptions& Options() const noexcept {
    return options_;
  }
  [[nodiscard]] const RunStats& Stats() const noexcept { return stats_; }
  [[nodiscard]] long Round() const noexcept { return round_; }

  // The distributed output: union of all marked incident edges.
  [[nodiscard]] std::vector<EdgeId> MarkedEdges() const;

  // Test hook: access a node's program (for inspecting final local state).
  [[nodiscard]] NodeProgram& ProgramAt(NodeId v) {
    return *programs_[static_cast<std::size_t>(v)];
  }

 private:
  friend class NodeApi;

  // Cross-node effects deferred out of the (possibly parallel) tick phase;
  // the hot per-node per-round data lives in flat parallel arrays instead.
  struct NodeState {
    // Deferred MarkEdge/UnmarkEdge ops, applied in node order after phase
    // (i) so parallel execution matches the sequential schedule exactly.
    std::vector<std::pair<EdgeId, bool>> mark_ops;
    long phase_delta = 0;    // deferred NotePhases contributions
    bool effects_pending = false;  // on one executor's dirty list this round
    std::unique_ptr<SplitMix64> rng;
  };

  // A node's sends this round: a contiguous run in one executor's arena.
  struct OutRef {
    std::uint32_t arena = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  struct SenderRange {
    NodeId v = kNoNode;
    std::uint32_t arena = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  // Rounds with at least this many messages scatter payloads across the
  // pool, partitioned by contiguous delivery-arena (receiver) ranges.
  static constexpr std::size_t kParallelScatterMin = 4096;
  static constexpr std::size_t kScatterBlock = 1024;
  // Headers of look-ahead for prefetching counting-sort scatter targets.
  static constexpr std::uint32_t kScatterPrefetch = 8;

  // The per-receiver counting cells double as an "any application message
  // this round" flag in their top bit, so the receiver-side activity stamp
  // costs no extra random store per message: the prefix-sum loop strips the
  // bit and stamps last_app_ once per receiver.
  static constexpr std::uint32_t kAppBit = std::uint32_t{1} << 31;
  static constexpr std::uint32_t kCountMask = kAppBit - 1;

  void TickWord(int word, int executor);

  // First deferred effect of a node's round: put it on its executor's
  // dirty list so ApplyDeferredEffects visits only nodes that deferred.
  void NoteEffects(NodeState& st, NodeId v, int executor) {
    if (!st.effects_pending) {
      st.effects_pending = true;
      effect_nodes_[static_cast<std::size_t>(executor)].push_back(v);
    }
  }
  void ApplyDeferredEffects();
  void DeliverRound();

  const Graph& graph_;
  StaticKnowledge known_;
  std::uint64_t seed_;
  NetworkOptions options_;
  long round_ = 0;
  RunStats stats_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<NodeState> nodes_;
  std::vector<bool> in_cut_;
  std::vector<bool> marked_;
  long in_flight_ = 0;

  // --- per-round message arena (all persistent; zero steady-state alloc) ---
  std::vector<detail::SendArena> send_arenas_;  // one per executor
  std::vector<OutRef> out_ref_;                 // per node: sends this round
  std::vector<SenderRange> senders_;            // nodes that sent, node order
  std::vector<Delivery> arena_;              // delivery arena (only grows)
  std::vector<std::uint64_t> scatter_src_;   // arena slot -> (send arena, idx)
  std::vector<std::uint32_t> scatter_foff_;  // arena slot -> field-pool offset
  std::vector<std::uint32_t> fields_cur_;    // per send arena: field cursor
  std::vector<std::uint32_t> in_off_;        // per node: inbox offset in arena
  std::vector<std::uint32_t> in_len_;        // per node: inbox length
  std::vector<std::uint32_t> in_cur_;        // per node: scatter cursor
  std::vector<long> last_app_;               // per node: last app activity
  std::vector<NodeId> receivers_;            // nodes with non-empty inbox
  // Nodes with deferred cross-node effects this round, one dirty list per
  // executor (racelessly appendable) merged and applied in node order —
  // ApplyDeferredEffects is O(nodes that deferred), not O(n).
  std::vector<std::vector<NodeId>> effect_nodes_;
  std::vector<NodeId> effect_merge_;

  // Sequential fast path (no pool): ticks ascend in node order, so Send()
  // itself can run the counting pass — per-receiver message counts for the
  // *next* round accumulate here while in_off_/in_len_ still serve the
  // current one, and DeliverRound() skips the O(n) header re-scan.
  bool fused_ = false;                       // true iff pool_ == nullptr
  bool has_cut_ = false;                     // any cut edges registered?
  std::vector<std::uint32_t> in_cnt_;        // per node: next-round count
  std::vector<NodeId> next_receivers_;       // next-round receiver dirty list

  // --- active-set bitsets (word-scanned, one bit per node) ----------------
  std::vector<std::uint64_t> recv_bits_;   // inbox non-empty this round
  std::vector<std::uint64_t> wants_bits_;  // cached WantsTick() per node
  std::vector<std::uint64_t> tick_bits_;   // recv | wants (all-ones when
                                           // active_set is off)

  // --- per-edge bandwidth accounting ---------------------------------------
  // Indexed by sender-side incidence slot (bijective with (edge, direction)
  // via Graph::SlotDirs), so the node-ordered accounting pass sweeps it in
  // ascending order instead of hopping through an edge-id permutation; each
  // sender's touched slots lie in its own incidence range, so the max-fold
  // and reset happen right after that sender's run (kept all-zero between).
  std::vector<long> edge_bits_;             // slot-indexed; kept all-zero
  std::unique_ptr<detail::RoundPool> pool_;  // nullptr => sequential phase (i)
};

// --- inline hot-path implementations ----------------------------------------
// Send() and Inbox() are defined in the header so protocol tick loops inline
// them: a Message built at the call site keeps its fields in registers all
// the way into the arena append (constant field counts unroll BitSize and
// the field-pool copy).

inline std::span<const Delivery> NodeApi::Inbox() const noexcept {
  const auto v = static_cast<std::size_t>(id_);
  return {net_.arena_.data() + net_.in_off_[v], net_.in_len_[v]};
}

inline void NodeApi::Send(int local, Message msg) {
  DSF_CHECK(local >= 0 && local < Degree());
  // BFS-tree setup, the detector itself, and control broadcasts are
  // coordination scaffolding; "application activity" (what quiescence
  // detection watches) is everything else.
  const bool app = msg.channel != kChQuiesce && msg.channel != kChBfs &&
                   msg.channel != kChCtrl;
  if (app) net_.last_app_[static_cast<std::size_t>(id_)] = net_.round_;
  const NodeId to = nb_[static_cast<std::size_t>(local)].neighbor;
  auto& arena = net_.send_arenas_[static_cast<std::size_t>(executor_)];
  auto& ref = net_.out_ref_[static_cast<std::size_t>(id_)];
  if (ref.count == 0) {
    // First send this tick: claim a contiguous run in this executor's
    // arena. The run stays contiguous because an executor ticks one node
    // at a time.
    ref.arena = static_cast<std::uint32_t>(executor_);
    ref.begin = static_cast<std::uint32_t>(arena.hdr.size());
    if (net_.fused_) {
      // Sequential ticks ascend in node order, so recording senders here
      // yields exactly the node-ordered list the counting pass would build.
      net_.senders_.push_back(
          Network::SenderRange{id_, ref.arena, ref.begin, 0});
    }
  }
  ++ref.count;
  if (net_.fused_) {
    // Fused counting pass: accumulate next-round inbox sizes (and the
    // receiver's app-activity flag) at send time.
    auto& cnt = net_.in_cnt_[static_cast<std::size_t>(to)];
    if ((cnt & Network::kCountMask) == 0) net_.next_receivers_.push_back(to);
    cnt = (cnt + 1) | (app ? Network::kAppBit : 0);
  }
  arena.hdr.push_back(detail::SendHeader{
      id_, to, slot_base_ + static_cast<std::uint32_t>(local), msg.channel,
      static_cast<std::uint16_t>(msg.BitSize()), static_cast<std::uint8_t>(app),
      static_cast<std::uint8_t>(msg.fields.size())});
  arena.fields.insert(arena.fields.end(), msg.fields.begin(),
                      msg.fields.end());
}

}  // namespace dsf
