// Synchronous CONGEST network simulator.
//
// Faithful to Section 2 of the paper: computation proceeds in synchronous
// rounds; per round every node (i) performs arbitrary local computation,
// (ii) sends at most one bounded-size message per incident edge and channel,
// and (iii) receives what its neighbors sent this round (delivered at the
// start of the next round). The simulator meters bits per edge per round so
// experiments can verify the O(log n) bandwidth discipline, and can meter a
// registered edge cut (used by the Set-Disjointness lower-bound harness).
//
// The per-round path is engineered for throughput without changing a single
// delivered bit (see DESIGN.md §2 "Simulator scheduling"):
//   * delivery resolves the receiver-side local index through the mirror
//     indices precomputed by Graph::Finalize() — O(1) per message,
//   * per-edge bandwidth accounting uses a persistent buffer plus a
//     touched-directed-edge dirty list instead of an O(m) allocation,
//   * idle programs with empty inboxes are skipped when they report
//     !WantsTick() (active-set scheduling),
//   * phase (i) can run across a reusable thread pool; output-side effects
//     (MarkEdge/UnmarkEdge, NotePhases) are deferred into per-node queues
//     and applied serially in node order, so runs stay bit-identical to the
//     sequential schedule (§8 reproducibility).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/random.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace dsf {

class Network;

// Globally known quantities every node may use. The paper grants n; s and D
// bounds are justified by footnote 2 (they are computable in O(D + min{s,√n})
// rounds, which is below all our algorithms' budgets).
struct StaticKnowledge {
  int n = 0;
  int diameter_bound = 0;        // D
  int spd_bound = 0;             // s (shortest-path diameter)
  Weight weighted_diameter_bound = 0;  // WD (randomized algorithm's levels)
  std::int64_t bandwidth_bits = 0;  // per edge per round, O(log n)
};

// Scheduler configuration. Every setting produces bit-identical runs (same
// RunStats, same marked edges, same RNG streams); they differ only in wall
// clock. The golden-stats regression test pins this contract.
struct NetworkOptions {
  // Honor NodeProgram::WantsTick(): a program reporting false is not ticked
  // in rounds where its inbox is empty.
  bool active_set = true;
  // Worker threads for phase (i). 0 = auto (hardware concurrency, capped);
  // 1 = sequential fallback (no pool). Values <= 1 run inline.
  int threads = 0;
};

// Per-node view handed to programs each round. Local: the node knows its id,
// its incident edges (neighbor ids + weights), and nothing else about G.
// The incidence span is cached at construction, so the per-edge accessors
// are branch-checked array reads.
class NodeApi {
 public:
  NodeApi(Network& net, NodeId id);

  [[nodiscard]] NodeId Id() const noexcept { return id_; }
  [[nodiscard]] int Degree() const noexcept {
    return static_cast<int>(nb_.size());
  }
  [[nodiscard]] NodeId NeighborId(int local) const {
    DSF_CHECK(local >= 0 && local < Degree());
    return nb_[static_cast<std::size_t>(local)].neighbor;
  }
  [[nodiscard]] Weight EdgeWeight(int local) const;
  [[nodiscard]] EdgeId GlobalEdgeId(int local) const {
    DSF_CHECK(local >= 0 && local < Degree());
    return nb_[static_cast<std::size_t>(local)].edge;
  }
  [[nodiscard]] const StaticKnowledge& Known() const noexcept;
  [[nodiscard]] long Round() const noexcept;
  [[nodiscard]] SplitMix64& Rng() noexcept;

  // Messages received this round (sent by neighbors last round).
  [[nodiscard]] std::span<const Delivery> Inbox() const noexcept;

  // Queues a message on the incident edge `local` for delivery next round.
  void Send(int local, Message msg);

  // Declares the incident edge part of the algorithm's output F. Idempotent.
  // Applied in node order after phase (i) completes, so the effect is
  // identical under every scheduler configuration.
  void MarkEdge(int local);
  void UnmarkEdge(int local);

  // Round index of this node's most recent send or receive on channels other
  // than kChQuiesce/kChBfs (used by the quiescence detector), or -1.
  [[nodiscard]] long LastAppActivity() const noexcept;

  // Phase accounting: the coordinator of a phased protocol (moat growing,
  // Borůvka) reports completed algorithm phases so RunStats can expose them
  // alongside rounds/bits.
  void NotePhases(long phases);

 private:
  friend class Network;
  Network& net_;
  NodeId id_;
  std::span<const Incidence> nb_;  // cached Neighbors(id_)
};

// Per-node behavior: a state machine invoked once per round.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  // Called every round, including round 0 (empty inbox).
  virtual void OnRound(NodeApi& api) = 0;
  // When every program reports done and no messages are in flight, the run ends.
  [[nodiscard]] virtual bool Done() const = 0;
  // Active-set scheduling hook: a program may return false to signal that,
  // with an empty inbox, its OnRound would neither send a message nor change
  // any state the run's outcome depends on; the simulator then skips the
  // tick. Rounds where the inbox is non-empty are always ticked. Default:
  // always tick (safe for arbitrary programs).
  [[nodiscard]] virtual bool WantsTick() const { return true; }
};

struct RunStats {
  long rounds = 0;
  long messages = 0;
  long total_bits = 0;
  long max_bits_per_edge_round = 0;
  long cut_bits = 0;        // bits across the registered cut
  long cut_messages = 0;
  long charged_rounds = 0;  // extra rounds charged for substituted subroutines
  long phases = 0;          // algorithm phases reported via NodeApi::NotePhases
  bool hit_round_limit = false;
};

namespace detail {

// Minimal reusable thread pool for phase (i): workers pull contiguous node
// chunks off a shared cursor. Determinism does not depend on the chunking —
// all cross-node effects are deferred and applied in node order.
class RoundPool {
 public:
  // Below this node count an auto-configured Network (threads == 0) skips
  // the pool entirely: the per-round wakeup cost cannot be amortized.
  static constexpr int kAutoMinNodes = 256;

  explicit RoundPool(int threads);
  ~RoundPool();

  // Runs task(v) for v in [0, n); blocks until every index completed.
  // Rethrows the first exception thrown by any task.
  void ParallelFor(int n, const std::function<void(int)>& task);

 private:
  void WorkerLoop();
  void RunChunks();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  int executors_ = 1;  // workers + the calling thread
  int total_ = 0;
  int chunk_ = 1;    // per-claim range size for the current ParallelFor
  int next_ = 0;     // next unclaimed index (under mu_)
  int pending_ = 0;  // indices not yet completed (under mu_)
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace detail

class Network {
 public:
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

  Network(const Graph& g, StaticKnowledge known, std::uint64_t seed,
          NetworkOptions options = {});
  ~Network();

  // Instantiates one program per node.
  void Start(const ProgramFactory& factory);

  // Registers edges whose traffic is metered separately (lower-bound harness).
  void RegisterCut(std::span<const EdgeId> cut_edges);

  // Runs until all programs are Done() and no messages are in flight, or the
  // round limit is hit (then stats.hit_round_limit is set).
  RunStats Run(long max_rounds);

  // Executes exactly one round; returns false when the run has finished.
  bool Step();

  // Adds rounds "charged" (not simulated) for substituted subroutines.
  void ChargeRounds(long rounds) { stats_.charged_rounds += rounds; }

  [[nodiscard]] const Graph& GraphRef() const noexcept { return graph_; }
  [[nodiscard]] const StaticKnowledge& Known() const noexcept { return known_; }
  [[nodiscard]] const NetworkOptions& Options() const noexcept {
    return options_;
  }
  [[nodiscard]] const RunStats& Stats() const noexcept { return stats_; }
  [[nodiscard]] long Round() const noexcept { return round_; }

  // The distributed output: union of all marked incident edges.
  [[nodiscard]] std::vector<EdgeId> MarkedEdges() const;

  // Test hook: access a node's program (for inspecting final local state).
  [[nodiscard]] NodeProgram& ProgramAt(NodeId v) {
    return *programs_[static_cast<std::size_t>(v)];
  }

 private:
  friend class NodeApi;

  struct NodeState {
    std::vector<Delivery> inbox;
    std::vector<std::pair<int, Message>> outbox;  // (local edge idx, msg)
    // Deferred MarkEdge/UnmarkEdge ops, applied in node order after phase
    // (i) so parallel execution matches the sequential schedule exactly.
    std::vector<std::pair<EdgeId, bool>> mark_ops;
    long phase_delta = 0;  // deferred NotePhases contributions
    std::unique_ptr<SplitMix64> rng;
    long last_app_activity = -1;
  };

  void TickNode(NodeId v);
  void ApplyDeferredEffects();

  const Graph& graph_;
  StaticKnowledge known_;
  std::uint64_t seed_;
  NetworkOptions options_;
  long round_ = 0;
  RunStats stats_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<NodeState> nodes_;
  std::vector<bool> in_cut_;
  std::vector<bool> marked_;
  long in_flight_ = 0;

  // Persistent per-round buffers (zero allocation in the steady state).
  std::vector<long> edge_bits_;             // (edge, direction)-indexed; kept 0
  std::vector<std::size_t> touched_dirs_;   // dirty list into edge_bits_
  std::vector<NodeId> receivers_;           // nodes whose inbox is non-empty
  std::unique_ptr<detail::RoundPool> pool_;  // nullptr => sequential phase (i)
};

}  // namespace dsf
