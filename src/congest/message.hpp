// CONGEST messages.
//
// The CONGEST(log n) model allows each node to send, per round and per
// incident edge, one message of O(log n) bits (Section 2 of the paper). We
// model a message as a channel tag plus a short vector of signed integer
// fields; `BitSize()` estimates the encoded width so the simulator can verify
// and report per-edge per-round bandwidth use.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace dsf {

// Channels multiplex independent sub-protocols over the same edges. The
// simulator accounts all channels against the same physical bandwidth.
enum Channel : std::int32_t {
  kChBfs = 0,       // BFS-tree construction
  kChQuiesce = 1,   // quiescence detector (aggregation over the BFS tree)
  kChCtrl = 2,      // coordinator broadcasts (phase control, result lists)
  kChLabel = 3,     // terminal/label convergecast
  kChBellman = 4,   // region Bellman-Ford relaxations
  kChExchange = 5,  // boundary-edge final value exchange
  kChFilter = 6,    // pipelined candidate-merge filtering (Lemma 4.14)
  kChToken = 7,     // output-edge token routing
  kChApp = 8,       // first free channel for other protocols
};

struct Message {
  std::int32_t channel = kChApp;
  std::vector<std::int64_t> fields;

  Message() = default;
  Message(std::int32_t ch, std::initializer_list<std::int64_t> f)
      : channel(ch), fields(f) {}

  // Estimated encoded size: a few header bits for the channel plus a
  // zigzag/varint-style cost per field.
  [[nodiscard]] std::size_t BitSize() const noexcept {
    std::size_t bits = 4;  // channel tag
    for (const std::int64_t v : fields) {
      const auto zz = static_cast<std::uint64_t>((v << 1) ^ (v >> 63));
      bits += 1 + static_cast<std::size_t>(64 - std::countl_zero(zz | 1));
    }
    return bits;
  }
};

// A message delivered to a node, annotated with where it came from.
struct Delivery {
  int from_local = -1;    // index into the node's incidence list
  NodeId from_node = kNoNode;
  Message msg;
};

}  // namespace dsf
