// CONGEST messages.
//
// The CONGEST(log n) model allows each node to send, per round and per
// incident edge, one message of O(log n) bits (Section 2 of the paper). We
// model a message as a channel tag plus a short list of signed integer
// fields; `BitSize()` estimates the encoded width so the simulator can verify
// and report per-edge per-round bandwidth use.
//
// Fields live in inline storage (`FieldList`): an O(log n)-bit message holds
// a small constant number of machine words, so a capacity-8 array covers
// every protocol with headroom while keeping the simulator's per-message
// path free of heap traffic — millions of sends allocate nothing.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace dsf {

// Fixed-capacity field storage with the std::vector surface the protocol
// code uses (indexing, size/empty, iteration, conversions to/from
// std::vector for long-term storage at coordinators).
class FieldList {
 public:
  static constexpr std::size_t kMaxFields = 8;

  FieldList() = default;
  // Copies move only the live prefix: messages usually carry 2-4 of the 8
  // slots, and the simulator's arena copies millions of FieldLists per
  // second, so not touching dead bytes roughly halves the memory traffic of
  // a delivery. Slots past size() are indeterminate by contract — every
  // accessor is bounded by size(), and equality compares prefixes.
  FieldList(const FieldList& o) noexcept : size_(o.size_) {
    for (std::uint32_t i = 0; i < size_; ++i) data_[i] = o.data_[i];
  }
  FieldList& operator=(const FieldList& o) noexcept {
    size_ = o.size_;
    for (std::uint32_t i = 0; i < size_; ++i) data_[i] = o.data_[i];
    return *this;
  }
  FieldList(std::initializer_list<std::int64_t> f) {
    DSF_CHECK(f.size() <= kMaxFields);
    size_ = static_cast<std::uint32_t>(f.size());
    std::size_t i = 0;
    for (const std::int64_t v : f) data_[i++] = v;
  }
  // Implicit on purpose: payloads stored as std::vector at coordinators
  // flow back into messages (and vice versa) without call-site churn.
  FieldList(const std::vector<std::int64_t>& v) {  // NOLINT(runtime/explicit)
    DSF_CHECK(v.size() <= kMaxFields);
    size_ = static_cast<std::uint32_t>(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) data_[i] = v[i];
  }
  operator std::vector<std::int64_t>() const {  // NOLINT(runtime/explicit)
    return {begin(), end()};
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  void clear() noexcept { size_ = 0; }
  void push_back(std::int64_t v) {
    DSF_CHECK(size_ < kMaxFields);
    data_[size_++] = v;
  }
  // Bulk overwrite from a raw run (the simulator's scatter out of its SoA
  // field pool); bounded by capacity like every other mutator.
  void assign(const std::int64_t* p, std::uint32_t n) {
    DSF_CHECK(n <= kMaxFields);
    size_ = n;
    for (std::uint32_t i = 0; i < n; ++i) data_[i] = p[i];
  }

  [[nodiscard]] std::int64_t& operator[](std::size_t i) {
    DSF_CHECK(i < size_);
    return data_[i];
  }
  [[nodiscard]] const std::int64_t& operator[](std::size_t i) const {
    DSF_CHECK(i < size_);
    return data_[i];
  }

  [[nodiscard]] const std::int64_t* begin() const noexcept {
    return data_.data();
  }
  [[nodiscard]] const std::int64_t* end() const noexcept {
    return data_.data() + size_;
  }

  friend bool operator==(const FieldList& a, const FieldList& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

 private:
  // Deliberately not value-initialized: slots past size() are indeterminate
  // by contract (every accessor is bounded), and zeroing 64 bytes per
  // construction is measurable in the simulator's per-message path.
  std::array<std::int64_t, kMaxFields> data_;
  std::uint32_t size_ = 0;
};

// Channels multiplex independent sub-protocols over the same edges. The
// simulator accounts all channels against the same physical bandwidth.
enum Channel : std::int32_t {
  kChBfs = 0,       // BFS-tree construction
  kChQuiesce = 1,   // quiescence detector (aggregation over the BFS tree)
  kChCtrl = 2,      // coordinator broadcasts (phase control, result lists)
  kChLabel = 3,     // terminal/label convergecast
  kChBellman = 4,   // region Bellman-Ford relaxations
  kChExchange = 5,  // boundary-edge final value exchange
  kChFilter = 6,    // pipelined candidate-merge filtering (Lemma 4.14)
  kChToken = 7,     // output-edge token routing
  kChApp = 8,       // first free channel for other protocols
};

struct Message {
  std::int32_t channel = kChApp;
  FieldList fields;

  Message() = default;
  Message(std::int32_t ch, std::initializer_list<std::int64_t> f)
      : channel(ch), fields(f) {}

  // Estimated encoded size: a few header bits for the channel plus a
  // zigzag/varint-style cost per field.
  [[nodiscard]] std::size_t BitSize() const noexcept {
    std::size_t bits = 4;  // channel tag
    for (const std::int64_t v : fields) {
      const auto zz = static_cast<std::uint64_t>((v << 1) ^ (v >> 63));
      bits += 1 + static_cast<std::size_t>(64 - std::countl_zero(zz | 1));
    }
    return bits;
  }
};

// A message delivered to a node, annotated with where it came from.
struct Delivery {
  int from_local = -1;    // index into the node's incidence list
  NodeId from_node = kNoNode;
  Message msg;
};

}  // namespace dsf
