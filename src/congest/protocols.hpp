// Reusable CONGEST protocol building blocks.
//
// Every nontrivial algorithm in the paper is structured around a rooted BFS
// tree used for coordination: pipelined convergecasts (Lemma 2.3/2.4, the
// candidate filtering of Lemma 4.14), pipelined broadcasts, and termination /
// phase-boundary detection. `TreeProgramBase` packages these:
//
//   * rounds [0, D+2): distributed BFS-tree construction from the node with
//     the largest identifier (as in the proof of Lemma 2.3),
//   * a continuous quiescence detector: every node aggregates, over the BFS
//     tree, the latest round in which any node in its subtree sent or
//     received application traffic; the root therefore learns global
//     quiescence within D + O(1) rounds of it occurring,
//   * an ordered control broadcast: the root queues messages that are
//     pipelined down the tree (one per round per tree edge) and delivered to
//     every node in FIFO order via OnCtrl(),
//   * a pipelined collection helper (`CollectPipeline`) with subtree-done
//     markers, used to gather items at the root in O(D + #items) rounds.
//
// Derived programs implement OnTreeReady / OnAppRound / OnCtrl.
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"
#include "congest/network.hpp"

namespace dsf {

// Control message opcodes (first field of a kChCtrl message).
enum CtrlOp : std::int64_t {
  kCtrlFinish = -1,  // global termination; forwarded, then node completes
};

class TreeProgramBase : public NodeProgram {
 public:
  explicit TreeProgramBase(NodeId id) : id_(id) {}

  void OnRound(NodeApi& api) final;
  [[nodiscard]] bool Done() const final { return done_; }

  // Active-set scheduling (NetworkOptions::active_set): a tree program can
  // be skipped on empty-inbox rounds once it is genuinely quiescent — the
  // tree is built, no control messages are queued, the detector has nothing
  // unreported, and the derived program reports AppWantsTick() false. Until
  // the tree is ready every node ticks (the D+2 flip round is time-driven),
  // and the root always ticks (coordinators run round-count-driven stage
  // machines).
  [[nodiscard]] bool WantsTick() const final {
    if (done_) return false;
    if (!tree_ready_ || is_root_) return true;
    if (!ctrl_queue_.empty()) return true;
    if (parent_local_ >= 0 &&
        subtree_last_activity_ != reported_last_activity_) {
      return true;
    }
    return AppWantsTick();
  }

  // --- tree accessors (valid once TreeReady) ---
  [[nodiscard]] bool IsRoot() const noexcept { return is_root_; }
  [[nodiscard]] bool TreeReady() const noexcept { return tree_ready_; }
  [[nodiscard]] int ParentLocal() const noexcept { return parent_local_; }
  [[nodiscard]] int TreeDepth() const noexcept { return depth_; }
  [[nodiscard]] const std::vector<int>& ChildLocals() const noexcept {
    return child_locals_;
  }
  [[nodiscard]] NodeId Id() const noexcept { return id_; }

 protected:
  // Called exactly once, the round the BFS tree is known everywhere.
  virtual void OnTreeReady(NodeApi& api) { (void)api; }
  // Called every round after the tree is ready (before control/detector
  // bookkeeping for this round is flushed).
  virtual void OnAppRound(NodeApi& api) { (void)api; }
  // Ordered delivery of control messages (root's broadcasts), incl. at root.
  virtual void OnCtrl(NodeApi& api, const Message& msg) {
    (void)api;
    (void)msg;
  }

  // Active-set contract for the derived program: return false when, with an
  // empty inbox, OnAppRound would neither send nor change outcome-relevant
  // state (no pending pipeline payloads, no queued flood updates). Default
  // true — derived programs opt in explicitly.
  [[nodiscard]] virtual bool AppWantsTick() const { return true; }

  // Root only: queue a control message for pipelined broadcast to all nodes
  // (delivered locally too, in order).
  void BroadcastCtrl(Message msg);

  // Root only: initiate global termination.
  void Finish();

  // Root only: the latest application-activity round reported from anywhere
  // in the network (lags reality by at most the tree depth).
  [[nodiscard]] long GlobalLastActivity() const noexcept {
    return subtree_last_activity_;
  }

  // Root helper: true when, as far as the root can tell, no application
  // traffic has happened after `since` and enough slack has passed for any
  // such traffic to have been reported (D + 2 rounds).
  [[nodiscard]] bool GloballyQuietSince(const NodeApi& api, long since) const {
    return subtree_last_activity_ <= since &&
           api.Round() > since + api.Known().diameter_bound + 2;
  }

  // Root helper: true once enough slack has passed for any traffic after the
  // latest known activity to have been reported. For stages whose traffic is
  // gap-free once started (floods, pipelined collections, token walks) this
  // certifies global completion — see DESIGN.md §2 for the start-time guard
  // the caller must add.
  [[nodiscard]] bool GloballyQuiet(const NodeApi& api) const {
    return api.Round() >
           subtree_last_activity_ + api.Known().diameter_bound + 3;
  }

  void SendParent(NodeApi& api, Message msg) {
    DSF_CHECK(parent_local_ >= 0);
    api.Send(parent_local_, std::move(msg));
  }

  // Number of control messages queued locally but not yet forwarded. The
  // root uses this to bound when a broadcast has reached every node:
  // enqueue_round + backlog + tree_depth + slack.
  [[nodiscard]] std::size_t CtrlBacklog() const noexcept {
    return ctrl_queue_.size();
  }

 private:
  void HandleBfs(NodeApi& api);
  void HandleDetector(NodeApi& api);
  void HandleCtrl(NodeApi& api);

  NodeId id_;
  bool is_root_ = false;
  bool tree_ready_ = false;
  bool announced_ = false;
  bool done_ = false;
  bool finish_seen_ = false;
  int parent_local_ = -1;
  int depth_ = -1;
  std::vector<int> child_locals_;

  // Quiescence detector state.
  long subtree_last_activity_ = -1;  // max over own + cached child reports
  std::vector<long> child_last_activity_;
  long reported_last_activity_ = -2;  // last value sent to parent

  // Control broadcast state: FIFO of messages to forward to children.
  std::deque<Message> ctrl_queue_;
};

// Pipelined convergecast of items toward the BFS root with subtree-completion
// markers. Each payload is forwarded verbatim; a DONE marker (empty payload,
// first field = sentinel) is sent once the node's own items are flushed and
// every child reported DONE. The owner decides what the payloads mean.
class CollectPipeline {
 public:
  // `channel`: the CONGEST channel used; payload first field must not equal
  // the sentinel kDoneSentinel.
  static constexpr std::int64_t kDoneSentinel = -(1LL << 62);

  void Configure(int channel, int num_children) {
    channel_ = channel;
    children_pending_ = num_children;
  }

  // Adds an item originating at this node.
  void Seed(FieldList payload) { queue_.push_back(payload); }
  // Declares that this node will seed no further items.
  void MarkOwnDone() { own_done_ = true; }

  // Feeds a received message (must be on this pipeline's channel). Payloads
  // are appended to `received` when collect_at_this_node is set (at the root)
  // and otherwise queued for forwarding.
  void OnReceive(const Message& msg, bool collect_at_this_node,
                 std::vector<std::vector<std::int64_t>>* received);

  // Sends at most one payload (or the DONE marker) to the parent this round.
  // At the root (parent_local < 0) drains local seeds into `root_collect`.
  void Tick(NodeApi& api, int parent_local,
            std::vector<std::vector<std::int64_t>>* root_collect = nullptr);

  [[nodiscard]] bool Complete() const noexcept {
    return own_done_ && children_pending_ == 0 && queue_.empty();
  }
  [[nodiscard]] bool DoneSent() const noexcept { return done_sent_; }

  // True while the next Tick could send something: a queued payload, or the
  // pending DONE marker. Feeds the owner's AppWantsTick.
  [[nodiscard]] bool WantsTick() const noexcept {
    return !queue_.empty() ||
           (own_done_ && children_pending_ == 0 && !done_sent_);
  }

 private:
  int channel_ = kChApp;
  std::deque<FieldList> queue_;  // inline payloads: relaying allocates nothing
  bool own_done_ = false;
  bool done_sent_ = false;
  int children_pending_ = 0;
};

// Per-edge FIFO of keys with membership dedup, shared by the flooding
// protocols (Bellman-Ford labels, LE-list entries) to rate-limit per-round
// sends. The queue stores only keys; the owner supplies the payload at send
// time, so a key that is re-improved while queued is sent with its freshest
// value exactly once.
class KeyedEdgeQueues {
 public:
  void Configure(int degree) {
    queue_.assign(static_cast<std::size_t>(degree), {});
    queued_.assign(static_cast<std::size_t>(degree), {});
    pending_ = 0;
  }

  // Enqueues `key` on every edge except `except_local` (pass -1 for none);
  // a key already queued on an edge is not duplicated.
  void EnqueueAll(NodeId key, int except_local);

  // Pops up to `budget` distinct keys from edge `local`'s queue into `out`
  // (cleared first). Allocation-free: callers keep a scratch buffer.
  void PopInto(int local, int budget, std::vector<NodeId>& out);

  // True while any edge queue holds a key (the owner still has sends to
  // emit). O(1): maintained as a counter across EnqueueAll/Pop.
  [[nodiscard]] bool HasPending() const noexcept { return pending_ > 0; }

 private:
  std::vector<std::deque<NodeId>> queue_;
  // Membership dedup per edge; only insert/erase/lookup, so the container's
  // iteration order is irrelevant to the run. Keys are scrambled through the
  // shared Mix64 avalanche (common/hash.hpp): node ids arrive in runs of
  // near-consecutive values, which the identity std::hash<int> would map to
  // runs of adjacent buckets.
  std::vector<std::unordered_set<NodeId, IdHash>> queued_;
  std::size_t pending_ = 0;  // total keys across all edge queues
};

// Distributed BFS-tree sanity program used by tests: builds the tree, then
// reports depth/parent through its public state.
class BfsProbeProgram : public TreeProgramBase {
 public:
  explicit BfsProbeProgram(NodeId id) : TreeProgramBase(id) {}

  int observed_depth = -1;
  NodeId observed_parent = kNoNode;

 protected:
  void OnTreeReady(NodeApi& api) override;
};

}  // namespace dsf
