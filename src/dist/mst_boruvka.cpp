#include "dist/mst_boruvka.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "congest/protocols.hpp"
#include "dist/runtime.hpp"
#include "graph/union_find.hpp"

namespace dsf {

namespace {

constexpr std::int64_t kOpPhase = 20;    // {op, phase_index}
constexpr std::int64_t kOpRelabel = 21;  // {op, old_frag, new_frag}
constexpr std::int64_t kOpChosen = 22;   // {op, edge_id}

class BoruvkaProgram : public TreeProgramBase {
 public:
  explicit BoruvkaProgram(NodeId id)
      : TreeProgramBase(id), frag_(id) {}

  // Coordinator outputs (valid at the root once the run finishes).
  std::vector<EdgeId> tree;
  int phases = 0;

 protected:
  void OnTreeReady(NodeApi& api) override {
    neighbor_frag_.assign(static_cast<std::size_t>(api.Degree()), kNoNode);
    if (IsRoot()) {
      frag_uf_ = std::make_unique<UnionFind>(api.Known().n);
      num_fragments_ = api.Known().n;
      if (num_fragments_ <= 1) {
        Finish();
      } else {
        StartPhase(api);
      }
    }
  }

  void OnAppRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      switch (d.msg.channel) {
        case kChExchange:
          neighbor_frag_[static_cast<std::size_t>(d.from_local)] =
              static_cast<NodeId>(d.msg.fields[0]);
          ++frags_received_;
          break;
        case kChFilter:
          cand_pipe_.OnReceive(d.msg, IsRoot(), &cand_items_);
          break;
        default:
          break;
      }
    }
    if (in_phase_ && !reported_ && frags_received_ == api.Degree()) {
      reported_ = true;
      // Lightest outgoing edge of this node, keyed (weight, edge id).
      Weight best_w = kInfWeight;
      EdgeId best_e = kNoEdge;
      NodeId best_other = kNoNode;
      for (int i = 0; i < api.Degree(); ++i) {
        const NodeId nf = neighbor_frag_[static_cast<std::size_t>(i)];
        if (nf == frag_) continue;
        const Weight w = api.EdgeWeight(i);
        const EdgeId e = api.GlobalEdgeId(i);
        if (std::tie(w, e) < std::tie(best_w, best_e)) {
          best_w = w;
          best_e = e;
          best_other = nf;
        }
      }
      if (best_e != kNoEdge) {
        cand_pipe_.Seed({frag_, best_w, best_e, best_other});
      }
      cand_pipe_.MarkOwnDone();
    }
    if (in_phase_) {
      cand_pipe_.Tick(api, ParentLocal(), IsRoot() ? &cand_items_ : nullptr);
    }
    if (IsRoot() && in_phase_ && reported_ && cand_pipe_.Complete()) {
      FinishPhase(api);
    }
  }

  // Between phases a non-root node is inert; within a phase it ticks until
  // it has reported its candidate (fragment ids arrive via the inbox, which
  // forces a tick anyway) and its pipeline slice has drained.
  [[nodiscard]] bool AppWantsTick() const override {
    return in_phase_ && (!reported_ || cand_pipe_.WantsTick());
  }

  void OnCtrl(NodeApi& api, const Message& msg) override {
    if (msg.fields.empty()) return;
    switch (msg.fields[0]) {
      case kOpPhase:
        in_phase_ = true;
        reported_ = false;
        frags_received_ = 0;
        neighbor_frag_.assign(static_cast<std::size_t>(api.Degree()), kNoNode);
        cand_pipe_ = CollectPipeline();
        cand_pipe_.Configure(kChFilter,
                             static_cast<int>(ChildLocals().size()));
        for (int i = 0; i < api.Degree(); ++i) {
          api.Send(i, Message{kChExchange, {frag_}});
        }
        break;
      case kOpRelabel:
        if (frag_ == static_cast<NodeId>(msg.fields[1])) {
          frag_ = static_cast<NodeId>(msg.fields[2]);
        }
        break;
      case kOpChosen:
        for (int i = 0; i < api.Degree(); ++i) {
          if (api.GlobalEdgeId(i) == static_cast<EdgeId>(msg.fields[1])) {
            api.MarkEdge(i);
          }
        }
        break;
      default:
        break;
    }
  }

 private:
  void StartPhase(NodeApi& api) {
    (void)api;
    ++phases;
    cand_items_.clear();
    BroadcastCtrl(Message{kChCtrl, {kOpPhase, phases}});
  }

  void FinishPhase(NodeApi& api) {
    in_phase_ = false;
    api.NotePhases(1);
    // Per-fragment minimum, keyed (weight, edge id); reported fragment ids
    // are canonical, and std::map iteration makes the merge order
    // deterministic.
    std::map<NodeId, std::tuple<Weight, EdgeId, NodeId>> best;
    for (const auto& item : cand_items_) {
      const auto frag = static_cast<NodeId>(item[0]);
      const std::tuple<Weight, EdgeId, NodeId> cand{
          item[1], static_cast<EdgeId>(item[2]), static_cast<NodeId>(item[3])};
      auto [it, inserted] = best.try_emplace(frag, cand);
      if (!inserted && cand < it->second) it->second = cand;
    }
    DSF_CHECK_MSG(!best.empty(),
                  "no outgoing edges but multiple fragments remain — "
                  "graph disconnected");
    std::vector<NodeId> touched;
    for (const auto& [frag, cand] : best) {
      const auto& [w, e, other] = cand;
      if (frag_uf_->Union(frag, other)) {
        tree.push_back(e);
        BroadcastCtrl(Message{kChCtrl, {kOpChosen, e}});
        --num_fragments_;
      }
      touched.push_back(frag);
      touched.push_back(other);
    }
    // New fragment id := smallest node id in the merged group (fragment ids
    // are node ids, so the smallest member id is the group minimum).
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    std::map<int, NodeId> group_min;
    for (const NodeId f : touched) {
      auto [it, inserted] = group_min.try_emplace(frag_uf_->Find(f), f);
      if (!inserted) it->second = std::min(it->second, f);
    }
    for (const NodeId f : touched) {
      const NodeId fresh = group_min.at(frag_uf_->Find(f));
      if (fresh != f) {
        BroadcastCtrl(Message{kChCtrl, {kOpRelabel, f, fresh}});
      }
    }
    if (num_fragments_ <= 1) {
      Finish();
    } else {
      StartPhase(api);
    }
  }

  NodeId frag_;
  std::vector<NodeId> neighbor_frag_;
  int frags_received_ = 0;
  bool in_phase_ = false;
  bool reported_ = false;
  CollectPipeline cand_pipe_;

  // Coordinator state.
  std::unique_ptr<UnionFind> frag_uf_;
  int num_fragments_ = 0;
  std::vector<std::vector<std::int64_t>> cand_items_;
};

}  // namespace

BoruvkaResult RunDistributedMst(const Graph& g, std::uint64_t seed) {
  const StaticKnowledge known = detail::KnownOrThrow(g);

  BoruvkaResult result;
  if (g.NumNodes() <= 1) return result;

  Network net(g, known, seed);
  net.Start([](NodeId v) { return std::make_unique<BoruvkaProgram>(v); });
  long log_n = 1;
  while ((1L << log_n) < known.n) ++log_n;
  const long limit =
      4000 + 20 * (log_n + 2) * (known.n + 2L * known.diameter_bound + 8);
  result.stats = net.Run(limit);
  DSF_CHECK_MSG(!result.stats.hit_round_limit,
                "distributed Borůvka exceeded the round budget");
  auto& root = dynamic_cast<BoruvkaProgram&>(net.ProgramAt(g.NumNodes() - 1));
  result.tree = root.tree;
  result.phases = root.phases;
  return result;
}

}  // namespace dsf
