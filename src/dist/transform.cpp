#include "dist/transform.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "congest/protocols.hpp"
#include "dist/runtime.hpp"
#include "graph/union_find.hpp"

namespace dsf {

namespace {

// Control opcodes (field 0 of a kChCtrl message; kCtrlFinish == -1 reserved).
constexpr std::int64_t kOpAssignLabel = 1;  // {op, node, label}
constexpr std::int64_t kOpDropLabel = 2;    // {op, label}

// --- Lemma 2.3 -------------------------------------------------------------

class CrToIcProgram : public TreeProgramBase {
 public:
  CrToIcProgram(NodeId id, std::vector<NodeId> requests)
      : TreeProgramBase(id), requests_(std::move(requests)) {}

  [[nodiscard]] Label AssignedLabel() const noexcept { return label_; }

 protected:
  void OnTreeReady(NodeApi& api) override {
    (void)api;
    pipe_.Configure(kChLabel, static_cast<int>(ChildLocals().size()));
    for (const NodeId w : requests_) pipe_.Seed({Id(), w});
    pipe_.MarkOwnDone();
  }

  void OnAppRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      if (d.msg.channel == kChLabel) {
        pipe_.OnReceive(d.msg, IsRoot(), &pairs_);
      }
    }
    pipe_.Tick(api, ParentLocal(), IsRoot() ? &pairs_ : nullptr);

    if (IsRoot() && !announced_labels_ && pipe_.Complete()) {
      announced_labels_ = true;
      // Request-graph components; label := smallest member id (all members
      // of a request component are terminals).
      UnionFind uf(api.Known().n);
      std::vector<char> is_terminal(static_cast<std::size_t>(api.Known().n), 0);
      for (const auto& p : pairs_) {
        const auto v = static_cast<NodeId>(p[0]);
        const auto w = static_cast<NodeId>(p[1]);
        uf.Union(v, w);
        is_terminal[static_cast<std::size_t>(v)] = 1;
        is_terminal[static_cast<std::size_t>(w)] = 1;
      }
      std::map<int, NodeId> smallest;
      for (NodeId v = 0; v < api.Known().n; ++v) {
        if (!is_terminal[static_cast<std::size_t>(v)]) continue;
        auto [it, inserted] = smallest.try_emplace(uf.Find(v), v);
        if (!inserted) it->second = std::min(it->second, v);
      }
      for (NodeId v = 0; v < api.Known().n; ++v) {
        if (!is_terminal[static_cast<std::size_t>(v)]) continue;
        BroadcastCtrl(Message{
            kChCtrl,
            {kOpAssignLabel, v, static_cast<std::int64_t>(smallest[uf.Find(v)])}});
      }
      Finish();
    }
  }

  // A non-root node only relays pipeline payloads; once its slice drained
  // it is inert until a control or pipeline message arrives.
  [[nodiscard]] bool AppWantsTick() const override {
    return pipe_.WantsTick();
  }

  void OnCtrl(NodeApi& api, const Message& msg) override {
    (void)api;
    if (msg.fields.empty() || msg.fields[0] != kOpAssignLabel) return;
    if (static_cast<NodeId>(msg.fields[1]) == Id()) {
      label_ = static_cast<Label>(msg.fields[2]);
    }
  }

 private:
  std::vector<NodeId> requests_;
  Label label_ = kNoLabel;
  CollectPipeline pipe_;
  std::vector<std::vector<std::int64_t>> pairs_;  // root only
  bool announced_labels_ = false;
};

// --- Lemma 2.4 -------------------------------------------------------------

class MakeMinimalProgram : public TreeProgramBase {
 public:
  MakeMinimalProgram(NodeId id, Label label)
      : TreeProgramBase(id), label_(label) {}

  [[nodiscard]] Label FinalLabel() const noexcept { return label_; }

 protected:
  void OnTreeReady(NodeApi& api) override {
    (void)api;
    pipe_.Configure(kChLabel, static_cast<int>(ChildLocals().size()));
    if (label_ != kNoLabel) {
      pipe_.Seed({Id(), static_cast<std::int64_t>(label_)});
    }
    pipe_.MarkOwnDone();
  }

  void OnAppRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      if (d.msg.channel == kChLabel) {
        pipe_.OnReceive(d.msg, IsRoot(), &items_);
      }
    }
    pipe_.Tick(api, ParentLocal(), IsRoot() ? &items_ : nullptr);

    if (IsRoot() && !announced_ && pipe_.Complete()) {
      announced_ = true;
      for (const Label lab : detail::SingletonLabels(items_)) {
        BroadcastCtrl(
            Message{kChCtrl, {kOpDropLabel, static_cast<std::int64_t>(lab)}});
      }
      Finish();
    }
  }

  // Same shape as CrToIcProgram: pure pipeline relay between broadcasts.
  [[nodiscard]] bool AppWantsTick() const override {
    return pipe_.WantsTick();
  }

  void OnCtrl(NodeApi& api, const Message& msg) override {
    (void)api;
    if (msg.fields.empty() || msg.fields[0] != kOpDropLabel) return;
    if (label_ != kNoLabel && static_cast<Label>(msg.fields[1]) == label_) {
      label_ = kNoLabel;
    }
  }

 private:
  Label label_;
  CollectPipeline pipe_;
  std::vector<std::vector<std::int64_t>> items_;  // root only
  bool announced_ = false;
};

}  // namespace

TransformResult RunDistributedCrToIc(const Graph& g, const CrInstance& cr,
                                     std::uint64_t seed,
                                     const NetworkOptions& net_opts) {
  DSF_CHECK(cr.NumNodes() == g.NumNodes());
  const StaticKnowledge known = detail::KnownOrThrow(g);

  Network net(g, known, seed, net_opts);
  net.Start([&](NodeId v) {
    return std::make_unique<CrToIcProgram>(
        v, cr.requests[static_cast<std::size_t>(v)]);
  });
  const long limit = 4000 + 8L * (known.diameter_bound + 4) +
                     4L * (cr.NumRequests() + cr.NumTerminals() + 4);
  TransformResult result;
  result.stats = net.Run(limit);
  DSF_CHECK_MSG(!result.stats.hit_round_limit,
                "distributed CR->IC transformation exceeded the round budget");
  result.instance.labels.assign(static_cast<std::size_t>(g.NumNodes()),
                                kNoLabel);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    result.instance.labels[static_cast<std::size_t>(v)] =
        dynamic_cast<CrToIcProgram&>(net.ProgramAt(v)).AssignedLabel();
  }
  return result;
}

TransformResult RunDistributedMakeMinimal(const Graph& g, const IcInstance& ic,
                                          std::uint64_t seed,
                                          const NetworkOptions& net_opts) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  const StaticKnowledge known = detail::KnownOrThrow(g);

  Network net(g, known, seed, net_opts);
  net.Start([&](NodeId v) {
    return std::make_unique<MakeMinimalProgram>(v, ic.LabelOf(v));
  });
  const long limit = 4000 + 8L * (known.diameter_bound + 4) +
                     4L * (ic.NumTerminals() + ic.NumComponents() + 4);
  TransformResult result;
  result.stats = net.Run(limit);
  DSF_CHECK_MSG(!result.stats.hit_round_limit,
                "distributed instance minimization exceeded the round budget");
  result.instance.labels.assign(static_cast<std::size_t>(g.NumNodes()),
                                kNoLabel);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    result.instance.labels[static_cast<std::size_t>(v)] =
        dynamic_cast<MakeMinimalProgram&>(net.ProgramAt(v)).FinalLabel();
  }
  return result;
}

}  // namespace dsf
