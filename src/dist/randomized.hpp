// Randomized distributed Steiner Forest (Section 5, Theorem 5.2), plus a
// Khan et al.-style baseline that repeats the selection stage per component.
//
// Stage 1 (distributed): the LE-list embedding (dist/embedding.hpp) gives
// every node a virtual-tree ancestor per level. Terminals convergecast their
// ancestor chains; the coordinator picks, per input component, the lowest
// level at which the component's terminals agree on an ancestor (their
// super-terminal) and broadcasts it; each terminal then routes a token to
// its ancestor along the LE via-pointers, marking the traversed edges.
//
// Stage 2 (substituted): with truncated propagation (hop budget ~ √n, the
// regime s² > n, or force_truncated) the clusters of a component may remain
// disconnected. The F-reduced instance on the per-component cluster
// representatives is then solved on a greedy metric spanner
// (GreedyMetricSpanner, see DESIGN.md "Substitutions") and the chosen
// spanner edges are realized as least-weight paths; the substituted work is
// charged to RunStats::charged_rounds.
//
// Repetitions re-run the pipeline on derived seeds and keep the lightest
// output (the paper's c·log n amplification).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct RandomizedOptions {
  // Number of independent repetitions; the lightest forest wins.
  int repetitions = 1;
  // Force the truncated (hop-budgeted) embedding regardless of s vs √n.
  bool force_truncated = false;
  // Force full propagation (disables the min{s, √n} truncation).
  bool force_full = false;
  // Edges whose traffic the simulator meters separately (Section 3 harness).
  std::vector<EdgeId> metered_cut;
  // Simulator scheduling (active-set / threads); every setting is
  // bit-identical, see DESIGN.md §2.
  NetworkOptions net;
};

struct RandomizedResult {
  std::vector<EdgeId> forest;
  bool truncated = false;     // hop-budgeted embedding + F-reduced stage 2
  int reduced_terminals = 0;  // super-terminals entering stage 2 (0 if none)
  long le_rounds = 0;         // rounds spent building the embedding
  RunStats stats;
};

// Runs the randomized algorithm; disconnected topologies throw
// std::logic_error. Deterministic given (instance, options, seed).
RandomizedResult RunRandomizedSteinerForest(const Graph& g,
                                            const IcInstance& ic,
                                            const RandomizedOptions& options = {},
                                            std::uint64_t seed = 1);

// Baseline: runs the full selection pipeline once per input component and
// unions the outputs — the per-component repetition our filtered single pass
// avoids (compare rounds). `net_opts` selects the simulator scheduling
// (bit-identical, DESIGN.md §2).
RandomizedResult RunKhanBaseline(const Graph& g, const IcInstance& ic,
                                 std::uint64_t seed = 1,
                                 const NetworkOptions& net_opts = {});

}  // namespace dsf
