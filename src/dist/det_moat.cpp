#include "dist/det_moat.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "congest/protocols.hpp"
#include "dist/runtime.hpp"
#include "graph/union_find.hpp"
#include "steiner/prune.hpp"

namespace dsf {

namespace {

// Control opcodes (kCtrlFinish == -1 reserved).
constexpr std::int64_t kOpReportDistances = 10;  // {op}
constexpr std::int64_t kOpWalk = 11;             // {op, src_node, dst_node}
constexpr std::int64_t kOpDropLabel = 12;        // {op, label}

// At most this many Bellman-Ford updates leave a node per edge per round;
// together with the detector/control traffic this keeps every edge within
// the CONGEST O(log n) budget metered by the simulator.
constexpr int kBfPerRound = 2;

class DetMoatProgram : public TreeProgramBase {
 public:
  DetMoatProgram(NodeId id, Label label, Real epsilon)
      : TreeProgramBase(id), label_(label), epsilon_(epsilon) {}

  // Coordinator outputs (valid at the root once the run finishes).
  MoatSchedule schedule;
  std::vector<EdgeId> raw_edges;

 protected:
  void OnTreeReady(NodeApi& api) override {
    const int children = static_cast<int>(ChildLocals().size());
    term_pipe_.Configure(kChLabel, children);
    dist_pipe_.Configure(kChExchange, children);
    path_pipe_.Configure(kChFilter, children);
    bf_queues_.Configure(api.Degree());
    if (label_ != kNoLabel) {
      term_pipe_.Seed({Id(), static_cast<std::int64_t>(label_)});
      // This node is a Bellman-Ford source.
      BfLabel self;
      self.dist = 0;
      self.hops = 0;
      bf_[Id()] = self;
      bf_queues_.EnqueueAll(Id(), /*except_local=*/-1);
    }
    term_pipe_.MarkOwnDone();
  }

  void OnAppRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      switch (d.msg.channel) {
        case kChLabel:
          term_pipe_.OnReceive(d.msg, IsRoot(), &term_items_);
          break;
        case kChExchange:
          dist_pipe_.OnReceive(d.msg, IsRoot(), &dist_items_);
          break;
        case kChFilter:
          path_pipe_.OnReceive(d.msg, IsRoot(), &path_items_);
          break;
        case kChBellman:
          OnBellman(api, d);
          break;
        case kChToken:
          if (static_cast<NodeId>(d.msg.fields[0]) != Id()) {
            WalkStep(api, static_cast<NodeId>(d.msg.fields[0]));
          }
          break;
        default:
          break;
      }
    }
    TickBellman(api);
    term_pipe_.Tick(api, ParentLocal(), IsRoot() ? &term_items_ : nullptr);
    dist_pipe_.Tick(api, ParentLocal(), IsRoot() ? &dist_items_ : nullptr);
    path_pipe_.Tick(api, ParentLocal(), IsRoot() ? &path_items_ : nullptr);
    if (IsRoot()) DriveCoordinator(api);
  }

  // Quiescent once the Bellman-Ford queues drained and no pipeline has a
  // payload or DONE marker to push (the root keeps ticking regardless — it
  // drives the stage machine).
  [[nodiscard]] bool AppWantsTick() const override {
    return bf_queues_.HasPending() || term_pipe_.WantsTick() ||
           dist_pipe_.WantsTick() || path_pipe_.WantsTick();
  }

  void OnCtrl(NodeApi& api, const Message& msg) override {
    if (msg.fields.empty()) return;
    switch (msg.fields[0]) {
      case kOpReportDistances:
        if (label_ != kNoLabel) {
          // bf_ is a std::map: sources are reported in increasing id order.
          for (const auto& [src, lab] : bf_) {
            dist_pipe_.Seed({Id(), src, lab.dist, lab.hops});
          }
        }
        dist_pipe_.MarkOwnDone();
        break;
      case kOpWalk:
        if (static_cast<NodeId>(msg.fields[2]) == Id()) {
          WalkStep(api, static_cast<NodeId>(msg.fields[1]));
        }
        break;
      case kOpDropLabel:
        // Distributed Lemma 2.4: singleton components leave the instance.
        if (label_ != kNoLabel &&
            static_cast<Label>(msg.fields[1]) == label_) {
          label_ = kNoLabel;
        }
        break;
      default:
        break;
    }
  }

 private:
  // Canonical shortest-path label from one terminal source, matching the
  // centralized Dijkstra fixed point: minimal dist, then minimal hops among
  // least-weight paths, then smallest predecessor id.
  struct BfLabel {
    Weight dist = kInfWeight;
    std::int64_t hops = 0;
    NodeId parent = kNoNode;
    int parent_local = -1;
  };

  void OnBellman(NodeApi& api, const Delivery& d) {
    const auto src = static_cast<NodeId>(d.msg.fields[0]);
    const Weight nd = d.msg.fields[1] + api.EdgeWeight(d.from_local);
    const std::int64_t nh = d.msg.fields[2] + 1;
    BfLabel& cur = bf_[src];
    const bool better =
        nd < cur.dist || (nd == cur.dist && nh < cur.hops) ||
        (nd == cur.dist && nh == cur.hops && d.from_node < cur.parent);
    if (!better) return;
    const bool repropagate = nd < cur.dist || nh != cur.hops;
    cur.dist = nd;
    cur.hops = nh;
    cur.parent = d.from_node;
    cur.parent_local = d.from_local;
    // A parent-only refinement leaves the (dist, hops) the neighbors depend
    // on unchanged; only genuine improvements are re-propagated.
    if (repropagate) bf_queues_.EnqueueAll(src, d.from_local);
  }

  void TickBellman(NodeApi& api) {
    if (!bf_queues_.HasPending()) return;
    for (int e = 0; e < api.Degree(); ++e) {
      bf_queues_.PopInto(e, kBfPerRound, pop_scratch_);
      for (const NodeId src : pop_scratch_) {
        const BfLabel& lab = bf_.at(src);  // always the freshest label
        api.Send(e, Message{kChBellman, {src, lab.dist, lab.hops}});
      }
    }
  }

  // One hop of a merge-path walk: report the parent edge toward `src`, mark
  // it, and pass the token on.
  void WalkStep(NodeApi& api, NodeId src) {
    const auto it = bf_.find(src);
    DSF_CHECK_MSG(it != bf_.end() && it->second.parent_local >= 0,
                  "merge walk reached a node without a converged label");
    const BfLabel& lab = it->second;
    path_pipe_.Seed({lab.hops, api.GlobalEdgeId(lab.parent_local), lab.parent,
                     Id()});
    api.MarkEdge(lab.parent_local);
    api.Send(lab.parent_local, Message{kChToken, {src}});
  }

  // --- coordinator ---------------------------------------------------------

  void DriveCoordinator(NodeApi& api) {
    switch (stage_) {
      case Stage::kGather:
        // The convergecast DONE markers guarantee the detector has seen app
        // traffic, so Quiet() certifies Bellman-Ford convergence too.
        if (term_pipe_.Complete() && GloballyQuiet(api)) {
          stage_ = Stage::kDistances;
          // Distributed minimization (Lemma 2.4): labels with a single
          // terminal are broadcast for dropping before distances are
          // reported; the schedule runs on the minimal instance.
          const std::set<Label> drop = detail::SingletonLabels(term_items_);
          for (const Label lab : drop) {
            BroadcastCtrl(Message{
                kChCtrl, {kOpDropLabel, static_cast<std::int64_t>(lab)}});
          }
          std::erase_if(term_items_, [&](const auto& item) {
            return drop.contains(static_cast<Label>(item[1]));
          });
          BroadcastCtrl(Message{kChCtrl, {kOpReportDistances}});
        }
        break;
      case Stage::kDistances:
        if (dist_pipe_.Complete()) {
          BuildScheduleAndStart(api);
        }
        break;
      case Stage::kWalks:
        while (merge_idx_ < schedule.merge_pairs.size() &&
               path_items_.size() - consumed_items_ >= expected_items_) {
          ConsumeWalk();
          ++merge_idx_;
          if (merge_idx_ < schedule.merge_pairs.size()) {
            StartWalk(api);
          } else {
            stage_ = Stage::kDone;
            Finish();
          }
        }
        break;
      case Stage::kDone:
        break;
    }
  }

  void BuildScheduleAndStart(NodeApi& api) {
    // Terminal order must match IcInstance::Terminals(): increasing node id.
    std::sort(term_items_.begin(), term_items_.end());
    std::vector<NodeId> terminals;
    std::vector<Label> labels;
    std::map<NodeId, int> index_of;
    for (const auto& item : term_items_) {
      index_of[static_cast<NodeId>(item[0])] =
          static_cast<int>(terminals.size());
      terminals.push_back(static_cast<NodeId>(item[0]));
      labels.push_back(static_cast<Label>(item[1]));
    }
    terminals_ = terminals;
    const auto t = terminals.size();
    std::vector<std::vector<Weight>> dist(t, std::vector<Weight>(t, kInfWeight));
    hops_.assign(t, std::vector<std::int64_t>(t, -1));
    for (const auto& item : dist_items_) {
      const int j = index_of.at(static_cast<NodeId>(item[0]));  // reporter
      // Dropped (singleton-label) terminals still acted as Bellman-Ford
      // sources; their columns are not part of the minimal instance.
      const auto src_it = index_of.find(static_cast<NodeId>(item[1]));
      if (src_it == index_of.end()) continue;
      const int i = src_it->second;
      dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = item[2];
      hops_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = item[3];
    }
    MoatOptions opts;
    opts.epsilon = epsilon_;
    schedule = ComputeMoatSchedule(terminals, labels, dist, opts);
    api.NotePhases(schedule.merge_phases);
    forest_uf_ = std::make_unique<UnionFind>(api.Known().n);
    merge_idx_ = 0;
    if (schedule.merge_pairs.empty()) {
      stage_ = Stage::kDone;
      Finish();
    } else {
      stage_ = Stage::kWalks;
      StartWalk(api);
    }
  }

  void StartWalk(NodeApi& api) {
    (void)api;
    const auto [src_idx, dst_idx] = schedule.merge_pairs[merge_idx_];
    const NodeId src = terminals_[static_cast<std::size_t>(src_idx)];
    const NodeId dst = terminals_[static_cast<std::size_t>(dst_idx)];
    expected_items_ = static_cast<std::size_t>(
        hops_[static_cast<std::size_t>(src_idx)][static_cast<std::size_t>(dst_idx)]);
    DSF_CHECK(expected_items_ >= 1);
    BroadcastCtrl(Message{kChCtrl, {kOpWalk, src, dst}});
  }

  // Replays the centralized cycle-dropping (Algorithm 1 lines 17-19) over
  // this walk's reported edges in source-to-target order.
  void ConsumeWalk() {
    std::vector<std::vector<std::int64_t>> slice(
        path_items_.begin() + static_cast<std::ptrdiff_t>(consumed_items_),
        path_items_.begin() +
            static_cast<std::ptrdiff_t>(consumed_items_ + expected_items_));
    consumed_items_ += expected_items_;
    std::sort(slice.begin(), slice.end());  // field 0 = position on the path
    for (const auto& item : slice) {
      const auto u = static_cast<int>(item[2]);
      const auto v = static_cast<int>(item[3]);
      if (forest_uf_->Union(u, v)) {
        raw_edges.push_back(static_cast<EdgeId>(item[1]));
      }
    }
  }

  enum class Stage { kGather, kDistances, kWalks, kDone };

  Label label_;
  Real epsilon_;

  std::map<NodeId, BfLabel> bf_;
  KeyedEdgeQueues bf_queues_;
  std::vector<NodeId> pop_scratch_;  // reused by TickBellman

  CollectPipeline term_pipe_;
  CollectPipeline dist_pipe_;
  CollectPipeline path_pipe_;  // long-lived: never marked done

  // Coordinator state.
  Stage stage_ = Stage::kGather;
  std::vector<std::vector<std::int64_t>> term_items_;
  std::vector<std::vector<std::int64_t>> dist_items_;
  std::vector<std::vector<std::int64_t>> path_items_;
  std::vector<NodeId> terminals_;
  std::vector<std::vector<std::int64_t>> hops_;
  std::unique_ptr<UnionFind> forest_uf_;
  std::size_t merge_idx_ = 0;
  std::size_t expected_items_ = 0;
  std::size_t consumed_items_ = 0;
};

}  // namespace

DetMoatResult RunDistributedMoat(const Graph& g, const IcInstance& ic,
                                 const DetMoatOptions& options,
                                 std::uint64_t seed) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  DSF_CHECK(options.epsilon >= 0.0L);
  const StaticKnowledge known = detail::KnownOrThrow(g);
  // Minimization happens inside the protocol (the root broadcasts singleton
  // labels for dropping); nodes start from their raw input labels so the
  // label information really crosses the network — the Section 3 lower-bound
  // harness meters exactly this traffic.
  const long t = ic.NumTerminals();

  DetMoatResult result;
  if (t == 0) return result;

  Network net(g, known, seed, options.net);
  if (!options.metered_cut.empty()) net.RegisterCut(options.metered_cut);
  net.Start([&](NodeId v) {
    return std::make_unique<DetMoatProgram>(v, ic.LabelOf(v),
                                            options.epsilon);
  });
  const long s = known.spd_bound;
  const long d = known.diameter_bound;
  const long limit = 20000 + 40 * (d + 4) + 8 * (s + 4) * (t + 4) +
                     4 * t * t + 8 * (t + 2) * (s + d + 8);
  result.stats = net.Run(limit);
  DSF_CHECK_MSG(!result.stats.hit_round_limit,
                "distributed moat growing exceeded the round budget");

  auto& root =
      dynamic_cast<DetMoatProgram&>(net.ProgramAt(g.NumNodes() - 1));
  result.raw_forest = root.raw_edges;
  result.merges = root.schedule.merges;
  result.dual_sum = root.schedule.dual_sum;
  result.phases = root.schedule.merge_phases;
  result.checkpoints = root.schedule.growth_phases;
  // A cancelled run holds a partial (possibly infeasible) mark set; hand it
  // back raw — the pipeline reports `cancelled` and validation decides.
  if (result.stats.cancelled) {
    result.forest = root.raw_edges;
    return result;
  }
  // Minimal-subforest extraction: centralized substitute for the token
  // routing of Appendix F.3 (DESIGN.md §7).
  result.forest = MinimalFeasibleSubforest(g, MakeMinimal(ic), root.raw_edges);
  return result;
}

}  // namespace dsf
