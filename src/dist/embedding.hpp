// LE-list / virtual-tree embedding substrate (Khan et al., used by the
// randomized algorithm of Section 5).
//
// Every node draws a random rank; the LE (least-elements) list of v holds
// exactly the nodes w that have the maximum rank within the ball
// B(v, wd(v, w)). Sorted by distance, ranks strictly ascend, the expected
// list length is O(log n), and the level-i virtual-tree ancestor of v is the
// maximum-rank node within radius β·2^i — which is always an LE-list member,
// so `AncestorWithin` reads it off directly.
//
// `LeListModule` computes the lists distributively: a node's kept entries
// are flooded to its neighbors (one message per edge per round, bounded
// queues), and insertion keeps the Pareto set under (distance up, rank up).
// The fixed point equals the centralized `ComputeEmbeddingReference` because
// an LE member of v is an LE member of every node on a least-weight path to
// it. An optional hop budget truncates propagation (the min{s, √n} device of
// Theorem 5.2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "congest/message.hpp"
#include "congest/network.hpp"
#include "congest/protocols.hpp"
#include "graph/graph.hpp"

namespace dsf {

// CONGEST channel used by LE-list propagation.
inline constexpr std::int32_t kChLe = kChApp + 1;

// β is drawn from [1, 2) at kBetaScale fixed-point resolution; level i of
// the virtual tree has radius β·2^i (= (beta_scaled << i) / kBetaScale).
inline constexpr std::int64_t kBetaScale = 1 << 16;

// Random node rank; distinct keys w.h.p., ties broken by node id.
struct Rank {
  std::uint64_t key = 0;
  NodeId node = kNoNode;

  friend bool operator==(const Rank&, const Rank&) = default;
  friend bool operator<(const Rank& a, const Rank& b) {
    return a.key < b.key || (a.key == b.key && a.node < b.node);
  }
};

// Deterministic rank of node v under a master seed.
Rank RankOf(NodeId v, std::uint64_t seed);

// Scaled β in [kBetaScale, 2 * kBetaScale), deterministic in the seed.
std::int64_t DeriveBetaScaled(std::uint64_t seed);

// Number of virtual-tree levels needed to cover a weighted diameter:
// smallest L >= 2 with 2^(L-1) >= wd, so the top radius β·2^(L-1) reaches
// every node.
int NumLevels(Weight weighted_diameter);

struct LeEntry {
  NodeId node = kNoNode;
  std::uint64_t rank_key = 0;
  Weight dist = 0;
  int via_local = -1;  // local edge the entry arrived on; -1 for self
};

// Pareto list of (distance, rank) pairs: ascending distance, strictly
// ascending rank.
class LeList {
 public:
  // Inserts unless dominated (an existing entry at distance <= e.dist with
  // rank >= e.rank_key); removes entries the new one dominates. Returns
  // whether the entry was kept.
  bool Insert(const LeEntry& e);

  [[nodiscard]] const std::vector<LeEntry>& Entries() const noexcept {
    return entries_;
  }

  // The maximum-rank entry within `radius` (the farthest kept entry with
  // dist <= radius), or nullptr if none.
  [[nodiscard]] const LeEntry* AncestorWithin(Weight radius) const;

 private:
  std::vector<LeEntry> entries_;  // ascending dist
};

// Distributed LE-list computation, embedded into a host TreeProgramBase:
// the host feeds kChLe deliveries to OnReceive and calls Tick every round.
class LeListModule {
 public:
  // `max_hops` < 0 disables truncation.
  void Configure(NodeId id, std::uint64_t seed, int degree, int max_hops = -1);

  void OnReceive(NodeApi& api, const Delivery& d);
  void Tick(NodeApi& api);

  // True while Tick still has queued updates to flood (active-set hook).
  [[nodiscard]] bool HasPending() const noexcept {
    return queues_.HasPending();
  }

  [[nodiscard]] const LeList& List() const noexcept { return list_; }

 private:
  struct PendingValue {
    std::uint64_t rank_key = 0;
    Weight dist = 0;
    std::int64_t hops = 0;
  };
  void Enqueue(NodeId node, const PendingValue& value, int except_local);

  NodeId id_ = kNoNode;
  int degree_ = 0;
  int max_hops_ = -1;
  std::uint64_t seed_ = 0;
  LeList list_;
  // Rate-limited flooding: the shared per-edge key queues plus the freshest
  // (rank, dist, hops) per node — re-improvements update the value in place,
  // and a value must survive even if the entry is later pruned from the
  // list, so it cannot be read back from list_ at send time.
  KeyedEdgeQueues queues_;
  std::map<NodeId, PendingValue> pending_;
  std::vector<NodeId> pop_scratch_;  // reused by Tick
};

// Centralized reference embedding (exact mirror of the module's fixed
// point), used for validation and the stretch benchmarks.
struct EmbeddingReference {
  int levels = 0;
  std::int64_t beta_scaled = 0;
  std::vector<std::vector<LeEntry>> le_lists;  // per node, ascending dist
  std::vector<std::vector<NodeId>> ancestors;  // per node, per level
};

EmbeddingReference ComputeEmbeddingReference(const Graph& g,
                                             std::uint64_t seed);

}  // namespace dsf
