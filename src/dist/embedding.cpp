#include "dist/embedding.hpp"

#include <algorithm>

#include "common/random.hpp"
#include "graph/shortest_paths.hpp"

namespace dsf {

namespace {

// At most this many LE updates leave a node per edge per round.
constexpr int kLePerRound = 2;

}  // namespace

Rank RankOf(NodeId v, std::uint64_t seed) {
  SplitMix64 rng(DeriveSeed(seed ^ 0x5e11157f00dULL,
                            static_cast<std::uint64_t>(v)));
  return Rank{rng.Next(), v};
}

std::int64_t DeriveBetaScaled(std::uint64_t seed) {
  SplitMix64 rng(DeriveSeed(seed, 0xbe7aULL));
  return kBetaScale +
         static_cast<std::int64_t>(rng.NextBelow(
             static_cast<std::uint64_t>(kBetaScale)));
}

int NumLevels(Weight weighted_diameter) {
  int levels = 2;
  while ((Weight{1} << (levels - 1)) < weighted_diameter) ++levels;
  return levels;
}

// ---------------------------------------------------------------------------
// LeList
// ---------------------------------------------------------------------------

bool LeList::Insert(const LeEntry& e) {
  for (const auto& x : entries_) {
    if (x.dist <= e.dist && x.rank_key >= e.rank_key) return false;
  }
  std::erase_if(entries_, [&](const LeEntry& x) {
    return x.dist >= e.dist && x.rank_key <= e.rank_key;
  });
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), e,
      [](const LeEntry& a, const LeEntry& b) { return a.dist < b.dist; });
  entries_.insert(pos, e);
  return true;
}

const LeEntry* LeList::AncestorWithin(Weight radius) const {
  const LeEntry* best = nullptr;
  for (const auto& x : entries_) {
    if (x.dist > radius) break;
    best = &x;
  }
  return best;
}

// ---------------------------------------------------------------------------
// LeListModule
// ---------------------------------------------------------------------------

void LeListModule::Configure(NodeId id, std::uint64_t seed, int degree,
                             int max_hops) {
  id_ = id;
  seed_ = seed;
  degree_ = degree;
  max_hops_ = max_hops;
  list_ = LeList();
  queues_.Configure(degree);
  pending_.clear();
  const Rank self = RankOf(id, seed);
  list_.Insert({id, self.key, 0, -1});
  Enqueue(id, PendingValue{self.key, 0, 0}, /*except_local=*/-1);
}

void LeListModule::Enqueue(NodeId node, const PendingValue& value,
                           int except_local) {
  pending_[node] = value;
  queues_.EnqueueAll(node, except_local);
}

void LeListModule::OnReceive(NodeApi& api, const Delivery& d) {
  DSF_CHECK(d.msg.channel == kChLe);
  const auto node = static_cast<NodeId>(d.msg.fields[0]);
  const auto rank_key = static_cast<std::uint64_t>(d.msg.fields[1]);
  const Weight dist = d.msg.fields[2] + api.EdgeWeight(d.from_local);
  const std::int64_t hops = d.msg.fields[3] + 1;
  if (max_hops_ >= 0 && hops > max_hops_) return;
  if (!list_.Insert({node, rank_key, dist, d.from_local})) return;
  Enqueue(node, PendingValue{rank_key, dist, hops}, d.from_local);
}

void LeListModule::Tick(NodeApi& api) {
  if (!queues_.HasPending()) return;
  for (int e = 0; e < degree_; ++e) {
    queues_.PopInto(e, kLePerRound, pop_scratch_);
    for (const NodeId node : pop_scratch_) {
      const PendingValue& value = pending_.at(node);  // freshest value
      api.Send(e, Message{kChLe,
                          {node, static_cast<std::int64_t>(value.rank_key),
                           value.dist, value.hops}});
    }
  }
}

// ---------------------------------------------------------------------------
// Centralized reference
// ---------------------------------------------------------------------------

EmbeddingReference ComputeEmbeddingReference(const Graph& g,
                                             std::uint64_t seed) {
  const int n = g.NumNodes();
  EmbeddingReference ref;
  ref.beta_scaled = DeriveBetaScaled(seed);
  Weight wd = 1;
  ref.le_lists.resize(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> rank(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    rank[static_cast<std::size_t>(v)] = RankOf(v, seed).key;
  }
  std::vector<std::vector<Weight>> all_dist;
  all_dist.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    all_dist.push_back(Dijkstra(g, v).dist);
    for (const Weight d : all_dist.back()) {
      if (d < kInfWeight) wd = std::max(wd, d);
    }
  }
  ref.levels = NumLevels(wd);

  for (NodeId v = 0; v < n; ++v) {
    // Nodes in ascending distance; within a distance group only the maximum
    // rank can be an LE member, and only if it beats every closer node.
    std::vector<std::pair<Weight, NodeId>> by_dist;
    for (NodeId w = 0; w < n; ++w) {
      const Weight d = all_dist[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)];
      if (d < kInfWeight) by_dist.push_back({d, w});
    }
    std::sort(by_dist.begin(), by_dist.end());
    auto& list = ref.le_lists[static_cast<std::size_t>(v)];
    bool have_best = false;
    std::uint64_t best_rank = 0;
    std::size_t i = 0;
    while (i < by_dist.size()) {
      std::size_t j = i;
      NodeId group_best = by_dist[i].second;
      while (j < by_dist.size() && by_dist[j].first == by_dist[i].first) {
        if (rank[static_cast<std::size_t>(by_dist[j].second)] >
            rank[static_cast<std::size_t>(group_best)]) {
          group_best = by_dist[j].second;
        }
        ++j;
      }
      const std::uint64_t r = rank[static_cast<std::size_t>(group_best)];
      if (!have_best || r > best_rank) {
        list.push_back({group_best, r, by_dist[i].first, -1});
        best_rank = r;
        have_best = true;
      }
      i = j;
    }
  }

  ref.ancestors.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    LeList list;
    for (const auto& e : ref.le_lists[static_cast<std::size_t>(v)]) {
      list.Insert(e);
    }
    auto& anc = ref.ancestors[static_cast<std::size_t>(v)];
    anc.reserve(static_cast<std::size_t>(ref.levels));
    for (int i = 0; i < ref.levels; ++i) {
      const Weight radius =
          static_cast<Weight>((ref.beta_scaled << i) / kBetaScale);
      const LeEntry* e = list.AncestorWithin(radius);
      anc.push_back(e != nullptr ? e->node : v);
    }
  }
  return ref;
}

}  // namespace dsf
