#include "dist/runtime.hpp"

#include <map>

#include "graph/properties.hpp"

namespace dsf::detail {

StaticKnowledge KnownOrThrow(const Graph& g) {
  DSF_CHECK(g.Finalized());
  DSF_CHECK(g.NumNodes() >= 1);
  // Memoized: repeated runs on the same topology (benchmark sweeps, the
  // randomized algorithm's repetitions) pay the all-pairs computation once.
  const GraphParameters& params = CachedParameters(g);
  DSF_CHECK_MSG(params.connected,
                "distributed protocols require a connected topology");
  StaticKnowledge known;
  known.n = g.NumNodes();
  known.diameter_bound = params.unweighted_diameter;
  known.spd_bound = params.shortest_path_diameter;
  known.weighted_diameter_bound = params.weighted_diameter;
  return known;
}

std::set<Label> SingletonLabels(
    const std::vector<std::vector<std::int64_t>>& terminal_items) {
  std::map<Label, int> count;
  for (const auto& item : terminal_items) ++count[static_cast<Label>(item[1])];
  std::set<Label> singletons;
  for (const auto& [label, c] : count) {
    if (c < 2) singletons.insert(label);
  }
  return singletons;
}

}  // namespace dsf::detail
