// Distributed Borůvka / GHS-style minimum spanning tree.
//
// Baseline building block for the paper's MST specialization claims (moat
// growing with t = n, k = 1 returns an exact MST): in each phase every node
// exchanges its fragment identifier with its neighbors, convergecasts its
// lightest outgoing edge — keyed by (weight, edge id), which makes the MST
// unique and equal to Kruskal's — and the coordinator merges fragments and
// pipelines the relabeling back down the BFS tree. Fragment counts at least
// halve per phase, so there are at most ceil(log2 n) phases of O(D + n')
// rounds each.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace dsf {

struct BoruvkaResult {
  std::vector<EdgeId> tree;  // the unique MST under (weight, edge id) keys
  int phases = 0;            // Borůvka phases executed (<= ceil(log2 n))
  RunStats stats;
};

// Runs the distributed MST protocol; disconnected graphs throw
// std::logic_error.
BoruvkaResult RunDistributedMst(const Graph& g, std::uint64_t seed = 1);

}  // namespace dsf
