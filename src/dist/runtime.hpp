// Shared plumbing for the dist/ protocol wrappers: every Run* entry point
// computes the globally known parameters (footnote 2 of the paper grants n,
// D, s — and the randomized algorithm's level count needs a WD bound), and
// rejects disconnected topologies, on which the BFS coordination tree (and
// hence every protocol) cannot be built.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace dsf::detail {

// Computes {n, D, s, WD} for `g` and throws std::logic_error (via DSF_CHECK)
// when g is disconnected.
StaticKnowledge KnownOrThrow(const Graph& g);

// The labels held by fewer than two terminals among convergecast
// (node, label) items — the components Lemma 2.4 drops. Shared by the
// standalone minimization protocol and the moat protocol's inline
// minimization so the two cannot diverge.
std::set<Label> SingletonLabels(
    const std::vector<std::vector<std::int64_t>>& terminal_items);

}  // namespace dsf::detail
