// Distributed deterministic moat growing (Section 4.1 / Theorem 4.17).
//
// The protocol emulates Algorithm 1 (epsilon == 0) / Algorithm 2 (> 0)
// exactly, merge by merge:
//
//   1. Terminals announce (id, label) over a pipelined convergecast
//      (Lemma 2.3 machinery) while a multi-source Bellman-Ford computes, at
//      every node and for every terminal source, the canonical least-weight
//      label (dist, hops, parent) with the *same* deterministic tie-breaking
//      as the centralized Dijkstra — ties toward fewer hops, then smaller
//      predecessor id — so the distributed shortest-path forest is the
//      centralized one.
//   2. Once the quiescence detector certifies convergence, terminals
//      convergecast their t distance/hop labels; the coordinator now holds
//      the exact terminal-terminal metric and replays the shared event
//      engine (`ComputeMoatSchedule`, steiner/moat.hpp) — the identical code
//      path the centralized reference runs, hence an identical merge log,
//      dual sum, and phase structure.
//   3. Each scheduled merge is realized by a token walk along the stored
//      Bellman-Ford parent pointers from the merge target back to the merge
//      source; walked nodes report their path edge up the BFS tree and the
//      coordinator replays the centralized cycle-dropping union-find over
//      the reported edges in source-to-target order.
//
// The final minimal-subforest extraction (Algorithm 1 line 34, Appendix F.3)
// is substituted by the centralized pruner and documented in DESIGN.md §7.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "steiner/instance.hpp"
#include "steiner/moat.hpp"

namespace dsf {

struct DetMoatOptions {
  // ε of Algorithm 2; epsilon == 0 runs Algorithm 1 (exact events).
  Real epsilon = 0.0L;
  // Edges whose traffic the simulator meters separately (lower-bound
  // harness, Section 3).
  std::vector<EdgeId> metered_cut;
  // Simulator scheduling (active-set / threads); every setting is
  // bit-identical, see DESIGN.md §2.
  NetworkOptions net;
};

struct DetMoatResult {
  std::vector<EdgeId> forest;      // minimal feasible subforest (the output)
  std::vector<EdgeId> raw_forest;  // F_imax before final pruning
  std::vector<MergeRecord> merges;
  Fixed dual_sum = 0;   // lower bound on OPT (Lemma C.4)
  int phases = 0;       // merge phases (Definition 4.3 / 4.19)
  int checkpoints = 0;  // Algorithm 2 growth phases (0 for Algorithm 1)
  RunStats stats;
};

// Runs the distributed protocol on the CONGEST simulator. Non-minimal
// instances are reduced via MakeMinimal first; disconnected topologies throw
// std::logic_error. The result is merge-by-merge identical to
// CentralizedMoatGrowing on the same instance.
DetMoatResult RunDistributedMoat(const Graph& g, const IcInstance& ic,
                                 const DetMoatOptions& options = {},
                                 std::uint64_t seed = 1);

}  // namespace dsf
