// Distributed input transformations (Lemmas 2.3 and 2.4).
//
// RunDistributedCrToIc: DSF-CR -> DSF-IC in O(t + D) rounds. Connection
// requests are convergecast to the BFS root over a pipelined collection; the
// root identifies the connected components of the request graph and assigns
// each the smallest terminal identifier it contains as the component label
// (exactly the labeling of the centralized `CrToIc`), then pipelines the
// (terminal, label) assignments back down the tree.
//
// RunDistributedMakeMinimal: instance minimization in O(t + D) collection +
// O(k + D) broadcast rounds. Terminals report (id, label); the root counts
// label multiplicities and broadcasts the <= k labels with a single terminal,
// which their holders drop (Lemma 2.4: singleton components are trivially
// satisfied).
//
// Both protocols only use local knowledge plus the coordination primitives of
// congest/protocols.hpp; the returned instance is assembled from the
// per-node program states after the run.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct TransformResult {
  IcInstance instance;
  RunStats stats;
};

// Lemma 2.3: the equivalent DSF-IC instance of a DSF-CR instance, computed
// distributively. Labels are the smallest terminal id per request component.
// `net_opts` selects the simulator scheduling (bit-identical, DESIGN.md §2).
TransformResult RunDistributedCrToIc(const Graph& g, const CrInstance& cr,
                                     std::uint64_t seed = 1,
                                     const NetworkOptions& net_opts = {});

// Lemma 2.4: drops labels held by a single terminal, distributively.
TransformResult RunDistributedMakeMinimal(const Graph& g, const IcInstance& ic,
                                          std::uint64_t seed = 1,
                                          const NetworkOptions& net_opts = {});

}  // namespace dsf
