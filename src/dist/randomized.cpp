#include "dist/randomized.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "common/random.hpp"
#include "congest/protocols.hpp"
#include "dist/embedding.hpp"
#include "dist/runtime.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/union_find.hpp"
#include "steiner/moat.hpp"
#include "steiner/prune.hpp"
#include "steiner/spanner.hpp"

namespace dsf {

namespace {

constexpr std::int64_t kOpReportAnchors = 30;  // {op}
constexpr std::int64_t kOpConnect = 31;        // {op, label, level}

class RandProgram : public TreeProgramBase {
 public:
  RandProgram(NodeId id, Label label, std::uint64_t embed_seed, int max_hops)
      : TreeProgramBase(id),
        label_(label),
        embed_seed_(embed_seed),
        max_hops_(max_hops) {}

  long le_rounds = 0;  // coordinator: rounds until the embedding quiesced

 protected:
  void OnTreeReady(NodeApi& api) override {
    module_.Configure(Id(), embed_seed_, api.Degree(), max_hops_);
    anc_pipe_.Configure(kChExchange, static_cast<int>(ChildLocals().size()));
    levels_ = NumLevels(api.Known().weighted_diameter_bound);
    beta_scaled_ = DeriveBetaScaled(embed_seed_);
    floor_ = api.Round();
  }

  void OnAppRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      switch (d.msg.channel) {
        case kChLe:
          module_.OnReceive(api, d);
          break;
        case kChExchange:
          anc_pipe_.OnReceive(d.msg, IsRoot(), &anc_items_);
          break;
        case kChToken:
          if (static_cast<NodeId>(d.msg.fields[0]) != Id()) {
            Route(api, static_cast<NodeId>(d.msg.fields[0]));
          }
          break;
        default:
          break;
      }
    }
    module_.Tick(api);
    anc_pipe_.Tick(api, ParentLocal(), IsRoot() ? &anc_items_ : nullptr);
    if (IsRoot()) Drive(api);
  }

  // Quiescent once the LE flood queues drained and the anchor pipeline has
  // nothing to push; token routing is inbox-driven (receipt forces a tick).
  [[nodiscard]] bool AppWantsTick() const override {
    return module_.HasPending() || anc_pipe_.WantsTick();
  }

  void OnCtrl(NodeApi& api, const Message& msg) override {
    if (msg.fields.empty()) return;
    switch (msg.fields[0]) {
      case kOpReportAnchors:
        if (label_ != kNoLabel) {
          for (int i = 0; i < levels_; ++i) {
            anc_pipe_.Seed({Id(), static_cast<std::int64_t>(label_), i,
                            AnchorAt(i)});
          }
        }
        anc_pipe_.MarkOwnDone();
        break;
      case kOpConnect:
        if (label_ != kNoLabel &&
            static_cast<Label>(msg.fields[1]) == label_) {
          const auto target = static_cast<NodeId>(
              AnchorAt(static_cast<int>(msg.fields[2])));
          if (target != Id()) Route(api, target);
        }
        break;
      default:
        break;
    }
  }

 private:
  [[nodiscard]] std::int64_t AnchorAt(int level) const {
    const Weight radius =
        static_cast<Weight>((beta_scaled_ << level) / kBetaScale);
    const LeEntry* e = module_.List().AncestorWithin(radius);
    return e != nullptr ? e->node : Id();
  }

  // Forwards a token toward `target` along the LE via-pointer, marking the
  // traversed edge. A truncated list may lack the entry (the hop budgets of
  // intersecting balls need not be consistent); the walk then stops and the
  // substituted second stage repairs the gap.
  void Route(NodeApi& api, NodeId target) {
    for (const auto& e : module_.List().Entries()) {
      if (e.node == target && e.via_local >= 0) {
        api.MarkEdge(e.via_local);
        api.Send(e.via_local, Message{kChToken, {target}});
        return;
      }
    }
  }

  void Drive(NodeApi& api) {
    const int d = api.Known().diameter_bound;
    switch (stage_) {
      case Stage::kEmbed:
        if (api.Round() > floor_ + d + 3 && GloballyQuiet(api)) {
          le_rounds = api.Round();
          stage_ = Stage::kAnchors;
          BroadcastCtrl(Message{kChCtrl, {kOpReportAnchors}});
        }
        break;
      case Stage::kAnchors:
        if (anc_pipe_.Complete()) {
          IssueConnects(api);
        }
        break;
      case Stage::kTokens:
        // All tokens start within D rounds of the last connect broadcast
        // being processed and then move every round, so this certifies
        // global completion (see the quiescence analysis in DESIGN.md §2).
        if (api.Round() > connect_round_ + 2 * d + 4 && GloballyQuiet(api)) {
          stage_ = Stage::kDone;
          Finish();
        }
        break;
      case Stage::kDone:
        break;
    }
  }

  void IssueConnects(NodeApi& api) {
    // anchors[label][terminal][level]
    std::map<Label, std::map<NodeId, std::vector<NodeId>>> anchors;
    for (const auto& item : anc_items_) {
      auto& chain = anchors[static_cast<Label>(item[1])]
                           [static_cast<NodeId>(item[0])];
      chain.resize(static_cast<std::size_t>(levels_), kNoNode);
      chain[static_cast<std::size_t>(item[2])] =
          static_cast<NodeId>(item[3]);
    }
    for (const auto& [label, chains] : anchors) {
      // Lowest level at which the component's terminals agree on an
      // ancestor; with full lists the top level always works (the global
      // maximum rank), with truncated lists the fallback leaves clusters
      // for stage 2.
      int level = levels_ - 1;
      for (int i = 0; i < levels_; ++i) {
        NodeId shared = kNoNode;
        bool agree = true;
        for (const auto& [term, chain] : chains) {
          const NodeId a = chain[static_cast<std::size_t>(i)];
          if (shared == kNoNode) shared = a;
          if (a != shared) {
            agree = false;
            break;
          }
        }
        if (agree) {
          level = i;
          break;
        }
      }
      BroadcastCtrl(Message{kChCtrl,
                            {kOpConnect, static_cast<std::int64_t>(label),
                             level}});
    }
    // The last connect op leaves the root once the control backlog drains;
    // tokens start within D more rounds of that.
    connect_round_ = api.Round() + static_cast<long>(CtrlBacklog());
    stage_ = Stage::kTokens;
  }

  enum class Stage { kEmbed, kAnchors, kTokens, kDone };

  Label label_;
  std::uint64_t embed_seed_;
  int max_hops_;
  int levels_ = 2;
  std::int64_t beta_scaled_ = kBetaScale;
  long floor_ = 0;
  LeListModule module_;
  CollectPipeline anc_pipe_;

  // Coordinator state.
  Stage stage_ = Stage::kEmbed;
  std::vector<std::vector<std::int64_t>> anc_items_;
  long connect_round_ = 0;
};

// Spanning forest of an edge subset under (weight, edge id) keys.
std::vector<EdgeId> SpanningForestOf(const Graph& g,
                                     std::vector<EdgeId> edges) {
  std::sort(edges.begin(), edges.end(), [&](EdgeId a, EdgeId b) {
    return std::tie(g.GetEdge(a).w, a) < std::tie(g.GetEdge(b).w, b);
  });
  UnionFind uf(g.NumNodes());
  std::vector<EdgeId> forest;
  for (const EdgeId e : edges) {
    const auto& edge = g.GetEdge(e);
    if (uf.Union(edge.u, edge.v)) forest.push_back(e);
  }
  return forest;
}

struct RepOutcome {
  std::vector<EdgeId> forest;
  int reduced_terminals = 0;
  long le_rounds = 0;
  RunStats stats;
};

// One full pipeline run: network stage 1, then the (possibly trivial)
// substituted stage 2 and the centralized pruning.
RepOutcome RunPipelineOnce(const Graph& g, const StaticKnowledge& known,
                           const IcInstance& minimal, bool truncated,
                           const std::vector<EdgeId>& metered_cut,
                           const NetworkOptions& net_opts,
                           std::uint64_t rep_seed) {
  const long n = g.NumNodes();
  const long s = known.spd_bound;
  const long d = known.diameter_bound;
  const long t = minimal.NumTerminals();

  int max_hops = -1;
  if (truncated) {
    int h = 1;
    while (static_cast<long>(h) * h < n) ++h;
    max_hops = h;
  }

  Network net(g, known, rep_seed, net_opts);
  if (!metered_cut.empty()) net.RegisterCut(metered_cut);
  net.Start([&](NodeId v) {
    return std::make_unique<RandProgram>(v, minimal.LabelOf(v), rep_seed,
                                         max_hops);
  });
  const int levels = NumLevels(known.weighted_diameter_bound);
  const long limit = 40000 + 40 * (n + s + d + 16) + 4 * t * levels +
                     8 * (t + 2) * (s + d + 8);
  RepOutcome out;
  out.stats = net.Run(limit);
  DSF_CHECK_MSG(!out.stats.hit_round_limit,
                "randomized Steiner forest exceeded the round budget");
  out.le_rounds =
      dynamic_cast<RandProgram&>(net.ProgramAt(g.NumNodes() - 1)).le_rounds;

  // Stage-1 output: spanning forest of the token-marked edges.
  std::vector<EdgeId> forest = SpanningForestOf(g, net.MarkedEdges());
  if (out.stats.cancelled) {
    // Partial marks from a cancelled run: skip stage 2 and the minimal
    // extraction — the caller reports `cancelled` and validation decides.
    out.forest = std::move(forest);
    return out;
  }

  // Stage 2 (substituted, DESIGN.md "Substitutions"): components of each
  // input component's terminals that stage 1 left apart become the
  // F-reduced instance on cluster representatives, solved on a greedy
  // metric spanner and realized as least-weight paths.
  UnionFind comp(g.NumNodes());
  for (const EdgeId e : forest) comp.Union(g.GetEdge(e).u, g.GetEdge(e).v);
  std::map<Label, std::map<int, NodeId>> reps;  // label -> comp root -> rep
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (!minimal.IsTerminal(v)) continue;
    auto [it, inserted] =
        reps[minimal.LabelOf(v)].try_emplace(comp.Find(v), v);
    if (!inserted) it->second = std::min(it->second, v);
  }
  std::vector<NodeId> supers;
  std::vector<Label> super_labels;
  for (const auto& [label, clusters] : reps) {
    if (clusters.size() < 2) continue;
    for (const auto& [root, rep] : clusters) {
      supers.push_back(rep);
      super_labels.push_back(label);
    }
  }
  if (!supers.empty()) {
    const int m = static_cast<int>(supers.size());
    out.reduced_terminals = m;
    std::vector<ShortestPathTree> trees;
    trees.reserve(static_cast<std::size_t>(m));
    for (const NodeId v : supers) trees.push_back(Dijkstra(g, v));
    std::vector<std::vector<Weight>> dist(
        static_cast<std::size_t>(m),
        std::vector<Weight>(static_cast<std::size_t>(m), 0));
    for (int a = 0; a < m; ++a) {
      for (int b = 0; b < m; ++b) {
        dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            trees[static_cast<std::size_t>(a)]
                .dist[static_cast<std::size_t>(supers[static_cast<std::size_t>(b)])];
      }
    }
    int stretch_k = 2;
    while ((1 << stretch_k) < m) ++stretch_k;
    const auto spanner = GreedyMetricSpanner(dist, stretch_k);
    Graph sg(m);
    for (const auto& e : spanner) sg.AddEdge(e.a, e.b, e.w);
    sg.Finalize();
    IcInstance reduced;
    reduced.labels.assign(static_cast<std::size_t>(m), kNoLabel);
    for (int a = 0; a < m; ++a) {
      reduced.labels[static_cast<std::size_t>(a)] =
          super_labels[static_cast<std::size_t>(a)];
    }
    const auto solved = CentralizedMoatGrowing(sg, reduced);
    std::set<EdgeId> combined(forest.begin(), forest.end());
    for (const EdgeId se : solved.forest) {
      const auto& edge = sg.GetEdge(se);
      for (const EdgeId e : trees[static_cast<std::size_t>(edge.u)].PathTo(
               supers[static_cast<std::size_t>(edge.v)])) {
        combined.insert(e);
      }
    }
    out.stats.charged_rounds += static_cast<long>(m) * (s + d + 2);
    forest = SpanningForestOf(
        g, std::vector<EdgeId>(combined.begin(), combined.end()));
  }
  if (truncated) {
    // Charge for the propagation the √n hop budget substituted away.
    out.stats.charged_rounds += s + d + 2;
  }

  out.forest = MinimalFeasibleSubforest(g, minimal, forest);
  return out;
}

void AccumulateStats(RunStats& into, const RunStats& rep) {
  into.rounds += rep.rounds;
  into.messages += rep.messages;
  into.total_bits += rep.total_bits;
  into.max_bits_per_edge_round =
      std::max(into.max_bits_per_edge_round, rep.max_bits_per_edge_round);
  into.cut_bits += rep.cut_bits;
  into.cut_messages += rep.cut_messages;
  into.charged_rounds += rep.charged_rounds;
  into.phases += rep.phases;
  into.hit_round_limit = into.hit_round_limit || rep.hit_round_limit;
  into.cancelled = into.cancelled || rep.cancelled;
}

}  // namespace

RandomizedResult RunRandomizedSteinerForest(const Graph& g,
                                            const IcInstance& ic,
                                            const RandomizedOptions& options,
                                            std::uint64_t seed) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  DSF_CHECK(options.repetitions >= 1);
  DSF_CHECK_MSG(!(options.force_truncated && options.force_full),
                "force_truncated and force_full are mutually exclusive");
  const StaticKnowledge known = detail::KnownOrThrow(g);
  const IcInstance minimal = MakeMinimal(ic);

  RandomizedResult result;
  if (minimal.NumTerminals() == 0) return result;

  const long s = known.spd_bound;
  result.truncated =
      options.force_truncated ||
      (!options.force_full && s * s > static_cast<long>(known.n));

  bool have_best = false;
  Weight best_weight = 0;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    const auto out = RunPipelineOnce(
        g, known, minimal, result.truncated, options.metered_cut, options.net,
        DeriveSeed(seed, static_cast<std::uint64_t>(rep)));
    AccumulateStats(result.stats, out.stats);
    result.le_rounds += out.le_rounds;
    if (out.stats.cancelled) {
      // A cancelled repetition's partial forest may be infeasible yet
      // cheap; never let it displace a completed repetition's result.
      if (!have_best) result.forest = out.forest;
      break;
    }
    const Weight w = g.WeightOf(out.forest);
    if (!have_best || w < best_weight) {
      have_best = true;
      best_weight = w;
      result.forest = out.forest;
      result.reduced_terminals = out.reduced_terminals;
    }
  }
  return result;
}

RandomizedResult RunKhanBaseline(const Graph& g, const IcInstance& ic,
                                 std::uint64_t seed,
                                 const NetworkOptions& net_opts) {
  DSF_CHECK(ic.NumNodes() == g.NumNodes());
  const StaticKnowledge known = detail::KnownOrThrow(g);
  const IcInstance minimal = MakeMinimal(ic);

  RandomizedResult result;
  if (minimal.NumTerminals() == 0) return result;

  // One full (untruncated) selection pass per input component — the
  // per-component repetition the filtered single pass avoids.
  std::vector<EdgeId> combined;
  const auto labels = minimal.DistinctLabels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    IcInstance sub;
    sub.labels.assign(static_cast<std::size_t>(g.NumNodes()), kNoLabel);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (minimal.LabelOf(v) == labels[i]) {
        sub.labels[static_cast<std::size_t>(v)] = labels[i];
      }
    }
    const auto out =
        RunPipelineOnce(g, known, sub, /*truncated=*/false, {}, net_opts,
                        DeriveSeed(seed, 0x4a5 + i));
    AccumulateStats(result.stats, out.stats);
    result.le_rounds += out.le_rounds;
    result.reduced_terminals += out.reduced_terminals;
    combined.insert(combined.end(), out.forest.begin(), out.forest.end());
    if (out.stats.cancelled) break;
  }
  if (result.stats.cancelled) {
    result.forest = SpanningForestOf(g, std::move(combined));
    return result;
  }
  result.forest = MinimalFeasibleSubforest(
      g, minimal, SpanningForestOf(g, std::move(combined)));
  return result;
}

}  // namespace dsf
