// Admission control and batch coalescing between connection handlers and
// the solver engine (DESIGN.md §5).
//
// Connection handlers never run solver work themselves. Each cache-missing
// unit is submitted here; a single dispatcher thread collects queued units
// into batches of up to `batch_max` and runs them on one `BatchEngine`
// (solve/batch.hpp), so concurrent requests share the engine's round pool
// instead of oversubscribing cores with per-connection engines.
//
// Two admission rules bound the server:
//   * a depth limit: a submission that would push the number of queued +
//     running units past `max_pending` is rejected atomically (nothing from
//     that request is enqueued) — the caller answers "overloaded" instead
//     of stalling every connection behind an unbounded backlog,
//   * in-flight coalescing: a unit whose canonical key is already queued or
//     running joins the existing computation's ticket instead of enqueuing
//     a duplicate — under bursts of identical traffic the engine computes
//     each distinct key once.
//
// The dispatcher publishes every finished unit to the shared `ResultCache`
// and records its latency per solver (fixed-size reservoir) for `/stats`
// p50/p95 reporting. The same rings feed back into dispatch: portfolio
// mode=first units receive the current p50 digest as latency hints, so the
// race starts its historically-fastest member first (solve/solver.hpp,
// PortfolioStartOrder).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/cache.hpp"
#include "solve/batch.hpp"

namespace dsf {

// Completion ticket of one scheduled (or joined) unit. The submitter whose
// request *created* the ticket must keep the referenced graph alive until
// Wait() returns; joiners only read the result.
class UnitTicket {
 public:
  // Blocks until the dispatcher finished the unit. Empty error => success.
  const SolveResult& Wait();
  [[nodiscard]] const std::string& Error() const noexcept { return error_; }

 private:
  friend class AdmissionQueue;
  void Complete(SolveResult result);
  void CompleteError(std::string error);

  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  SolveResult result_;
  std::string error_;
};

struct QueueCounters {
  std::uint64_t admitted = 0;    // units enqueued for computation
  std::uint64_t coalesced = 0;   // units that joined an in-flight ticket
  std::uint64_t rejected = 0;    // whole submissions bounced by the bound
  std::uint64_t batches = 0;     // dispatcher batches executed
  std::uint64_t computed = 0;    // units finished by the engine
  std::uint64_t depth = 0;       // currently queued + running units
  std::uint64_t peak_depth = 0;
};

struct SolverLatency {
  std::string solver;
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

struct AdmissionOptions {
  int threads = 1;        // batch engine executors
  int batch_max = 32;     // max units per dispatched batch
  int max_pending = 1024; // admission bound on queued + running units
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(ResultCache* cache, AdmissionOptions options = {});
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  struct Admission {
    // One ticket per unit (request order); empty when the submission was
    // rejected by the depth bound — nothing was enqueued and no graph
    // reference was retained.
    std::vector<std::shared_ptr<UnitTicket>> tickets;
    std::uint64_t coalesced = 0;  // units of THIS call that joined in-flight
  };

  // Atomically admits one request's cache-missing units: every unit either
  // joins an in-flight ticket for its key or is enqueued. Requests carry
  // their final per-unit seeds in `seeds` (see serve/protocol.hpp on
  // determinism).
  [[nodiscard]] Admission SubmitAll(std::span<const SolveRequest> units,
                                    std::span<const CacheKey> keys,
                                    std::span<const std::uint64_t> seeds);

  // Stops admission (SubmitAll returns empty), lets the dispatcher finish
  // everything already queued, and joins it. Idempotent.
  void Drain();

  [[nodiscard]] QueueCounters Counters() const;
  // Latency digest per solver name, alphabetical.
  [[nodiscard]] std::vector<SolverLatency> Latencies() const;

 private:
  struct Task {
    SolveRequest request;  // borrows the submitter's graph
    CacheKey key;
    std::shared_ptr<UnitTicket> ticket;
  };

  void DispatchLoop();
  void RecordLatency(const std::string& solver, double ms);

  ResultCache* cache_;
  AdmissionOptions options_;
  std::unique_ptr<BatchEngine> engine_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closing_ = false;
  std::deque<Task> queue_;
  // Canonical key -> the ticket every duplicate joins. Entries cover queued
  // AND running units; erased only after the result is in the cache, so a
  // racing submitter always finds either the cache entry or the ticket.
  std::unordered_map<CacheKey, std::shared_ptr<UnitTicket>, CacheKeyHash>
      inflight_;
  QueueCounters counters_;

  // Fixed-size latency reservoir per solver (most recent samples win).
  struct LatencyRing {
    std::vector<double> samples;  // capacity kLatencyWindow
    std::size_t next = 0;
    std::uint64_t count = 0;
  };
  static constexpr std::size_t kLatencyWindow = 4096;
  mutable std::mutex latency_mutex_;
  std::map<std::string, LatencyRing> latency_;

  std::mutex join_mutex_;  // serializes Drain's join across callers
  std::thread dispatcher_;
};

}  // namespace dsf
