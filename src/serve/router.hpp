// The dsf shard router (DESIGN.md §5): a fault-tolerant front tier that
// spreads requests across M backend `dsf serve` processes and survives any
// of them dying mid-load.
//
// The router is itself a `LineEndpoint` speaking the same line-delimited
// JSON protocol as the backends, so the inter-tier wire format is the wire
// format — a client cannot tell a router from a single server (except that
// `stats` reports routing state instead of solver state). Routing is safe
// to retry because a solve response is a deterministic function of the
// request content: unit i always runs with seed DeriveSeed(spec seed, i),
// so replaying a request on another shard returns bit-identical bytes.
//
// Pieces:
//   * `HashRing` — consistent hashing with virtual nodes. Each request's
//     canonical key owns a full preference order of distinct backends (the
//     ring walk), so failover targets are deterministic and cache locality
//     survives single-shard loss: only keys owned by the dead shard move.
//   * `HealthMachine` — per-backend up/down state. Any transport failure
//     (connect refused, socket deadline, EOF mid-request, malformed reply)
//     counts toward down; only consecutive *probe* successes re-admit a
//     down backend, so a flapping process must prove itself before it
//     takes traffic again.
//   * a probe thread pinging every backend each `probe_interval_ms`,
//   * per-backend upstream connection pools (flushed on an up→down
//     transition; a reused pooled fd that fails gets one fresh-connection
//     retry before the backend is blamed),
//   * a router-local `HotCache` of id-stripped response lines keyed by
//     `RouterRequestKey` in front of the per-shard result caches,
//   * bounded retry with exponential backoff + deterministic jitter
//     (serve/retry.hpp) and failover along the ring walk; all replicas
//     down yields a structured {"ok":false,"error":"unavailable"} reply.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cli/json.hpp"
#include "serve/cache.hpp"
#include "serve/listener.hpp"
#include "serve/retry.hpp"

namespace dsf {

struct BackendSpec {
  std::string host = "127.0.0.1";
  int port = 0;
};

// Parses "host:port" or a bare port (host defaults to 127.0.0.1); throws
// std::runtime_error on malformed input.
[[nodiscard]] BackendSpec ParseBackendSpec(const std::string& text);

// --- consistent hash ring ----------------------------------------------------

class HashRing {
 public:
  // `replicas_per_backend` virtual nodes per backend; points are Mix64
  // digests of (backend, replica), so the ring is deterministic across
  // processes given the same backend count.
  HashRing(std::size_t backend_count, int replicas_per_backend);

  // The backend owning `point` (first ring node clockwise of it).
  [[nodiscard]] int PrimaryBackend(std::uint64_t point) const;

  // Every distinct backend in ring-walk order starting at `point`'s owner:
  // element 0 is the primary, element 1 the first failover target, and so
  // on. Deterministic, so a retry after restart lands on the same shards.
  [[nodiscard]] std::vector<int> PreferenceOrder(std::uint64_t point) const;

  [[nodiscard]] std::size_t BackendCount() const noexcept {
    return backend_count_;
  }

 private:
  std::vector<std::pair<std::uint64_t, int>> ring_;  // (point, backend)
  std::size_t backend_count_ = 0;
};

// --- per-backend health ------------------------------------------------------

struct HealthPolicy {
  // Transport failures (probe or in-band) before an up backend goes down.
  int failures_to_down = 1;
  // Consecutive probe successes before a down backend is re-admitted.
  // In-band successes never re-admit: a backend that answered one straggler
  // while flapping has not proven it can take traffic.
  int successes_to_up = 2;
};

class HealthMachine {
 public:
  explicit HealthMachine(HealthPolicy policy = {}) : policy_(policy) {}

  // Records a transport failure. Returns true on the up→down transition.
  bool RecordFailure();
  // Records a probe success. Returns true on the down→up transition.
  bool RecordProbeSuccess();
  // Records an in-band success: clears the failure streak of an up
  // backend; ignored while down (only probes re-admit).
  void RecordSuccess();

  [[nodiscard]] bool IsUp() const noexcept { return up_; }
  [[nodiscard]] int ConsecutiveFailures() const noexcept {
    return consecutive_failures_;
  }
  [[nodiscard]] int ConsecutiveSuccesses() const noexcept {
    return consecutive_successes_;
  }

 private:
  HealthPolicy policy_;
  bool up_ = true;  // optimistic start; the first failure downs it
  int consecutive_failures_ = 0;
  int consecutive_successes_ = 0;
};

// --- router-local hot cache --------------------------------------------------

// LRU of id-stripped response lines keyed by the canonical request key. A
// hit skips the backend hop entirely; safe because responses are
// deterministic functions of the id-stripped request. capacity == 0
// disables (every lookup misses, inserts are dropped).
class HotCache {
 public:
  explicit HotCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::optional<std::string> Lookup(const CacheKey& key);
  void Insert(const CacheKey& key, std::string response);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t capacity = 0;
  };
  [[nodiscard]] Counters GetCounters() const;

 private:
  std::size_t capacity_ = 0;
  mutable std::mutex mutex_;
  std::list<std::pair<CacheKey, std::string>> lru_;  // MRU at the front
  std::unordered_map<CacheKey,
                     std::list<std::pair<CacheKey, std::string>>::iterator,
                     CacheKeyHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
};

// --- canonical request keying ------------------------------------------------

// Canonical serialization of a parsed request: object keys sorted at every
// level, the top-level "id" member stripped, string escaping normalized,
// number literals preserved as written. Two framings of the same request
// (key order, whitespace, id) map to the same text. This over-approximates
// the server's per-unit CanonicalHash — e.g. "spec" vs an equivalent
// "generate" still differ — which can only cost hot-cache misses, never
// wrong results.
[[nodiscard]] std::string CanonicalRequestText(const JsonValue& request);

// 128-bit key of the canonical text (two independent FNV-1a streams, same
// shape as serve/cache.cpp). `lo` doubles as the ring point.
[[nodiscard]] CacheKey RouterRequestKey(std::string_view canonical_text);

// Ring-placement text of a request. For op=revise this is the canonical
// text of the *solve-equivalent* request (op rewritten to "solve";
// "base"/"delta"/"mode" stripped): a revise then walks the ring from the
// same point as the solve that produced its base result, so the warm path
// finds the base key in that backend's cache. Chained revises whose framing
// drifts across states may still land elsewhere — the op degrades to a
// cold solve there, never a wrong answer. Every other op keys on its full
// canonical text.
[[nodiscard]] std::string RouteAffinityText(const JsonValue& request);

// --- the router --------------------------------------------------------------

struct RouterOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral
  std::vector<BackendSpec> backends;
  int ring_replicas = 64;  // virtual nodes per backend
  // Per-request attempts = retries + 1, spread over the ring walk.
  RetryPolicy retry{3, 50, 2000};
  HealthPolicy health;
  // Probe cadence; <= 0 disables the probe thread (tests drive ProbeNow()).
  int probe_interval_ms = 250;
  int probe_timeout_ms = 1'000;  // connect + send + recv deadline per probe
  // Upstream hop deadlines: a dead-but-connected backend must fail a
  // request in bounded time.
  int connect_timeout_ms = 1'000;
  int upstream_send_timeout_ms = 5'000;
  int upstream_recv_timeout_ms = 60'000;
  std::size_t hot_cache_entries = 512;
  // Downstream listener knobs (LineEndpoint).
  std::size_t max_line_bytes = 4u << 20;
  int send_timeout_ms = 30'000;
  int recv_timeout_ms = 300'000;
  // Fault-injection spec for the router's own listener (chaos harness).
  std::string fault_spec;
};

struct RouterBackendStatus {
  BackendSpec spec;
  bool up = true;
  int consecutive_failures = 0;
  int consecutive_successes = 0;
  std::uint64_t forwarded = 0;       // successful round trips
  std::uint64_t failures = 0;        // in-band transport failures
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t times_down = 0;      // up→down transitions
};

struct RouterCounters {
  std::uint64_t requests = 0;   // request lines handled
  std::uint64_t hot_hits = 0;   // served from the router-local cache
  std::uint64_t retries = 0;    // attempts beyond the first
  std::uint64_t failovers = 0;  // attempts that switched backends
  std::uint64_t shed = 0;       // "unavailable" replies (all replicas down)
};

class Router : public LineEndpoint {
 public:
  explicit Router(RouterOptions options);
  ~Router() override;

  // Binds the listener and starts the probe thread (hides the base Start,
  // which it calls first).
  void Start();

  // One synchronous probe round over every backend; the test hook behind
  // probe_interval_ms <= 0.
  void ProbeNow();

  // Introspection for tests and the stats op.
  [[nodiscard]] std::vector<RouterBackendStatus> Backends() const;
  [[nodiscard]] RouterCounters Counters() const;
  [[nodiscard]] HotCache::Counters HotCacheCounters() const {
    return hot_cache_.GetCounters();
  }

 protected:
  std::string HandleLine(std::string_view line) override;
  void OnDrained() override;

 private:
  // One pooled upstream connection; the buffer carries bytes read past the
  // previous response line (none in practice — one line per round trip).
  struct UpstreamConn {
    int fd = -1;
    std::string buffer;

    UpstreamConn() = default;
    UpstreamConn(UpstreamConn&& other) noexcept;
    UpstreamConn& operator=(UpstreamConn&& other) noexcept;
    UpstreamConn(const UpstreamConn&) = delete;
    UpstreamConn& operator=(const UpstreamConn&) = delete;
    ~UpstreamConn() { Close(); }
    void Close() noexcept;
  };

  std::string RouteRequest(const JsonValue& request, const std::string& id);
  std::string StatsResponse(const std::string& id);
  bool ForwardTo(int backend, const std::string& line, std::string& raw,
                 bool& ok_out);
  void RoundTripUpstream(UpstreamConn& conn, std::string_view line,
                         std::string& response);
  UpstreamConn ConnectUpstream(int backend);
  void FlushPool(int backend);
  int FirstUpBackend(const std::vector<int>& order, int& up_count) const;
  void RecordBackendFailure(int backend);
  void RecordBackendSuccess(int backend);
  void RecordProbe(int backend, bool ok);
  void ProbeLoop();
  void StopProbe() noexcept;

  struct BackendState {
    BackendSpec spec;
    HealthMachine machine;
    std::uint64_t forwarded = 0;
    std::uint64_t failures = 0;
    std::uint64_t probes = 0;
    std::uint64_t probe_failures = 0;
    std::uint64_t times_down = 0;
  };

  RouterOptions options_;
  HashRing ring_;
  HotCache hot_cache_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  mutable std::mutex health_mutex_;
  std::vector<BackendState> backends_;

  std::mutex pool_mutex_;
  std::vector<std::vector<UpstreamConn>> pools_;

  std::thread probe_thread_;
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hot_hits_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> shed_{0};
};

// CLI entry: starts the router, prints one {"listening":...} JSON line
// (scripts scrape the bound port), installs SIGINT/SIGTERM drain handlers,
// and blocks until shutdown.
int RunShardRouter(const RouterOptions& options);

}  // namespace dsf
