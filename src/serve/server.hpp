// The resident dsf service (DESIGN.md §5): a dependency-free POSIX TCP
// server speaking the line-delimited JSON protocol of serve/protocol.hpp.
//
// The listener scaffolding (accept thread, detached per-connection line
// framing, socket deadlines, fault injection, drain-not-abort shutdown)
// lives in serve/listener.hpp and is shared with the shard router; this
// class adds the solver-facing state: the shared `ResultCache`, the
// `AdmissionQueue` whose dispatcher thread owns the only `BatchEngine`
// (--threads executors), and the wire-protocol handler. Connection
// handlers probe the cache and block on admission tickets; they never run
// solver work.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/listener.hpp"
#include "serve/protocol.hpp"

namespace dsf {

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;              // 0 = ephemeral; Port() reports the bound port
  int threads = 1;           // batch engine executors (0 = hardware)
  int batch_max = 32;        // units per dispatched batch
  int max_pending = 1024;    // admission bound (queued + running units)
  std::size_t cache_entries = 4096;
  int cache_shards = 8;
  // Server-wide anytime deadline cap in wall ms (0 = none): every unit runs
  // under min-of-nonzero(request deadline, this) so one slow unit cannot
  // hold a BatchEngine slot indefinitely.
  int deadline_ms = 0;
  // One request line must fit in memory; longer lines fail the connection.
  std::size_t max_line_bytes = 4u << 20;
  // Per-connection socket deadlines (listener.hpp); <= 0 disables one.
  int send_timeout_ms = 30'000;
  int recv_timeout_ms = 300'000;
  // Fault-injection spec (serve/fault.hpp grammar); empty = disabled.
  std::string fault_spec;
};

class Server : public LineEndpoint {
 public:
  explicit Server(ServeOptions options = {});
  ~Server() override;

  // Introspection for tests and the in-process bench.
  [[nodiscard]] ResultCache& Cache() noexcept { return *cache_; }
  [[nodiscard]] AdmissionQueue& Queue() noexcept { return *queue_; }

 protected:
  std::string HandleLine(std::string_view line) override {
    return HandleRequestLine(context_, line);
  }
  void OnDrained() override { queue_->Drain(); }

 private:
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<AdmissionQueue> queue_;
  ServeContext context_;
};

// CLI entry: starts the server, prints one {"listening":...} JSON line to
// stdout (CI and scripts scrape the bound port from it), installs SIGINT /
// SIGTERM drain handlers, and blocks until shutdown.
int RunServe(const ServeOptions& options);

}  // namespace dsf
