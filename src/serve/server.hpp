// The resident dsf service (DESIGN.md §5): a dependency-free POSIX TCP
// server speaking the line-delimited JSON protocol of serve/protocol.hpp.
//
// Thread structure:
//   * one accept thread (poll over the listen socket and a self-pipe),
//   * one detached handler thread per connection — handlers parse
//     requests, probe the shared `ResultCache`, and block on
//     `AdmissionQueue` tickets; they never run solver work, and they are
//     counted rather than joined (a resident server must not accumulate a
//     zombie joinable thread per finished connection),
//   * the admission queue's dispatcher thread, which owns the only
//     `BatchEngine` (--threads executors).
//
// Shutdown (SIGINT via `RunServe`, or `RequestShutdown()` from tests) is a
// drain, not an abort: stop accepting, half-close every connection so
// handlers finish the request lines already received and deliver their
// responses, wait for the handler count to reach zero, then drain the
// queue. `Wait()` returns 0 after a clean drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace dsf {

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;              // 0 = ephemeral; Port() reports the bound port
  int threads = 1;           // batch engine executors (0 = hardware)
  int batch_max = 32;        // units per dispatched batch
  int max_pending = 1024;    // admission bound (queued + running units)
  std::size_t cache_entries = 4096;
  int cache_shards = 8;
  // One request line must fit in memory; longer lines fail the connection.
  std::size_t max_line_bytes = 4u << 20;
};

class Server {
 public:
  explicit Server(ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens + spawns the accept thread. Throws std::runtime_error
  // when the socket cannot be bound.
  void Start();

  // The bound port (valid after Start()).
  [[nodiscard]] int Port() const noexcept { return port_; }

  // Triggers the drain. Async-signal-safe (a single write to a pipe), so
  // `RunServe` calls it straight from the SIGINT handler.
  void RequestShutdown() noexcept;

  // Blocks until the server has fully drained; returns the process exit
  // code (0 on a clean drain).
  int Wait();

  // Introspection for tests and the in-process bench.
  [[nodiscard]] ResultCache& Cache() noexcept { return *cache_; }
  [[nodiscard]] AdmissionQueue& Queue() noexcept { return *queue_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ServeOptions options_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<AdmissionQueue> queue_;
  ServeContext context_;

  int listen_fd_ = -1;
  int port_ = 0;
  int shutdown_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  // Handler threads run detached — a resident server must not accumulate
  // one joinable zombie (stack mapping included) per finished connection —
  // so connection tracking is a counter: the drain waits for it to reach
  // zero instead of joining.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::vector<int> conn_fds_;
  int active_handlers_ = 0;
  bool started_ = false;
  bool drained_ = false;
};

// CLI entry: starts the server, prints one {"listening":...} JSON line to
// stdout (CI and scripts scrape the bound port from it), installs SIGINT /
// SIGTERM drain handlers, and blocks until shutdown.
int RunServe(const ServeOptions& options);

}  // namespace dsf
