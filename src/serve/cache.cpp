#include "serve/cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/hash.hpp"

namespace dsf {

namespace {

// Second-stream offset basis: any constant != Fnv1a::kOffset yields an
// independent digest over the same byte stream.
constexpr std::uint64_t kSecondOffset = 0x6c62272e07bb0142ULL;

// Field tags keep the byte stream prefix-free across variants: a CR request
// and an IC request over coincidentally equal integer sequences must not
// collide.
enum FieldTag : std::uint8_t {
  kTagGraph = 0x01,
  kTagEdge = 0x02,
  kTagIc = 0x03,
  kTagCr = 0x04,
  kTagSolver = 0x05,
  kTagOptions = 0x06,
  kTagSeed = 0x07,
};

void HashGraphInto(Fnv1a& h, const Graph& g) {
  h.Byte(kTagGraph);
  h.I64(g.NumNodes());
  h.I64(g.NumEdges());
  for (const Edge& e : g.Edges()) {
    h.Byte(kTagEdge);
    h.I64(e.u);
    h.I64(e.v);
    h.I64(e.w);
  }
}

void HashUnitInto(Fnv1a& h, const SolveRequest& request, std::uint64_t seed) {
  if (request.use_cr) {
    h.Byte(kTagCr);
    h.I64(request.cr.NumNodes());
    for (NodeId v = 0; v < request.cr.NumNodes(); ++v) {
      const auto& reqs = request.cr.requests[static_cast<std::size_t>(v)];
      h.I64(static_cast<std::int64_t>(reqs.size()));
      for (const NodeId w : reqs) h.I64(w);
    }
  } else {
    h.Byte(kTagIc);
    h.I64(request.ic.NumNodes());
    for (const Label l : request.ic.labels) h.I64(l);
  }
  h.Byte(kTagSolver);
  h.Bytes(request.solver);
  h.Byte(kTagOptions);
  // Hash epsilon at double precision: the CLI and the wire protocol both
  // take it as a double, so canonically-equal requests agree at this width.
  const double eps = static_cast<double>(request.options.epsilon);
  h.U64(std::bit_cast<std::uint64_t>(eps));
  h.I64(request.options.repetitions);
  h.Byte(request.options.prune ? 1 : 0);
  // Deadline-truncated units must never share entries with unbounded runs
  // of the same spec (the roster/mode knobs are already covered by the
  // canonical solver string above).
  h.I64(request.options.deadline_ms);
  h.Byte(kTagSeed);
  h.U64(seed);
}

}  // namespace

CacheKey HashGraph(const Graph& g) {
  Fnv1a a;
  Fnv1a b(kSecondOffset);
  HashGraphInto(a, g);
  HashGraphInto(b, g);
  return {a.MixedDigest(), b.Digest()};
}

CacheKey CanonicalHash(const CacheKey& graph, const SolveRequest& request,
                       std::uint64_t seed) {
  Fnv1a a(graph.lo);
  Fnv1a b(graph.hi);
  HashUnitInto(a, request, seed);
  HashUnitInto(b, request, seed);
  return {a.MixedDigest(), b.Digest()};
}

std::string CacheKeyToHex(const CacheKey& key) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        kDigits[(key.hi >> (60 - 4 * i)) & 0xf];
    out[static_cast<std::size_t>(16 + i)] =
        kDigits[(key.lo >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

bool CacheKeyFromHex(std::string_view text, CacheKey* key) {
  if (text.size() != 32) return false;
  std::uint64_t words[2] = {0, 0};
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = text[i];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    words[i / 16] = (words[i / 16] << 4) | nibble;
  }
  key->hi = words[0];
  key->lo = words[1];
  return true;
}

ResultCache::ResultCache(std::size_t capacity, int shards) {
  const int clamped = std::clamp(shards, 1, 64);
  auto count = std::bit_ceil(static_cast<unsigned>(clamped));
  // Fewer entries than shards: shrink the shard table instead of rounding
  // per-shard capacity up — `capacity` is a bound the operator sized
  // memory by, and resident entries must never exceed it.
  if (capacity > 0 && capacity < count) {
    count = std::bit_floor(static_cast<unsigned>(capacity));
  }
  // Capacity 0 still builds shards (lookups must count misses); per-shard
  // capacity 0 makes every insert a no-op.
  shards_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  capacity_ = capacity;
  per_shard_capacity_ = capacity / count;
}

ResultCache::Shard& ResultCache::ShardFor(const CacheKey& key) noexcept {
  // hi is a raw FNV digest, whose low bits are its weakest (hash.hpp):
  // mix before masking into the power-of-two shard table. Buckets inside a
  // shard use lo (already mixed, see CacheKeyHash) — two independent words,
  // so shard skew and bucket skew cannot correlate.
  return *shards_[static_cast<std::size_t>(Mix64(key.hi)) &
                  (shards_.size() - 1)];
}

std::optional<SolveResult> ResultCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::Insert(const CacheKey& key, const SolveResult& result) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, result);
  shard.index.emplace(key, shard.lru.begin());
  inserts_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

CacheCounters ResultCache::Counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.entries = entries_.load(std::memory_order_relaxed);
  c.capacity = capacity_;
  return c;
}

}  // namespace dsf
