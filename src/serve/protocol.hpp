// Wire protocol of the dsf service (DESIGN.md §5): line-delimited JSON.
//
// Every request is one JSON object on one line; every response is one JSON
// object on one line. Grammar (fields not listed are rejected only when
// ill-typed; unknown keys are ignored for forward compatibility):
//
//   {"op":"solve", "id":STR?,
//    "spec":STR                      — inline workload text (full .dsf
//                                      grammar except `import`, which would
//                                      read server-local files), or
//    "generate":STR, "instance":STR? — named generator spec, e.g.
//                                      "grid rows=4 cols=4" plus an optional
//                                      "<sampler> [k=v ...]" instance draw
//                                      (default "random-ic k=2 tpc=2"),
//    "solvers":[STR...]?             — solver specs (names or
//                                      portfolio(...) forms, canonicalized
//                                      server-side); default: the spec's
//                                      `as` directive, else every
//                                      registered solver,
//    "seed":N?                       — overrides the spec-level seed (>= 1),
//    "deadline_ms":N?                — per-unit anytime deadline, capped by
//                                      the server's --deadline-ms,
//    "epsilon":X?, "repetitions":N?, "prune":BOOL?}
//   {"op":"revise", "id":STR?,
//    ...solve fields...              — base instance framing; must expand to
//                                      exactly one case x instance x solver
//                                      (default solver: local-search),
//    "base":STR                      — 32-hex canonical key of the cached
//                                      base result (a solve/revise result's
//                                      "key" field),
//    "delta":{"add_pairs":[[u,v]..]?,"remove_pairs":[[u,v]..]?,
//             "add_terminals":[[v,label]..]?,"remove_terminals":[v..]?},
//    "mode":"warm"|"exact-match"?}   — exact-match skips the warm path and
//                                      cold-solves the revised instance
//                                      (bit-identical to op=solve on it)
//   {"op":"stats", "id":STR?}
//   {"op":"ping", "id":STR?}
//
// Solve responses carry one result object per case x instance x solver
// cell, in the same order as the one-shot CLI, and are bit-identical to a
// one-shot `dsf --scenario` run on the same spec and seed: unit i of the
// expanded request matrix is solved with seed DeriveSeed(spec seed, i)
// regardless of cache state, batching, or which connection computed it.
//
//   {"id":..., "ok":true, "seed":N, "requests":N, "hits":N, "misses":N,
//    "coalesced":N, "wall_ms":X, "results":[
//      {"solver":S,"case":C,"instance":I,"input":"ic"|"cr","weight":W,
//       "feasible":B,"cancelled":true?,"edges":[...],"rounds":N,
//       "messages":N,"wall_ms":X,"cached":B,"key":HEX}, ...]}
//   {"id":..., "ok":false, "error":STR}            — parse/validation errors
//   {"id":..., "ok":false, "error":"overloaded", "queue_depth":N}
//
// Revise responses add "warm" (the repaired-forest warm path ran), the
// "base_hit" cache verdict, and "key" (the canonical key of the *revised*
// instance — the result is cached under it, so a later exact solve, or the
// next revise in a churn chain, hits). A base-key miss, an oversized delta,
// or a failed repair degrade to a cold solve with "warm":false; the
// response is feasibility-validated either way, and a warm result is never
// worse than its warm-start forest (solve/incremental.hpp).
//
// The stats response exposes the cache counters, queue depths, and the
// per-solver latency digest:
//
//   {"ok":true,"uptime_ms":X,
//    "cache":{"hits","misses","evictions","inserts","entries","capacity"},
//    "queue":{"depth","peak_depth","admitted","coalesced","rejected",
//             "batches","computed"},
//    "solvers":[{"name","count","p50_ms","p95_ms"},...]}
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "serve/admission.hpp"
#include "serve/cache.hpp"

namespace dsf {

// Shared state a connection handler executes requests against.
struct ServeContext {
  ResultCache* cache = nullptr;
  AdmissionQueue* queue = nullptr;
  // Server-wide cap on the per-unit anytime deadline (ServeOptions); 0 =
  // uncapped. Requests run under min-of-nonzero(request, cap).
  int max_deadline_ms = 0;
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
};

// Executes one request line and returns the response line (no trailing
// newline). Never throws: every failure becomes an {"ok":false,...}
// response.
std::string HandleRequestLine(ServeContext& ctx, std::string_view line);

}  // namespace dsf
