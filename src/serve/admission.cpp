#include "serve/admission.hpp"

#include <algorithm>
#include <utility>

namespace dsf {

const SolveResult& UnitTicket::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

void UnitTicket::Complete(SolveResult result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

void UnitTicket::CompleteError(std::string error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error_ = std::move(error);
    done_ = true;
  }
  cv_.notify_all();
}

AdmissionQueue::AdmissionQueue(ResultCache* cache, AdmissionOptions options)
    : cache_(cache), options_(options) {
  BatchOptions bopt;
  bopt.threads = options_.threads;
  // master_seed stays 0: units arrive with their final seeds already
  // derived (serve/protocol.cpp), so batch composition — which units from
  // which connections happen to share a dispatch — cannot change results.
  bopt.master_seed = 0;
  engine_ = std::make_unique<BatchEngine>(bopt);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

AdmissionQueue::~AdmissionQueue() { Drain(); }

AdmissionQueue::Admission AdmissionQueue::SubmitAll(
    std::span<const SolveRequest> units, std::span<const CacheKey> keys,
    std::span<const std::uint64_t> seeds) {
  Admission admission;
  admission.tickets.reserve(units.size());
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) {
      ++counters_.rejected;
      return admission;
    }
    // First pass: units whose key is not in flight need queue room. A key
    // repeated *within* this submission is admitted once and joined by the
    // later occurrences, exactly like a cross-connection duplicate.
    std::size_t fresh = 0;
    for (const CacheKey& key : keys) {
      if (inflight_.find(key) == inflight_.end()) ++fresh;
    }
    // (duplicate keys inside `keys` double-count here; the bound is a guard
    // rail, not an exact budget, and over-counting only rejects earlier)
    if (counters_.depth + fresh > static_cast<std::uint64_t>(options_.max_pending)) {
      ++counters_.rejected;
      return admission;
    }
    for (std::size_t i = 0; i < units.size(); ++i) {
      const auto it = inflight_.find(keys[i]);
      if (it != inflight_.end()) {
        admission.tickets.push_back(it->second);
        ++admission.coalesced;
        ++counters_.coalesced;
        continue;
      }
      Task task;
      task.request = units[i];
      task.request.seed = seeds[i];
      task.key = keys[i];
      task.ticket = std::make_shared<UnitTicket>();
      inflight_.emplace(keys[i], task.ticket);
      admission.tickets.push_back(task.ticket);
      queue_.push_back(std::move(task));
      ++counters_.admitted;
      ++counters_.depth;
      counters_.peak_depth = std::max(counters_.peak_depth, counters_.depth);
      enqueued = true;
    }
  }
  if (enqueued) cv_.notify_one();
  return admission;
}

void AdmissionQueue::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  cv_.notify_all();
  // join() must happen exactly once even when Shutdown and the destructor
  // race; joinable() alone is not a safe gate across threads.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void AdmissionQueue::DispatchLoop() {
  while (true) {
    std::vector<Task> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closing with an empty queue: drained
      const std::size_t take =
          std::min(queue_.size(), static_cast<std::size_t>(options_.batch_max));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    std::vector<SolveRequest> requests;
    requests.reserve(batch.size());
    for (Task& t : batch) requests.push_back(std::move(t.request));

    // Latency-aware racing: portfolio mode=first units get the live p50
    // digest so the historically-fastest member starts first. Attached
    // after hashing (hints are not part of the canonical key) and only to
    // the non-deterministic mode, so mode=all bit-identity is untouched.
    std::vector<std::pair<std::string, double>> hints;
    bool hints_loaded = false;
    for (SolveRequest& r : requests) {
      if (r.solver.find("mode=first") == std::string::npos) continue;
      if (!hints_loaded) {
        hints_loaded = true;
        for (const SolverLatency& s : Latencies()) {
          if (s.count > 0) hints.push_back({s.solver, s.p50_ms});
        }
      }
      r.options.latency_hints = hints;
    }

    std::vector<SolveResult> results;
    std::string error;
    try {
      results = engine_->Run(requests);
    } catch (const std::exception& e) {
      // One poisoned unit fails its whole dispatch (the engine drains, then
      // rethrows without per-unit attribution). The server pre-validates
      // workloads, so this is a backstop, not a traffic path.
      error = e.what();
    }

    if (error.empty()) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // A deadline-cut result reflects this machine's timing, not the
        // request: serving it from cache would freeze one lucky (or
        // unlucky) partial forever. Recompute on the next ask instead.
        if (!results[i].cancelled) cache_->Insert(batch[i].key, results[i]);
        RecordLatency(results[i].solver, results[i].wall_ms);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const Task& t : batch) inflight_.erase(t.key);
      counters_.computed += batch.size();
      counters_.depth -= batch.size();
      ++counters_.batches;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (error.empty()) {
        batch[i].ticket->Complete(std::move(results[i]));
      } else {
        batch[i].ticket->CompleteError(error);
      }
    }
  }
}

void AdmissionQueue::RecordLatency(const std::string& solver, double ms) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  LatencyRing& ring = latency_[solver];
  if (ring.samples.size() < kLatencyWindow) {
    ring.samples.push_back(ms);
  } else {
    ring.samples[ring.next] = ms;
    ring.next = (ring.next + 1) % kLatencyWindow;
  }
  ++ring.count;
}

QueueCounters AdmissionQueue::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<SolverLatency> AdmissionQueue::Latencies() const {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  std::vector<SolverLatency> out;
  out.reserve(latency_.size());
  for (const auto& [solver, ring] : latency_) {
    SolverLatency s;
    s.solver = solver;
    s.count = ring.count;
    std::vector<double> sorted = ring.samples;
    std::sort(sorted.begin(), sorted.end());
    s.p50_ms = PercentileOfSorted(sorted, 0.50);
    s.p95_ms = PercentileOfSorted(sorted, 0.95);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dsf
