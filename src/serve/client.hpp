// Client side of the dsf service: a tiny blocking line-protocol connection
// (used by `dsf client`, the shard router's upstream hop, the serve tests,
// and the bench_serve load generator) plus the `dsf client` subcommand
// logic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "cli/json.hpp"
#include "serve/retry.hpp"

namespace dsf {

// Deadlines and bounds for one connection; zeros disable each limit (the
// one-shot CLI default). The router sets all four: a dead or byzantine
// backend must fail a request in bounded time and bounded memory.
struct ConnectionLimits {
  int connect_timeout_ms = 0;
  int send_timeout_ms = 0;
  int recv_timeout_ms = 0;
  std::size_t max_line_bytes = 0;
};

// One blocking TCP connection speaking newline-delimited JSON. Methods
// throw std::runtime_error on socket failures (including deadline expiry
// when limits are set).
class ClientConnection {
 public:
  ClientConnection(const std::string& host, int port,
                   ConnectionLimits limits = {});
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  // Sends `line` plus the terminating newline.
  void SendLine(std::string_view line);
  // Receives the next response line (newline stripped). False on EOF.
  bool RecvLine(std::string& line);

  // Send + receive + parse in one step; throws when the server hangs up.
  JsonValue RoundTrip(std::string_view request_line);

 private:
  int fd_ = -1;
  std::size_t max_line_bytes_ = 0;
  std::string buffer_;
};

// `dsf client` subcommand arguments (parsed in cli/main.cpp).
struct ClientArgs {
  std::string host = "127.0.0.1";
  int port = 0;
  // Exactly one of: scenario file (sent inline as "spec"), generator spec,
  // stats, ping.
  std::string scenario_path;
  std::string generate;
  std::string instance;  // optional with --generate
  bool stats = false;
  bool ping = false;
  // Revise op (--revise KEY): turns the solve framing into op=revise
  // against the cached base result named by the 32-hex canonical key (a
  // previous solve/revise result's "key" field).
  std::string revise_base;
  // --delta spec: whitespace/comma-separated edits applied to the base
  // instance — add=U-V / rm=U-V (CR pairs), addt=V:L / rmt=V (IC
  // terminals). Empty means an empty delta.
  std::string delta;
  std::string revise_mode;  // "" (server default: warm) | "exact-match"
  std::string solvers;   // comma list of solver specs; empty = all
  std::uint64_t seed = 0;
  bool seed_set = false;
  double epsilon = 0.0;
  int repetitions = 1;
  int deadline_ms = 0;   // per-unit anytime deadline passed to the server
  bool prune = true;
  int repeat = 1;        // send the same solve N times (duplicate burst)
  std::string json_path; // write response lines here as well
  // Connect retries (serve/retry.hpp): one-shot clients survive transient
  // connect failures — a backend mid-restart, a router not yet bound.
  RetryPolicy retry;
};

// Runs the subcommand: sends the request(s), prints each response line to
// stdout, and returns 0 iff every response was ok (and, for solves, every
// result feasible).
int RunClient(const ClientArgs& args);

// Builds the request line for `args` (exposed for tests).
std::string BuildClientRequest(const ClientArgs& args);

}  // namespace dsf
