#include "serve/server.hpp"

#include <signal.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <utility>

namespace dsf {

namespace {

LineEndpointOptions EndpointOptions(const ServeOptions& options) {
  LineEndpointOptions eopt;
  eopt.host = options.host;
  eopt.port = options.port;
  eopt.max_line_bytes = options.max_line_bytes;
  eopt.send_timeout_ms = options.send_timeout_ms;
  eopt.recv_timeout_ms = options.recv_timeout_ms;
  return eopt;
}

}  // namespace

Server::Server(ServeOptions options) : LineEndpoint(EndpointOptions(options)) {
  cache_ = std::make_unique<ResultCache>(options.cache_entries,
                                         options.cache_shards);
  AdmissionOptions aopt;
  aopt.threads = options.threads;
  aopt.batch_max = options.batch_max;
  aopt.max_pending = options.max_pending;
  queue_ = std::make_unique<AdmissionQueue>(cache_.get(), aopt);
  context_.cache = cache_.get();
  context_.queue = queue_.get();
  context_.max_deadline_ms = options.deadline_ms;
  context_.started = std::chrono::steady_clock::now();
  if (!options.fault_spec.empty()) Fault().Configure(options.fault_spec);
}

Server::~Server() {
  // Handlers dispatch into HandleLine (this class) until the drain is
  // complete, so the shutdown must run before any member is destroyed.
  Shutdown();
}

namespace {

// SIGINT/SIGTERM must only touch async-signal-safe state: a single pipe
// write through the registered server.
std::atomic<Server*> g_signal_server{nullptr};

extern "C" void ServeSignalHandler(int) {
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestShutdown();
}

}  // namespace

int RunServe(const ServeOptions& options) {
  Server server(options);
  server.Start();

  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = ServeSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // One scrapeable line: scripts read the bound port from here.
  std::printf(
      "{\"listening\":true,\"host\":\"%s\",\"port\":%d,\"threads\":%d}\n",
      options.host.c_str(), server.Port(), options.threads);
  std::fflush(stdout);

  const int rc = server.Wait();
  g_signal_server.store(nullptr, std::memory_order_relaxed);
  std::fprintf(stderr, "dsf serve: drained, exiting\n");
  return rc;
}

}  // namespace dsf
