#include "serve/router.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "common/text.hpp"
#include "serve/client.hpp"
#include "serve/sockets.hpp"

namespace dsf {

namespace {

// Second FNV-1a offset basis (see serve/cache.cpp): two independent streams
// over the same bytes make a 128-bit key.
constexpr std::uint64_t kSecondOffset = 0x6c62272e07bb0142ULL;

std::string ErrorLine(const std::string& id, const std::string& error,
                      int backends_down = -1, int backends_total = -1) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  if (!id.empty()) {
    json.Key("id");
    json.String(id);
  }
  json.Key("ok");
  json.Bool(false);
  json.Key("error");
  json.String(error);
  if (backends_down >= 0) {
    json.Key("backends_down");
    json.Int(backends_down);
    json.Key("backends");
    json.Int(backends_total);
  }
  json.EndObject();
  return os.str();
}

// Prefixes the (id-stripped, validated-object) response line with the
// request's id, restoring the protocol's echo contract for cached and
// forwarded replies alike.
std::string WithId(const std::string& response, const std::string& id) {
  if (id.empty()) return response;
  std::ostringstream os;
  os << "{\"id\":";
  {
    JsonWriter json(os);
    json.String(id);
  }
  if (response.size() > 2) os << ',';
  os << std::string_view(response).substr(1);
  return os.str();
}

void WriteCanonicalValue(std::ostream& os, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      os << "null";
      return;
    case JsonValue::Kind::kBool:
      os << (v.boolean ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      // The raw literal as written: 1e3 vs 1000 stay distinct (a false
      // split costs a cache miss; collapsing 2^64-scale seeds through a
      // double would cost correctness).
      os << v.string;
      return;
    case JsonValue::Kind::kString: {
      JsonWriter json(os);
      json.String(v.string);
      return;
    }
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) os << ',';
        first = false;
        WriteCanonicalValue(os, e);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      std::vector<const std::pair<std::string, JsonValue>*> members;
      members.reserve(v.object.size());
      for (const auto& m : v.object) members.push_back(&m);
      std::sort(members.begin(), members.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      os << '{';
      bool first = true;
      for (const auto* m : members) {
        if (!first) os << ',';
        first = false;
        {
          JsonWriter json(os);
          json.String(m->first);
        }
        os << ':';
        WriteCanonicalValue(os, m->second);
      }
      os << '}';
      return;
    }
  }
}

}  // namespace

BackendSpec ParseBackendSpec(const std::string& text) {
  BackendSpec spec;
  std::string port_text = text;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    spec.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (spec.host.empty()) spec.host = "127.0.0.1";
  }
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end != port_text.c_str() + port_text.size() ||
      port < 1 || port > 65535) {
    throw std::runtime_error("invalid backend '" + text +
                             "' (want HOST:PORT or PORT)");
  }
  spec.port = static_cast<int>(port);
  return spec;
}

// --- HashRing ----------------------------------------------------------------

HashRing::HashRing(std::size_t backend_count, int replicas_per_backend)
    : backend_count_(backend_count) {
  const int replicas = std::max(replicas_per_backend, 1);
  ring_.reserve(backend_count * static_cast<std::size_t>(replicas));
  for (std::size_t b = 0; b < backend_count; ++b) {
    for (int r = 0; r < replicas; ++r) {
      const std::uint64_t point =
          Mix64(HashCombine(Mix64(b + 1), static_cast<std::uint64_t>(r)));
      ring_.emplace_back(point, static_cast<int>(b));
    }
  }
  // Tie-break by backend index: point collisions (vanishingly rare) must
  // still order deterministically.
  std::sort(ring_.begin(), ring_.end());
}

int HashRing::PrimaryBackend(std::uint64_t point) const {
  if (ring_.empty()) return -1;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<std::uint64_t, int>& node, std::uint64_t p) {
        return node.first < p;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<int> HashRing::PreferenceOrder(std::uint64_t point) const {
  std::vector<int> order;
  if (ring_.empty()) return order;
  order.reserve(backend_count_);
  std::vector<bool> seen(backend_count_, false);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<std::uint64_t, int>& node, std::uint64_t p) {
        return node.first < p;
      });
  for (std::size_t walked = 0;
       walked < ring_.size() && order.size() < backend_count_; ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    const int b = it->second;
    if (!seen[static_cast<std::size_t>(b)]) {
      seen[static_cast<std::size_t>(b)] = true;
      order.push_back(b);
    }
    ++it;
  }
  return order;
}

// --- HealthMachine -----------------------------------------------------------

bool HealthMachine::RecordFailure() {
  ++consecutive_failures_;
  consecutive_successes_ = 0;
  if (up_ && consecutive_failures_ >= std::max(policy_.failures_to_down, 1)) {
    up_ = false;
    return true;
  }
  return false;
}

bool HealthMachine::RecordProbeSuccess() {
  consecutive_failures_ = 0;
  ++consecutive_successes_;
  if (!up_ && consecutive_successes_ >= std::max(policy_.successes_to_up, 1)) {
    up_ = true;
    return true;
  }
  return false;
}

void HealthMachine::RecordSuccess() {
  if (up_) {
    consecutive_failures_ = 0;
    ++consecutive_successes_;
  }
}

// --- HotCache ----------------------------------------------------------------

std::optional<std::string> HotCache::Lookup(const CacheKey& key) {
  if (capacity_ == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void HotCache::Insert(const CacheKey& key, std::string response) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic responses cannot change; refresh recency only.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(response));
  index_.emplace(key, lru_.begin());
  ++inserts_;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

HotCache::Counters HotCache::GetCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.inserts = inserts_;
  c.evictions = evictions_;
  c.entries = lru_.size();
  c.capacity = capacity_;
  return c;
}

// --- canonical request keying ------------------------------------------------

std::string CanonicalRequestText(const JsonValue& request) {
  std::ostringstream os;
  std::vector<const std::pair<std::string, JsonValue>*> members;
  members.reserve(request.object.size());
  for (const auto& m : request.object) {
    if (m.first == "id") continue;
    members.push_back(&m);
  }
  std::sort(members.begin(), members.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  os << '{';
  bool first = true;
  for (const auto* m : members) {
    if (!first) os << ',';
    first = false;
    {
      JsonWriter json(os);
      json.String(m->first);
    }
    os << ':';
    WriteCanonicalValue(os, m->second);
  }
  os << '}';
  return os.str();
}

CacheKey RouterRequestKey(std::string_view canonical_text) {
  Fnv1a a;
  Fnv1a b(kSecondOffset);
  a.Bytes(canonical_text);
  b.Bytes(canonical_text);
  return {a.MixedDigest(), b.Digest()};
}

std::string RouteAffinityText(const JsonValue& request) {
  if (request.GetString("op", "") != "revise") {
    return CanonicalRequestText(request);
  }
  JsonValue solve_like = request;
  std::vector<std::pair<std::string, JsonValue>> kept;
  kept.reserve(solve_like.object.size());
  for (auto& m : solve_like.object) {
    if (m.first == "base" || m.first == "delta" || m.first == "mode") continue;
    if (m.first == "op") m.second.string = "solve";
    kept.push_back(std::move(m));
  }
  solve_like.object = std::move(kept);
  return CanonicalRequestText(solve_like);
}

// --- Router ------------------------------------------------------------------

namespace {

LineEndpointOptions RouterEndpointOptions(const RouterOptions& options) {
  LineEndpointOptions eopt;
  eopt.host = options.host;
  eopt.port = options.port;
  eopt.max_line_bytes = options.max_line_bytes;
  eopt.send_timeout_ms = options.send_timeout_ms;
  eopt.recv_timeout_ms = options.recv_timeout_ms;
  return eopt;
}

}  // namespace

Router::UpstreamConn::UpstreamConn(UpstreamConn&& other) noexcept
    : fd(other.fd), buffer(std::move(other.buffer)) {
  other.fd = -1;
}

Router::UpstreamConn& Router::UpstreamConn::operator=(
    UpstreamConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd = other.fd;
    buffer = std::move(other.buffer);
    other.fd = -1;
  }
  return *this;
}

void Router::UpstreamConn::Close() noexcept {
  if (fd >= 0) ::close(fd);
  fd = -1;
  buffer.clear();
}

Router::Router(RouterOptions options)
    : LineEndpoint(RouterEndpointOptions(options)),
      options_(std::move(options)),
      ring_(options_.backends.size(), options_.ring_replicas),
      hot_cache_(options_.hot_cache_entries) {
  if (options_.backends.empty()) {
    throw std::runtime_error("shard router needs at least one backend");
  }
  backends_.reserve(options_.backends.size());
  for (const BackendSpec& spec : options_.backends) {
    BackendState state;
    state.spec = spec;
    state.machine = HealthMachine(options_.health);
    backends_.push_back(std::move(state));
  }
  pools_.resize(options_.backends.size());
  if (!options_.fault_spec.empty()) Fault().Configure(options_.fault_spec);
}

Router::~Router() {
  Shutdown();
  StopProbe();
  for (std::size_t b = 0; b < pools_.size(); ++b) {
    FlushPool(static_cast<int>(b));
  }
}

void Router::Start() {
  LineEndpoint::Start();
  started_ = std::chrono::steady_clock::now();
  if (options_.probe_interval_ms > 0) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
}

void Router::OnDrained() {
  StopProbe();
  for (std::size_t b = 0; b < pools_.size(); ++b) {
    FlushPool(static_cast<int>(b));
  }
}

void Router::StopProbe() noexcept {
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void Router::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mutex_);
  while (!probe_stop_) {
    lock.unlock();
    ProbeNow();
    lock.lock();
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.probe_interval_ms),
                       [this] { return probe_stop_; });
  }
}

void Router::ProbeNow() {
  const std::size_t n = backends_.size();
  for (std::size_t b = 0; b < n; ++b) {
    BackendSpec spec;
    {
      std::lock_guard<std::mutex> lock(health_mutex_);
      spec = backends_[b].spec;
    }
    bool ok = false;
    try {
      ConnectionLimits limits;
      limits.connect_timeout_ms = options_.probe_timeout_ms;
      limits.send_timeout_ms = options_.probe_timeout_ms;
      limits.recv_timeout_ms = options_.probe_timeout_ms;
      limits.max_line_bytes = options_.max_line_bytes;
      ClientConnection conn(spec.host, spec.port, limits);
      const JsonValue reply = conn.RoundTrip("{\"op\":\"ping\"}");
      ok = reply.GetBool("pong", false);
    } catch (const std::exception&) {
      ok = false;
    }
    RecordProbe(static_cast<int>(b), ok);
  }
}

void Router::RecordProbe(int backend, bool ok) {
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    BackendState& state = backends_[static_cast<std::size_t>(backend)];
    ++state.probes;
    if (ok) {
      state.machine.RecordProbeSuccess();
    } else {
      ++state.probe_failures;
      if (state.machine.RecordFailure()) {
        ++state.times_down;
        flush = true;
      }
    }
  }
  // Flushing outside the health lock: Close() is a syscall.
  if (flush) FlushPool(backend);
}

void Router::RecordBackendFailure(int backend) {
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    BackendState& state = backends_[static_cast<std::size_t>(backend)];
    ++state.failures;
    if (state.machine.RecordFailure()) {
      ++state.times_down;
      flush = true;
    }
  }
  if (flush) FlushPool(backend);
}

void Router::RecordBackendSuccess(int backend) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  BackendState& state = backends_[static_cast<std::size_t>(backend)];
  ++state.forwarded;
  state.machine.RecordSuccess();
}

void Router::FlushPool(int backend) {
  std::vector<UpstreamConn> stale;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    stale.swap(pools_[static_cast<std::size_t>(backend)]);
  }
  // ~UpstreamConn closes each fd.
}

Router::UpstreamConn Router::ConnectUpstream(int backend) {
  BackendSpec spec;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    spec = backends_[static_cast<std::size_t>(backend)].spec;
  }
  UpstreamConn conn;
  conn.fd = ConnectTcp(spec.host, spec.port, options_.connect_timeout_ms);
  SetSendTimeout(conn.fd, options_.upstream_send_timeout_ms);
  SetRecvTimeout(conn.fd, options_.upstream_recv_timeout_ms);
  return conn;
}

void Router::RoundTripUpstream(UpstreamConn& conn, std::string_view line,
                               std::string& response) {
  std::string framed(line);
  framed.push_back('\n');
  if (!SendAll(conn.fd, framed.data(), framed.size())) {
    throw std::runtime_error(std::string("upstream send: ") +
                             std::strerror(errno));
  }
  while (true) {
    const std::size_t nl = conn.buffer.find('\n');
    if (nl != std::string::npos) {
      response.assign(StripCr(std::string_view(conn.buffer).substr(0, nl)));
      conn.buffer.erase(0, nl + 1);
      return;
    }
    if (conn.buffer.size() > options_.max_line_bytes) {
      throw std::runtime_error("upstream response line too long");
    }
    char chunk[16384];
    const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("upstream read timed out");
      }
      throw std::runtime_error(std::string("upstream recv: ") +
                               std::strerror(errno));
    }
    if (n == 0) throw std::runtime_error("upstream closed mid-request");
    conn.buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Router::ForwardTo(int backend, const std::string& line, std::string& raw,
                       bool& ok_out) {
  // Pass 0 may reuse a pooled connection; a reused fd that fails gets one
  // fresh-connection pass before the backend is blamed — the pool can hold
  // sockets from before a backend restart, and a stale fd must not re-mark
  // a recovered backend down.
  for (int pass = 0; pass < 2; ++pass) {
    UpstreamConn conn;
    bool reused = false;
    if (pass == 0) {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      auto& idle = pools_[static_cast<std::size_t>(backend)];
      if (!idle.empty()) {
        conn = std::move(idle.back());
        idle.pop_back();
        reused = true;
      }
    }
    if (conn.fd < 0) {
      try {
        conn = ConnectUpstream(backend);
      } catch (const std::exception&) {
        RecordBackendFailure(backend);
        return false;
      }
    }
    try {
      raw.clear();
      RoundTripUpstream(conn, line, raw);
      // Strict framing: the reply must parse as one compact JSON object
      // (anything else is a byzantine backend and counts as a failure).
      const JsonValue reply = ParseJson(raw);
      if (!reply.IsObject() || raw.empty() || raw.front() != '{') {
        throw std::runtime_error("malformed upstream reply");
      }
      ok_out = reply.GetBool("ok", false);
      {
        std::lock_guard<std::mutex> lock(pool_mutex_);
        pools_[static_cast<std::size_t>(backend)].push_back(std::move(conn));
      }
      RecordBackendSuccess(backend);
      return true;
    } catch (const std::exception&) {
      conn.Close();
      if (!reused) {
        RecordBackendFailure(backend);
        return false;
      }
    }
  }
  RecordBackendFailure(backend);
  return false;
}

int Router::FirstUpBackend(const std::vector<int>& order,
                           int& up_count) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  up_count = 0;
  int first = -1;
  for (const BackendState& state : backends_) {
    if (state.machine.IsUp()) ++up_count;
  }
  for (const int b : order) {
    if (backends_[static_cast<std::size_t>(b)].machine.IsUp()) {
      first = b;
      break;
    }
  }
  return first;
}

std::string Router::RouteRequest(const JsonValue& request,
                                 const std::string& id) {
  const std::string canonical = CanonicalRequestText(request);
  const CacheKey key = RouterRequestKey(canonical);

  if (std::optional<std::string> hit = hot_cache_.Lookup(key)) {
    hot_hits_.fetch_add(1, std::memory_order_relaxed);
    return WithId(*hit, id);
  }

  // The hot cache keys on the full canonical text (distinct revises never
  // alias), but ring placement uses the affinity text so a revise walks
  // the ring from the same point as its base solve.
  const CacheKey ring_key = RouterRequestKey(RouteAffinityText(request));
  const std::vector<int> order = ring_.PreferenceOrder(ring_key.lo);
  const int total_attempts = std::max(options_.retry.retries, 0) + 1;
  int last_backend = -1;
  for (int attempt = 0; attempt < total_attempts; ++attempt) {
    int up_count = 0;
    const int backend = FirstUpBackend(order, up_count);
    if (backend < 0) break;  // every replica is down
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      const int delay = BackoffDelayMs(
          options_.retry, attempt - 1,
          key.lo ^ Mix64(static_cast<std::uint64_t>(backend) + 1));
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    if (last_backend >= 0 && backend != last_backend) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    last_backend = backend;

    std::string raw;
    bool ok = false;
    if (ForwardTo(backend, canonical, raw, ok)) {
      // Valid protocol-level errors ("overloaded", bad spec) are forwarded
      // verbatim and never cached; only ok replies are deterministic
      // functions of the request.
      if (ok) hot_cache_.Insert(key, raw);
      return WithId(raw, id);
    }
  }

  shed_.fetch_add(1, std::memory_order_relaxed);
  int up_count = 0;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    for (const BackendState& state : backends_) {
      if (state.machine.IsUp()) ++up_count;
    }
  }
  const int total = static_cast<int>(backends_.size());
  return ErrorLine(id, "unavailable", total - up_count, total);
}

std::string Router::StatsResponse(const std::string& id) {
  const std::vector<RouterBackendStatus> statuses = Backends();
  const RouterCounters counters = Counters();
  const HotCache::Counters cache = hot_cache_.GetCounters();
  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started_);

  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  if (!id.empty()) {
    json.Key("id");
    json.String(id);
  }
  json.Key("ok");
  json.Bool(true);
  json.Key("router");
  json.Bool(true);
  json.Key("uptime_ms");
  json.Int(static_cast<long long>(uptime.count()));
  int up = 0;
  for (const RouterBackendStatus& s : statuses) {
    if (s.up) ++up;
  }
  json.Key("backends_up");
  json.Int(up);
  json.Key("backends");
  json.BeginArray();
  for (const RouterBackendStatus& s : statuses) {
    json.BeginObject();
    json.Key("host");
    json.String(s.spec.host);
    json.Key("port");
    json.Int(s.spec.port);
    json.Key("up");
    json.Bool(s.up);
    json.Key("consecutive_failures");
    json.Int(s.consecutive_failures);
    json.Key("consecutive_successes");
    json.Int(s.consecutive_successes);
    json.Key("forwarded");
    json.UInt(s.forwarded);
    json.Key("failures");
    json.UInt(s.failures);
    json.Key("probes");
    json.UInt(s.probes);
    json.Key("probe_failures");
    json.UInt(s.probe_failures);
    json.Key("times_down");
    json.UInt(s.times_down);
    json.EndObject();
  }
  json.EndArray();
  json.Key("counters");
  json.BeginObject();
  json.Key("requests");
  json.UInt(counters.requests);
  json.Key("hot_hits");
  json.UInt(counters.hot_hits);
  json.Key("retries");
  json.UInt(counters.retries);
  json.Key("failovers");
  json.UInt(counters.failovers);
  json.Key("shed");
  json.UInt(counters.shed);
  json.EndObject();
  json.Key("hot_cache");
  json.BeginObject();
  json.Key("hits");
  json.UInt(cache.hits);
  json.Key("misses");
  json.UInt(cache.misses);
  json.Key("inserts");
  json.UInt(cache.inserts);
  json.Key("evictions");
  json.UInt(cache.evictions);
  json.Key("entries");
  json.UInt(cache.entries);
  json.Key("capacity");
  json.UInt(cache.capacity);
  json.EndObject();
  json.EndObject();
  return os.str();
}

std::string Router::HandleLine(std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string id;
  try {
    const JsonValue request = ParseJson(line);
    if (!request.IsObject()) {
      return ErrorLine("", "request must be a JSON object");
    }
    id = request.GetString("id", "");
    const std::string op = request.GetString("op", "");
    if (op == "ping") {
      // Answered locally: this is how peers (and the router's own users)
      // probe the router itself.
      std::ostringstream os;
      JsonWriter json(os);
      json.BeginObject();
      if (!id.empty()) {
        json.Key("id");
        json.String(id);
      }
      json.Key("ok");
      json.Bool(true);
      json.Key("pong");
      json.Bool(true);
      json.Key("router");
      json.Bool(true);
      json.EndObject();
      return os.str();
    }
    if (op == "stats") return StatsResponse(id);
    // Everything else — solve today, future ops tomorrow — is routed; the
    // backend owns the protocol surface.
    return RouteRequest(request, id);
  } catch (const std::exception& e) {
    return ErrorLine(id, e.what());
  }
}

std::vector<RouterBackendStatus> Router::Backends() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<RouterBackendStatus> out;
  out.reserve(backends_.size());
  for (const BackendState& state : backends_) {
    RouterBackendStatus s;
    s.spec = state.spec;
    s.up = state.machine.IsUp();
    s.consecutive_failures = state.machine.ConsecutiveFailures();
    s.consecutive_successes = state.machine.ConsecutiveSuccesses();
    s.forwarded = state.forwarded;
    s.failures = state.failures;
    s.probes = state.probes;
    s.probe_failures = state.probe_failures;
    s.times_down = state.times_down;
    out.push_back(std::move(s));
  }
  return out;
}

RouterCounters Router::Counters() const {
  RouterCounters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.hot_hits = hot_hits_.load(std::memory_order_relaxed);
  c.retries = retries_.load(std::memory_order_relaxed);
  c.failovers = failovers_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  return c;
}

// --- CLI entry ---------------------------------------------------------------

namespace {

std::atomic<Router*> g_signal_router{nullptr};

extern "C" void RouterSignalHandler(int) {
  Router* router = g_signal_router.load(std::memory_order_relaxed);
  if (router != nullptr) router->RequestShutdown();
}

}  // namespace

int RunShardRouter(const RouterOptions& options) {
  Router router(options);
  router.Start();

  g_signal_router.store(&router, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = RouterSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf(
      "{\"listening\":true,\"host\":\"%s\",\"port\":%d,\"backends\":%d}\n",
      options.host.c_str(), router.Port(),
      static_cast<int>(options.backends.size()));
  std::fflush(stdout);

  const int rc = router.Wait();
  g_signal_router.store(nullptr, std::memory_order_relaxed);
  std::fprintf(stderr, "dsf shard-router: drained, exiting\n");
  return rc;
}

}  // namespace dsf
