#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cli/json.hpp"
#include "common/random.hpp"
#include "graph/properties.hpp"
#include "solve/incremental.hpp"
#include "solve/solver.hpp"
#include "solve/solver_spec.hpp"
#include "workload/spec.hpp"

namespace dsf {

namespace {

// Protocol failures carry a client-facing message; anything else escaping
// the handlers is reported verbatim the same way.
std::string ErrorResponse(const std::string& id, const std::string& error,
                          long long queue_depth = -1) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  if (!id.empty()) {
    json.Key("id");
    json.String(id);
  }
  json.Key("ok");
  json.Bool(false);
  json.Key("error");
  json.String(error);
  if (queue_depth >= 0) {
    json.Key("queue_depth");
    json.Int(queue_depth);
  }
  json.EndObject();
  return os.str();
}

// Reads an integral field: present-but-fractional or out-of-range values
// are protocol errors, not truncations. Parsed from the raw literal, not
// the double, so large values arrive exactly.
std::optional<long long> GetInteger(const JsonValue& req,
                                    std::string_view key, long long lo,
                                    long long hi) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr) return std::nullopt;
  const auto fail = [&]() -> std::runtime_error {
    return std::runtime_error("field '" + std::string(key) +
                              "' must be an integer in [" +
                              std::to_string(lo) + ", " + std::to_string(hi) +
                              "]");
  };
  if (!v->IsNumber()) throw fail();
  if (v->string.find_first_of(".eE") != std::string::npos) throw fail();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(v->string.c_str(), &end, 10);
  if (end != v->string.c_str() + v->string.size() || errno == ERANGE ||
      value < lo || value > hi) {
    throw fail();
  }
  return value;
}

// The seed is a full uint64 (like the CLI's --seed): parsed from the raw
// literal so values above 2^53 arrive exactly — the seed is part of the
// cache key and of the bit-identity contract with the one-shot CLI.
std::optional<std::uint64_t> GetSeed(const JsonValue& req) {
  const JsonValue* v = req.Find("seed");
  if (v == nullptr) return std::nullopt;
  const auto fail = [] {
    return std::runtime_error("field 'seed' must be an integer >= 1");
  };
  if (!v->IsNumber() ||
      v->string.find_first_of(".eE-") != std::string::npos) {
    throw fail();
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(v->string.c_str(), &end, 10);
  if (end != v->string.c_str() + v->string.size() || errno == ERANGE ||
      value == 0) {
    throw fail();
  }
  return static_cast<std::uint64_t>(value);
}

// Builds the workload text of a request: either the inline spec verbatim or
// a synthesized two-line spec from the named generator form.
std::string RequestSpecText(const JsonValue& req) {
  const JsonValue* spec = req.Find("spec");
  const JsonValue* generate = req.Find("generate");
  if ((spec != nullptr) == (generate != nullptr)) {
    throw std::runtime_error(
        "solve needs exactly one of 'spec' (inline workload text) or "
        "'generate' (named generator spec)");
  }
  if (spec != nullptr) {
    if (!spec->IsString()) throw std::runtime_error("'spec' must be a string");
    return spec->string;
  }
  if (!generate->IsString()) {
    throw std::runtime_error("'generate' must be a string");
  }
  // "grid rows=4 cols=4" -> generate directive; the instance draw defaults
  // to a small random-ic sample and is named "sampled" on the wire.
  std::string instance = req.GetString("instance", "random-ic k=2 tpc=2");
  std::istringstream fields(instance);
  std::string sampler;
  if (!(fields >> sampler)) {
    throw std::runtime_error("'instance' must name a sampler");
  }
  std::string params;
  std::getline(fields, params);
  std::ostringstream text;
  text << "generate " << generate->string << "\n"
       << "sample " << sampler << " sampled" << params << "\n";
  return text.str();
}

struct SolvePlan {
  WorkloadSpec spec;
  std::vector<std::string> solvers;
  SolveOptions options;
};

// `revise` narrows the solver default: with no request or spec solvers, a
// solve fans out to every registered solver, but a revision names one unit,
// and the only warm-startable core is local-search.
SolvePlan ParseSolve(const ServeContext& ctx, const JsonValue& req,
                     bool revise = false) {
  SolvePlan plan;
  const std::string text = RequestSpecText(req);
  std::istringstream in(text);
  plan.spec = ParseWorkloadSpec(in, "<wire>");
  // Wire specs run with an empty base_dir, but `import` would still read
  // files local to the *server*; clients must inline file contents instead
  // (`dsf client --scenario` does exactly that).
  for (const CaseSpec& cs : plan.spec.cases) {
    if (cs.kind == CaseSpec::Kind::kImportStp ||
        cs.kind == CaseSpec::Kind::kImportDimacs) {
      throw std::runtime_error(
          "'import' is not allowed over the wire; inline the file as a "
          "'graph' block or send it through dsf client --scenario");
    }
  }
  if (const auto seed = GetSeed(req)) plan.spec.seed = *seed;

  const JsonValue* solvers = req.Find("solvers");
  if (solvers != nullptr) {
    if (!solvers->IsArray()) {
      throw std::runtime_error("'solvers' must be an array of names");
    }
    for (const JsonValue& s : solvers->array) {
      if (!s.IsString()) {
        throw std::runtime_error("'solvers' must be an array of names");
      }
      plan.solvers.push_back(s.string);
    }
  }
  // Precedence mirrors the one-shot CLI: request "solvers" beats the spec's
  // `as` directive beats every registered solver.
  if (plan.solvers.empty()) plan.solvers = plan.spec.solvers;
  if (plan.solvers.empty()) {
    if (revise) {
      plan.solvers.emplace_back("local-search");
    } else {
      for (const auto name : SolverRegistry::Names()) {
        plan.solvers.emplace_back(name);
      }
    }
  }
  for (std::string& name : plan.solvers) {
    // Canonicalize before hashing: every spelling of the same portfolio
    // configuration must land on the same cache key.
    std::string why;
    if (!IsValidSolverSpec(name, &why)) throw std::runtime_error(why);
    name = ParseSolverSpec(name).Canonical();
  }

  const double epsilon = req.GetNumber("epsilon", 0.0);
  if (!(epsilon >= 0.0) || epsilon > 64.0) {
    throw std::runtime_error("'epsilon' must be in [0, 64]");
  }
  plan.options.epsilon = static_cast<Real>(epsilon);
  plan.options.repetitions = static_cast<int>(
      GetInteger(req, "repetitions", 1, 1 << 20).value_or(1));
  plan.options.prune = req.GetBool("prune", true);
  plan.options.validate = true;
  // Anytime deadline: tightest of the request's ask and the server-wide cap
  // (--deadline-ms), so the admission queue truncates long-running units
  // instead of holding a BatchEngine slot indefinitely.
  plan.options.deadline_ms = static_cast<int>(
      GetInteger(req, "deadline_ms", 0, 86'400'000).value_or(0));
  if (ctx.max_deadline_ms > 0 && (plan.options.deadline_ms == 0 ||
                                  ctx.max_deadline_ms <
                                      plan.options.deadline_ms)) {
    plan.options.deadline_ms = ctx.max_deadline_ms;
  }
  return plan;
}

void WriteUnitResult(JsonWriter& json, const WorkloadCase& wc,
                     const WorkloadInstance& inst, const SolveResult& r,
                     bool cached, const CacheKey& key) {
  json.BeginObject();
  json.Key("solver");
  json.String(r.solver);
  json.Key("case");
  json.String(wc.name);
  json.Key("instance");
  json.String(inst.name);
  json.Key("input");
  json.String(inst.use_cr ? "cr" : "ic");
  json.Key("weight");
  json.Int(static_cast<long long>(r.weight));
  json.Key("feasible");
  json.Bool(r.feasible);
  if (r.cancelled) {
    json.Key("cancelled");
    json.Bool(true);
  }
  json.Key("edges");
  json.BeginArray();
  for (const EdgeId e : r.forest) json.Int(e);
  json.EndArray();
  json.Key("rounds");
  json.Int(r.stats.rounds);
  json.Key("messages");
  json.Int(r.stats.messages);
  json.Key("wall_ms");
  json.Double(r.wall_ms);
  json.Key("cached");
  json.Bool(cached);
  // The unit's canonical key: what a revise request passes as "base" to
  // warm-start from this result.
  json.Key("key");
  json.String(CacheKeyToHex(key));
  json.EndObject();
}

std::string HandleSolve(ServeContext& ctx, const JsonValue& req,
                        const std::string& id) {
  const auto start = std::chrono::steady_clock::now();
  const SolvePlan plan = ParseSolve(ctx, req);
  const Workload workload = ExpandWorkload(plan.spec);
  for (const WorkloadCase& wc : workload.cases) {
    if (!IsConnected(wc.graph)) {
      // The pipeline would throw mid-batch and poison co-dispatched units;
      // reject at admission instead.
      throw std::runtime_error("case '" + wc.name +
                               "' is disconnected; no distributed protocol "
                               "can run on it");
    }
  }
  const RequestMatrix matrix =
      BuildRequests(workload, plan.solvers, plan.options);
  const std::size_t n = matrix.requests.size();

  // One canonical key per unit; graphs hashed once per case.
  std::vector<CacheKey> graph_hash;
  graph_hash.reserve(workload.cases.size());
  for (const WorkloadCase& wc : workload.cases) {
    graph_hash.push_back(HashGraph(wc.graph));
  }
  std::vector<CacheKey> keys(n);
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    // The unit's final seed, identical to what the one-shot CLI's batch
    // engine would derive for matrix position i.
    seeds[i] = DeriveSeed(plan.spec.seed, static_cast<std::uint64_t>(i));
    keys[i] = CanonicalHash(
        graph_hash[static_cast<std::size_t>(matrix.case_index[i])],
        matrix.requests[i], seeds[i]);
  }

  std::vector<SolveResult> results(n);
  std::vector<bool> cached(n, false);
  std::vector<std::size_t> miss_index;
  for (std::size_t i = 0; i < n; ++i) {
    if (auto hit = ctx.cache->Lookup(keys[i])) {
      results[i] = std::move(*hit);
      cached[i] = true;
    } else {
      miss_index.push_back(i);
    }
  }

  std::uint64_t coalesced = 0;
  if (!miss_index.empty()) {
    std::vector<SolveRequest> miss_units;
    std::vector<CacheKey> miss_keys;
    std::vector<std::uint64_t> miss_seeds;
    miss_units.reserve(miss_index.size());
    for (const std::size_t i : miss_index) {
      miss_units.push_back(matrix.requests[i]);
      miss_keys.push_back(keys[i]);
      miss_seeds.push_back(seeds[i]);
    }
    auto admission = ctx.queue->SubmitAll(miss_units, miss_keys, miss_seeds);
    if (admission.tickets.empty()) {
      return ErrorResponse(
          id, "overloaded",
          static_cast<long long>(ctx.queue->Counters().depth));
    }
    coalesced = admission.coalesced;
    // Wait for EVERY ticket before reacting to errors: queued units borrow
    // this handler's workload graphs, so returning early would free memory
    // the dispatcher is about to read.
    std::string error;
    for (std::size_t j = 0; j < miss_index.size(); ++j) {
      const SolveResult& r = admission.tickets[j]->Wait();
      if (error.empty() && !admission.tickets[j]->Error().empty()) {
        error = admission.tickets[j]->Error();
      }
      results[miss_index[j]] = r;
    }
    if (!error.empty()) return ErrorResponse(id, error);
  }

  const auto stop = std::chrono::steady_clock::now();
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  if (!id.empty()) {
    json.Key("id");
    json.String(id);
  }
  json.Key("ok");
  json.Bool(true);
  json.Key("seed");
  json.UInt(plan.spec.seed);
  json.Key("requests");
  json.Int(static_cast<long long>(n));
  json.Key("hits");
  json.Int(static_cast<long long>(n - miss_index.size()));
  json.Key("misses");
  json.Int(static_cast<long long>(miss_index.size()));
  json.Key("coalesced");
  json.Int(static_cast<long long>(coalesced));
  json.Key("wall_ms");
  json.Double(std::chrono::duration<double, std::milli>(stop - start).count());
  json.Key("results");
  json.BeginArray();
  for (std::size_t i = 0; i < n; ++i) {
    const WorkloadCase& wc =
        workload.cases[static_cast<std::size_t>(matrix.case_index[i])];
    const WorkloadInstance& inst =
        wc.instances[static_cast<std::size_t>(matrix.instance_index[i])];
    WriteUnitResult(json, wc, inst, results[i], cached[i], keys[i]);
  }
  json.EndArray();
  json.EndObject();
  return os.str();
}

// Reads one element of a delta array as an integer (node id or label);
// array shape errors name the field.
long long DeltaInt(const JsonValue& v, std::string_view field) {
  if (!v.IsNumber() || v.string.find_first_of(".eE") != std::string::npos) {
    throw std::runtime_error("'delta." + std::string(field) +
                             "' entries must be integers");
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(v.string.c_str(), &end, 10);
  if (end != v.string.c_str() + v.string.size() || errno == ERANGE) {
    throw std::runtime_error("'delta." + std::string(field) +
                             "' entries must be integers");
  }
  return value;
}

// Parses the "delta" object; node-range and semantic validation happens in
// ApplyDelta against the base instance.
InstanceDelta ParseDelta(const JsonValue& req) {
  const JsonValue* delta = req.Find("delta");
  if (delta == nullptr || !delta->IsObject()) {
    throw std::runtime_error("revise needs a 'delta' object");
  }
  InstanceDelta out;
  const auto read_pairs = [&](std::string_view field,
                              std::vector<std::pair<NodeId, NodeId>>& into) {
    const JsonValue* arr = delta->Find(field);
    if (arr == nullptr) return;
    if (!arr->IsArray()) {
      throw std::runtime_error("'delta." + std::string(field) +
                               "' must be an array of [a, b] pairs");
    }
    for (const JsonValue& e : arr->array) {
      if (!e.IsArray() || e.array.size() != 2) {
        throw std::runtime_error("'delta." + std::string(field) +
                                 "' must be an array of [a, b] pairs");
      }
      into.push_back({static_cast<NodeId>(DeltaInt(e.array[0], field)),
                      static_cast<NodeId>(DeltaInt(e.array[1], field))});
    }
  };
  read_pairs("add_pairs", out.add_pairs);
  read_pairs("remove_pairs", out.remove_pairs);
  std::vector<std::pair<NodeId, NodeId>> terminals;
  read_pairs("add_terminals", terminals);
  for (const auto& [v, l] : terminals) {
    out.add_terminals.push_back({v, static_cast<Label>(l)});
  }
  const JsonValue* removes = delta->Find("remove_terminals");
  if (removes != nullptr) {
    if (!removes->IsArray()) {
      throw std::runtime_error(
          "'delta.remove_terminals' must be an array of node ids");
    }
    for (const JsonValue& e : removes->array) {
      out.remove_terminals.push_back(
          static_cast<NodeId>(DeltaInt(e, "remove_terminals")));
    }
  }
  return out;
}

std::string HandleRevise(ServeContext& ctx, const JsonValue& req,
                         const std::string& id) {
  const auto start = std::chrono::steady_clock::now();
  const SolvePlan plan = ParseSolve(ctx, req, /*revise=*/true);
  const Workload workload = ExpandWorkload(plan.spec);
  if (workload.cases.size() != 1 || workload.cases[0].instances.size() != 1 ||
      plan.solvers.size() != 1) {
    throw std::runtime_error(
        "revise needs exactly one case x instance x solver");
  }
  const WorkloadCase& wc = workload.cases[0];
  if (!IsConnected(wc.graph)) {
    throw std::runtime_error("case '" + wc.name +
                             "' is disconnected; no distributed protocol "
                             "can run on it");
  }
  CacheKey base_key;
  if (!CacheKeyFromHex(req.GetString("base", ""), &base_key)) {
    throw std::runtime_error(
        "revise needs 'base': the 32-hex canonical key of the cached base "
        "result (a solve result's \"key\" field)");
  }
  const InstanceDelta delta = ParseDelta(req);
  const std::string mode = req.GetString("mode", "warm");
  if (mode != "warm" && mode != "exact-match") {
    throw std::runtime_error("'mode' must be \"warm\" or \"exact-match\"");
  }

  const RequestMatrix matrix =
      BuildRequests(workload, plan.solvers, plan.options);
  const SolveRequest& base_request = matrix.requests[0];
  // Same seed position as a solve of the same one-unit framing — the unit
  // is matrix cell 0 either way, which is what makes the revised key equal
  // the cold key of the revised instance.
  const std::uint64_t seed = DeriveSeed(plan.spec.seed, 0);
  const CacheKey graph_hash = HashGraph(wc.graph);

  // The revised unit, cold by default; the warm path upgrades it below.
  SolveRequest revised = base_request;
  if (revised.use_cr) {
    revised.cr = ApplyDelta(revised.cr, delta);
  } else {
    revised.ic = ApplyDelta(revised.ic, delta);
  }
  const CacheKey revised_key = CanonicalHash(graph_hash, revised, seed);

  bool warm = false;
  bool base_hit = false;
  bool cached = false;
  std::string cold_reason;
  SolveResult result;
  std::uint64_t coalesced = 0;
  if (auto hit = ctx.cache->Lookup(revised_key)) {
    // The revised instance is already resident (an earlier revise or an
    // exact solve): serve it without touching the base at all.
    result = std::move(*hit);
    cached = true;
  } else {
    if (mode == "warm") {
      if (auto base = ctx.cache->Lookup(base_key)) {
        base_hit = true;
        WarmStartPlan warm_plan =
            PrepareWarmStart(base_request, base->forest, delta);
        if (warm_plan.warm) {
          warm = true;
          revised = std::move(warm_plan.revised);
        } else {
          cold_reason = warm_plan.cold_reason;
        }
      } else {
        cold_reason = "base key not cached";
      }
    }
    auto admission = ctx.queue->SubmitAll({&revised, 1}, {&revised_key, 1},
                                          {&seed, 1});
    if (admission.tickets.empty()) {
      return ErrorResponse(
          id, "overloaded",
          static_cast<long long>(ctx.queue->Counters().depth));
    }
    coalesced = admission.coalesced;
    result = admission.tickets[0]->Wait();
    if (!admission.tickets[0]->Error().empty()) {
      return ErrorResponse(id, admission.tickets[0]->Error());
    }
  }

  const auto stop = std::chrono::steady_clock::now();
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  if (!id.empty()) {
    json.Key("id");
    json.String(id);
  }
  json.Key("ok");
  json.Bool(true);
  json.Key("seed");
  json.UInt(plan.spec.seed);
  json.Key("requests");
  json.Int(1);
  json.Key("hits");
  json.Int(cached ? 1 : 0);
  json.Key("misses");
  json.Int(cached ? 0 : 1);
  json.Key("coalesced");
  json.Int(static_cast<long long>(coalesced));
  json.Key("warm");
  json.Bool(warm);
  json.Key("base_hit");
  json.Bool(base_hit);
  if (!cold_reason.empty()) {
    json.Key("cold_reason");
    json.String(cold_reason);
  }
  json.Key("key");
  json.String(CacheKeyToHex(revised_key));
  json.Key("wall_ms");
  json.Double(std::chrono::duration<double, std::milli>(stop - start).count());
  json.Key("results");
  json.BeginArray();
  WriteUnitResult(json, wc, wc.instances[0], result, cached, revised_key);
  json.EndArray();
  json.EndObject();
  return os.str();
}

std::string HandleStats(ServeContext& ctx, const std::string& id) {
  const CacheCounters cache = ctx.cache->Counters();
  const QueueCounters queue = ctx.queue->Counters();
  const auto latencies = ctx.queue->Latencies();
  const auto now = std::chrono::steady_clock::now();

  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  if (!id.empty()) {
    json.Key("id");
    json.String(id);
  }
  json.Key("ok");
  json.Bool(true);
  json.Key("uptime_ms");
  json.Double(
      std::chrono::duration<double, std::milli>(now - ctx.started).count());
  json.Key("cache");
  json.BeginObject();
  json.Key("hits");
  json.UInt(cache.hits);
  json.Key("misses");
  json.UInt(cache.misses);
  json.Key("evictions");
  json.UInt(cache.evictions);
  json.Key("inserts");
  json.UInt(cache.inserts);
  json.Key("entries");
  json.UInt(cache.entries);
  json.Key("capacity");
  json.UInt(cache.capacity);
  json.EndObject();
  json.Key("queue");
  json.BeginObject();
  json.Key("depth");
  json.UInt(queue.depth);
  json.Key("peak_depth");
  json.UInt(queue.peak_depth);
  json.Key("admitted");
  json.UInt(queue.admitted);
  json.Key("coalesced");
  json.UInt(queue.coalesced);
  json.Key("rejected");
  json.UInt(queue.rejected);
  json.Key("batches");
  json.UInt(queue.batches);
  json.Key("computed");
  json.UInt(queue.computed);
  json.EndObject();
  json.Key("solvers");
  json.BeginArray();
  for (const SolverLatency& s : latencies) {
    json.BeginObject();
    json.Key("name");
    json.String(s.solver);
    json.Key("count");
    json.UInt(s.count);
    json.Key("p50_ms");
    json.Double(s.p50_ms);
    json.Key("p95_ms");
    json.Double(s.p95_ms);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return os.str();
}

}  // namespace

std::string HandleRequestLine(ServeContext& ctx, std::string_view line) {
  std::string id;
  try {
    const JsonValue req = ParseJson(line);
    if (!req.IsObject()) {
      return ErrorResponse("", "request must be a JSON object");
    }
    id = req.GetString("id", "");
    const std::string op = req.GetString("op", "");
    if (op == "ping") {
      std::ostringstream os;
      JsonWriter json(os);
      json.BeginObject();
      if (!id.empty()) {
        json.Key("id");
        json.String(id);
      }
      json.Key("ok");
      json.Bool(true);
      json.Key("pong");
      json.Bool(true);
      json.EndObject();
      return os.str();
    }
    if (op == "stats") return HandleStats(ctx, id);
    if (op == "solve") return HandleSolve(ctx, req, id);
    if (op == "revise") return HandleRevise(ctx, req, id);
    return ErrorResponse(
        id, op.empty() ? "missing 'op' (solve | stats | ping | revise)"
                       : "unknown op '" + op + "'");
  } catch (const std::exception& e) {
    return ErrorResponse(id, e.what());
  }
}

}  // namespace dsf
