// Deterministic fault injection for the service layer. The failover paths
// of the shard router are only trustworthy if they can be exercised on
// demand: this hook makes a backend misbehave in exactly the ways the
// router must survive — vanish mid-request (exit), drop a connection
// instead of replying, delay a reply past the peer's read deadline, or
// truncate a response line into malformed JSON.
//
// Faults are counter-driven (every request line consumed by the endpoint,
// probes included, bumps one atomic counter), so a given spec misbehaves at
// the same request ordinals on every run — chaos tests are deterministic,
// not flaky. Configured from `dsf serve --fault SPEC` or the DSF_FAULT
// environment variable; in-process tests reconfigure at runtime through
// `Server::Fault()`.
//
// Spec grammar: comma-separated key=value pairs, all optional:
//   exit_after=N      — _Exit(3) without replying once request N arrives
//                       (a crash, not a drain: peers see EOF / ECONNRESET)
//   drop_every=N      — close the connection instead of replying on every
//                       Nth request (N=1: drop everything)
//   truncate_every=N  — send only the first half of every Nth response,
//                       then close (the peer reads malformed JSON)
//   delay_every=N     — sleep delay_ms before every Nth reply
//   delay_ms=D        — the delay used by delay_every (implies
//                       delay_every=1 when only delay_ms is given)
// The empty spec disables injection entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace dsf {

struct FaultAction {
  enum class Kind { kNone, kExit, kDrop, kTruncate, kDelay };
  Kind kind = Kind::kNone;
  int delay_ms = 0;  // kDelay only
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const std::string& spec) { Configure(spec); }

  // Replaces the active spec and resets the request counter (so a spec
  // installed mid-run fires at deterministic ordinals from that point).
  // Throws std::runtime_error on an unknown key or a malformed value.
  void Configure(const std::string& spec);

  // True when any fault is armed; endpoints skip the per-request lock
  // entirely when nothing is configured. Atomic: tests arm faults from
  // another thread while handlers are mid-stream.
  [[nodiscard]] bool Enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  // Counts this request and decides its fate. Precedence when several
  // faults trigger on the same ordinal: exit > drop > truncate > delay.
  [[nodiscard]] FaultAction OnRequest();

  [[nodiscard]] std::uint64_t Requests() const;

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::uint64_t requests_ = 0;
  std::uint64_t exit_after_ = 0;      // 0 = disarmed
  std::uint64_t drop_every_ = 0;
  std::uint64_t truncate_every_ = 0;
  std::uint64_t delay_every_ = 0;
  int delay_ms_ = 0;
};

}  // namespace dsf
