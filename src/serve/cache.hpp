// Canonical instance hashing and the sharded LRU result cache of the
// service layer (DESIGN.md §5).
//
// Real traffic repeats instances: re-solving a perturbed-but-identical
// request is pure waste once the service is resident. `CanonicalHash` turns
// one unit of solver work — (topology, instance, solver, options, seed) —
// into a 128-bit content key that is independent of request framing: two
// requests that would run the exact same deterministic computation collide
// by construction, and nothing else does (two independent FNV-1a streams
// over the canonical field order; a collision needs both 64-bit digests to
// agree).
//
// `ResultCache` maps keys to finished `SolveResult`s. It is sharded by key
// so concurrent connection handlers do not serialize on one mutex; each
// shard runs an intrusive LRU over an open-addressed map. Hit / miss /
// eviction / insert counters are process-wide atomics surfaced through the
// `/stats` request.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "solve/solver.hpp"

namespace dsf {

// 128-bit content key: two independent FNV-1a digests of the same fields.
struct CacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    // lo is already a mixed digest; hi guards against lo-collisions at the
    // equality check, not at bucketing.
    return static_cast<std::size_t>(k.lo);
  }
};

// Digest of a finalized topology (n, m, every edge as (u, v, w) in id
// order). One graph serves many units; hash it once per case and pass the
// digest to CanonicalHash.
[[nodiscard]] CacheKey HashGraph(const Graph& g);

// Wire form of a key: 32 lowercase hex digits (hi then lo). The revise op
// references cached base results by this string, and every solve result
// reports its key so clients can chain revisions.
[[nodiscard]] std::string CacheKeyToHex(const CacheKey& key);
// Strict inverse: exactly 32 hex digits, case-insensitive. False (and *key
// untouched) on anything else.
[[nodiscard]] bool CacheKeyFromHex(std::string_view text, CacheKey* key);

// The canonical key of one unit of solver work. `seed` is the *final*
// per-unit seed (after any master-seed derivation) — the value the solver
// core actually consumes — so batch position and request framing cannot
// split identical computations into distinct keys. Options fold in every
// knob that changes the output (epsilon, repetitions, prune); validate and
// reference accounting do not alter the forest and are excluded.
[[nodiscard]] CacheKey CanonicalHash(const CacheKey& graph, const SolveRequest& request,
                                     std::uint64_t seed);

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  std::uint64_t entries = 0;   // current resident entries across shards
  std::uint64_t capacity = 0;  // configured total capacity
};

class ResultCache {
 public:
  // At most `capacity` resident entries total, spread over `shards`
  // (rounded up to a power of two, clamped to [1, 64], and shrunk when
  // capacity < shards — the capacity bound always wins). capacity == 0
  // disables caching (every lookup is a miss, inserts are dropped).
  explicit ResultCache(std::size_t capacity, int shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Copies the cached result out under the shard lock (callers own their
  // copy; no reference escapes the shard). Counts a hit or a miss.
  [[nodiscard]] std::optional<SolveResult> Lookup(const CacheKey& key);

  // Inserts (or refreshes) `result` under `key`, evicting the shard's LRU
  // tail when full. Re-inserting an existing key refreshes recency only.
  // The cache's contract is "any feasible result for this key is a valid
  // answer": most entries are deterministic functions of their key, but
  // mode=first portfolio results and warm-started revise results are
  // admitted too — they differ from a cold solve only within the
  // approximation guarantee, never in feasibility (DESIGN.md §5).
  void Insert(const CacheKey& key, const SolveResult& result);

  [[nodiscard]] CacheCounters Counters() const;

 private:
  struct Shard {
    std::mutex mutex;
    // Most-recently-used at the front; the list owns keys + values, the map
    // indexes into it.
    std::list<std::pair<CacheKey, SolveResult>> lru;
    std::unordered_map<CacheKey,
                       std::list<std::pair<CacheKey, SolveResult>>::iterator,
                       CacheKeyHash>
        index;
  };

  Shard& ShardFor(const CacheKey& key) noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 0;
  std::size_t capacity_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> entries_{0};
};

}  // namespace dsf
