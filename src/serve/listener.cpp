#include "serve/listener.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/text.hpp"
#include "serve/sockets.hpp"

namespace dsf {

LineEndpoint::LineEndpoint(LineEndpointOptions options)
    : options_(std::move(options)) {}

LineEndpoint::~LineEndpoint() {
  // Backstop only: derived destructors already ran Shutdown(), so handlers
  // (which dispatch into the derived class) are gone by the time the base
  // is torn down.
  Shutdown();
  if (shutdown_pipe_[0] >= 0) ::close(shutdown_pipe_[0]);
  if (shutdown_pipe_[1] >= 0) ::close(shutdown_pipe_[1]);
}

void LineEndpoint::Shutdown() noexcept {
  RequestShutdown();
  if (started_ && !drained_) Wait();
}

void LineEndpoint::Start() {
  if (started_) throw std::logic_error("LineEndpoint::Start called twice");
  if (::pipe(shutdown_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }

  // Non-blocking listen socket: poll() readiness is only a hint (a pending
  // peer can RST away before accept runs), and a blocking accept() in that
  // window would stall the loop — and the shutdown path — until the next
  // client shows up. Accepted sockets do not inherit the flag.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid host address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on " + options_.host + ":" +
                             std::to_string(options_.port) + ": " + what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void LineEndpoint::RequestShutdown() noexcept {
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 'q';
    // Best effort; a full pipe already means a shutdown is pending.
    (void)!::write(shutdown_pipe_[1], &byte, 1);
  }
}

void LineEndpoint::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {shutdown_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // transient (EAGAIN, ECONNABORTED, EMFILE, ...)
    // Bound both directions: a client that requests a large response and
    // never reads it, or one that stalls mid-line, must not pin its
    // handler — that would also pin the drain, which waits for handlers.
    SetSendTimeout(fd, options_.send_timeout_ms);
    SetRecvTimeout(fd, options_.recv_timeout_ms);
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_fds_.push_back(fd);
      ++active_handlers_;
    }
    try {
      std::thread([this, fd] { HandleConnection(fd); }).detach();
    } catch (const std::system_error&) {
      // Thread exhaustion: undo the registration or the drain would wait
      // for a handler that never started.
      std::lock_guard<std::mutex> lock(conn_mutex_);
      std::erase(conn_fds_, fd);
      ::close(fd);
      --active_handlers_;
    }
  }
}

void LineEndpoint::HandleConnection(int fd) {
  std::string buffer;
  char chunk[16384];
  bool closed = false;
  while (!closed) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN here is the SO_RCVTIMEO deadline: a client stalled mid-stream
    // loses its connection (a fresh request can reconnect immediately).
    if (n <= 0) break;  // peer closed, stalled out, or SHUT_RD during drain
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    std::size_t nl;
    while ((nl = buffer.find('\n', start)) != std::string::npos) {
      const std::string_view line = StripCr(
          std::string_view(buffer).substr(start, nl - start));
      start = nl + 1;
      if (line.empty()) continue;
      std::string response = HandleLine(line);
      response.push_back('\n');
      if (fault_.Enabled()) {
        const FaultAction action = fault_.OnRequest();
        switch (action.kind) {
          case FaultAction::Kind::kExit:
            // A crash, not a drain: no reply, no handler accounting, the
            // peer sees EOF / ECONNRESET on every open connection.
            std::_Exit(3);
          case FaultAction::Kind::kDrop:
            closed = true;
            break;
          case FaultAction::Kind::kTruncate:
            SendAll(fd, response.data(), response.size() / 2);
            closed = true;
            break;
          case FaultAction::Kind::kDelay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(action.delay_ms));
            break;
          case FaultAction::Kind::kNone:
            break;
        }
        if (closed) break;
      }
      if (!SendAll(fd, response.data(), response.size())) {
        closed = true;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      const std::string_view err =
          "{\"ok\":false,\"error\":\"request line too long\"}\n";
      SendAll(fd, err.data(), err.size());
      break;
    }
  }
  // Deregister before closing: once closed, the fd number can be reused by
  // a later accept(), and the drain path must never shut down a stranger.
  // The counter decrement and its notify stay under the mutex: the drain
  // cannot wake, see zero, and destroy the endpoint while this thread is
  // still inside notify_all.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    std::erase(conn_fds_, fd);
    ::close(fd);
    --active_handlers_;
    conn_cv_.notify_all();
  }
}

int LineEndpoint::Wait() {
  if (!started_ || drained_) return 0;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Stop accepting, then half-close every live connection: handlers see
  // EOF once they have consumed the bytes already received, finish those
  // requests (derived queues are still running), send the responses, and
  // exit.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conn_cv_.wait(lock, [&] { return active_handlers_ == 0; });
  }
  OnDrained();
  drained_ = true;
  return 0;
}

}  // namespace dsf
