#include "serve/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace dsf {

namespace {

std::uint64_t ParseCount(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() ||
      errno == ERANGE || value[0] == '-') {
    throw std::runtime_error("fault spec: bad value for '" + key + "': '" +
                             value + "'");
  }
  return static_cast<std::uint64_t>(n);
}

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

}  // namespace

void FaultInjector::Configure(const std::string& spec) {
  std::uint64_t exit_after = 0;
  std::uint64_t drop_every = 0;
  std::uint64_t truncate_every = 0;
  std::uint64_t delay_every = 0;
  std::uint64_t delay_ms = 0;

  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    field = Trim(field);
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("fault spec: expected key=value, got '" +
                               field + "'");
    }
    const std::string key = Trim(field.substr(0, eq));
    const std::string value = Trim(field.substr(eq + 1));
    if (key == "exit_after") {
      exit_after = ParseCount(key, value);
    } else if (key == "drop_every") {
      drop_every = ParseCount(key, value);
    } else if (key == "truncate_every") {
      truncate_every = ParseCount(key, value);
    } else if (key == "delay_every") {
      delay_every = ParseCount(key, value);
    } else if (key == "delay_ms") {
      delay_ms = ParseCount(key, value);
      if (delay_ms > 600000) {
        throw std::runtime_error("fault spec: delay_ms must be <= 600000");
      }
    } else {
      throw std::runtime_error("fault spec: unknown key '" + key + "'");
    }
  }
  if (delay_ms > 0 && delay_every == 0) delay_every = 1;

  std::lock_guard<std::mutex> lock(mutex_);
  requests_ = 0;
  exit_after_ = exit_after;
  drop_every_ = drop_every;
  truncate_every_ = truncate_every;
  delay_every_ = delay_every;
  delay_ms_ = static_cast<int>(delay_ms);
  enabled_.store(exit_after_ != 0 || drop_every_ != 0 ||
                     truncate_every_ != 0 || delay_every_ != 0,
                 std::memory_order_release);
}

FaultAction FaultInjector::OnRequest() {
  FaultAction action;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t n = ++requests_;
  if (exit_after_ != 0 && n >= exit_after_) {
    action.kind = FaultAction::Kind::kExit;
  } else if (drop_every_ != 0 && n % drop_every_ == 0) {
    action.kind = FaultAction::Kind::kDrop;
  } else if (truncate_every_ != 0 && n % truncate_every_ == 0) {
    action.kind = FaultAction::Kind::kTruncate;
  } else if (delay_every_ != 0 && n % delay_every_ == 0) {
    action.kind = FaultAction::Kind::kDelay;
    action.delay_ms = delay_ms_;
  }
  return action;
}

std::uint64_t FaultInjector::Requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

}  // namespace dsf
