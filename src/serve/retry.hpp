// One retry policy for every client of the wire: `dsf client` (connect
// retries) and the shard router (per-request retry + failover) share this
// helper so the two retry loops cannot drift apart.
//
// Backoff is exponential with full-range deterministic jitter: attempt k
// waits in [delay/2, delay] where delay = base * 2^k, capped at `max`.
// Jitter is derived from (nonce, attempt) through Mix64 — deterministic
// given the caller's nonce, so tests can pin exact delays, while distinct
// callers (distinct nonces) still decorrelate and do not stampede a
// recovering backend in lockstep.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/hash.hpp"

namespace dsf {

struct RetryPolicy {
  int retries = 0;         // additional attempts after the first
  int backoff_ms = 50;     // base delay before the first retry
  int max_backoff_ms = 2000;
};

// Delay in ms before retry `attempt` (0 = the first retry). Always >= 1 when
// the policy has a positive base, so a retry loop can never spin hot.
[[nodiscard]] inline int BackoffDelayMs(const RetryPolicy& policy, int attempt,
                                        std::uint64_t nonce) noexcept {
  if (policy.backoff_ms <= 0) return 0;
  // Cap the shift, not the product: 2^attempt overflows long before the
  // min() with max_backoff_ms would save it.
  const int shift = std::min(attempt, 20);
  const std::int64_t uncapped =
      static_cast<std::int64_t>(policy.backoff_ms) << shift;
  const std::int64_t delay =
      std::min<std::int64_t>(uncapped, std::max(policy.max_backoff_ms, 1));
  // Jitter into [delay/2, delay]: the top half keeps backoff meaningful,
  // the randomized bottom half breaks synchronization.
  const std::uint64_t r =
      Mix64(nonce ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                 attempt + 1)));
  const std::int64_t half = delay / 2;
  const std::int64_t jittered =
      delay - static_cast<std::int64_t>(r % static_cast<std::uint64_t>(half + 1));
  return static_cast<int>(std::max<std::int64_t>(jittered, 1));
}

}  // namespace dsf
