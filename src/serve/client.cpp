#include "serve/client.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/text.hpp"
#include "serve/sockets.hpp"
#include "solve/solver_spec.hpp"

namespace dsf {

ClientConnection::ClientConnection(const std::string& host, int port,
                                   ConnectionLimits limits)
    : max_line_bytes_(limits.max_line_bytes) {
  fd_ = ConnectTcp(host, port, limits.connect_timeout_ms);
  SetSendTimeout(fd_, limits.send_timeout_ms);
  SetRecvTimeout(fd_, limits.recv_timeout_ms);
}

ClientConnection::~ClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

void ClientConnection::SendLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  if (!SendAll(fd_, framed.data(), framed.size())) {
    throw std::runtime_error(std::string("send: ") + std::strerror(errno));
  }
}

bool ClientConnection::RecvLine(std::string& line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(StripCr(std::string_view(buffer_).substr(0, nl)));
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (max_line_bytes_ != 0 && buffer_.size() > max_line_bytes_) {
      throw std::runtime_error("response line exceeds " +
                               std::to_string(max_line_bytes_) + " bytes");
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      // EAGAIN under SO_RCVTIMEO is the read deadline, the failure mode a
      // hung-but-connected peer produces.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("recv: timed out waiting for a response");
      }
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

JsonValue ClientConnection::RoundTrip(std::string_view request_line) {
  SendLine(request_line);
  std::string response;
  if (!RecvLine(response)) {
    throw std::runtime_error("server closed the connection mid-request");
  }
  return ParseJson(response);
}

// Parses the --delta grammar and writes the wire "delta" object. Tokens
// are separated by commas and/or whitespace; each is add=U-V, rm=U-V,
// addt=V:L, or rmt=V.
static void WriteDeltaJson(JsonWriter& json, const std::string& spec) {
  std::vector<std::pair<long long, long long>> add_pairs;
  std::vector<std::pair<long long, long long>> remove_pairs;
  std::vector<std::pair<long long, long long>> add_terminals;
  std::vector<long long> remove_terminals;

  const auto fail = [](const std::string& token) -> std::runtime_error {
    return std::runtime_error(
        "bad --delta token '" + token +
        "' (want add=U-V, rm=U-V, addt=V:L, or rmt=V)");
  };
  const auto parse_int = [&](std::string_view text,
                             const std::string& token) {
    std::size_t used = 0;
    long long value = 0;
    try {
      value = std::stoll(std::string(text), &used);
    } catch (const std::exception&) {
      throw fail(token);
    }
    if (used != text.size() || value < 0) throw fail(token);
    return value;
  };
  const auto parse_two = [&](std::string_view text, char sep,
                             const std::string& token) {
    const std::size_t at = text.find(sep);
    if (at == std::string_view::npos) throw fail(token);
    return std::pair<long long, long long>{
        parse_int(text.substr(0, at), token),
        parse_int(text.substr(at + 1), token)};
  };

  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream in(normalized);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) throw fail(token);
    const std::string kind = token.substr(0, eq);
    const std::string_view rest = std::string_view(token).substr(eq + 1);
    if (kind == "add") {
      add_pairs.push_back(parse_two(rest, '-', token));
    } else if (kind == "rm") {
      remove_pairs.push_back(parse_two(rest, '-', token));
    } else if (kind == "addt") {
      add_terminals.push_back(parse_two(rest, ':', token));
    } else if (kind == "rmt") {
      remove_terminals.push_back(parse_int(rest, token));
    } else {
      throw fail(token);
    }
  }

  json.Key("delta");
  json.BeginObject();
  const auto write_pairs =
      [&](std::string_view key,
          const std::vector<std::pair<long long, long long>>& pairs) {
        if (pairs.empty()) return;
        json.Key(key);
        json.BeginArray();
        for (const auto& [a, b] : pairs) {
          json.BeginArray();
          json.Int(a);
          json.Int(b);
          json.EndArray();
        }
        json.EndArray();
      };
  write_pairs("add_pairs", add_pairs);
  write_pairs("remove_pairs", remove_pairs);
  write_pairs("add_terminals", add_terminals);
  if (!remove_terminals.empty()) {
    json.Key("remove_terminals");
    json.BeginArray();
    for (const long long v : remove_terminals) json.Int(v);
    json.EndArray();
  }
  json.EndObject();
}

std::string BuildClientRequest(const ClientArgs& args) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("op");
  if (args.stats) {
    json.String("stats");
  } else if (args.ping) {
    json.String("ping");
  } else {
    json.String(args.revise_base.empty() ? "solve" : "revise");
    if (!args.scenario_path.empty()) {
      std::ifstream in(args.scenario_path);
      if (!in) {
        throw std::runtime_error("cannot read scenario file: " +
                                 args.scenario_path);
      }
      std::ostringstream text;
      text << in.rdbuf();
      json.Key("spec");
      json.String(text.str());
    } else {
      json.Key("generate");
      json.String(args.generate);
      if (!args.instance.empty()) {
        json.Key("instance");
        json.String(args.instance);
      }
    }
    if (!args.solvers.empty()) {
      json.Key("solvers");
      json.BeginArray();
      // Paren-aware split: portfolio(...) specs carry commas of their own.
      for (const std::string& spec : SplitSolverList(args.solvers)) {
        json.String(spec);
      }
      json.EndArray();
    }
    if (args.seed_set) {
      json.Key("seed");
      json.UInt(args.seed);
    }
    if (args.epsilon > 0.0) {
      json.Key("epsilon");
      // Full precision: the server's solve must see the same double the
      // one-shot CLI would parse from the same --epsilon string.
      json.DoubleExact(args.epsilon);
    }
    if (args.repetitions != 1) {
      json.Key("repetitions");
      json.Int(args.repetitions);
    }
    if (args.deadline_ms > 0) {
      json.Key("deadline_ms");
      json.Int(args.deadline_ms);
    }
    if (!args.prune) {
      json.Key("prune");
      json.Bool(false);
    }
    if (!args.revise_base.empty()) {
      json.Key("base");
      json.String(args.revise_base);
      WriteDeltaJson(json, args.delta);
      if (!args.revise_mode.empty()) {
        json.Key("mode");
        json.String(args.revise_mode);
      }
    }
  }
  json.EndObject();
  return os.str();
}

// Connects with the shared retry policy: transient connect failures (a
// backend mid-restart, a router not yet bound) back off and try again
// instead of failing the whole invocation on the first ECONNREFUSED.
static ClientConnection ConnectWithRetry(const ClientArgs& args) {
  const std::uint64_t nonce =
      static_cast<std::uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ULL +
      static_cast<std::uint64_t>(args.port);
  for (int attempt = 0;; ++attempt) {
    try {
      return ClientConnection(args.host, args.port);
    } catch (const std::exception& e) {
      if (attempt >= args.retry.retries) throw;
      const int delay = BackoffDelayMs(args.retry, attempt, nonce);
      std::fprintf(stderr,
                   "dsf client: connect failed (%s); retry %d/%d in %d ms\n",
                   e.what(), attempt + 1, args.retry.retries, delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

int RunClient(const ClientArgs& args) {
  const std::string request = BuildClientRequest(args);
  ClientConnection conn = ConnectWithRetry(args);

  std::ofstream file;
  if (!args.json_path.empty()) {
    file.open(args.json_path);
    if (!file) {
      throw std::runtime_error("cannot write " + args.json_path);
    }
  }

  const int sends = (args.stats || args.ping) ? 1 : args.repeat;
  bool all_ok = true;
  for (int i = 0; i < sends; ++i) {
    conn.SendLine(request);
    std::string response;
    if (!conn.RecvLine(response)) {
      std::fprintf(stderr, "dsf client: server closed the connection\n");
      return 2;
    }
    std::printf("%s\n", response.c_str());
    if (file.is_open()) file << response << "\n";

    const JsonValue doc = ParseJson(response);
    if (!doc.GetBool("ok", false)) {
      all_ok = false;
      continue;
    }
    if (const JsonValue* results = doc.Find("results")) {
      for (const JsonValue& r : results->array) {
        if (!r.GetBool("feasible", false)) all_ok = false;
      }
    }
  }
  if (file.is_open()) {
    file.flush();
    if (!file) {
      std::fprintf(stderr, "dsf client: error writing %s\n",
                   args.json_path.c_str());
      return 2;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace dsf
