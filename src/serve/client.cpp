#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/text.hpp"
#include "serve/sockets.hpp"

namespace dsf {

ClientConnection::ClientConnection(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("invalid host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + what);
  }
}

ClientConnection::~ClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

void ClientConnection::SendLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  if (!SendAll(fd_, framed.data(), framed.size())) {
    throw std::runtime_error(std::string("send: ") + std::strerror(errno));
  }
}

bool ClientConnection::RecvLine(std::string& line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(StripCr(std::string_view(buffer_).substr(0, nl)));
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

JsonValue ClientConnection::RoundTrip(std::string_view request_line) {
  SendLine(request_line);
  std::string response;
  if (!RecvLine(response)) {
    throw std::runtime_error("server closed the connection mid-request");
  }
  return ParseJson(response);
}

std::string BuildClientRequest(const ClientArgs& args) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("op");
  if (args.stats) {
    json.String("stats");
  } else if (args.ping) {
    json.String("ping");
  } else {
    json.String("solve");
    if (!args.scenario_path.empty()) {
      std::ifstream in(args.scenario_path);
      if (!in) {
        throw std::runtime_error("cannot read scenario file: " +
                                 args.scenario_path);
      }
      std::ostringstream text;
      text << in.rdbuf();
      json.Key("spec");
      json.String(text.str());
    } else {
      json.Key("generate");
      json.String(args.generate);
      if (!args.instance.empty()) {
        json.Key("instance");
        json.String(args.instance);
      }
    }
    if (!args.solvers.empty()) {
      json.Key("solvers");
      json.BeginArray();
      std::istringstream names(args.solvers);
      std::string name;
      while (std::getline(names, name, ',')) {
        if (!name.empty()) json.String(name);
      }
      json.EndArray();
    }
    if (args.seed_set) {
      json.Key("seed");
      json.UInt(args.seed);
    }
    if (args.epsilon > 0.0) {
      json.Key("epsilon");
      // Full precision: the server's solve must see the same double the
      // one-shot CLI would parse from the same --epsilon string.
      json.DoubleExact(args.epsilon);
    }
    if (args.repetitions != 1) {
      json.Key("repetitions");
      json.Int(args.repetitions);
    }
    if (!args.prune) {
      json.Key("prune");
      json.Bool(false);
    }
  }
  json.EndObject();
  return os.str();
}

int RunClient(const ClientArgs& args) {
  const std::string request = BuildClientRequest(args);
  ClientConnection conn(args.host, args.port);

  std::ofstream file;
  if (!args.json_path.empty()) {
    file.open(args.json_path);
    if (!file) {
      throw std::runtime_error("cannot write " + args.json_path);
    }
  }

  const int sends = (args.stats || args.ping) ? 1 : args.repeat;
  bool all_ok = true;
  for (int i = 0; i < sends; ++i) {
    conn.SendLine(request);
    std::string response;
    if (!conn.RecvLine(response)) {
      std::fprintf(stderr, "dsf client: server closed the connection\n");
      return 2;
    }
    std::printf("%s\n", response.c_str());
    if (file.is_open()) file << response << "\n";

    const JsonValue doc = ParseJson(response);
    if (!doc.GetBool("ok", false)) {
      all_ok = false;
      continue;
    }
    if (const JsonValue* results = doc.Find("results")) {
      for (const JsonValue& r : results->array) {
        if (!r.GetBool("feasible", false)) all_ok = false;
      }
    }
  }
  if (file.is_open()) {
    file.flush();
    if (!file) {
      std::fprintf(stderr, "dsf client: error writing %s\n",
                   args.json_path.c_str());
      return 2;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace dsf
