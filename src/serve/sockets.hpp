// Low-level socket helpers shared by both ends of the wire (server.cpp and
// client.cpp), so the two sides of the protocol cannot drift.
#pragma once

#include <sys/socket.h>

#include <cerrno>
#include <cstddef>

namespace dsf {

// Writes the whole buffer, riding out EINTR and partial writes. send() with
// MSG_NOSIGNAL instead of write(): a peer that hung up must yield EPIPE,
// not kill the process. A socket SO_SNDTIMEO (the server sets one per
// connection) surfaces as EAGAIN and fails the call — an unresponsive
// reader drops its connection instead of pinning the sender. On failure
// errno is left set for the caller.
inline bool SendAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace dsf
