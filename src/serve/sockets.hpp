// Low-level socket helpers shared by every end of the wire (server.cpp,
// client.cpp, router.cpp), so the sides of the protocol cannot drift.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace dsf {

// Writes the whole buffer, riding out EINTR and partial writes. send() with
// MSG_NOSIGNAL instead of write(): a peer that hung up must yield EPIPE,
// not kill the process. A socket SO_SNDTIMEO (the server sets one per
// connection) surfaces as EAGAIN and fails the call — an unresponsive
// reader drops its connection instead of pinning the sender. On failure
// errno is left set for the caller.
inline bool SendAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// SO_SNDTIMEO / SO_RCVTIMEO in milliseconds; ms <= 0 leaves the socket
// blocking without a deadline. A timed-out send()/recv() fails with EAGAIN.
inline void SetSendTimeout(int fd, int ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

inline void SetRecvTimeout(int fd, int ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

// Blocking TCP connect with an optional deadline (connect_timeout_ms <= 0
// means the OS default). The deadline matters to the router: a backend
// whose host is unreachable must fail the health check in bounded time,
// not after the kernel's multi-minute SYN retry schedule. Returns the
// connected fd (blocking mode) or throws std::runtime_error.
inline int ConnectTcp(const std::string& host, int port,
                      int connect_timeout_ms = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("invalid host address: " + host);
  }
  const auto fail = [&](const char* what) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + what +
                             (detail.empty() ? "" : " (" + detail + ")"));
  };
  if (connect_timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      fail("connect");
    }
    return fd;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS) fail("connect");
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, connect_timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      errno = ETIMEDOUT;
      fail("connect timeout");
    }
    if (ready < 0) fail("poll");
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      fail("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the line protocol
  return fd;
}

}  // namespace dsf
