// Shared scaffolding for every resident line-protocol process: the `dsf
// serve` backend and the `dsf shard-router` front tier are both "a POSIX
// TCP listener that answers one JSON line per request line", and this base
// class owns exactly that shape so the two cannot drift:
//
//   * one accept thread (poll over the listen socket and a self-pipe),
//   * one detached handler thread per connection running the line-framing
//     loop — handlers parse frames and call the derived `HandleLine`,
//     they are counted rather than joined (a resident process must not
//     accumulate a zombie joinable thread per finished connection),
//   * per-connection SO_SNDTIMEO / SO_RCVTIMEO deadlines (options): an
//     unresponsive reader or a client stalled mid-line drops its
//     connection instead of pinning a handler — and with it the drain —
//     forever,
//   * a `FaultInjector` consulted once per request line, so chaos tests
//     can make any endpoint drop / delay / truncate / die deterministically,
//   * drain-not-abort shutdown (`RequestShutdown` is async-signal-safe):
//     stop accepting, half-close every connection so handlers finish the
//     request lines already received and deliver their responses, wait for
//     the handler count to reach zero, then let the derived class drain
//     its own queues via `OnDrained`. `Wait()` returns 0 after a clean
//     drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/fault.hpp"

namespace dsf {

struct LineEndpointOptions {
  std::string host = "127.0.0.1";
  int port = 0;               // 0 = ephemeral; Port() reports the bound port
  // One request line must fit in memory; longer lines fail the connection.
  std::size_t max_line_bytes = 4u << 20;
  // Per-connection socket deadlines in ms (<= 0 disables). The send side
  // bounds writes to peers that never read their response; the receive
  // side bounds clients that stall mid-line and would otherwise pin a
  // connection handler until shutdown.
  int send_timeout_ms = 30'000;
  int recv_timeout_ms = 300'000;
};

class LineEndpoint {
 public:
  explicit LineEndpoint(LineEndpointOptions options);
  virtual ~LineEndpoint();

  LineEndpoint(const LineEndpoint&) = delete;
  LineEndpoint& operator=(const LineEndpoint&) = delete;

  // Binds + listens + spawns the accept thread. Throws std::runtime_error
  // when the socket cannot be bound.
  void Start();

  // The bound port (valid after Start()).
  [[nodiscard]] int Port() const noexcept { return port_; }

  // Triggers the drain. Async-signal-safe (a single write to a pipe), so
  // signal handlers call it directly.
  void RequestShutdown() noexcept;

  // Blocks until the endpoint has fully drained; returns the process exit
  // code (0 on a clean drain).
  int Wait();

  // The endpoint's fault hook (disabled unless configured). Tests arm and
  // re-arm it at runtime while traffic is in flight.
  [[nodiscard]] FaultInjector& Fault() noexcept { return fault_; }

 protected:
  // Executes one request line, returning the response line (no trailing
  // newline). Called concurrently from handler threads; must not throw.
  virtual std::string HandleLine(std::string_view line) = 0;

  // Called once from Wait() after every handler has exited and before
  // Wait() returns: derived classes drain their own work queues here.
  virtual void OnDrained() {}

  // Derived destructors MUST call Shutdown() (RequestShutdown + Wait)
  // before destroying their own state: handler threads call HandleLine
  // until the drain completes.
  void Shutdown() noexcept;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  LineEndpointOptions options_;
  FaultInjector fault_;

  int listen_fd_ = -1;
  int port_ = 0;
  int shutdown_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  // Handler threads run detached (see the header comment), so connection
  // tracking is a counter: the drain waits for it to reach zero instead of
  // joining.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::vector<int> conn_fds_;
  int active_handlers_ = 0;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace dsf
