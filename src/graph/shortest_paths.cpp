#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "graph/union_find.hpp"

namespace dsf {

namespace {

// Priority-queue entry: (dist, hops, node). Smaller dist first, then fewer
// hops, then smaller node id — deterministic tie-breaking matters because the
// centralized moat algorithm's output is compared against the distributed one.
struct QueueEntry {
  Weight dist;
  int hops;
  NodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    return std::tie(a.dist, a.hops, a.node) > std::tie(b.dist, b.hops, b.node);
  }
};

}  // namespace

std::vector<EdgeId> ShortestPathTree::PathTo(NodeId v) const {
  DSF_CHECK(Reachable(v));
  std::vector<EdgeId> path;
  while (v != source) {
    const EdgeId pe = parent_edge[static_cast<std::size_t>(v)];
    DSF_CHECK(pe != kNoEdge);
    path.push_back(pe);
    v = parent[static_cast<std::size_t>(v)];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree Dijkstra(const Graph& g, NodeId source,
                          const CancelToken* cancel) {
  const auto n = static_cast<std::size_t>(g.NumNodes());
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, kInfWeight);
  t.parent.assign(n, kNoNode);
  t.parent_edge.assign(n, kNoEdge);
  t.hops.assign(n, -1);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  t.dist[static_cast<std::size_t>(source)] = 0;
  t.hops[static_cast<std::size_t>(source)] = 0;
  pq.push({0, 0, source});
  std::size_t pops = 0;
  while (!pq.empty()) {
    // Cancellation checkpoint every 4096 pops (same cadence as KruskalMst):
    // the tree stays internally consistent, just incomplete.
    if (cancel != nullptr && (++pops & 0xFFFu) == 0 && cancel->Expired()) {
      break;
    }
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (d != t.dist[static_cast<std::size_t>(u)] ||
        h != t.hops[static_cast<std::size_t>(u)]) {
      continue;
    }
    for (const auto& inc : g.Neighbors(u)) {
      const Weight nd = d + g.GetEdge(inc.edge).w;
      const int nh = h + 1;
      auto& dv = t.dist[static_cast<std::size_t>(inc.neighbor)];
      auto& hv = t.hops[static_cast<std::size_t>(inc.neighbor)];
      const bool better =
          nd < dv || (nd == dv && nh < hv) ||
          (nd == dv && nh == hv &&
           u < t.parent[static_cast<std::size_t>(inc.neighbor)]);
      if (better) {
        dv = nd;
        hv = nh;
        t.parent[static_cast<std::size_t>(inc.neighbor)] = u;
        t.parent_edge[static_cast<std::size_t>(inc.neighbor)] = inc.edge;
        pq.push({nd, nh, inc.neighbor});
      }
    }
  }
  return t;
}

VoronoiDecomposition MultiSourceDijkstra(const Graph& g,
                                         std::span<const NodeId> sources) {
  const auto n = static_cast<std::size_t>(g.NumNodes());
  VoronoiDecomposition v;
  v.dist.assign(n, kInfWeight);
  v.owner.assign(n, kNoNode);
  v.parent.assign(n, kNoNode);
  v.parent_edge.assign(n, kNoEdge);

  // Entry: (dist, owner, node) — owner in the key implements the paper's
  // lexicographic tie-breaking between centers (Definition 4.6).
  using Entry = std::tuple<Weight, NodeId, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (const NodeId s : sources) {
    if (v.dist[static_cast<std::size_t>(s)] == 0 &&
        v.owner[static_cast<std::size_t>(s)] != kNoNode) {
      continue;  // duplicate source
    }
    v.dist[static_cast<std::size_t>(s)] = 0;
    v.owner[static_cast<std::size_t>(s)] = s;
    pq.push({0, s, s});
  }
  while (!pq.empty()) {
    const auto [d, own, u] = pq.top();
    pq.pop();
    if (d != v.dist[static_cast<std::size_t>(u)] ||
        own != v.owner[static_cast<std::size_t>(u)]) {
      continue;
    }
    for (const auto& inc : g.Neighbors(u)) {
      const Weight nd = d + g.GetEdge(inc.edge).w;
      const auto ni = static_cast<std::size_t>(inc.neighbor);
      if (nd < v.dist[ni] || (nd == v.dist[ni] && own < v.owner[ni])) {
        v.dist[ni] = nd;
        v.owner[ni] = own;
        v.parent[ni] = u;
        v.parent_edge[ni] = inc.edge;
        pq.push({nd, own, inc.neighbor});
      }
    }
  }
  return v;
}

std::vector<std::vector<Weight>> DistancesFrom(const Graph& g,
                                               std::span<const NodeId> sources) {
  std::vector<std::vector<Weight>> result;
  result.reserve(sources.size());
  for (const NodeId s : sources) {
    result.push_back(Dijkstra(g, s).dist);
  }
  return result;
}

BfsTreeResult Bfs(const Graph& g, NodeId source) {
  const auto n = static_cast<std::size_t>(g.NumNodes());
  BfsTreeResult t;
  t.source = source;
  t.depth.assign(n, -1);
  t.parent.assign(n, kNoNode);
  t.parent_edge.assign(n, kNoEdge);
  std::queue<NodeId> q;
  t.depth[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const auto& inc : g.Neighbors(u)) {
      const auto ni = static_cast<std::size_t>(inc.neighbor);
      if (t.depth[ni] == -1) {
        t.depth[ni] = t.depth[static_cast<std::size_t>(u)] + 1;
        t.parent[ni] = u;
        t.parent_edge[ni] = inc.edge;
        q.push(inc.neighbor);
      }
    }
  }
  return t;
}

Components ConnectedComponents(const Graph& g) {
  Components c;
  c.comp.assign(static_cast<std::size_t>(g.NumNodes()), -1);
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    if (c.comp[static_cast<std::size_t>(s)] != -1) continue;
    const int idx = c.count++;
    std::queue<NodeId> q;
    c.comp[static_cast<std::size_t>(s)] = idx;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const auto& inc : g.Neighbors(u)) {
        if (c.comp[static_cast<std::size_t>(inc.neighbor)] == -1) {
          c.comp[static_cast<std::size_t>(inc.neighbor)] = idx;
          q.push(inc.neighbor);
        }
      }
    }
  }
  return c;
}

Components SubgraphComponents(const Graph& g, std::span<const EdgeId> subset) {
  UnionFind uf(g.NumNodes());
  for (const EdgeId id : subset) {
    const auto& e = g.GetEdge(id);
    uf.Union(e.u, e.v);
  }
  Components c;
  c.comp.assign(static_cast<std::size_t>(g.NumNodes()), -1);
  std::vector<int> remap(static_cast<std::size_t>(g.NumNodes()), -1);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const int root = uf.Find(v);
    if (remap[static_cast<std::size_t>(root)] == -1) {
      remap[static_cast<std::size_t>(root)] = c.count++;
    }
    c.comp[static_cast<std::size_t>(v)] = remap[static_cast<std::size_t>(root)];
  }
  return c;
}

}  // namespace dsf
