#include "graph/properties.hpp"

#include <algorithm>

#include "graph/shortest_paths.hpp"

namespace dsf {

GraphParameters ComputeParameters(const Graph& g) {
  GraphParameters p;
  p.connected = IsConnected(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto bfs = Bfs(g, v);
    const auto sp = Dijkstra(g, v);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      const auto ui = static_cast<std::size_t>(u);
      if (bfs.depth[ui] >= 0) {
        p.unweighted_diameter = std::max(p.unweighted_diameter, bfs.depth[ui]);
      }
      if (sp.Reachable(u)) {
        p.weighted_diameter = std::max(p.weighted_diameter, sp.dist[ui]);
        p.shortest_path_diameter =
            std::max(p.shortest_path_diameter, sp.hops[ui]);
      }
    }
  }
  return p;
}

const GraphParameters& CachedParameters(const Graph& g) {
  DSF_CHECK(g.Finalized());
  if (g.params_cache_ == nullptr) {
    g.params_cache_ =
        std::make_shared<const GraphParameters>(ComputeParameters(g));
  }
  return *g.params_cache_;
}

int UnweightedDiameter(const Graph& g) {
  int d = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto bfs = Bfs(g, v);
    for (const int depth : bfs.depth) d = std::max(d, depth);
  }
  return d;
}

int ShortestPathDiameter(const Graph& g) {
  int s = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto sp = Dijkstra(g, v);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      if (sp.Reachable(u)) {
        s = std::max(s, sp.hops[static_cast<std::size_t>(u)]);
      }
    }
  }
  return s;
}

Weight WeightedDiameter(const Graph& g) {
  Weight wd = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto sp = Dijkstra(g, v);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      if (sp.Reachable(u)) {
        wd = std::max(wd, sp.dist[static_cast<std::size_t>(u)]);
      }
    }
  }
  return wd;
}

bool IsConnected(const Graph& g) {
  if (g.NumNodes() == 0) return true;
  return ConnectedComponents(g).count == 1;
}

}  // namespace dsf
