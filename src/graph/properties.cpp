#include "graph/properties.hpp"

#include <algorithm>
#include <mutex>

#include "graph/shortest_paths.hpp"

namespace dsf {

GraphParameters ComputeParameters(const Graph& g) {
  GraphParameters p;
  p.connected = IsConnected(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto bfs = Bfs(g, v);
    const auto sp = Dijkstra(g, v);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      const auto ui = static_cast<std::size_t>(u);
      if (bfs.depth[ui] >= 0) {
        p.unweighted_diameter = std::max(p.unweighted_diameter, bfs.depth[ui]);
      }
      if (sp.Reachable(u)) {
        p.weighted_diameter = std::max(p.weighted_diameter, sp.dist[ui]);
        p.shortest_path_diameter =
            std::max(p.shortest_path_diameter, sp.hops[ui]);
      }
    }
  }
  return p;
}

const GraphParameters& CachedParameters(const Graph& g) {
  DSF_CHECK(g.Finalized());
  // Concurrent batch solves share one Graph and may race to fill a cold
  // cache (BatchEngine fans requests across the round pool), so the lazy
  // install is serialized. The expensive all-pairs computation runs outside
  // the lock: a cold same-graph race wastes one duplicate computation, but
  // callers needing an unrelated (or warm) graph never block behind it.
  // Once installed the object is never replaced, so the returned reference
  // stays valid for the graph's lifetime.
  static std::mutex mu;
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (g.params_cache_ != nullptr) return *g.params_cache_;
  }
  auto computed = std::make_shared<const GraphParameters>(ComputeParameters(g));
  const std::lock_guard<std::mutex> lock(mu);
  if (g.params_cache_ == nullptr) g.params_cache_ = std::move(computed);
  return *g.params_cache_;
}

int UnweightedDiameter(const Graph& g) {
  int d = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto bfs = Bfs(g, v);
    for (const int depth : bfs.depth) d = std::max(d, depth);
  }
  return d;
}

int ShortestPathDiameter(const Graph& g) {
  int s = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto sp = Dijkstra(g, v);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      if (sp.Reachable(u)) {
        s = std::max(s, sp.hops[static_cast<std::size_t>(u)]);
      }
    }
  }
  return s;
}

Weight WeightedDiameter(const Graph& g) {
  Weight wd = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto sp = Dijkstra(g, v);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      if (sp.Reachable(u)) {
        wd = std::max(wd, sp.dist[static_cast<std::size_t>(u)]);
      }
    }
  }
  return wd;
}

bool IsConnected(const Graph& g) {
  if (g.NumNodes() == 0) return true;
  return ConnectedComponents(g).count == 1;
}

}  // namespace dsf
