#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "graph/union_find.hpp"

namespace dsf {

EdgeId Graph::AddEdge(NodeId u, NodeId v, Weight w) {
  DSF_CHECK(!finalized_);
  DSF_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                "edge endpoint out of range: {" << u << "," << v << "}");
  DSF_CHECK_MSG(u != v, "self-loop at node " << u);
  DSF_CHECK_MSG(w >= 1, "edge weight must be a positive integer, got " << w);
  edges_.push_back(Edge{u, v, w});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void Graph::Finalize() {
  DSF_CHECK(!finalized_);
  std::fill(adj_index_.begin(), adj_index_.end(), 0);
  for (const auto& e : edges_) {
    ++adj_index_[static_cast<std::size_t>(e.u) + 1];
    ++adj_index_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < adj_index_.size(); ++i) {
    adj_index_[i] += adj_index_[i - 1];
  }
  adj_.resize(2 * edges_.size());
  mirror_.resize(2 * edges_.size());
  slot_dir_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(adj_index_.begin(), adj_index_.end() - 1);
  for (EdgeId id = 0; id < NumEdges(); ++id) {
    const auto& e = edges_[static_cast<std::size_t>(id)];
    const std::size_t slot_u = cursor[static_cast<std::size_t>(e.u)]++;
    const std::size_t slot_v = cursor[static_cast<std::size_t>(e.v)]++;
    adj_[slot_u] = Incidence{e.v, id};
    adj_[slot_v] = Incidence{e.u, id};
    mirror_[slot_u] = static_cast<std::int32_t>(
        slot_v - adj_index_[static_cast<std::size_t>(e.v)]);
    mirror_[slot_v] = static_cast<std::int32_t>(
        slot_u - adj_index_[static_cast<std::size_t>(e.u)]);
    slot_dir_[slot_u] = 2 * static_cast<std::uint32_t>(id);
    slot_dir_[slot_v] = 2 * static_cast<std::uint32_t>(id) + 1;
  }
  finalized_ = true;
}

Weight Graph::WeightOf(std::span<const EdgeId> subset) const {
  Weight sum = 0;
  for (const EdgeId e : subset) sum += GetEdge(e).w;
  return sum;
}

bool Graph::IsForest(std::span<const EdgeId> subset) const {
  UnionFind uf(n_);
  for (const EdgeId id : subset) {
    const auto& e = GetEdge(id);
    if (!uf.Union(e.u, e.v)) return false;
  }
  return true;
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << NumEdges() << ")";
  return os.str();
}

Graph MakeGraph(int n, const std::vector<Edge>& edges) {
  Graph g(n);
  for (const auto& e : edges) g.AddEdge(e.u, e.v, e.w);
  g.Finalize();
  return g;
}

}  // namespace dsf
