#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/shortest_paths.hpp"
#include "graph/union_find.hpp"

namespace dsf {

namespace {

Weight RandomWeight(Weight min_w, Weight max_w, SplitMix64& rng) {
  DSF_CHECK(min_w >= 1 && max_w >= min_w);
  return rng.NextInt(min_w, max_w);
}

}  // namespace

Graph MakePath(int n, Weight w) {
  DSF_CHECK(n >= 1);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1, w);
  g.Finalize();
  return g;
}

Graph MakeCycle(int n, Weight w) {
  DSF_CHECK(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1, w);
  g.AddEdge(n - 1, 0, w);
  g.Finalize();
  return g;
}

Graph MakeStar(int n, Weight w) {
  DSF_CHECK(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.AddEdge(0, v, w);
  g.Finalize();
  return g;
}

Graph MakeGrid(int rows, int cols, Weight min_w, Weight max_w, SplitMix64& rng) {
  DSF_CHECK(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g.AddEdge(id(r, c), id(r, c + 1), RandomWeight(min_w, max_w, rng));
      }
      if (r + 1 < rows) {
        g.AddEdge(id(r, c), id(r + 1, c), RandomWeight(min_w, max_w, rng));
      }
    }
  }
  g.Finalize();
  return g;
}

Graph MakeComplete(int n, Weight min_w, Weight max_w, SplitMix64& rng) {
  DSF_CHECK(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      g.AddEdge(u, v, RandomWeight(min_w, max_w, rng));
    }
  }
  g.Finalize();
  return g;
}

Graph MakeConnectedRandom(int n, double p, Weight min_w, Weight max_w,
                          SplitMix64& rng) {
  DSF_CHECK(n >= 1);
  Graph g(n);
  std::vector<std::vector<bool>> present;
  // For small n track adjacency to avoid parallel edges; for large n the
  // spanning-tree pass uses a random parent < v so duplicates with the ER
  // pass must still be suppressed.
  present.assign(static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n), false));

  const auto add = [&](NodeId u, NodeId v) {
    if (u == v) return;
    if (u > v) std::swap(u, v);
    auto& row = present[static_cast<std::size_t>(u)];
    if (row[static_cast<std::size_t>(v)]) return;
    row[static_cast<std::size_t>(v)] = true;
    g.AddEdge(u, v, RandomWeight(min_w, max_w, rng));
  };

  // Random spanning tree: v attaches to a uniformly random earlier node.
  const auto perm = RandomPermutation(n, rng);
  for (int i = 1; i < n; ++i) {
    const auto j = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(i)));
    add(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  // ER edges.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < p) add(u, v);
    }
  }
  g.Finalize();
  return g;
}

Graph MakeRandomGeometric(int n, double radius, Weight scale, SplitMix64& rng) {
  DSF_CHECK(n >= 1);
  DSF_CHECK(scale >= 1);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.NextDouble();
    y[static_cast<std::size_t>(i)] = rng.NextDouble();
  }
  const auto dist = [&](int a, int b) {
    const double dx = x[static_cast<std::size_t>(a)] - x[static_cast<std::size_t>(b)];
    const double dy = y[static_cast<std::size_t>(a)] - y[static_cast<std::size_t>(b)];
    return std::sqrt(dx * dx + dy * dy);
  };
  const auto to_weight = [&](double d) {
    return std::max<Weight>(1, static_cast<Weight>(std::llround(d * static_cast<double>(scale))));
  };

  Graph g(n);
  std::vector<std::vector<bool>> present(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n), false));
  UnionFind uf(n);
  const auto add = [&](NodeId u, NodeId v, Weight w) {
    if (u > v) std::swap(u, v);
    auto& row = present[static_cast<std::size_t>(u)];
    if (row[static_cast<std::size_t>(v)]) return;
    row[static_cast<std::size_t>(v)] = true;
    g.AddEdge(u, v, w);
    uf.Union(u, v);
  };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double d = dist(u, v);
      if (d <= radius) add(u, v, to_weight(d));
    }
  }
  // Stitch components along a random permutation so the graph is connected.
  const auto perm = RandomPermutation(n, rng);
  for (int i = 1; i < n; ++i) {
    const NodeId a = perm[static_cast<std::size_t>(i - 1)];
    const NodeId b = perm[static_cast<std::size_t>(i)];
    if (!uf.Connected(a, b)) add(a, b, to_weight(dist(a, b)));
  }
  g.Finalize();
  return g;
}

Graph MakeTreePlusChords(int n, int extra_chords, Weight w, Weight chord_w,
                         SplitMix64& rng) {
  DSF_CHECK(n >= 1);
  Graph g(n);
  std::vector<std::vector<bool>> present(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n), false));
  const auto add = [&](NodeId u, NodeId v, Weight ww) {
    if (u == v) return false;
    if (u > v) std::swap(u, v);
    auto& row = present[static_cast<std::size_t>(u)];
    if (row[static_cast<std::size_t>(v)]) return false;
    row[static_cast<std::size_t>(v)] = true;
    g.AddEdge(u, v, ww);
    return true;
  };
  for (NodeId v = 1; v < n; ++v) add(v, (v - 1) / 2, w);
  int added = 0;
  int attempts = 0;
  while (added < extra_chords && attempts < 50 * extra_chords + 100) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    if (add(u, v, chord_w)) ++added;
  }
  g.Finalize();
  return g;
}

Graph MakeCaterpillar(int spine, int legs, Weight spine_w, Weight leg_w) {
  DSF_CHECK(spine >= 1 && legs >= 0);
  const int n = spine * (1 + legs);
  Graph g(n);
  for (int i = 0; i + 1 < spine; ++i) g.AddEdge(i, i + 1, spine_w);
  int next = spine;
  for (int i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) g.AddEdge(i, next++, leg_w);
  }
  g.Finalize();
  return g;
}

Graph SubdivideEdges(const Graph& g, int pieces) {
  DSF_CHECK(pieces >= 1);
  if (pieces == 1) {
    Graph copy(g.NumNodes());
    for (const auto& e : g.Edges()) copy.AddEdge(e.u, e.v, e.w);
    copy.Finalize();
    return copy;
  }
  // Each weight-w edge becomes `pieces` segments of weight w (total w*pieces);
  // all distances scale by exactly `pieces`, so the metric structure — and the
  // optimal forest, up to the subdivision mapping — is preserved while s grows
  // by a factor of `pieces`.
  const int extra_per_edge = pieces - 1;
  Graph out(g.NumNodes() + g.NumEdges() * extra_per_edge);
  NodeId next = g.NumNodes();
  for (const auto& e : g.Edges()) {
    NodeId prev = e.u;
    for (int i = 0; i < extra_per_edge; ++i) {
      out.AddEdge(prev, next, e.w);
      prev = next++;
    }
    out.AddEdge(prev, e.v, e.w);
  }
  out.Finalize();
  return out;
}

}  // namespace dsf
