// Workload graph generators.
//
// These produce the topology families the benchmarks sweep over. Each family
// controls a different parameter of the paper's bounds:
//   * paths / subdivided graphs    — drive the shortest-path diameter s,
//   * stars / low-diameter graphs  — keep D and s tiny while k or t grows,
//   * grids / random geometric     — "railroad design"-style planar metrics,
//   * Erdős–Rényi + spanning tree  — generic connected weighted networks.
// All generators are deterministic given the seed and never produce parallel
// edges or self-loops.
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "graph/graph.hpp"

namespace dsf {

// Path 0-1-...-(n-1); weight of every edge = `w`.
Graph MakePath(int n, Weight w = 1);

// Cycle on n >= 3 nodes.
Graph MakeCycle(int n, Weight w = 1);

// Star: center 0, leaves 1..n-1.
Graph MakeStar(int n, Weight w = 1);

// rows x cols grid; node (r, c) has id r*cols + c. Weights uniform in
// [min_w, max_w] drawn from `rng` (use min_w == max_w for unit grids).
Graph MakeGrid(int rows, int cols, Weight min_w, Weight max_w, SplitMix64& rng);

// Complete graph K_n with weights uniform in [min_w, max_w].
Graph MakeComplete(int n, Weight min_w, Weight max_w, SplitMix64& rng);

// Connected Erdős–Rényi G(n, p): a random spanning tree is added first so the
// result is always connected; extra edges appear independently with
// probability p. Weights uniform in [min_w, max_w].
Graph MakeConnectedRandom(int n, double p, Weight min_w, Weight max_w,
                          SplitMix64& rng);

// Random geometric graph: n points in the unit square, edges between pairs at
// Euclidean distance <= radius, weights = rounded scaled distance (>= 1).
// A spanning tree over a random permutation is added if disconnected.
Graph MakeRandomGeometric(int n, double radius, Weight scale, SplitMix64& rng);

// Balanced binary tree on n nodes (heap indexing), weight w per edge, plus
// `extra_chords` random non-tree edges with weight chord_w.
Graph MakeTreePlusChords(int n, int extra_chords, Weight w, Weight chord_w,
                         SplitMix64& rng);

// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
// Spine edges weigh spine_w, leg edges weigh leg_w.
Graph MakeCaterpillar(int spine, int legs, Weight spine_w, Weight leg_w);

// Subdivides every edge of `g` into `pieces` unit-ish segments, multiplying
// the shortest-path diameter s while preserving the metric (each weight-w
// edge becomes `pieces` edges whose weights sum to w * pieces ... scaled by
// `pieces`, so all distances scale uniformly). Used for s-sweeps.
Graph SubdivideEdges(const Graph& g, int pieces);

}  // namespace dsf
