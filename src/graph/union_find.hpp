// Disjoint-set union with path compression and union by size.
//
// Used everywhere merges happen: moat merging (Algorithm 1/2), Kruskal-style
// candidate filtering (Lemma 4.14), label merging (lines 21-27 of
// Algorithm 1), and forest validation.
#pragma once

#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace dsf {

class UnionFind {
 public:
  explicit UnionFind(int n)
      : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  [[nodiscard]] int NumElements() const noexcept {
    return static_cast<int>(parent_.size());
  }

  int Find(int x) {
    DSF_CHECK(x >= 0 && x < NumElements());
    int root = x;
    while (parent_[static_cast<std::size_t>(root)] != root) {
      root = parent_[static_cast<std::size_t>(root)];
    }
    while (parent_[static_cast<std::size_t>(x)] != root) {
      const int next = parent_[static_cast<std::size_t>(x)];
      parent_[static_cast<std::size_t>(x)] = root;
      x = next;
    }
    return root;
  }

  // Merges the sets of a and b. Returns false if already in the same set.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    return true;
  }

  bool Connected(int a, int b) { return Find(a) == Find(b); }

  [[nodiscard]] int SizeOf(int x) {
    return static_cast<int>(size_[static_cast<std::size_t>(Find(x))]);
  }

  // Number of disjoint sets currently represented.
  [[nodiscard]] int NumSets() {
    int count = 0;
    for (int i = 0; i < NumElements(); ++i) {
      if (Find(i) == i) ++count;
    }
    return count;
  }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace dsf
