// Graph parameters used throughout the paper's statements (Section 2):
//   D  — unweighted (hop) diameter,
//   WD — weighted diameter: max over pairs of weighted distance,
//   s  — shortest-path diameter: max over pairs of the minimum hop count of a
//        least-weight path between them (the time Bellman-Ford needs).
#pragma once

#include "graph/graph.hpp"

namespace dsf {

struct GraphParameters {
  int unweighted_diameter = 0;   // D
  Weight weighted_diameter = 0;  // WD
  int shortest_path_diameter = 0;  // s
  bool connected = true;
};

// Exact computation by n BFS + n lexicographic Dijkstras. Intended for the
// instance sizes of tests/benches (n up to a few thousand).
GraphParameters ComputeParameters(const Graph& g);

// Memoized ComputeParameters for a finalized graph: computed on first call,
// then shared by every subsequent run on the same (immutable) topology —
// repeated protocol runs stop paying the all-pairs recomputation. Not
// thread-safe on the first call; protocol setup is single-threaded.
const GraphParameters& CachedParameters(const Graph& g);

// D only (n BFS traversals).
int UnweightedDiameter(const Graph& g);

// s only (n Dijkstras with (dist, hops) keys).
int ShortestPathDiameter(const Graph& g);

// WD only.
Weight WeightedDiameter(const Graph& g);

// True if g is connected.
bool IsConnected(const Graph& g);

}  // namespace dsf
