// Centralized shortest-path machinery.
//
// Used by the centralized reference algorithms (moat growing needs exact
// terminal-terminal distances wd(v, w)) and by the analysis/validation side of
// every experiment. The distributed protocols themselves run Bellman-Ford
// style message passing on the simulator and only reach for this code in
// their explicitly substituted subroutines (charged via
// Network::ChargeRounds / RunStats::charged_rounds — see DESIGN.md §7),
// which is why the Dijkstra tie-breaking below must match the distributed
// relaxation order exactly.
#pragma once

#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace dsf {

struct ShortestPathTree {
  NodeId source = kNoNode;
  std::vector<Weight> dist;          // weighted distance from source; kInfWeight if unreachable
  std::vector<NodeId> parent;        // predecessor on a least-weight path; kNoNode at source
  std::vector<EdgeId> parent_edge;   // edge to the predecessor; kNoEdge at source
  std::vector<int> hops;             // hop count of the stored least-weight path

  [[nodiscard]] bool Reachable(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < kInfWeight;
  }

  // Edge ids along the stored path from source to v (empty if v == source).
  [[nodiscard]] std::vector<EdgeId> PathTo(NodeId v) const;
};

// Dijkstra from a single source. Ties between equal-weight paths are broken
// toward fewer hops, then smaller predecessor id (deterministic). `cancel`
// is a cooperative checkpoint polled every few thousand pops (a portfolio
// loser must stop inside a whole-graph scan, not after it); an expired
// token yields a PARTIAL tree — unsettled nodes keep kInfWeight — which the
// caller must discard or report as cancelled.
ShortestPathTree Dijkstra(const Graph& g, NodeId source,
                          const CancelToken* cancel = nullptr);

// Multi-source Dijkstra: dist = distance to the nearest source; `owner[v]`
// identifies which source claimed v (ties broken by smaller source id). This
// is the centralized reference for Voronoi decompositions (Definition 4.6).
struct VoronoiDecomposition {
  std::vector<Weight> dist;
  std::vector<NodeId> owner;        // claiming center, kNoNode if unreachable
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
};
VoronoiDecomposition MultiSourceDijkstra(const Graph& g,
                                         std::span<const NodeId> sources);

// All-pairs distances restricted to `targets` as sources (runs |targets|
// Dijkstras). Result[i][v] = wd(targets[i], v).
std::vector<std::vector<Weight>> DistancesFrom(const Graph& g,
                                               std::span<const NodeId> sources);

// Unweighted BFS from `source`: hop distances and parents.
struct BfsTreeResult {
  NodeId source = kNoNode;
  std::vector<int> depth;     // -1 if unreachable
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
};
BfsTreeResult Bfs(const Graph& g, NodeId source);

// Connected components of (V, E). Returns component index per node and count.
struct Components {
  std::vector<int> comp;
  int count = 0;
};
Components ConnectedComponents(const Graph& g);

// Connected components of the subgraph (V, subset).
Components SubgraphComponents(const Graph& g, std::span<const EdgeId> subset);

}  // namespace dsf
