// Weighted undirected graph with stable edge identifiers.
//
// This is the network topology of the CONGEST model (Section 2 of the paper):
// G = (V, E, W), W : E -> N. Nodes are 0..n-1; edges carry an EdgeId equal to
// their insertion index, which doubles as the index into per-edge state kept
// by algorithms (selected-forest bitmaps, coverage fractions, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace dsf {

struct GraphParameters;  // graph/properties.hpp

struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight w = 0;

  [[nodiscard]] NodeId Other(NodeId x) const noexcept { return x == u ? v : u; }
  friend bool operator==(const Edge&, const Edge&) = default;
};

// Incidence record stored in adjacency lists: the neighbor and the edge id.
struct Incidence {
  NodeId neighbor = kNoNode;
  EdgeId edge = kNoEdge;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n) : n_(n), adj_index_(static_cast<std::size_t>(n) + 1, 0) {
    DSF_CHECK(n >= 0);
  }

  // Adds an undirected edge {u, v} with weight w >= 1 and returns its id.
  // Self-loops are rejected; parallel edges are allowed by the structure but
  // generators never produce them.
  EdgeId AddEdge(NodeId u, NodeId v, Weight w);

  // Must be called once after all AddEdge calls; builds the CSR adjacency.
  void Finalize();

  [[nodiscard]] int NumNodes() const noexcept { return n_; }
  [[nodiscard]] int NumEdges() const noexcept {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] bool Finalized() const noexcept { return finalized_; }

  [[nodiscard]] const Edge& GetEdge(EdgeId e) const {
    DSF_CHECK(e >= 0 && e < NumEdges());
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] const std::vector<Edge>& Edges() const noexcept { return edges_; }

  // Neighbors of u with their edge ids; valid only after Finalize().
  [[nodiscard]] std::span<const Incidence> Neighbors(NodeId u) const {
    DSF_CHECK(finalized_);
    DSF_CHECK(u >= 0 && u < n_);
    const auto lo = adj_index_[static_cast<std::size_t>(u)];
    const auto hi = adj_index_[static_cast<std::size_t>(u) + 1];
    return {adj_.data() + lo, adj_.data() + hi};
  }

  // Mirror indices of u's incidence slots: entry i is the local index, in
  // the adjacency list of Neighbors(u)[i].neighbor, of the same edge. Lets a
  // simulator resolve the receiver-side local index of a delivery in O(1)
  // instead of scanning the receiver's adjacency. Valid only after
  // Finalize(); parallel to Neighbors(u).
  [[nodiscard]] std::span<const std::int32_t> MirrorLocals(NodeId u) const {
    DSF_CHECK(finalized_);
    DSF_CHECK(u >= 0 && u < n_);
    const auto lo = adj_index_[static_cast<std::size_t>(u)];
    const auto hi = adj_index_[static_cast<std::size_t>(u) + 1];
    return {mirror_.data() + lo, mirror_.data() + hi};
  }

  // Global incidence ("slot") addressing: u's local edge `i` lives at CSR
  // slot IncidenceBase(u) + i. The per-round message arena keys all of its
  // per-message state off this single u32, so the simulator's delivery path
  // never touches the Edge array.
  [[nodiscard]] std::size_t IncidenceBase(NodeId u) const {
    DSF_CHECK(finalized_);
    DSF_CHECK(u >= 0 && u < n_);
    return adj_index_[static_cast<std::size_t>(u)];
  }

  // Directed-edge index of each slot, parallel to the CSR adjacency:
  // 2 * edge + 0 when the slot's owner is GetEdge(edge).u, else 2 * edge + 1.
  // Gives the sender-side bandwidth-accounting index (and, via >> 1, the
  // EdgeId) as one array read per message.
  [[nodiscard]] std::span<const std::uint32_t> SlotDirs() const {
    DSF_CHECK(finalized_);
    return slot_dir_;
  }

  // Mirror of each slot as a flat array (same values MirrorLocals exposes
  // per node): the receiver-side local index of the slot's edge.
  [[nodiscard]] std::span<const std::int32_t> SlotMirrors() const {
    DSF_CHECK(finalized_);
    return mirror_;
  }

  [[nodiscard]] int Degree(NodeId u) const {
    return static_cast<int>(Neighbors(u).size());
  }

  [[nodiscard]] Weight TotalWeight() const noexcept {
    Weight sum = 0;
    for (const auto& e : edges_) sum += e.w;
    return sum;
  }

  // Sum of weights of the given edge subset.
  [[nodiscard]] Weight WeightOf(std::span<const EdgeId> subset) const;

  // True if `subset` (as an edge set) contains no cycle.
  [[nodiscard]] bool IsForest(std::span<const EdgeId> subset) const;

  // Human-readable one-line summary, e.g. "Graph(n=10, m=14)".
  [[nodiscard]] std::string Summary() const;

 private:
  // Memoization hook for CachedParameters (graph/properties.cpp): a
  // finalized graph is immutable, so its derived parameters (D, WD, s) are
  // computed once and shared by every run on the same topology. Copies of
  // the graph share the cache.
  friend const GraphParameters& CachedParameters(const Graph& g);

  int n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> adj_index_;
  std::vector<Incidence> adj_;
  std::vector<std::int32_t> mirror_;  // parallel to adj_: reverse local index
  std::vector<std::uint32_t> slot_dir_;  // parallel to adj_: 2*edge + side
  bool finalized_ = false;
  mutable std::shared_ptr<const GraphParameters> params_cache_;
};

// Convenience: builds a finalized graph from an edge list.
Graph MakeGraph(int n, const std::vector<Edge>& edges);

}  // namespace dsf
