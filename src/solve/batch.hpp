// Throughput-oriented batch execution on top of the solver pipeline.
//
// `BatchEngine` fans a vector of `SolveRequest`s out across the reusable
// round pool introduced for the simulator's phase (i) (congest/network.hpp,
// DESIGN.md §2) and aggregates latency/throughput statistics. Determinism
// discipline (DESIGN.md §3):
//   * request i runs with the seed DeriveSeed(master_seed, i) when a master
//     seed is set — one knob reseeds a whole batch reproducibly,
//   * when the batch fans out (threads > 1), each request's simulator is
//     forced to the sequential scheduler (net.threads = 1): the batch level
//     owns the cores, and nested pools would oversubscribe,
//   * results are written into a pre-sized slot per request — no cross-task
//     synchronization — so a batch is bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "solve/solver.hpp"

namespace dsf {

struct BatchOptions {
  // Total executors (workers + the calling thread); 1 runs inline, 0 picks
  // the hardware concurrency (capped at 16).
  int threads = 1;
  // When != 0, request i is solved with seed DeriveSeed(master_seed, i)
  // instead of its own seed.
  std::uint64_t master_seed = 0;
};

// Aggregates over one Run(); latencies are per-request solver wall times.
struct BatchStats {
  int requests = 0;
  int infeasible = 0;        // validated requests whose output was infeasible
  double wall_ms = 0.0;      // whole-batch wall time
  double instances_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  Weight total_weight = 0;
  long total_rounds = 0;
  long total_messages = 0;
};

// Nearest-rank percentile (p in [0, 1]) over an ascending-sorted sample
// set. Shared by the batch stats, the service layer's /stats latency
// digest, and the load-generator bench, so the three report one
// definition.
[[nodiscard]] double PercentileOfSorted(std::span<const double> sorted,
                                        double p);

class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  // Solves every request (order-preserving) and refreshes LastStats().
  // Exceptions from the pipeline (unknown solver, disconnected topology)
  // propagate after all in-flight requests drain.
  std::vector<SolveResult> Run(std::span<const SolveRequest> requests);

  [[nodiscard]] const BatchStats& LastStats() const noexcept { return stats_; }
  [[nodiscard]] int Threads() const noexcept { return threads_; }

 private:
  int threads_ = 1;
  std::uint64_t master_seed_ = 0;
  std::unique_ptr<detail::RoundPool> pool_;  // nullptr => inline execution
  BatchStats stats_;
};

}  // namespace dsf
