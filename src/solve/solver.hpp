// Unified solver engine: every algorithm family in the repo — the exact
// references, the centralized primal-dual, and the paper's distributed
// protocols — sits behind one `Solver` interface, reachable by name through
// the static `SolverRegistry`:
//
//   exact         partition DP + Dreyfus–Wagner (ground truth, small instances)
//   gw-moat       centralized moat growing (Agrawal–Klein–Ravi / GW primal-dual)
//   mst-prune     Kruskal MST pruned to the terminal components (baseline)
//   greedy-merge  gluttonous greedy (Gupta–Kumar, arXiv:1412.7693)
//   local-search  move-based local search (Groß et al., arXiv:1707.02753)
//   dist-det      distributed deterministic moat growing (Theorem 4.17)
//   dist-rand     distributed randomized tree embedding (Theorem 5.2)
//   dist-khan     per-component selection baseline (Khan et al. style)
//   portfolio     races a roster of the above per unit, returns the cheapest
//                 feasible forest (spec syntax: solve/solver_spec.hpp)
//
// A `SolveRequest` flows through the shared pipeline (`Solve`): the
// distributed CR→IC transform when the input is given as connection
// requests (Lemma 2.3), `MakeMinimal` (Lemma 2.4), the solver core, optional
// minimal-subforest pruning, `IsFeasible` validation, and cost / round /
// message accounting — yielding a uniform `SolveResult`. The per-request
// plumbing previously hand-rolled by every example, bench, and test lives
// here exactly once (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "steiner/instance.hpp"
#include "steiner/moat.hpp"

namespace dsf {

// Knobs understood by the pipeline and forwarded to the solver cores; each
// solver reads the subset that applies to it and ignores the rest.
struct SolveOptions {
  // ε of Algorithm 2 (gw-moat, dist-det); 0 runs the exact-event Algorithm 1.
  Real epsilon = 0.0L;
  // Independent repetitions of dist-rand (the paper's c·log n amplification).
  int repetitions = 1;
  // Reduce the output to its unique minimal feasible subforest. Idempotent
  // for solvers that already prune (moat growing, exact).
  bool prune = true;
  // Check feasibility of the output (SolveResult::feasible / validated).
  bool validate = true;
  // Solve the instance exactly as well and report the approximation ratio.
  // Subject to the exact solver's hard limits — small instances only.
  bool compute_reference = false;
  // Simulator scheduling for the distributed solvers (active-set / threads);
  // every setting is bit-identical, see DESIGN.md §2. The portfolio also
  // reads net.threads as its racing width (members themselves run their
  // simulators single-threaded — no nested pools).
  NetworkOptions net;
  // Anytime deadline for the whole solve in wall milliseconds (0 = none):
  // the pipeline arms a CancelToken and the solver winds down at its next
  // checkpoint, returning its best partial output (SolveResult::cancelled).
  int deadline_ms = 0;
  // External cooperative cancellation (serve admission, portfolio racing).
  // Borrowed; must outlive the solve. Combined with deadline_ms when both
  // are set. May be nullptr.
  const CancelToken* cancel = nullptr;
  // Portfolio knobs, normally populated from a parsed `portfolio(...)`
  // spec (solve/solver_spec.hpp); ignored by every other solver. An empty
  // roster means the default (kDefaultPortfolioRoster).
  std::vector<std::string> roster;
  bool race_first = false;  // mode=first: cancel losers at first feasible
  // Warm start for local-search: a feasible forest to refine instead of
  // building the Kruskal-prune seed (the incremental/online hook). Empty =
  // cold start.
  std::vector<EdgeId> warm_start;
  // Refinement focus for a warm-started local-search: restrict improvement
  // attempts to forest edges near one of these nodes (see
  // LocalSearchOptions::focus). The incremental tier fills it with the
  // delta-touched region so a revise pays for the neighbourhood the delta
  // disturbed, not the whole forest. Ignored without a warm start; like
  // warm_start, never part of cache keys.
  std::vector<NodeId> focus;
  // Observed per-solver p50 latencies (name, ms), e.g. the serve tier's
  // latency rings. Read only by portfolio mode=first to start the
  // historically-fastest member first (width-starved racers decide the race
  // sooner); mode=all ignores them, and they are never part of cache keys —
  // hints change who wins a race, never what a feasible answer is.
  std::vector<std::pair<std::string, double>> latency_hints;
};

// One unit of work: a graph, an instance in either input form (Definition
// 2.1 / 2.2), options, and a seed. The graph is borrowed, not owned — it
// must outlive the request (batches share one topology across requests).
struct SolveRequest {
  // Registry name ("dist-det") or a parameterized spec
  // ("portfolio(roster=gw-moat+greedy-merge,mode=first)"); parsed and
  // canonicalized by the pipeline — see solve/solver_spec.hpp.
  std::string solver;
  const Graph* graph = nullptr; // finalized; must outlive the request
  IcInstance ic;                // used when !use_cr
  CrInstance cr;                // used when use_cr
  bool use_cr = false;
  SolveOptions options;
  std::uint64_t seed = 1;
};

// Uniform result of the pipeline.
struct SolveResult {
  std::string solver;
  std::vector<EdgeId> forest;    // edge ids, sorted
  Weight weight = 0;
  bool validated = false;        // options.validate was on
  bool feasible = false;         // meaningful only when validated
  Weight reference_weight = -1;  // exact OPT when requested, else -1
  double approx_ratio = 0.0;     // weight / reference_weight (0 when none)
  Fixed dual_lower_bound = 0;    // Σ act·µ (Lemma C.4); moat solvers only
  int phases = 0;                // merge phases (moat solvers)
  RunStats stats;                // simulator accounting; zeros if centralized
  // Distributed CR→IC transform accounting (use_cr only), kept separate so
  // `stats` stays comparable across input forms.
  long transform_rounds = 0;
  long transform_messages = 0;
  long transform_bits = 0;
  double wall_ms = 0.0;          // solver core wall time (excl. validation)
  // The solve was stopped early by a deadline or cancellation; the forest
  // is the solver's best partial output (feasible iff `feasible` says so —
  // the anytime solvers keep a feasible incumbent, constructive ones may
  // not).
  bool cancelled = false;
};

// What a solver core hands back to the pipeline, before pruning /
// validation / reference accounting.
struct SolverOutput {
  std::vector<EdgeId> forest;
  RunStats stats;
  Fixed dual_sum = 0;
  int phases = 0;
  bool cancelled = false;  // core stopped at a cancellation checkpoint
};

// One algorithm family. Implementations are stateless singletons owned by
// the registry; `SolveMinimal` must be safe to call concurrently (the batch
// engine fans requests out across threads).
class Solver {
 public:
  virtual ~Solver() = default;
  [[nodiscard]] virtual std::string_view Name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view Description() const noexcept = 0;
  // True when the core runs on the CONGEST simulator (stats are metered).
  [[nodiscard]] virtual bool Distributed() const noexcept = 0;
  // Core solve on a finalized graph and a *minimal* IC instance (the
  // pipeline guarantees both). Deterministic given (g, ic, options, seed).
  [[nodiscard]] virtual SolverOutput SolveMinimal(
      const Graph& g, const IcInstance& ic, const SolveOptions& options,
      std::uint64_t seed) const = 0;
};

// Static name -> solver table (no dynamic registration: the set of
// algorithm families is a compile-time property of the library).
class SolverRegistry {
 public:
  // nullptr when the name is unknown.
  [[nodiscard]] static const Solver* Find(std::string_view name) noexcept;
  // DSF_CHECK failure (listing the known names) when unknown.
  [[nodiscard]] static const Solver& Get(std::string_view name);
  // All registered names, in the canonical order above.
  [[nodiscard]] static std::vector<std::string_view> Names();
};

// Start order of a portfolio race given latency hints: hinted members by
// ascending p50, then unhinted members in roster (registry) order. With no
// hints this is the identity — the registry-order fallback. Exposed for
// tests; used by portfolio mode=first only (mode=all's result does not
// depend on start order).
std::vector<int> PortfolioStartOrder(
    std::span<const std::string> roster,
    std::span<const std::pair<std::string, double>> hints);

// The shared pipeline. Throws std::logic_error (via DSF_CHECK) on unknown
// solver names, non-finalized graphs, and disconnected topologies (which no
// distributed protocol can run on).
SolveResult Solve(const SolveRequest& request);

// Batch-engine entry: runs `request` with an overridden seed and simulator
// thread count without copying the request's instance data.
SolveResult Solve(const SolveRequest& request, std::uint64_t seed_override,
                  int net_threads_override);

// Convenience wrappers for the common call shapes.
SolveResult Solve(std::string_view solver, const Graph& g,
                  const IcInstance& ic, const SolveOptions& options = {},
                  std::uint64_t seed = 1);
SolveResult Solve(std::string_view solver, const Graph& g,
                  const CrInstance& cr, const SolveOptions& options = {},
                  std::uint64_t seed = 1);

}  // namespace dsf
