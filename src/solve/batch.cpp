#include "solve/batch.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/random.hpp"

namespace dsf {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 16);
}

}  // namespace

double PercentileOfSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

BatchEngine::BatchEngine(BatchOptions options)
    : threads_(ResolveThreads(options.threads)),
      master_seed_(options.master_seed) {
  if (threads_ > 1) pool_ = std::make_unique<detail::RoundPool>(threads_);
}

BatchEngine::~BatchEngine() = default;

std::vector<SolveResult> BatchEngine::Run(
    std::span<const SolveRequest> requests) {
  const int n = static_cast<int>(requests.size());
  std::vector<SolveResult> results(requests.size());

  const auto task = [&](int i, int /*executor*/) {
    // The overload leaves the caller's request untouched (reusable across
    // engines/thread counts) without copying its instance data.
    const SolveRequest& req = requests[static_cast<std::size_t>(i)];
    const std::uint64_t seed =
        master_seed_ != 0 ? DeriveSeed(master_seed_, static_cast<std::uint64_t>(i))
                          : req.seed;
    // When the batch fans out, it owns the cores: nested simulator pools
    // would oversubscribe. An inline batch leaves the request's scheduler
    // choice alone (bit-identical either way, DESIGN.md §2).
    const int net_threads = pool_ ? 1 : req.options.net.threads;
    results[static_cast<std::size_t>(i)] = Solve(req, seed, net_threads);
  };

  const auto start = std::chrono::steady_clock::now();
  if (pool_) {
    pool_->ParallelFor(n, task);
  } else {
    for (int i = 0; i < n; ++i) task(i, 0);
  }
  const auto stop = std::chrono::steady_clock::now();

  stats_ = BatchStats{};
  stats_.requests = n;
  stats_.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  if (n > 0 && stats_.wall_ms > 0.0) {
    stats_.instances_per_sec = 1000.0 * static_cast<double>(n) / stats_.wall_ms;
  }
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const SolveResult& r : results) {
    latencies.push_back(r.wall_ms);
    stats_.total_weight += r.weight;
    stats_.total_rounds += r.stats.rounds;
    stats_.total_messages += r.stats.messages;
    if (r.validated && !r.feasible) ++stats_.infeasible;
  }
  std::sort(latencies.begin(), latencies.end());
  stats_.p50_ms = PercentileOfSorted(latencies, 0.50);
  stats_.p95_ms = PercentileOfSorted(latencies, 0.95);
  stats_.max_ms = latencies.empty() ? 0.0 : latencies.back();
  return results;
}

}  // namespace dsf
