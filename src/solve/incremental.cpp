#include "solve/incremental.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "graph/union_find.hpp"
#include "solve/solver_spec.hpp"
#include "steiner/prune.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

// Heap entry of the attach pass: (distance in the forest-is-free metric,
// node). The node id breaks ties, so the pass is deterministic.
using HeapEntry = std::pair<Weight, NodeId>;

// Cheapest path from the tree containing `source` to any node whose
// union-find root is marked in `target_root`, in the metric where edges
// already in `in_forest` cost 0 (the source's whole tree is explored at
// distance 0, and paths may tunnel through other trees for free — the
// cycle guard at add time keeps the result a forest). Returns the hit node
// (kNoNode when unreachable) and fills parent_edge[] along the way.
NodeId StoppedDijkstra(const Graph& g, NodeId source,
                       const std::vector<char>& in_forest, UnionFind& uf,
                       const std::vector<char>& target_root,
                       std::vector<EdgeId>& parent_edge) {
  const auto n = static_cast<std::size_t>(g.NumNodes());
  std::vector<Weight> dist(n, kInfWeight);
  std::vector<char> done(n, 0);
  parent_edge.assign(n, kNoEdge);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(source)] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(u)]) continue;
    done[static_cast<std::size_t>(u)] = 1;
    if (target_root[static_cast<std::size_t>(uf.Find(u))]) return u;
    for (const auto& inc : g.Neighbors(u)) {
      const Weight w =
          in_forest[static_cast<std::size_t>(inc.edge)] ? 0 : g.GetEdge(inc.edge).w;
      const auto vi = static_cast<std::size_t>(inc.neighbor);
      if (d + w < dist[vi]) {
        dist[vi] = d + w;
        parent_edge[vi] = inc.edge;
        heap.emplace(d + w, inc.neighbor);
      }
    }
  }
  return kNoNode;
}

}  // namespace

RepairOutcome RepairForest(const Graph& g, const IcInstance& revised,
                           std::span<const EdgeId> base_forest) {
  RepairOutcome out;
  const int n = g.NumNodes();
  if (!g.Finalized() || revised.NumNodes() != n) return out;
  // A base forest fetched by cache key may describe a different graph than
  // the one the caller framed (a mis-supplied base key): reject out-of-range
  // edge ids and cycles here so the caller degrades to a cold solve instead
  // of tripping a check deeper in the pipeline.
  for (const EdgeId e : base_forest) {
    if (e < 0 || e >= g.NumEdges()) return out;
  }
  if (!g.IsForest(base_forest)) return out;

  // Pass 1 (prune): within each base tree, a group of >= 2 same-component
  // terminals keeps its connecting path alive via a synthetic label; every
  // other base edge — those only needed by demands no longer present — is
  // dropped by the minimal-subforest rule. The synthetic instance is
  // feasible for the base forest by construction (each group lives in one
  // tree), which is MinimalFeasibleSubforest's precondition.
  UnionFind base_uf(n);
  for (const EdgeId e : base_forest) {
    const Edge& edge = g.GetEdge(e);
    base_uf.Union(edge.u, edge.v);
  }
  IcInstance kept;
  kept.labels.assign(static_cast<std::size_t>(n), kNoLabel);
  Label next_synthetic = 0;
  const std::vector<Label> components = revised.DistinctLabels();
  for (const Label component : components) {
    // Terminals of this component, grouped by their base-forest tree.
    std::vector<std::pair<int, NodeId>> by_tree;  // (root, terminal)
    for (NodeId v = 0; v < n; ++v) {
      if (revised.LabelOf(v) == component) by_tree.emplace_back(base_uf.Find(v), v);
    }
    std::sort(by_tree.begin(), by_tree.end());
    for (std::size_t i = 0; i < by_tree.size();) {
      std::size_t j = i;
      while (j < by_tree.size() && by_tree[j].first == by_tree[i].first) ++j;
      if (j - i >= 2) {
        for (std::size_t k = i; k < j; ++k) {
          kept.labels[static_cast<std::size_t>(by_tree[k].second)] = next_synthetic;
        }
        ++next_synthetic;
      }
      i = j;
    }
  }
  std::vector<EdgeId> forest = MinimalFeasibleSubforest(g, kept, base_forest);
  out.dropped = static_cast<int>(base_forest.size() - forest.size());

  // Pass 2 (attach): reconnect every component still split across trees.
  std::vector<char> in_forest(static_cast<std::size_t>(g.NumEdges()), 0);
  for (const EdgeId e : forest) in_forest[static_cast<std::size_t>(e)] = 1;
  for (const EdgeId e : base_forest) {
    if (in_forest[static_cast<std::size_t>(e)]) continue;  // survived the prune
    const Edge& edge = g.GetEdge(e);
    out.touched.push_back(edge.u);
    out.touched.push_back(edge.v);
  }
  UnionFind uf(n);
  for (const EdgeId e : forest) {
    const Edge& edge = g.GetEdge(e);
    uf.Union(edge.u, edge.v);
  }
  std::vector<char> target_root(static_cast<std::size_t>(n), 0);
  std::vector<EdgeId> parent_edge;
  for (const Label component : components) {
    std::vector<NodeId> terminals;
    for (NodeId v = 0; v < n; ++v) {
      if (revised.LabelOf(v) == component) terminals.push_back(v);
    }
    if (terminals.size() < 2) continue;
    // Attach the core (the tree of the smallest terminal) to the remaining
    // trees one path at a time; each path merges at least one tree in.
    bool connected = false;
    while (!connected) {
      const int core = uf.Find(terminals.front());
      std::vector<int> other_roots;
      for (const NodeId t : terminals) {
        const int root = uf.Find(t);
        if (root != core) other_roots.push_back(root);
      }
      if (other_roots.empty()) {
        connected = true;
        break;
      }
      for (const int root : other_roots) {
        target_root[static_cast<std::size_t>(root)] = 1;
      }
      const NodeId hit = StoppedDijkstra(g, terminals.front(), in_forest, uf,
                                         target_root, parent_edge);
      for (const int root : other_roots) {
        target_root[static_cast<std::size_t>(root)] = 0;
      }
      if (hit == kNoNode) return out;  // unreachable: cannot repair
      for (NodeId v = hit; parent_edge[static_cast<std::size_t>(v)] != kNoEdge;) {
        const EdgeId e = parent_edge[static_cast<std::size_t>(v)];
        const Edge& edge = g.GetEdge(e);
        if (!in_forest[static_cast<std::size_t>(e)] && uf.Union(edge.u, edge.v)) {
          in_forest[static_cast<std::size_t>(e)] = 1;
          forest.push_back(e);
          out.touched.push_back(edge.u);
          out.touched.push_back(edge.v);
        }
        v = edge.Other(v);
      }
      ++out.attached;
    }
  }

  std::sort(forest.begin(), forest.end());
  if (!g.IsForest(forest) || !IsFeasible(g, revised, forest)) return out;
  std::sort(out.touched.begin(), out.touched.end());
  out.touched.erase(std::unique(out.touched.begin(), out.touched.end()),
                    out.touched.end());
  out.forest = std::move(forest);
  out.ok = true;
  return out;
}

WarmStartPlan PrepareWarmStart(const SolveRequest& base,
                               std::span<const EdgeId> base_forest,
                               const InstanceDelta& delta,
                               double max_delta_fraction) {
  WarmStartPlan plan;
  plan.revised = base;
  plan.revised.options.warm_start.clear();
  plan.revised.options.focus.clear();
  if (base.use_cr) {
    plan.revised.cr = ApplyDelta(base.cr, delta);
  } else {
    plan.revised.ic = ApplyDelta(base.ic, delta);
  }

  // Eligibility ladder; the first rung that fails names the cold reason.
  const SolverSpec spec = ParseSolverSpec(base.solver);
  if (spec.base != "local-search") {
    plan.cold_reason = "solver '" + spec.base + "' is not warm-startable";
    return plan;
  }
  // Demand size of the base: request pairs for CR (NumRequests counts both
  // directions), terminals for IC.
  const int demands =
      base.use_cr ? base.cr.NumRequests() / 2 : base.ic.NumTerminals();
  const double limit =
      std::max(1.0, max_delta_fraction * static_cast<double>(demands));
  if (static_cast<double>(delta.Size()) > limit) {
    plan.cold_reason = "delta too large (" + std::to_string(delta.Size()) +
                       " edits vs " + std::to_string(demands) + " demands)";
    return plan;
  }
  const IcInstance revised_ic =
      base.use_cr ? CrToIc(plan.revised.cr) : plan.revised.ic;
  RepairOutcome repair = RepairForest(*base.graph, revised_ic, base_forest);
  if (!repair.ok) {
    plan.cold_reason = "repair failed";
    return plan;
  }
  plan.warm = true;
  plan.warm_weight = base.graph->WeightOf(repair.forest);
  plan.revised.options.warm_start = std::move(repair.forest);
  // Refinement focus: the repair's touched region plus the delta's own
  // nodes. The warm local-search run then only re-examines trees this
  // revise actually disturbed.
  std::vector<NodeId>& focus = plan.revised.options.focus;
  focus = std::move(repair.touched);
  for (const auto& [u, v] : delta.add_pairs) {
    focus.push_back(u);
    focus.push_back(v);
  }
  for (const auto& [u, v] : delta.remove_pairs) {
    focus.push_back(u);
    focus.push_back(v);
  }
  for (const auto& [v, label] : delta.add_terminals) focus.push_back(v);
  for (const NodeId v : delta.remove_terminals) focus.push_back(v);
  std::sort(focus.begin(), focus.end());
  focus.erase(std::unique(focus.begin(), focus.end()), focus.end());
  return plan;
}

IncrementalOutcome IncrementalSolve(const SolveRequest& base,
                                    std::span<const EdgeId> base_forest,
                                    const InstanceDelta& delta,
                                    double max_delta_fraction) {
  WarmStartPlan plan =
      PrepareWarmStart(base, base_forest, delta, max_delta_fraction);
  IncrementalOutcome out;
  out.warm = plan.warm;
  out.warm_weight = plan.warm_weight;
  out.cold_reason = plan.cold_reason;
  out.result = Solve(plan.revised);
  if (plan.warm &&
      (!out.result.feasible || out.result.weight > plan.warm_weight)) {
    // Contractual backstop: the warm start is itself a validated feasible
    // forest, so "never worse than the warm start" can always be honoured.
    out.result.forest = plan.revised.options.warm_start;
    std::sort(out.result.forest.begin(), out.result.forest.end());
    out.result.weight = plan.warm_weight;
    out.result.validated = true;
    out.result.feasible = true;
  }
  return out;
}

}  // namespace dsf
