// Incremental re-solve: warm-start a revised instance from the base forest.
//
// The Gupta–Kumar-style observation behind the serve tier's `revise` op:
// when a demand delta touches a small fraction of a solved instance,
// repairing the existing forest is far cheaper than re-growing moats from
// scratch. The repair is two passes over the base forest:
//
//   1. prune — group each revised component's terminals by the base tree
//      that contains them; every group of >= 2 terminals becomes a synthetic
//      label, and `MinimalFeasibleSubforest` against that synthetic instance
//      drops exactly the edges that only served removed demands (plus any
//      Steiner twigs they stranded);
//   2. attach — for each revised component still split across trees, a
//      stopped Dijkstra in the metric where current-forest edges cost 0
//      finds the cheapest path from the component's core tree to any tree
//      holding another of its terminals; non-forest path edges are added
//      under a union-find cycle guard until the component is connected.
//
// The repaired forest is validated (`IsForest` + `IsFeasible`) and handed to
// the pipeline as `SolveOptions::warm_start` for a `local-search` run, whose
// incumbent discipline guarantees the result is never worse than the warm
// start. The fallback ladder: delta too large -> cold; solver not
// warm-startable -> cold; repair fails validation -> cold. Cold means a
// plain `Solve()` of the revised request — always available, never wrong.
#pragma once

#include <span>
#include <string>

#include "solve/solver.hpp"
#include "steiner/delta.hpp"

namespace dsf {

// Warm-path eligibility: deltas larger than this fraction of the base
// demand count (pairs for CR, terminals for IC) take the cold path — repair
// plus local search on a mostly-new instance costs more than a fresh solve.
inline constexpr double kDefaultMaxDeltaFraction = 0.25;

struct RepairOutcome {
  std::vector<EdgeId> forest;  // sorted; meaningful only when ok
  bool ok = false;             // repaired forest is a feasible forest
  int dropped = 0;             // base edges removed by the pruning pass
  int attached = 0;            // Dijkstra paths added by the attach pass
  // Nodes whose neighbourhood the repair changed: endpoints of pruned and
  // attach-added edges. Together with the delta's own nodes this is the
  // refinement focus (SolveOptions::focus) — the warm local-search pass
  // only re-examines forest edges near one of these. Sorted, deduplicated.
  std::vector<NodeId> touched;
};

// Repairs `base_forest` (a forest, feasible for the instance the base was
// solved on) into a feasible forest for `revised`. Never throws: structural
// problems (cycle in the base, unreachable new terminals) come back as
// ok == false.
RepairOutcome RepairForest(const Graph& g, const IcInstance& revised,
                           std::span<const EdgeId> base_forest);

// The revised request plus the warm-start decision, shared by the one-shot
// `IncrementalSolve` below and the serve tier's `revise` handler (which
// submits `revised` through admission instead of calling Solve directly, so
// coalescing/caching treat revise units like solve units).
struct WarmStartPlan {
  SolveRequest revised;     // delta applied; options.warm_start set when warm
  bool warm = false;        // warm path taken
  Weight warm_weight = 0;   // weight of the repaired forest (warm only)
  std::string cold_reason;  // why the warm path was skipped ("" when warm)
};

// Applies `delta` to `base` and decides the warm/cold path. Throws
// std::runtime_error on an invalid delta (see steiner/delta.hpp); every
// other failure degrades to a cold plan with `cold_reason` set.
WarmStartPlan PrepareWarmStart(const SolveRequest& base,
                               std::span<const EdgeId> base_forest,
                               const InstanceDelta& delta,
                               double max_delta_fraction = kDefaultMaxDeltaFraction);

struct IncrementalOutcome {
  SolveResult result;
  bool warm = false;
  Weight warm_weight = 0;   // weight of the warm-start forest (warm only)
  std::string cold_reason;  // "" when warm
};

// One-shot entry: PrepareWarmStart + Solve. When warm, the result is
// guaranteed never worse than the repaired warm start (the warm start
// itself is substituted in the — structurally impossible, but contractual —
// case the solver returns something worse).
IncrementalOutcome IncrementalSolve(const SolveRequest& base,
                                    std::span<const EdgeId> base_forest,
                                    const InstanceDelta& delta,
                                    double max_delta_fraction = kDefaultMaxDeltaFraction);

}  // namespace dsf
