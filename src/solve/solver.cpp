#include "solve/solver.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <sstream>

#include "dist/det_moat.hpp"
#include "dist/randomized.hpp"
#include "dist/transform.hpp"
#include "steiner/exact.hpp"
#include "steiner/mst.hpp"
#include "steiner/prune.hpp"
#include "steiner/validate.hpp"

namespace dsf {

namespace {

class ExactSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "exact"; }
  std::string_view Description() const noexcept override {
    return "exact optimum (partition DP + Dreyfus-Wagner); small instances";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions&,
                            std::uint64_t) const override {
    SolverOutput out;
    out.forest = ExactSteinerForest(g, ic).edges;
    return out;
  }
};

class GwMoatSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "gw-moat"; }
  std::string_view Description() const noexcept override {
    return "centralized moat growing, (2+eps)-approximation (Alg. 1/2)";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t) const override {
    MoatOptions mopt;
    mopt.epsilon = options.epsilon;
    auto res = CentralizedMoatGrowing(g, ic, mopt);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.dual_sum = res.dual_sum;
    out.phases = res.merge_phases;
    return out;
  }
};

class MstPruneSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "mst-prune"; }
  std::string_view Description() const noexcept override {
    return "Kruskal MST pruned to the terminal components (baseline)";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions&,
                            std::uint64_t) const override {
    SolverOutput out;
    // The prune is the algorithm here, not post-processing: an unpruned MST
    // spans every node of the graph.
    out.forest = MinimalFeasibleSubforest(g, ic, KruskalMst(g));
    return out;
  }
};

class DistDetSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "dist-det"; }
  std::string_view Description() const noexcept override {
    return "distributed deterministic moat growing (Theorem 4.17)";
  }
  bool Distributed() const noexcept override { return true; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override {
    DetMoatOptions dopt;
    dopt.epsilon = options.epsilon;
    dopt.net = options.net;
    auto res = RunDistributedMoat(g, ic, dopt, seed);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.stats = res.stats;
    out.dual_sum = res.dual_sum;
    out.phases = res.phases;
    return out;
  }
};

class DistRandSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "dist-rand"; }
  std::string_view Description() const noexcept override {
    return "distributed randomized tree embedding (Theorem 5.2)";
  }
  bool Distributed() const noexcept override { return true; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override {
    RandomizedOptions ropt;
    ropt.repetitions = options.repetitions;
    ropt.net = options.net;
    auto res = RunRandomizedSteinerForest(g, ic, ropt, seed);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.stats = res.stats;
    return out;
  }
};

class DistKhanSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "dist-khan"; }
  std::string_view Description() const noexcept override {
    return "per-component selection baseline (Khan et al. style)";
  }
  bool Distributed() const noexcept override { return true; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override {
    auto res = RunKhanBaseline(g, ic, seed, options.net);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.stats = res.stats;
    return out;
  }
};

// Canonical registration order — also the order Names() reports and the CLI
// runs under `--solvers all`.
const std::array<const Solver*, 6>& Table() {
  static const ExactSolver exact;
  static const GwMoatSolver gw;
  static const MstPruneSolver mst;
  static const DistDetSolver det;
  static const DistRandSolver rand;
  static const DistKhanSolver khan;
  static const std::array<const Solver*, 6> table{&exact, &gw,   &mst,
                                                  &det,   &rand, &khan};
  return table;
}

}  // namespace

const Solver* SolverRegistry::Find(std::string_view name) noexcept {
  for (const Solver* s : Table()) {
    if (s->Name() == name) return s;
  }
  return nullptr;
}

const Solver& SolverRegistry::Get(std::string_view name) {
  const Solver* s = Find(name);
  if (s == nullptr) {
    std::ostringstream known;
    for (const Solver* k : Table()) known << " " << k->Name();
    DSF_CHECK_MSG(false, "unknown solver '" << name << "'; registered:"
                                            << known.str());
  }
  return *s;
}

std::vector<std::string_view> SolverRegistry::Names() {
  std::vector<std::string_view> names;
  names.reserve(Table().size());
  for (const Solver* s : Table()) names.push_back(s->Name());
  return names;
}

namespace {

// `options` is by value: it is a handful of scalars, and the batch entry
// point patches the scheduler field without touching the caller's request.
SolveResult SolveImpl(const SolveRequest& request, std::uint64_t seed,
                      SolveOptions options) {
  const Solver& solver = SolverRegistry::Get(request.solver);
  DSF_CHECK_MSG(request.graph != nullptr && request.graph->Finalized(),
                "SolveRequest needs a finalized graph");
  const Graph& g = *request.graph;

  SolveResult result;
  result.solver = std::string(solver.Name());

  // CR input: the distributed Lemma 2.3 transform turns pairwise requests
  // into input components; its rounds/messages/bits are reported separately
  // so the solver core's accounting stays comparable across input forms.
  IcInstance ic;
  if (request.use_cr) {
    DSF_CHECK(request.cr.NumNodes() == g.NumNodes());
    auto transformed = RunDistributedCrToIc(g, request.cr, seed, options.net);
    result.transform_rounds = transformed.stats.rounds;
    result.transform_messages = transformed.stats.messages;
    result.transform_bits = transformed.stats.total_bits;
    ic = std::move(transformed.instance);
  } else {
    DSF_CHECK(request.ic.NumNodes() == g.NumNodes());
    ic = request.ic;
  }
  const IcInstance minimal = MakeMinimal(ic);

  const auto start = std::chrono::steady_clock::now();
  SolverOutput core = solver.SolveMinimal(g, minimal, options, seed);
  if (options.prune && !core.forest.empty()) {
    core.forest = MinimalFeasibleSubforest(g, minimal, core.forest);
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  result.forest = std::move(core.forest);
  std::sort(result.forest.begin(), result.forest.end());
  result.weight = g.WeightOf(result.forest);
  result.stats = core.stats;
  result.dual_lower_bound = core.dual_sum;
  result.phases = core.phases;

  if (options.validate) {
    result.validated = true;
    result.feasible = IsFeasible(g, ic, result.forest) &&
                      (!request.use_cr ||
                       IsFeasibleCr(g, request.cr, result.forest));
  }
  if (options.compute_reference) {
    // The exact core already produced the optimum; don't run the DP twice.
    result.reference_weight = solver.Name() == "exact"
                                  ? result.weight
                                  : ExactSteinerForestWeight(g, minimal);
    if (result.reference_weight > 0 && result.reference_weight < kInfWeight) {
      result.approx_ratio = static_cast<double>(result.weight) /
                            static_cast<double>(result.reference_weight);
    } else if (result.reference_weight == 0 && result.weight == 0) {
      result.approx_ratio = 1.0;
    }
  }
  return result;
}

}  // namespace

SolveResult Solve(const SolveRequest& request) {
  return SolveImpl(request, request.seed, request.options);
}

SolveResult Solve(const SolveRequest& request, std::uint64_t seed_override,
                  int net_threads_override) {
  SolveOptions options = request.options;
  options.net.threads = net_threads_override;
  return SolveImpl(request, seed_override, options);
}

SolveResult Solve(std::string_view solver, const Graph& g,
                  const IcInstance& ic, const SolveOptions& options,
                  std::uint64_t seed) {
  SolveRequest req;
  req.solver = std::string(solver);
  req.graph = &g;
  req.ic = ic;
  req.options = options;
  req.seed = seed;
  return Solve(req);
}

SolveResult Solve(std::string_view solver, const Graph& g,
                  const CrInstance& cr, const SolveOptions& options,
                  std::uint64_t seed) {
  SolveRequest req;
  req.solver = std::string(solver);
  req.graph = &g;
  req.cr = cr;
  req.use_cr = true;
  req.options = options;
  req.seed = seed;
  return Solve(req);
}

}  // namespace dsf
