#include "solve/solver.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <numeric>
#include <sstream>
#include <thread>

#include "dist/det_moat.hpp"
#include "dist/randomized.hpp"
#include "dist/transform.hpp"
#include "solve/solver_spec.hpp"
#include "steiner/exact.hpp"
#include "steiner/greedy.hpp"
#include "steiner/local_search.hpp"
#include "steiner/mst.hpp"
#include "steiner/prune.hpp"
#include "steiner/validate.hpp"

namespace dsf {

namespace {

class ExactSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "exact"; }
  std::string_view Description() const noexcept override {
    return "exact optimum (partition DP + Dreyfus-Wagner); small instances";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions&,
                            std::uint64_t) const override {
    SolverOutput out;
    out.forest = ExactSteinerForest(g, ic).edges;
    return out;
  }
};

class GwMoatSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "gw-moat"; }
  std::string_view Description() const noexcept override {
    return "centralized moat growing, (2+eps)-approximation (Alg. 1/2)";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t) const override {
    MoatOptions mopt;
    mopt.epsilon = options.epsilon;
    mopt.cancel = options.cancel;
    auto res = CentralizedMoatGrowing(g, ic, mopt);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.dual_sum = res.dual_sum;
    out.phases = res.merge_phases;
    out.cancelled = res.cancelled;
    return out;
  }
};

class MstPruneSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "mst-prune"; }
  std::string_view Description() const noexcept override {
    return "Kruskal MST pruned to the terminal components (baseline)";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t) const override {
    SolverOutput out;
    std::vector<EdgeId> mst = KruskalMst(g, options.cancel);
    if (IsCancelled(options.cancel)) {
      out.forest = std::move(mst);
      out.cancelled = true;
      return out;
    }
    // The prune is the algorithm here, not post-processing: an unpruned MST
    // spans every node of the graph.
    out.forest = MinimalFeasibleSubforest(g, ic, mst);
    return out;
  }
};

class GreedyMergeSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "greedy-merge"; }
  std::string_view Description() const noexcept override {
    return "gluttonous greedy: merge the two closest active clusters "
           "(Gupta-Kumar)";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t) const override {
    GreedyOptions gopt;
    gopt.cancel = options.cancel;
    auto res = GluttonousSteinerForest(g, ic, gopt);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.phases = res.merges;
    out.cancelled = res.cancelled;
    return out;
  }
};

class LocalSearchSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "local-search"; }
  std::string_view Description() const noexcept override {
    return "add/remove/swap local search over a feasible forest (Gross et "
           "al.); warm-startable";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t) const override {
    LocalSearchOptions lopt;
    lopt.cancel = options.cancel;
    if (!options.warm_start.empty()) {
      lopt.warm_start = &options.warm_start;
      if (!options.focus.empty()) lopt.focus = &options.focus;
    }
    auto res = LocalSearchSteinerForest(g, ic, lopt);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.phases = res.passes;
    out.cancelled = res.cancelled;
    return out;
  }
};

class DistDetSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "dist-det"; }
  std::string_view Description() const noexcept override {
    return "distributed deterministic moat growing (Theorem 4.17)";
  }
  bool Distributed() const noexcept override { return true; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override {
    DetMoatOptions dopt;
    dopt.epsilon = options.epsilon;
    dopt.net = options.net;
    auto res = RunDistributedMoat(g, ic, dopt, seed);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.stats = res.stats;
    out.dual_sum = res.dual_sum;
    out.phases = res.phases;
    return out;
  }
};

class DistRandSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "dist-rand"; }
  std::string_view Description() const noexcept override {
    return "distributed randomized tree embedding (Theorem 5.2)";
  }
  bool Distributed() const noexcept override { return true; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override {
    RandomizedOptions ropt;
    ropt.repetitions = options.repetitions;
    ropt.net = options.net;
    auto res = RunRandomizedSteinerForest(g, ic, ropt, seed);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.stats = res.stats;
    return out;
  }
};

class DistKhanSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "dist-khan"; }
  std::string_view Description() const noexcept override {
    return "per-component selection baseline (Khan et al. style)";
  }
  bool Distributed() const noexcept override { return true; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override {
    auto res = RunKhanBaseline(g, ic, seed, options.net);
    SolverOutput out;
    out.forest = std::move(res.forest);
    out.stats = res.stats;
    return out;
  }
};

// Races a roster of registry solvers per unit on a RoundPool and returns
// the cheapest feasible candidate (DESIGN.md §3 "Portfolio racing &
// cancellation"). Members run with net.threads = 1 (no nested simulator
// pools); the pool's width is SolveOptions::net.threads. mode=all runs
// every member to completion and picks by (weight, registry order) — the
// result is bit-identical across every racing width. mode=first CASes the
// first feasible finisher into the winner slot and cancels the rest via a
// shared token; any feasible member output is a valid answer, which is
// what makes the non-deterministic mode safe to serve (and to cache).
class PortfolioSolver final : public Solver {
 public:
  std::string_view Name() const noexcept override { return "portfolio"; }
  std::string_view Description() const noexcept override {
    return "races a solver roster per unit; cheapest feasible forest wins "
           "(mode=all deterministic, mode=first lowest-latency)";
  }
  bool Distributed() const noexcept override { return false; }
  SolverOutput SolveMinimal(const Graph& g, const IcInstance& ic,
                            const SolveOptions& options,
                            std::uint64_t seed) const override;
};

// Canonical registration order — also the order Names() reports, the CLI
// runs under `--solvers all`, and the portfolio's mode=all tie-break.
const std::array<const Solver*, 9>& Table() {
  static const ExactSolver exact;
  static const GwMoatSolver gw;
  static const MstPruneSolver mst;
  static const GreedyMergeSolver greedy;
  static const LocalSearchSolver local;
  static const DistDetSolver det;
  static const DistRandSolver rand;
  static const DistKhanSolver khan;
  static const PortfolioSolver portfolio;
  static const std::array<const Solver*, 9> table{
      &exact, &gw, &mst, &greedy, &local, &det, &rand, &khan, &portfolio};
  return table;
}

int TableIndex(std::string_view name) {
  const auto& table = Table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i]->Name() == name) return static_cast<int>(i);
  }
  return -1;
}

SolverOutput PortfolioSolver::SolveMinimal(const Graph& g,
                                           const IcInstance& ic,
                                           const SolveOptions& options,
                                           std::uint64_t seed) const {
  // Resolve the roster — already canonicalized when the request came
  // through the pipeline's spec parser; defaulted here for direct calls.
  std::vector<std::string> roster = options.roster;
  if (roster.empty()) {
    for (const std::string_view name : kDefaultPortfolioRoster) {
      roster.emplace_back(name);
    }
  }
  const int count = static_cast<int>(roster.size());
  struct Member {
    const Solver* solver = nullptr;
    int registry_index = 0;
  };
  std::vector<Member> members;
  members.reserve(static_cast<std::size_t>(count));
  for (const std::string& name : roster) {
    DSF_CHECK_MSG(name != "portfolio", "portfolio cannot nest itself");
    members.push_back({&SolverRegistry::Get(name), TableIndex(name)});
  }

  // Racing width: net.threads (0 = hardware concurrency), never wider than
  // the roster.
  int width = options.net.threads;
  if (width <= 0) {
    width = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  width = std::min(width, count);

  struct Candidate {
    SolverOutput out;
    Weight weight = 0;
    bool feasible = false;
    bool valid = false;  // member returned (did not throw)
  };
  std::vector<Candidate> candidates(static_cast<std::size_t>(count));
  // mode=first coordination: the shared race token chains below the
  // caller's token, so a member expires when the race is decided OR the
  // whole solve's deadline passes.
  CancelToken race;
  race.SetParent(options.cancel);
  std::atomic<int> first_winner{-1};

  const auto run_member = [&](int i, int /*executor*/) {
    Candidate& cand = candidates[static_cast<std::size_t>(i)];
    try {
      SolveOptions mo = options;
      mo.roster.clear();
      mo.race_first = false;
      mo.latency_hints.clear();
      mo.deadline_ms = 0;  // the pipeline's deadline already wraps `cancel`
      const CancelToken* token = options.race_first ? &race : options.cancel;
      mo.cancel = token;
      mo.net.cancel = token;
      mo.net.threads = 1;  // no nested simulator pools under the racer
      // The unit seed goes to every member unchanged: mode=all equals the
      // min-cost over standalone runs, and editing the roster never
      // reshuffles another member's random stream.
      SolverOutput o =
          members[static_cast<std::size_t>(i)].solver->SolveMinimal(g, ic, mo,
                                                                    seed);
      // Feasibility decides by the forest alone: an anytime member
      // (local-search) may be cancelled yet still hold a feasible
      // incumbent, which remains a full-fledged candidate.
      cand.feasible = IsFeasible(g, ic, o.forest);
      if (cand.feasible && options.prune && !o.forest.empty()) {
        o.forest = MinimalFeasibleSubforest(g, ic, o.forest);
      }
      cand.weight = g.WeightOf(o.forest);
      cand.out = std::move(o);
      cand.valid = true;
      if (cand.feasible && options.race_first) {
        int expected = -1;
        if (first_winner.compare_exchange_strong(expected, i)) {
          race.Cancel();  // losers stop at their next checkpoint
        }
      }
    } catch (const std::exception&) {
      // A cancelled racer can trip an internal invariant mid-teardown; a
      // throwing member simply fields no candidate.
      cand.valid = false;
    }
  };

  // mode=first start order: historically-fastest members first (latency
  // hints from the serve tier's p50 rings), so a width-starved race decides
  // sooner. mode=all keeps the identity order — its pick is independent of
  // start order, preserving bit-identity across hint states.
  std::vector<int> order(static_cast<std::size_t>(count));
  std::iota(order.begin(), order.end(), 0);
  if (options.race_first && !options.latency_hints.empty()) {
    order = PortfolioStartOrder(roster, options.latency_hints);
  }
  const auto run_slot = [&](int slot, int executor) {
    run_member(order[static_cast<std::size_t>(slot)], executor);
  };
  if (width <= 1 || count <= 1) {
    for (int i = 0; i < count; ++i) run_slot(i, 0);
  } else {
    detail::RoundPool pool(width);
    pool.ParallelFor(count, run_slot);
  }

  // mode=first: the member that fired the CAS wins outright.
  int pick = options.race_first ? first_winner.load() : -1;
  if (pick < 0) {
    // mode=all (and the nobody-finished fallback): cheapest feasible
    // candidate, ties to the earliest registry entry — deterministic
    // across every racing width.
    for (int i = 0; i < count; ++i) {
      const Candidate& c = candidates[static_cast<std::size_t>(i)];
      if (!c.valid || !c.feasible) continue;
      if (pick < 0) {
        pick = i;
        continue;
      }
      const Candidate& best = candidates[static_cast<std::size_t>(pick)];
      if (c.weight < best.weight ||
          (c.weight == best.weight &&
           members[static_cast<std::size_t>(i)].registry_index <
               members[static_cast<std::size_t>(pick)].registry_index)) {
        pick = i;
      }
    }
  }

  if (pick < 0) {
    // Nothing feasible (outer cancellation, typically): best-effort partial
    // from the first member that returned at all, reported cancelled.
    SolverOutput out;
    for (Candidate& c : candidates) {
      if (c.valid) {
        out = std::move(c.out);
        break;
      }
    }
    out.cancelled = true;
    return out;
  }
  return std::move(candidates[static_cast<std::size_t>(pick)].out);
}

}  // namespace

const Solver* SolverRegistry::Find(std::string_view name) noexcept {
  for (const Solver* s : Table()) {
    if (s->Name() == name) return s;
  }
  return nullptr;
}

const Solver& SolverRegistry::Get(std::string_view name) {
  const Solver* s = Find(name);
  if (s == nullptr) {
    std::ostringstream known;
    for (const Solver* k : Table()) known << " " << k->Name();
    DSF_CHECK_MSG(false, "unknown solver '" << name << "'; registered:"
                                            << known.str());
  }
  return *s;
}

std::vector<std::string_view> SolverRegistry::Names() {
  std::vector<std::string_view> names;
  names.reserve(Table().size());
  for (const Solver* s : Table()) names.push_back(s->Name());
  return names;
}

namespace {

// `options` is by value: it is a handful of scalars, and the batch entry
// point patches the scheduler field without touching the caller's request.
SolveResult SolveImpl(const SolveRequest& request, std::uint64_t seed,
                      SolveOptions options) {
  const SolverSpec spec = ParseSolverSpec(request.solver);
  const Solver& solver = SolverRegistry::Get(spec.base);
  DSF_CHECK_MSG(request.graph != nullptr && request.graph->Finalized(),
                "SolveRequest needs a finalized graph");
  const Graph& g = *request.graph;

  // Portfolio knobs from the spec; explicitly-set options win so the
  // convenience API can pass a roster without spelling a spec string.
  if (spec.IsPortfolio()) {
    if (options.roster.empty()) options.roster = spec.roster;
    options.race_first = options.race_first || spec.mode == "first";
  }
  // Deadline: tightest of the option and the spec (both in wall ms). The
  // token lives on this frame and chains below any caller-provided token,
  // so external cancellation still fires under a generous deadline.
  int deadline_ms = options.deadline_ms;
  if (spec.deadline_ms > 0 &&
      (deadline_ms == 0 || spec.deadline_ms < deadline_ms)) {
    deadline_ms = spec.deadline_ms;
  }
  CancelToken deadline_token;
  if (deadline_ms > 0) {
    deadline_token.SetParent(options.cancel);
    deadline_token.SetDeadlineAfterMs(deadline_ms);
    options.cancel = &deadline_token;
    options.deadline_ms = 0;  // consumed; cores see only the token
  }
  if (options.net.cancel == nullptr) options.net.cancel = options.cancel;
  const bool cancellable = options.cancel != nullptr;

  SolveResult result;
  result.solver = spec.Canonical();

  // CR input: the distributed Lemma 2.3 transform turns pairwise requests
  // into input components; its rounds/messages/bits are reported separately
  // so the solver core's accounting stays comparable across input forms.
  IcInstance ic;
  if (request.use_cr) {
    DSF_CHECK(request.cr.NumNodes() == g.NumNodes());
    auto transformed = RunDistributedCrToIc(g, request.cr, seed, options.net);
    result.transform_rounds = transformed.stats.rounds;
    result.transform_messages = transformed.stats.messages;
    result.transform_bits = transformed.stats.total_bits;
    ic = std::move(transformed.instance);
  } else {
    DSF_CHECK(request.ic.NumNodes() == g.NumNodes());
    ic = request.ic;
  }
  const IcInstance minimal = MakeMinimal(ic);

  const auto start = std::chrono::steady_clock::now();
  SolverOutput core = solver.SolveMinimal(g, minimal, options, seed);
  // A cancelled core may hand back an infeasible partial forest, which the
  // minimal-subforest extraction rejects by contract — gate the prune on
  // feasibility whenever cancellation was in play.
  if (options.prune && !core.forest.empty() &&
      (!cancellable || IsFeasible(g, minimal, core.forest))) {
    core.forest = MinimalFeasibleSubforest(g, minimal, core.forest);
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  result.forest = std::move(core.forest);
  std::sort(result.forest.begin(), result.forest.end());
  result.weight = g.WeightOf(result.forest);
  result.stats = core.stats;
  result.dual_lower_bound = core.dual_sum;
  result.phases = core.phases;
  result.cancelled = core.cancelled || core.stats.cancelled;

  if (options.validate) {
    result.validated = true;
    result.feasible = IsFeasible(g, ic, result.forest) &&
                      (!request.use_cr ||
                       IsFeasibleCr(g, request.cr, result.forest));
  }
  if (options.compute_reference) {
    // The exact core already produced the optimum; don't run the DP twice.
    result.reference_weight = solver.Name() == "exact"
                                  ? result.weight
                                  : ExactSteinerForestWeight(g, minimal);
    if (result.reference_weight > 0 && result.reference_weight < kInfWeight) {
      result.approx_ratio = static_cast<double>(result.weight) /
                            static_cast<double>(result.reference_weight);
    } else if (result.reference_weight == 0 && result.weight == 0) {
      result.approx_ratio = 1.0;
    }
  }
  return result;
}

}  // namespace

std::vector<int> PortfolioStartOrder(
    std::span<const std::string> roster,
    std::span<const std::pair<std::string, double>> hints) {
  const int n = static_cast<int>(roster.size());
  std::vector<double> p50(static_cast<std::size_t>(n), -1.0);
  for (int i = 0; i < n; ++i) {
    for (const auto& [name, ms] : hints) {
      if (name == roster[static_cast<std::size_t>(i)]) {
        p50[static_cast<std::size_t>(i)] = ms;
        break;
      }
    }
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double pa = p50[static_cast<std::size_t>(a)];
    const double pb = p50[static_cast<std::size_t>(b)];
    const bool ha = pa >= 0.0;
    const bool hb = pb >= 0.0;
    if (ha != hb) return ha;  // members with history start first
    return ha && pa < pb;     // fastest history first; stable otherwise
  });
  return order;
}

SolveResult Solve(const SolveRequest& request) {
  return SolveImpl(request, request.seed, request.options);
}

SolveResult Solve(const SolveRequest& request, std::uint64_t seed_override,
                  int net_threads_override) {
  SolveOptions options = request.options;
  options.net.threads = net_threads_override;
  return SolveImpl(request, seed_override, options);
}

SolveResult Solve(std::string_view solver, const Graph& g,
                  const IcInstance& ic, const SolveOptions& options,
                  std::uint64_t seed) {
  SolveRequest req;
  req.solver = std::string(solver);
  req.graph = &g;
  req.ic = ic;
  req.options = options;
  req.seed = seed;
  return Solve(req);
}

SolveResult Solve(std::string_view solver, const Graph& g,
                  const CrInstance& cr, const SolveOptions& options,
                  std::uint64_t seed) {
  SolveRequest req;
  req.solver = std::string(solver);
  req.graph = &g;
  req.cr = cr;
  req.use_cr = true;
  req.options = options;
  req.seed = seed;
  return Solve(req);
}

}  // namespace dsf
