// Parameterized solver specs.
//
// Everywhere a solver name is accepted — `--solvers`, the scenario
// grammar's `as` directive, the serve protocol's "solvers" array — a spec
// may carry parameters:
//
//   <name>
//   portfolio
//   portfolio(roster=gw-moat+mst-prune+greedy-merge,mode=first,deadline_ms=50)
//
// Only `portfolio` takes parameters today. Parsing CANONICALIZES the spec:
// the roster is deduplicated and reordered into solver-registry order and
// defaults are made explicit, so every framing of the same configuration
// produces one canonical string — which is what the serve tier hashes into
// its cache key (two clients racing the same roster in different spelled
// orders share cache entries; different rosters never collide).
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace dsf {

// Default portfolio roster: the sequential approximation families (the
// distributed protocols are opt-in racers — they answer "how many rounds",
// not "how fast on this box").
inline constexpr std::array<std::string_view, 4> kDefaultPortfolioRoster = {
    "gw-moat", "mst-prune", "greedy-merge", "local-search"};

struct SolverSpec {
  std::string base;                 // registry name ("portfolio" for the meta)
  std::vector<std::string> roster;  // portfolio members, registry order
  std::string mode = "all";         // "all" (deterministic) | "first" (race)
  int deadline_ms = 0;              // anytime deadline; 0 = none

  [[nodiscard]] bool IsPortfolio() const noexcept {
    return base == "portfolio";
  }
  // Normalized text form; equal configurations stringify identically.
  [[nodiscard]] std::string Canonical() const;
};

// Parses and validates a spec. Throws std::runtime_error naming the problem
// (unknown solver, bad key, empty roster, nested portfolio, ...).
SolverSpec ParseSolverSpec(std::string_view text);

// Validation without exceptions: true when `text` parses; otherwise false
// with the reason in *error (when non-null).
bool IsValidSolverSpec(std::string_view text, std::string* error = nullptr);

// Splits a comma-separated list of specs WITHOUT splitting inside
// parentheses — `a,portfolio(roster=x+y,mode=all),b` yields three entries.
std::vector<std::string> SplitSolverList(std::string_view list);

}  // namespace dsf
