#include "solve/solver_spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "solve/solver.hpp"

namespace dsf {

namespace {

[[noreturn]] void Fail(const std::string& msg) {
  throw std::runtime_error("solver spec: " + msg);
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Registry position of `name`; -1 when unknown. Defines the canonical
// roster order and the deterministic mode=all tie-break.
int RegistryIndex(std::string_view name) {
  const auto names = SolverRegistry::Names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string_view> SplitOn(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = s.find(sep);
    out.push_back(Trim(s.substr(0, pos)));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

}  // namespace

std::string SolverSpec::Canonical() const {
  if (!IsPortfolio()) return base;
  std::string out = "portfolio(roster=";
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (i > 0) out += '+';
    out += roster[i];
  }
  out += ",mode=" + mode;
  if (deadline_ms > 0) {
    out += ",deadline_ms=" + std::to_string(deadline_ms);
  }
  out += ')';
  return out;
}

SolverSpec ParseSolverSpec(std::string_view text) {
  SolverSpec spec;
  text = Trim(text);
  if (text.empty()) Fail("empty solver name");

  const auto open = text.find('(');
  if (open == std::string_view::npos) {
    spec.base = std::string(text);
  } else {
    if (text.back() != ')') {
      Fail("expected ')' at the end of '" + std::string(text) + "'");
    }
    spec.base = std::string(Trim(text.substr(0, open)));
    const std::string_view inner =
        text.substr(open + 1, text.size() - open - 2);
    if (spec.base != "portfolio") {
      Fail("only 'portfolio' accepts parameters (got '" + spec.base + "')");
    }
    for (const std::string_view kv : SplitOn(inner, ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string_view::npos) {
        Fail("expected key=value, got '" + std::string(kv) + "'");
      }
      const std::string_view key = Trim(kv.substr(0, eq));
      const std::string_view value = Trim(kv.substr(eq + 1));
      if (key == "roster") {
        for (const std::string_view member : SplitOn(value, '+')) {
          if (member.empty()) Fail("empty roster member");
          spec.roster.emplace_back(member);
        }
      } else if (key == "mode") {
        if (value != "all" && value != "first") {
          Fail("mode must be 'all' or 'first', got '" + std::string(value) +
               "'");
        }
        spec.mode = std::string(value);
      } else if (key == "deadline_ms") {
        int ms = 0;
        for (const char c : value) {
          if (c < '0' || c > '9' || ms > 100'000'000) {
            Fail("deadline_ms must be a positive integer, got '" +
                 std::string(value) + "'");
          }
          ms = ms * 10 + (c - '0');
        }
        if (ms <= 0) {
          Fail("deadline_ms must be a positive integer, got '" +
               std::string(value) + "'");
        }
        spec.deadline_ms = ms;
      } else {
        Fail("unknown key '" + std::string(key) +
             "' (expected roster, mode, or deadline_ms)");
      }
    }
  }

  if (RegistryIndex(spec.base) < 0) {
    Fail("unknown solver '" + spec.base + "'");
  }
  if (!spec.IsPortfolio()) {
    if (!spec.roster.empty()) Fail("only 'portfolio' takes a roster");
    return spec;
  }

  if (spec.roster.empty()) {
    for (const std::string_view name : kDefaultPortfolioRoster) {
      spec.roster.emplace_back(name);
    }
  }
  for (const std::string& member : spec.roster) {
    if (member == "portfolio") Fail("portfolio cannot nest itself");
    if (RegistryIndex(member) < 0) {
      Fail("unknown roster member '" + member + "'");
    }
  }
  // Canonicalize: registry order, duplicates dropped.
  std::sort(spec.roster.begin(), spec.roster.end(),
            [](const std::string& a, const std::string& b) {
              return RegistryIndex(a) < RegistryIndex(b);
            });
  spec.roster.erase(std::unique(spec.roster.begin(), spec.roster.end()),
                    spec.roster.end());
  return spec;
}

bool IsValidSolverSpec(std::string_view text, std::string* error) {
  try {
    (void)ParseSolverSpec(text);
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::vector<std::string> SplitSolverList(std::string_view list) {
  std::vector<std::string> out;
  int depth = 0;
  std::string current;
  for (const char c : list) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      const std::string_view t = Trim(current);
      if (!t.empty()) out.emplace_back(t);
      current.clear();
      continue;
    }
    current += c;
  }
  const std::string_view t = Trim(current);
  if (!t.empty()) out.emplace_back(t);
  return out;
}

}  // namespace dsf
