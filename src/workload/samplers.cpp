#include "workload/samplers.hpp"

#include <array>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/random.hpp"
#include "graph/shortest_paths.hpp"
#include "workload/churn.hpp"

namespace dsf {

namespace {

using Kind = ParamSpec::Kind;

constexpr ParamSpec kSaltSpec{
    "salt", Kind::kInt,
    "replication index folded into the seed (sweep it to redraw)", 0, 0,
    1'000'000'000};
constexpr ParamSpec kSpanSpec{
    "span", Kind::kInt,
    "restrict draws to node ids [0, span); 0 = whole graph", 0, 0,
    1'000'000};

[[noreturn]] void FailSampler(std::string_view sampler,
                              const std::string& what) {
  throw std::runtime_error("sampler '" + std::string(sampler) + "': " + what);
}

// The node range the random samplers draw from: [0, span) or the full graph.
int DrawRange(std::string_view sampler, const Graph& g, const ParamMap& pm) {
  const long long span = pm.GetInt("span");
  if (span > g.NumNodes()) {
    FailSampler(sampler, "span " + std::to_string(span) + " exceeds n = " +
                             std::to_string(g.NumNodes()));
  }
  return span == 0 ? g.NumNodes() : static_cast<int>(span);
}

// Draws `count` distinct nodes from [0, range) by rejection — the draw
// sequence depends only on (seed, range, count), which is what makes the
// `span` trick work across subdivision depths.
std::vector<NodeId> DistinctNodes(std::string_view sampler, int range,
                                  int count, SplitMix64& rng) {
  if (count > range) {
    FailSampler(sampler, "needs " + std::to_string(count) +
                             " distinct nodes but the draw range has only " +
                             std::to_string(range));
  }
  std::vector<char> used(static_cast<std::size_t>(range), 0);
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    NodeId v = 0;
    do {
      v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(range)));
    } while (used[static_cast<std::size_t>(v)]);
    used[static_cast<std::size_t>(v)] = 1;
    nodes.push_back(v);
  }
  return nodes;
}

// Farthest-point placement: greedily adds the node maximizing the weighted
// distance to the already-chosen set (ties toward smaller id) — the metric
// "corners" of an arbitrary topology. The seed only picks the start node.
std::vector<NodeId> FarthestPoints(const Graph& g, int count,
                                   SplitMix64& rng) {
  const int n = g.NumNodes();
  std::vector<NodeId> chosen;
  chosen.reserve(static_cast<std::size_t>(count));
  std::vector<Weight> min_dist(static_cast<std::size_t>(n), kInfWeight);
  NodeId next = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
  for (int i = 0; i < count; ++i) {
    chosen.push_back(next);
    const auto tree = Dijkstra(g, next);
    NodeId best = kNoNode;
    Weight best_dist = -1;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (tree.dist[vi] < min_dist[vi]) min_dist[vi] = tree.dist[vi];
      if (min_dist[vi] == 0) continue;  // already chosen
      if (min_dist[vi] > best_dist) {
        best_dist = min_dist[vi];
        best = v;
      }
    }
    next = best;  // kNoNode only when count > n, checked by callers
  }
  return chosen;
}

// --- samplers ----------------------------------------------------------------

constexpr ParamSpec kRandomIcParams[] = {
    {"k", Kind::kInt, "input components", 3, 1, 64},
    {"tpc", Kind::kInt, "terminals per component", 2, 2, 32},
    kSpanSpec,
    kSaltSpec,
};
WorkloadInstance SampleRandomIc(const Graph& g, const ParamMap& pm,
                                std::uint64_t seed) {
  const int range = DrawRange("random-ic", g, pm);
  const int k = static_cast<int>(pm.GetInt("k"));
  const int tpc = static_cast<int>(pm.GetInt("tpc"));
  SplitMix64 rng(seed);
  const auto nodes = DistinctNodes("random-ic", range, k * tpc, rng);
  std::vector<std::pair<NodeId, Label>> assign;
  assign.reserve(nodes.size());
  // Draw order groups consecutive nodes into one component, mirroring the
  // bench suite's historical SpreadComponents shape.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    assign.push_back(
        {nodes[i], static_cast<Label>(i / static_cast<std::size_t>(tpc) + 1)});
  }
  WorkloadInstance inst;
  inst.ic = MakeIcInstance(g.NumNodes(), assign);
  return inst;
}

constexpr ParamSpec kRandomCrParams[] = {
    {"pairs", Kind::kInt, "symmetric connection requests", 3, 1, 512},
    kSpanSpec,
    kSaltSpec,
};
WorkloadInstance SampleRandomCr(const Graph& g, const ParamMap& pm,
                                std::uint64_t seed) {
  const int range = DrawRange("random-cr", g, pm);
  const long long pairs = pm.GetInt("pairs");
  const long long distinct =
      static_cast<long long>(range) * (range - 1) / 2;
  if (pairs > distinct) {
    FailSampler("random-cr", "cannot draw " + std::to_string(pairs) +
                                 " distinct pairs from " +
                                 std::to_string(range) + " nodes");
  }
  SplitMix64 rng(seed);
  std::vector<std::pair<NodeId, NodeId>> drawn;
  drawn.reserve(static_cast<std::size_t>(pairs));
  while (static_cast<long long>(drawn.size()) < pairs) {
    auto u = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(range)));
    auto v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(range)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    bool seen = false;
    for (const auto& [a, b] : drawn) {
      if (a == u && b == v) {
        seen = true;
        break;
      }
    }
    if (!seen) drawn.push_back({u, v});
  }
  WorkloadInstance inst;
  inst.use_cr = true;
  inst.cr = MakeCrInstance(g.NumNodes(), drawn);
  return inst;
}

constexpr ParamSpec kCornersIcParams[] = {
    {"k", Kind::kInt, "input components", 2, 1, 32},
    {"tpc", Kind::kInt, "terminals per component", 2, 2, 16},
    kSaltSpec,
};
WorkloadInstance SampleCornersIc(const Graph& g, const ParamMap& pm,
                                 std::uint64_t seed) {
  const int k = static_cast<int>(pm.GetInt("k"));
  const int tpc = static_cast<int>(pm.GetInt("tpc"));
  const int count = k * tpc;
  if (count > g.NumNodes()) {
    FailSampler("corners-ic", "k * tpc = " + std::to_string(count) +
                                  " exceeds n = " +
                                  std::to_string(g.NumNodes()));
  }
  SplitMix64 rng(seed);
  const auto corners = FarthestPoints(g, count, rng);
  // Stripe labels across the farthest-point order: each component gets one
  // terminal per sweep round, so every component spans the graph's extent.
  std::vector<std::pair<NodeId, Label>> assign;
  assign.reserve(corners.size());
  for (std::size_t i = 0; i < corners.size(); ++i) {
    assign.push_back(
        {corners[i], static_cast<Label>(i % static_cast<std::size_t>(k) + 1)});
  }
  WorkloadInstance inst;
  inst.ic = MakeIcInstance(g.NumNodes(), assign);
  return inst;
}

constexpr ParamSpec kCornersCrParams[] = {
    {"pairs", Kind::kInt, "symmetric connection requests", 2, 1, 256},
    kSaltSpec,
};
WorkloadInstance SampleCornersCr(const Graph& g, const ParamMap& pm,
                                 std::uint64_t seed) {
  const int pairs = static_cast<int>(pm.GetInt("pairs"));
  if (2 * pairs > g.NumNodes()) {
    FailSampler("corners-cr", "2 * pairs = " + std::to_string(2 * pairs) +
                                  " exceeds n = " +
                                  std::to_string(g.NumNodes()));
  }
  SplitMix64 rng(seed);
  const auto corners = FarthestPoints(g, 2 * pairs, rng);
  // Pair the i-th corner with the (i + pairs)-th: endpoints of each request
  // come from opposite halves of the farthest-point sweep.
  std::vector<std::pair<NodeId, NodeId>> drawn;
  drawn.reserve(static_cast<std::size_t>(pairs));
  for (int i = 0; i < pairs; ++i) {
    drawn.push_back({corners[static_cast<std::size_t>(i)],
                     corners[static_cast<std::size_t>(i + pairs)]});
  }
  WorkloadInstance inst;
  inst.use_cr = true;
  inst.cr = MakeCrInstance(g.NumNodes(), drawn);
  return inst;
}

constexpr ParamSpec kChurnParams[] = {
    {"pairs", Kind::kInt, "node-disjoint demand pairs kept active", 8, 1, 128},
    {"churn", Kind::kInt, "pairs retired + admitted per step", 1, 0, 64},
    {"steps", Kind::kInt, "churn steps applied before materializing", 0, 0,
     100'000},
    kSpanSpec,
    kSaltSpec,
};
WorkloadInstance SampleChurn(const Graph& g, const ParamMap& pm,
                             std::uint64_t seed) {
  const int range = DrawRange("churn", g, pm);
  const int pairs = static_cast<int>(pm.GetInt("pairs"));
  const int churn = static_cast<int>(pm.GetInt("churn"));
  const int steps = static_cast<int>(pm.GetInt("steps"));
  ChurnTrace trace;
  try {
    trace = SampleChurnTrace(g.NumNodes(), range, pairs, steps, churn, seed);
  } catch (const std::runtime_error& e) {
    FailSampler("churn", e.what());
  }
  WorkloadInstance inst;
  inst.ic = trace.StateAt(steps);
  return inst;
}

constexpr std::array<InstanceSampler, 5> kSamplers{{
    {"random-ic", "k components x tpc terminals on distinct uniform nodes",
     kRandomIcParams, SampleRandomIc},
    {"random-cr", "distinct symmetric connection requests on uniform nodes",
     kRandomCrParams, SampleRandomCr},
    {"corners-ic", "farthest-point terminals, labels striped across the sweep",
     kCornersIcParams, SampleCornersIc},
    {"corners-cr", "farthest-point endpoints paired across opposite halves",
     kCornersCrParams, SampleCornersCr},
    {"churn", "state of an arrival/departure pair stream after `steps` steps",
     kChurnParams, SampleChurn},
}};

}  // namespace

const InstanceSampler* SamplerRegistry::Find(std::string_view name) noexcept {
  for (const InstanceSampler& s : kSamplers) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const InstanceSampler& SamplerRegistry::Get(std::string_view name) {
  const InstanceSampler* s = Find(name);
  if (s == nullptr) {
    std::ostringstream os;
    os << "unknown sampler '" << name << "'; registered:";
    for (const InstanceSampler& k : kSamplers) os << " " << k.name;
    throw std::runtime_error(os.str());
  }
  return *s;
}

std::vector<std::string_view> SamplerRegistry::Names() {
  std::vector<std::string_view> names;
  names.reserve(kSamplers.size());
  for (const InstanceSampler& s : kSamplers) names.push_back(s.name);
  return names;
}

ParamMap ValidateSamplerParams(
    const InstanceSampler& sampler,
    std::span<const std::pair<std::string, std::string>> raw) {
  return ValidateParams(sampler.name, sampler.params, raw);
}

WorkloadInstance SampleInstance(const InstanceSampler& sampler, const Graph& g,
                                const ParamMap& pm, std::uint64_t seed) {
  DSF_CHECK_MSG(g.Finalized() && g.NumNodes() >= 1,
                "samplers need a finalized, non-empty graph");
  const auto salt = static_cast<std::uint64_t>(pm.GetInt("salt"));
  return sampler.sample(g, pm, salt == 0 ? seed : DeriveSeed(seed, salt));
}

WorkloadInstance SampleInstance(
    std::string_view sampler, const Graph& g,
    std::span<const std::pair<std::string, std::string>> raw,
    std::uint64_t seed) {
  const InstanceSampler& s = SamplerRegistry::Get(sampler);
  return SampleInstance(s, g, ValidateSamplerParams(s, raw), seed);
}

}  // namespace dsf
