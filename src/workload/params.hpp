// Self-describing parameter schemas for the workload registries.
//
// Every generator family and instance sampler publishes a `ParamSpec` table;
// `ValidateParams` turns raw `key=value` tokens (from scenario files, bench
// setup code, or the CLI) into a fully-populated `ParamMap` — unknown keys,
// malformed numbers, and out-of-range values are rejected with messages that
// name the offending key and the legal range, so scenario parse errors stay
// actionable. Defaults are applied for every key the caller omitted: a
// validated map always contains exactly the schema's keys.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsf {

struct ParamSpec {
  enum class Kind { kInt, kReal };

  std::string_view name;
  Kind kind = Kind::kInt;
  std::string_view description;
  // Default and inclusive bounds. Integral params store them exactly (the
  // ranges used here are far below 2^53).
  double def = 0;
  double min_value = 0;
  double max_value = 0;
};

// A validated assignment: every schema key exactly once, defaults filled in.
class ParamMap {
 public:
  // Lookups DSF_CHECK that the key exists with the requested kind — a miss
  // is a programming error (the schema and the consumer disagree), not bad
  // user input.
  [[nodiscard]] long long GetInt(std::string_view name) const;
  [[nodiscard]] double GetReal(std::string_view name) const;
  [[nodiscard]] bool Has(std::string_view name) const noexcept;

  // Keys in schema order with their values rendered back to text — used for
  // case-name decoration and `--list-generators`.
  struct Entry {
    std::string name;
    bool is_int = true;
    long long i = 0;
    double d = 0;
  };
  [[nodiscard]] const std::vector<Entry>& Entries() const noexcept {
    return entries_;
  }

 private:
  friend ParamMap ValidateParams(
      std::string_view owner, std::span<const ParamSpec> schema,
      std::span<const std::pair<std::string, std::string>> raw);
  std::vector<Entry> entries_;
};

// Splits "key=value" (exactly one '=', non-empty key and value). Throws
// std::runtime_error mentioning `token` otherwise.
std::pair<std::string, std::string> SplitKeyValue(const std::string& token);

// Validates `raw` against `schema` and fills defaults. Throws
// std::runtime_error naming `owner` (the family/sampler) on unknown keys,
// duplicate keys, parse failures, and range violations.
ParamMap ValidateParams(std::string_view owner,
                        std::span<const ParamSpec> schema,
                        std::span<const std::pair<std::string, std::string>> raw);

// One-line rendering of a schema entry, e.g. "n: int in [2, 1000000]
// (default 32) — node count". Used by `dsf --list-generators`.
std::string DescribeParam(const ParamSpec& spec);

}  // namespace dsf
