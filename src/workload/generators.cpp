#include "workload/generators.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

#include "common/random.hpp"
#include "graph/generators.hpp"

namespace dsf {

namespace {

using Kind = ParamSpec::Kind;

// Caps keep a single `generate` line from allocating the machine: the dense
// families track an n x n presence matrix, so their n is bounded tighter
// than the linear ones.
constexpr long long kMaxNodes = 1'000'000;
constexpr long long kMaxDenseNodes = 8'192;
constexpr long long kMaxWeight = 1'000'000;

constexpr ParamSpec kSaltSpec{
    "salt", Kind::kInt,
    "replication index folded into the seed (sweep it to redraw)", 0, 0,
    1'000'000'000};

[[noreturn]] void FailFamily(std::string_view family, const std::string& what) {
  throw std::runtime_error("generator '" + std::string(family) + "': " + what);
}

// Shared cross-field check for the families with [min_w, max_w] weights.
void CheckWeightRange(std::string_view family, const ParamMap& pm) {
  if (pm.GetInt("min_w") > pm.GetInt("max_w")) {
    FailFamily(family, "min_w must be <= max_w");
  }
}

int IntParam(const ParamMap& pm, std::string_view name) {
  return static_cast<int>(pm.GetInt(name));
}

Weight WeightParam(const ParamMap& pm, std::string_view name) {
  return static_cast<Weight>(pm.GetInt(name));
}

// --- family parameter schemas & build functions ------------------------------

constexpr ParamSpec kPathParams[] = {
    {"n", Kind::kInt, "number of nodes", 32, 2, kMaxNodes},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildPath(const ParamMap& pm, std::uint64_t) {
  return MakePath(IntParam(pm, "n"), WeightParam(pm, "w"));
}

constexpr ParamSpec kCycleParams[] = {
    {"n", Kind::kInt, "number of nodes", 32, 3, kMaxNodes},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildCycle(const ParamMap& pm, std::uint64_t) {
  return MakeCycle(IntParam(pm, "n"), WeightParam(pm, "w"));
}

constexpr ParamSpec kStarParams[] = {
    {"n", Kind::kInt, "number of nodes (center + n-1 leaves)", 32, 2,
     kMaxNodes},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildStar(const ParamMap& pm, std::uint64_t) {
  return MakeStar(IntParam(pm, "n"), WeightParam(pm, "w"));
}

constexpr ParamSpec kGridParams[] = {
    {"rows", Kind::kInt, "grid rows", 8, 1, 4096},
    {"cols", Kind::kInt, "grid columns", 8, 1, 4096},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildGrid(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("grid", pm);
  if (pm.GetInt("rows") * pm.GetInt("cols") > kMaxNodes) {
    FailFamily("grid", "rows * cols exceeds " + std::to_string(kMaxNodes));
  }
  SplitMix64 rng(seed);
  return MakeGrid(IntParam(pm, "rows"), IntParam(pm, "cols"),
                  WeightParam(pm, "min_w"), WeightParam(pm, "max_w"), rng);
}

constexpr ParamSpec kCompleteParams[] = {
    {"n", Kind::kInt, "number of nodes", 16, 1, 1024},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildComplete(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("complete", pm);
  SplitMix64 rng(seed);
  return MakeComplete(IntParam(pm, "n"), WeightParam(pm, "min_w"),
                      WeightParam(pm, "max_w"), rng);
}

constexpr ParamSpec kErParams[] = {
    {"n", Kind::kInt, "number of nodes", 32, 1, kMaxDenseNodes},
    {"p", Kind::kReal, "edge probability on top of a random spanning tree",
     0.1, 0.0, 1.0},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildEr(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("er", pm);
  SplitMix64 rng(seed);
  return MakeConnectedRandom(IntParam(pm, "n"), pm.GetReal("p"),
                             WeightParam(pm, "min_w"),
                             WeightParam(pm, "max_w"), rng);
}

constexpr ParamSpec kGeometricParams[] = {
    {"n", Kind::kInt, "number of points in the unit square", 32, 1, 4096},
    {"radius", Kind::kReal, "connection radius", 0.25, 0.0, 2.0},
    {"scale", Kind::kInt, "weight = max(1, round(distance * scale))", 100, 1,
     kMaxWeight},
    kSaltSpec,
};
Graph BuildGeometric(const ParamMap& pm, std::uint64_t seed) {
  SplitMix64 rng(seed);
  return MakeRandomGeometric(IntParam(pm, "n"), pm.GetReal("radius"),
                             WeightParam(pm, "scale"), rng);
}

constexpr ParamSpec kTreeChordsParams[] = {
    {"n", Kind::kInt, "tree nodes (heap-indexed binary tree)", 31, 1,
     kMaxDenseNodes},
    {"chords", Kind::kInt, "random non-tree edges added", 8, 0, 100'000},
    {"w", Kind::kInt, "tree edge weight", 1, 1, kMaxWeight},
    {"chord_w", Kind::kInt, "chord edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildTreeChords(const ParamMap& pm, std::uint64_t seed) {
  SplitMix64 rng(seed);
  return MakeTreePlusChords(IntParam(pm, "n"), IntParam(pm, "chords"),
                            WeightParam(pm, "w"), WeightParam(pm, "chord_w"),
                            rng);
}

constexpr ParamSpec kCaterpillarParams[] = {
    {"spine", Kind::kInt, "spine path length", 8, 1, 100'000},
    {"legs", Kind::kInt, "leaves per spine node", 3, 0, 1000},
    {"spine_w", Kind::kInt, "spine edge weight", 1, 1, kMaxWeight},
    {"leg_w", Kind::kInt, "leg edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildCaterpillar(const ParamMap& pm, std::uint64_t) {
  if (pm.GetInt("spine") * (1 + pm.GetInt("legs")) > kMaxNodes) {
    FailFamily("caterpillar",
               "spine * (1 + legs) exceeds " + std::to_string(kMaxNodes));
  }
  return MakeCaterpillar(IntParam(pm, "spine"), IntParam(pm, "legs"),
                         WeightParam(pm, "spine_w"),
                         WeightParam(pm, "leg_w"));
}

// An ER base with every edge split into `pieces` segments: multiplies the
// shortest-path diameter s while preserving the metric shape — the workload
// behind the paper's s-sweeps (Lemma 3.4 regime). Original node ids are
// preserved as the prefix [0, n), so samplers can target base nodes via
// their `span` parameter.
constexpr ParamSpec kSubdividedErParams[] = {
    {"n", Kind::kInt, "base ER nodes (kept as ids 0..n-1)", 16, 2, 2048},
    {"p", Kind::kReal, "base ER edge probability", 0.2, 0.0, 1.0},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 4, 1, kMaxWeight},
    {"pieces", Kind::kInt, "segments per base edge", 4, 1, 64},
    kSaltSpec,
};
Graph BuildSubdividedEr(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("subdivided-er", pm);
  SplitMix64 rng(seed);
  const Graph base =
      MakeConnectedRandom(IntParam(pm, "n"), pm.GetReal("p"),
                          WeightParam(pm, "min_w"),
                          WeightParam(pm, "max_w"), rng);
  const long long pieces = pm.GetInt("pieces");
  const long long total =
      base.NumNodes() + static_cast<long long>(base.NumEdges()) * (pieces - 1);
  if (total > kMaxNodes) {
    FailFamily("subdivided-er",
               "subdivision yields " + std::to_string(total) + " nodes (cap " +
                   std::to_string(kMaxNodes) + ")");
  }
  return SubdivideEdges(base, static_cast<int>(pieces));
}

// Canonical registration order — also the order Names() reports and
// `dsf --list-generators` prints.
constexpr std::array<GeneratorFamily, 10> kFamilies{{
    {"path", "path 0-1-...-(n-1), uniform weight", kPathParams, BuildPath},
    {"cycle", "cycle on n nodes, uniform weight", kCycleParams, BuildCycle},
    {"star", "star: center 0 with n-1 leaves", kStarParams, BuildStar},
    {"grid", "rows x cols grid, weights uniform in [min_w, max_w]",
     kGridParams, BuildGrid},
    {"complete", "complete graph K_n, weights uniform in [min_w, max_w]",
     kCompleteParams, BuildComplete},
    {"er", "connected Erdos-Renyi: random spanning tree + G(n, p) edges",
     kErParams, BuildEr},
    {"geometric", "random geometric graph in the unit square", kGeometricParams,
     BuildGeometric},
    {"tree-chords", "balanced binary tree plus random chords",
     kTreeChordsParams, BuildTreeChords},
    {"caterpillar", "spine path with `legs` leaves per spine node",
     kCaterpillarParams, BuildCaterpillar},
    {"subdivided-er", "ER base with every edge split into `pieces` segments",
     kSubdividedErParams, BuildSubdividedEr},
}};

}  // namespace

const GeneratorFamily* GeneratorRegistry::Find(std::string_view name) noexcept {
  for (const GeneratorFamily& f : kFamilies) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const GeneratorFamily& GeneratorRegistry::Get(std::string_view name) {
  const GeneratorFamily* f = Find(name);
  if (f == nullptr) {
    std::ostringstream os;
    os << "unknown generator '" << name << "'; registered:";
    for (const GeneratorFamily& k : kFamilies) os << " " << k.name;
    throw std::runtime_error(os.str());
  }
  return *f;
}

std::vector<std::string_view> GeneratorRegistry::Names() {
  std::vector<std::string_view> names;
  names.reserve(kFamilies.size());
  for (const GeneratorFamily& f : kFamilies) names.push_back(f.name);
  return names;
}

ParamMap ValidateGeneratorParams(
    const GeneratorFamily& family,
    std::span<const std::pair<std::string, std::string>> raw) {
  return ValidateParams(family.name, family.params, raw);
}

Graph BuildGenerator(const GeneratorFamily& family, const ParamMap& pm,
                     std::uint64_t seed) {
  // salt == 0 (the default) leaves the seed untouched, so plain builds are
  // unaffected by the replication mechanism.
  const auto salt = static_cast<std::uint64_t>(pm.GetInt("salt"));
  return family.build(pm, salt == 0 ? seed : DeriveSeed(seed, salt));
}

Graph BuildGenerator(std::string_view family,
                     std::span<const std::pair<std::string, std::string>> raw,
                     std::uint64_t seed) {
  const GeneratorFamily& f = GeneratorRegistry::Get(family);
  return BuildGenerator(f, ValidateGeneratorParams(f, raw), seed);
}

}  // namespace dsf
