#include "workload/generators.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "graph/generators.hpp"

namespace dsf {

namespace {

using Kind = ParamSpec::Kind;

// Caps keep a single `generate` line from allocating the machine: the dense
// families track an n x n presence matrix, so their n is bounded tighter
// than the linear ones.
constexpr long long kMaxNodes = 1'000'000;
constexpr long long kMaxDenseNodes = 8'192;
constexpr long long kMaxWeight = 1'000'000;

constexpr ParamSpec kSaltSpec{
    "salt", Kind::kInt,
    "replication index folded into the seed (sweep it to redraw)", 0, 0,
    1'000'000'000};

[[noreturn]] void FailFamily(std::string_view family, const std::string& what) {
  throw std::runtime_error("generator '" + std::string(family) + "': " + what);
}

// Shared cross-field check for the families with [min_w, max_w] weights.
void CheckWeightRange(std::string_view family, const ParamMap& pm) {
  if (pm.GetInt("min_w") > pm.GetInt("max_w")) {
    FailFamily(family, "min_w must be <= max_w");
  }
}

int IntParam(const ParamMap& pm, std::string_view name) {
  return static_cast<int>(pm.GetInt(name));
}

Weight WeightParam(const ParamMap& pm, std::string_view name) {
  return static_cast<Weight>(pm.GetInt(name));
}

// --- family parameter schemas & build functions ------------------------------

constexpr ParamSpec kPathParams[] = {
    {"n", Kind::kInt, "number of nodes", 32, 2, kMaxNodes},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildPath(const ParamMap& pm, std::uint64_t) {
  return MakePath(IntParam(pm, "n"), WeightParam(pm, "w"));
}

constexpr ParamSpec kCycleParams[] = {
    {"n", Kind::kInt, "number of nodes", 32, 3, kMaxNodes},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildCycle(const ParamMap& pm, std::uint64_t) {
  return MakeCycle(IntParam(pm, "n"), WeightParam(pm, "w"));
}

constexpr ParamSpec kStarParams[] = {
    {"n", Kind::kInt, "number of nodes (center + n-1 leaves)", 32, 2,
     kMaxNodes},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildStar(const ParamMap& pm, std::uint64_t) {
  return MakeStar(IntParam(pm, "n"), WeightParam(pm, "w"));
}

constexpr ParamSpec kGridParams[] = {
    {"rows", Kind::kInt, "grid rows", 8, 1, 4096},
    {"cols", Kind::kInt, "grid columns", 8, 1, 4096},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildGrid(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("grid", pm);
  if (pm.GetInt("rows") * pm.GetInt("cols") > kMaxNodes) {
    FailFamily("grid", "rows * cols exceeds " + std::to_string(kMaxNodes));
  }
  SplitMix64 rng(seed);
  return MakeGrid(IntParam(pm, "rows"), IntParam(pm, "cols"),
                  WeightParam(pm, "min_w"), WeightParam(pm, "max_w"), rng);
}

constexpr ParamSpec kCompleteParams[] = {
    {"n", Kind::kInt, "number of nodes", 16, 1, 1024},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildComplete(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("complete", pm);
  SplitMix64 rng(seed);
  return MakeComplete(IntParam(pm, "n"), WeightParam(pm, "min_w"),
                      WeightParam(pm, "max_w"), rng);
}

constexpr ParamSpec kErParams[] = {
    {"n", Kind::kInt, "number of nodes", 32, 1, kMaxDenseNodes},
    {"p", Kind::kReal, "edge probability on top of a random spanning tree",
     0.1, 0.0, 1.0},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildEr(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("er", pm);
  SplitMix64 rng(seed);
  return MakeConnectedRandom(IntParam(pm, "n"), pm.GetReal("p"),
                             WeightParam(pm, "min_w"),
                             WeightParam(pm, "max_w"), rng);
}

constexpr ParamSpec kGeometricParams[] = {
    {"n", Kind::kInt, "number of points in the unit square", 32, 1, 4096},
    {"radius", Kind::kReal, "connection radius", 0.25, 0.0, 2.0},
    {"scale", Kind::kInt, "weight = max(1, round(distance * scale))", 100, 1,
     kMaxWeight},
    kSaltSpec,
};
Graph BuildGeometric(const ParamMap& pm, std::uint64_t seed) {
  SplitMix64 rng(seed);
  return MakeRandomGeometric(IntParam(pm, "n"), pm.GetReal("radius"),
                             WeightParam(pm, "scale"), rng);
}

constexpr ParamSpec kTreeChordsParams[] = {
    {"n", Kind::kInt, "tree nodes (heap-indexed binary tree)", 31, 1,
     kMaxDenseNodes},
    {"chords", Kind::kInt, "random non-tree edges added", 8, 0, 100'000},
    {"w", Kind::kInt, "tree edge weight", 1, 1, kMaxWeight},
    {"chord_w", Kind::kInt, "chord edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildTreeChords(const ParamMap& pm, std::uint64_t seed) {
  SplitMix64 rng(seed);
  return MakeTreePlusChords(IntParam(pm, "n"), IntParam(pm, "chords"),
                            WeightParam(pm, "w"), WeightParam(pm, "chord_w"),
                            rng);
}

constexpr ParamSpec kCaterpillarParams[] = {
    {"spine", Kind::kInt, "spine path length", 8, 1, 100'000},
    {"legs", Kind::kInt, "leaves per spine node", 3, 0, 1000},
    {"spine_w", Kind::kInt, "spine edge weight", 1, 1, kMaxWeight},
    {"leg_w", Kind::kInt, "leg edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildCaterpillar(const ParamMap& pm, std::uint64_t) {
  if (pm.GetInt("spine") * (1 + pm.GetInt("legs")) > kMaxNodes) {
    FailFamily("caterpillar",
               "spine * (1 + legs) exceeds " + std::to_string(kMaxNodes));
  }
  return MakeCaterpillar(IntParam(pm, "spine"), IntParam(pm, "legs"),
                         WeightParam(pm, "spine_w"),
                         WeightParam(pm, "leg_w"));
}

// An ER base with every edge split into `pieces` segments: multiplies the
// shortest-path diameter s while preserving the metric shape — the workload
// behind the paper's s-sweeps (Lemma 3.4 regime). Original node ids are
// preserved as the prefix [0, n), so samplers can target base nodes via
// their `span` parameter.
constexpr ParamSpec kSubdividedErParams[] = {
    {"n", Kind::kInt, "base ER nodes (kept as ids 0..n-1)", 16, 2, 2048},
    {"p", Kind::kReal, "base ER edge probability", 0.2, 0.0, 1.0},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 4, 1, kMaxWeight},
    {"pieces", Kind::kInt, "segments per base edge", 4, 1, 64},
    kSaltSpec,
};
Graph BuildSubdividedEr(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("subdivided-er", pm);
  SplitMix64 rng(seed);
  const Graph base =
      MakeConnectedRandom(IntParam(pm, "n"), pm.GetReal("p"),
                          WeightParam(pm, "min_w"),
                          WeightParam(pm, "max_w"), rng);
  const long long pieces = pm.GetInt("pieces");
  const long long total =
      base.NumNodes() + static_cast<long long>(base.NumEdges()) * (pieces - 1);
  if (total > kMaxNodes) {
    FailFamily("subdivided-er",
               "subdivision yields " + std::to_string(total) + " nodes (cap " +
                   std::to_string(kMaxNodes) + ")");
  }
  return SubdivideEdges(base, static_cast<int>(pieces));
}

// High-diameter expander with planted far terminal pairs: an expander core
// (cycle + random chords) with 2 * `pairs` long tail paths hanging off it.
// Pair p's endpoints are nodes 2p and 2p+1 — the id prefix [0, 2*pairs), so
// explicit instances and samplers with `span` can target them directly. Any
// endpoint-to-endpoint route crosses both tails, so planted pairs sit at
// distance >= 2 * tail while the core keeps mixing fast — the adversarial
// regime where the paper's Õ(S + sqrt(...)) round bound is dominated by the
// shortest-path diameter, not the hop diameter.
constexpr ParamSpec kExpanderFarPairsParams[] = {
    {"pairs", Kind::kInt, "planted far pairs (endpoints are ids 0..2*pairs-1)",
     4, 1, 10'000},
    {"tail", Kind::kInt, "tail path edges per endpoint", 8, 1, 10'000},
    {"core", Kind::kInt, "expander core nodes (cycle + chords)", 32, 3,
     kMaxDenseNodes},
    {"chords", Kind::kInt, "random chords added to the core cycle", 48, 0,
     100'000},
    {"w", Kind::kInt, "edge weight", 1, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildExpanderFarPairs(const ParamMap& pm, std::uint64_t seed) {
  const long long pairs = pm.GetInt("pairs");
  const long long tail = pm.GetInt("tail");
  const long long core = pm.GetInt("core");
  const long long endpoints = 2 * pairs;
  // Endpoint e owns tail nodes [first_tail + e*(tail-1), ...); the core is
  // the id suffix. n = endpoints + endpoints*(tail-1) + core.
  const long long total = endpoints * tail + core;
  if (total > kMaxNodes) {
    FailFamily("expander-far-pairs",
               "2*pairs*tail + core yields " + std::to_string(total) +
                   " nodes (cap " + std::to_string(kMaxNodes) + ")");
  }
  const Weight w = WeightParam(pm, "w");
  const auto n = static_cast<int>(total);
  const auto core_base = static_cast<NodeId>(endpoints * tail);
  Graph g(n);
  // Tails: endpoint e -> tail-1 fresh nodes -> its core attach point. Attach
  // points are spread deterministically around the cycle so the planted
  // pairs load distinct core regions.
  for (long long e = 0; e < endpoints; ++e) {
    const NodeId attach =
        core_base + static_cast<NodeId>((e * core) / endpoints);
    NodeId prev = static_cast<NodeId>(e);
    for (long long j = 0; j < tail - 1; ++j) {
      const NodeId mid =
          static_cast<NodeId>(endpoints + e * (tail - 1) + j);
      g.AddEdge(prev, mid, w);
      prev = mid;
    }
    g.AddEdge(prev, attach, w);
  }
  // Core: cycle + `chords` distinct random chords (no self-loops, no
  // duplicates of cycle or earlier chords).
  std::set<std::pair<NodeId, NodeId>> seen;
  for (long long i = 0; i < core; ++i) {
    const NodeId u = core_base + static_cast<NodeId>(i);
    const NodeId v = core_base + static_cast<NodeId>((i + 1) % core);
    if (u != v) {
      const auto key = std::minmax(u, v);
      if (seen.insert({key.first, key.second}).second) g.AddEdge(u, v, w);
    }
  }
  SplitMix64 rng(seed);
  const long long want = pm.GetInt("chords");
  const long long distinct_pairs = core * (core - 1) / 2;
  long long added = 0;
  // The draw saturates when the core is small; stop once every pair exists.
  while (added < want &&
         static_cast<long long>(seen.size()) < distinct_pairs) {
    const NodeId u =
        core_base + static_cast<NodeId>(rng.NextBelow(
                        static_cast<std::uint64_t>(core)));
    const NodeId v =
        core_base + static_cast<NodeId>(rng.NextBelow(
                        static_cast<std::uint64_t>(core)));
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second) continue;
    g.AddEdge(u, v, w);
    ++added;
  }
  g.Finalize();
  return g;
}

// Power-law / preferential-attachment graph (Barabási–Albert shape): node i
// joins by connecting to up to `m` distinct earlier nodes, each drawn as a
// uniformly random endpoint of an existing edge (degree-proportional), so
// hub degrees grow heavy-tailed. Connected by construction; weights uniform
// in [min_w, max_w].
constexpr ParamSpec kPowerLawParams[] = {
    {"n", Kind::kInt, "number of nodes", 64, 2, kMaxNodes},
    {"m", Kind::kInt, "attachment edges per new node", 2, 1, 64},
    {"min_w", Kind::kInt, "minimum edge weight", 1, 1, kMaxWeight},
    {"max_w", Kind::kInt, "maximum edge weight", 8, 1, kMaxWeight},
    kSaltSpec,
};
Graph BuildPowerLaw(const ParamMap& pm, std::uint64_t seed) {
  CheckWeightRange("power-law", pm);
  const int n = IntParam(pm, "n");
  const int m = IntParam(pm, "m");
  const Weight min_w = WeightParam(pm, "min_w");
  const Weight max_w = WeightParam(pm, "max_w");
  SplitMix64 rng(seed);
  Graph g(n);
  // Every edge endpoint, duplicated by multiplicity: drawing uniformly from
  // this vector is exactly degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2 * m) *
                    static_cast<std::size_t>(n));
  std::vector<NodeId> targets;
  for (NodeId v = 1; v < n; ++v) {
    targets.clear();
    const int want = std::min<int>(m, v);
    while (static_cast<int>(targets.size()) < want) {
      // The first edge of the whole graph has no endpoint pool yet; seed the
      // draw uniformly. Re-draws on collision terminate quickly because
      // want <= v distinct targets always exist among v older nodes.
      NodeId t = endpoints.empty()
                     ? static_cast<NodeId>(rng.NextBelow(
                           static_cast<std::uint64_t>(v)))
                     : endpoints[static_cast<std::size_t>(rng.NextBelow(
                           endpoints.size()))];
      if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
        // Collision: fall back to a uniform draw so tiny prefixes (where
        // the hub owns nearly every endpoint slot) cannot spin.
        t = static_cast<NodeId>(rng.NextBelow(
            static_cast<std::uint64_t>(v)));
        if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
          continue;
        }
      }
      targets.push_back(t);
    }
    for (const NodeId t : targets) {
      g.AddEdge(v, t, static_cast<Weight>(rng.NextInt(min_w, max_w)));
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  g.Finalize();
  return g;
}

// Canonical registration order — also the order Names() reports and
// `dsf --list-generators` prints.
constexpr std::array<GeneratorFamily, 12> kFamilies{{
    {"path", "path 0-1-...-(n-1), uniform weight", kPathParams, BuildPath},
    {"cycle", "cycle on n nodes, uniform weight", kCycleParams, BuildCycle},
    {"star", "star: center 0 with n-1 leaves", kStarParams, BuildStar},
    {"grid", "rows x cols grid, weights uniform in [min_w, max_w]",
     kGridParams, BuildGrid},
    {"complete", "complete graph K_n, weights uniform in [min_w, max_w]",
     kCompleteParams, BuildComplete},
    {"er", "connected Erdos-Renyi: random spanning tree + G(n, p) edges",
     kErParams, BuildEr},
    {"geometric", "random geometric graph in the unit square", kGeometricParams,
     BuildGeometric},
    {"tree-chords", "balanced binary tree plus random chords",
     kTreeChordsParams, BuildTreeChords},
    {"caterpillar", "spine path with `legs` leaves per spine node",
     kCaterpillarParams, BuildCaterpillar},
    {"subdivided-er", "ER base with every edge split into `pieces` segments",
     kSubdividedErParams, BuildSubdividedEr},
    {"expander-far-pairs",
     "expander core with planted far pairs on long tails (ids 0..2*pairs-1)",
     kExpanderFarPairsParams, BuildExpanderFarPairs},
    {"power-law",
     "preferential-attachment graph: node i joins `m` degree-biased targets",
     kPowerLawParams, BuildPowerLaw},
}};

}  // namespace

const GeneratorFamily* GeneratorRegistry::Find(std::string_view name) noexcept {
  for (const GeneratorFamily& f : kFamilies) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const GeneratorFamily& GeneratorRegistry::Get(std::string_view name) {
  const GeneratorFamily* f = Find(name);
  if (f == nullptr) {
    std::ostringstream os;
    os << "unknown generator '" << name << "'; registered:";
    for (const GeneratorFamily& k : kFamilies) os << " " << k.name;
    throw std::runtime_error(os.str());
  }
  return *f;
}

std::vector<std::string_view> GeneratorRegistry::Names() {
  std::vector<std::string_view> names;
  names.reserve(kFamilies.size());
  for (const GeneratorFamily& f : kFamilies) names.push_back(f.name);
  return names;
}

ParamMap ValidateGeneratorParams(
    const GeneratorFamily& family,
    std::span<const std::pair<std::string, std::string>> raw) {
  return ValidateParams(family.name, family.params, raw);
}

Graph BuildGenerator(const GeneratorFamily& family, const ParamMap& pm,
                     std::uint64_t seed) {
  // salt == 0 (the default) leaves the seed untouched, so plain builds are
  // unaffected by the replication mechanism.
  const auto salt = static_cast<std::uint64_t>(pm.GetInt("salt"));
  return family.build(pm, salt == 0 ? seed : DeriveSeed(seed, salt));
}

Graph BuildGenerator(std::string_view family,
                     std::span<const std::pair<std::string, std::string>> raw,
                     std::uint64_t seed) {
  const GeneratorFamily& f = GeneratorRegistry::Get(family);
  return BuildGenerator(f, ValidateGeneratorParams(f, raw), seed);
}

}  // namespace dsf
