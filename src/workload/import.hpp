// Standard-benchmark importers: SteinLib `.stp` and DIMACS graph files
// mapped onto the repo's Graph / IcInstance types, so the solver matrix can
// be exercised on the instances the Steiner literature evaluates against
// (e.g. the local-search study of Gross et al. 2017) instead of toy graphs.
//
// SteinLib (STP Format 1.0): SECTION Graph (Nodes/Edges/E lines) plus an
// optional SECTION Terminals; nodes are 1-based. The terminal set becomes a
// single-label IcInstance — a Steiner *tree* instance is exactly a Steiner
// forest instance with one input component (Definition 2.2 with |Λ| = 1).
//
// DIMACS: `c` comments, a `p <kind> <n> <m>` header, and `e`/`a` lines with
// 1-based endpoints and an optional weight (default 1). Arcs are treated as
// undirected. In both formats a repeated {u, v} keeps the minimum weight
// (the only weight a solver could use) and self-loops are dropped. DIMACS
// carries no terminals — instances come from samplers or explicit
// directives in the enclosing scenario.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct ImportedWorkload {
  Graph graph;  // finalized
  bool has_terminals = false;
  IcInstance terminals;  // all terminals share label 1; set iff has_terminals
};

// Parse errors throw std::runtime_error naming `origin` and the line.
ImportedWorkload ParseSteinLib(std::istream& in, const std::string& origin);
ImportedWorkload LoadSteinLib(const std::string& path);

ImportedWorkload ParseDimacs(std::istream& in, const std::string& origin);
ImportedWorkload LoadDimacs(const std::string& path);

}  // namespace dsf
