// Workload specifications: the `.dsf` scenario grammar, its sweep
// expansion, and the bridge to the solver engine.
//
// A workload file is a sequence of *case blocks*. Each block names one
// graph source and carries any number of instances; `sweep` axes expand
// into a cross-product of concrete cases. Line-oriented text; `#` starts a
// comment; blank lines are ignored:
//
//   seed <N>                  # workload-level master seed, >= 1 (default
//                             #   1; the CLI's --seed overrides it)
//   as <spec> [<spec> ...]    # default solver list of the workload:
//                             #   registry names or parameterized specs like
//                             #   portfolio(roster=gw-moat+greedy-merge,
//                             #   mode=first); the CLI's --solvers overrides
//                             #   it, absent both every solver runs
//
//   # graph sources — each opens a new case block:
//   graph <n>                 # hand-written topology; nodes are 0..n-1
//   edge <u> <v> <w>          #   undirected, weight >= 1, no duplicates
//   generate <family> [k=v ...] [as <name>]   # registry generator
//   import stp <path> [as <name>]             # SteinLib .stp file
//   import dimacs <path> [as <name>]          # DIMACS graph file
//                             # (paths resolve relative to the spec file)
//
//   sweep <param> <v1> [v2 ...]
//                             # after `generate`: sweep a generator param;
//                             # after `sample`: sweep a sampler param.
//                             # Multiple axes expand to the cross-product.
//
//   # instances of the current case block:
//   ic <name>                 # begins a DSF-IC instance (Definition 2.2)
//   terminal <v> <label>      #   terminal with label >= 1
//   cr <name>                 # begins a DSF-CR instance (Definition 2.1)
//   pair <u> <v>              #   symmetric connection request
//   sample <sampler> <name> [k=v ...]          # registry sampler
//   churn <name> <path> [steps=N]              # replay a saved churn trace
//                             # (workload/churn.*): the instance is the
//                             # trace's state after N steps (default 0, the
//                             # base population); the trace's node count
//                             # must equal the case's n. Paths resolve
//                             # relative to the spec file, like imports.
//
// A SteinLib import whose file carries terminals contributes an implicit
// leading instance named "terminals". Instance names must be unique within
// a case block; expanded case names (base name + swept-param suffix) must
// be unique within the workload — disambiguate with `as <name>`.
//
// `ParseWorkloadSpec` rejects malformed input with `origin:line` errors;
// `ExpandWorkload` materializes graphs and instances deterministically from
// the workload seed (same spec + same seed -> bit-identical workload).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "solve/solver.hpp"
#include "workload/samplers.hpp"

namespace dsf {

// One `sweep` axis: every value is validated against the owning schema at
// parse time; expansion substitutes them in declaration order.
struct SweepAxis {
  std::string param;
  std::vector<std::string> values;
  int line = 0;
};

// Raw parameters of a `generate` or `sample` directive.
struct RawParams {
  std::vector<std::pair<std::string, std::string>> fixed;
  std::vector<SweepAxis> sweeps;
};

struct InstanceSpec {
  enum class Kind { kExplicitIc, kExplicitCr, kSample, kChurn };
  Kind kind = Kind::kExplicitIc;
  std::string name;
  int line = 0;
  // kExplicitIc / kExplicitCr (node ranges are checked at expansion time —
  // a generated graph's n is unknown while parsing):
  std::vector<std::pair<NodeId, Label>> terminals;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  // kSample:
  std::string sampler;
  RawParams params;
  // kChurn: trace file (resolved against WorkloadSpec::base_dir) and the
  // number of steps to replay before materializing the state.
  std::string path;
  int churn_steps = 0;
};

struct CaseSpec {
  enum class Kind { kExplicit, kGenerate, kImportStp, kImportDimacs };
  Kind kind = Kind::kExplicit;
  std::string name;  // family / file stem, or the `as` alias
  int line = 0;
  // kExplicit:
  long long n = -1;
  std::vector<Edge> edges;
  // kGenerate:
  std::string family;
  RawParams params;
  // kImport*:
  std::string path;  // as written; resolved against WorkloadSpec::base_dir
  std::vector<InstanceSpec> instances;
};

struct WorkloadSpec {
  std::string origin;    // for error messages
  std::string base_dir;  // directory import paths resolve against
  std::uint64_t seed = 1;
  // Solver specs of the `as` directive, validated at parse time; empty when
  // the workload does not pick its own solvers.
  std::vector<std::string> solvers;
  std::vector<CaseSpec> cases;
};

WorkloadSpec ParseWorkloadSpec(std::istream& in, const std::string& origin);

// Reads and parses `path` (sets base_dir to its directory). A path ending
// in ".stp" is loaded directly through the SteinLib importer as a
// single-case spec. Throws std::runtime_error when unreadable.
WorkloadSpec LoadWorkloadSpec(const std::string& path);

// --- expansion ---------------------------------------------------------------

// One concrete topology with its instances.
struct WorkloadCase {
  std::string name;    // base name + "[p=v,...]" suffix for swept params
  std::string source;  // e.g. "generate er", "graph", "import stp tiny.stp"
  Graph graph;         // finalized
  std::vector<WorkloadInstance> instances;
};

struct Workload {
  std::uint64_t seed = 1;
  std::vector<WorkloadCase> cases;
};

// Cross-product expansion. Deterministic given (spec, spec.seed): expanded
// case i derives its graph and sampler seeds from DeriveSeed(seed, i), so
// the workload is independent of solver selection and thread counts.
// Throws std::runtime_error (origin:line where attributable) on sampler /
// generator failures, out-of-range explicit instances, empty cases, and
// duplicate expanded case names.
Workload ExpandWorkload(const WorkloadSpec& spec);

// Parse + expand in one step.
Workload LoadWorkload(const std::string& path);

// The instance x solver request matrix over an expanded workload, in
// solver-major order. Requests borrow the workload's graphs — the workload
// must outlive them. `base` supplies the options every request copies.
struct RequestMatrix {
  std::vector<SolveRequest> requests;
  // Parallel to `requests`: indices into workload.cases and .instances.
  std::vector<int> case_index;
  std::vector<int> instance_index;
};
RequestMatrix BuildRequests(const Workload& workload,
                            std::span<const std::string> solvers,
                            const SolveOptions& base);

}  // namespace dsf
