#include "workload/import.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/text.hpp"

namespace dsf {

namespace {

constexpr long long kMaxImportNodes = 1'000'000;

[[noreturn]] void Fail(const std::string& origin, int line,
                       const std::string& what) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << what;
  throw std::runtime_error(os.str());
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Both formats carry 1-based node ids and may list an edge twice (arcs in
// both directions, stray duplicates). Self-loops are dropped — they can
// never appear in a Steiner forest — and duplicates keep the minimum
// weight, which is the only weight a solver could use.
class EdgeAccumulator {
 public:
  void Add(NodeId u, NodeId v, Weight w) {
    if (u == v) return;
    if (u > v) std::swap(u, v);
    const auto key = std::make_pair(u, v);
    const auto [it, inserted] = min_weight_.insert({key, w});
    if (!inserted && w < it->second) it->second = w;
  }

  [[nodiscard]] Graph Build(int n) const {
    Graph g(n);
    for (const auto& [key, w] : min_weight_) {
      g.AddEdge(key.first, key.second, w);
    }
    g.Finalize();
    return g;
  }

  [[nodiscard]] std::size_t RawCount() const noexcept { return raw_count_; }
  void CountRaw() noexcept { ++raw_count_; }

 private:
  std::map<std::pair<NodeId, NodeId>, Weight> min_weight_;
  std::size_t raw_count_ = 0;
};

}  // namespace

ImportedWorkload ParseSteinLib(std::istream& in, const std::string& origin) {
  std::string raw;
  int line = 0;
  bool saw_magic = false;
  bool saw_eof = false;
  long long n = -1;
  long long declared_edges = -1;
  long long declared_terminals = -1;
  EdgeAccumulator edges;
  std::vector<NodeId> terminals;
  // "" = top level, otherwise the lowercased active SECTION name.
  std::string section;

  const auto node_in_range = [&](long long v, int at) -> NodeId {
    if (n < 0) Fail(origin, at, "'Nodes' must precede edge/terminal lines");
    if (v < 1 || v > n) {
      Fail(origin, at, "node " + std::to_string(v) + " out of range [1, " +
                           std::to_string(n) + "]");
    }
    return static_cast<NodeId>(v - 1);  // to 0-based
  };

  std::istringstream fields;
  // A typo in a numeric column ("7x", an extra token) must fail, not import
  // a silently different graph.
  const auto no_trailing = [&](const std::string& head) {
    std::string trailing;
    if (fields >> trailing) {
      Fail(origin, line, "trailing tokens after '" + head + "'");
    }
  };

  while (ReadLine(in, raw)) {
    ++line;
    fields = std::istringstream(raw);
    std::string head;
    if (!(fields >> head)) continue;  // blank line
    if (!saw_magic) {
      // "33D32945 STP File, STP Format Version 1.0"
      if (Lower(head) != "33d32945") {
        Fail(origin, line, "not a SteinLib file (missing 33D32945 magic)");
      }
      saw_magic = true;
      continue;
    }
    if (saw_eof) Fail(origin, line, "content after EOF keyword");
    const std::string keyword = Lower(head);

    if (section.empty()) {
      if (keyword == "section") {
        std::string name;
        if (!(fields >> name)) Fail(origin, line, "SECTION needs a name");
        section = Lower(name);
        no_trailing(head);
      } else if (keyword == "eof") {
        saw_eof = true;
        no_trailing(head);
      } else {
        Fail(origin, line, "expected SECTION or EOF, got '" + head + "'");
      }
      continue;
    }

    if (keyword == "end") {
      section.clear();
      continue;
    }

    if (section == "graph") {
      const auto want = [&](const char* what) -> long long {
        long long value = 0;
        if (!(fields >> value)) {
          Fail(origin, line,
               std::string("expected ") + what + " after '" + head + "'");
        }
        return value;
      };
      if (keyword == "nodes") {
        const long long value = want("node count");
        if (value < 1 || value > kMaxImportNodes) {
          Fail(origin, line, "Nodes must be in [1, " +
                                 std::to_string(kMaxImportNodes) + "]");
        }
        n = value;
        no_trailing(head);
      } else if (keyword == "edges" || keyword == "arcs") {
        declared_edges = want("edge count");
        no_trailing(head);
      } else if (keyword == "e" || keyword == "a") {
        const NodeId u = node_in_range(want("endpoint"), line);
        const NodeId v = node_in_range(want("endpoint"), line);
        const long long w = want("weight");
        no_trailing(head);
        if (w < 1) Fail(origin, line, "edge weight must be >= 1");
        edges.Add(u, v, static_cast<Weight>(w));
        edges.CountRaw();
      } else {
        Fail(origin, line, "unknown Graph keyword '" + head + "'");
      }
    } else if (section == "terminals") {
      if (keyword == "terminals") {
        long long value = 0;
        if (!(fields >> value)) Fail(origin, line, "expected terminal count");
        declared_terminals = value;
        no_trailing(head);
      } else if (keyword == "t") {
        long long value = 0;
        if (!(fields >> value)) Fail(origin, line, "expected terminal node");
        terminals.push_back(node_in_range(value, line));
        no_trailing(head);
      } else if (keyword == "root" || keyword == "rootp") {
        // Rooted variants: the root is just another terminal for DSF.
        long long value = 0;
        if (!(fields >> value)) Fail(origin, line, "expected root node");
        terminals.push_back(node_in_range(value, line));
        no_trailing(head);
      } else {
        Fail(origin, line, "unknown Terminals keyword '" + head + "'");
      }
    }
    // Other sections (Comment, Coordinates, MaximumDegrees, ...) are
    // skipped line by line until their END.
  }

  if (!saw_magic) Fail(origin, line, "empty file (missing 33D32945 magic)");
  if (!section.empty()) {
    Fail(origin, line, "unterminated SECTION " + section);
  }
  if (!saw_eof) Fail(origin, line, "missing EOF keyword");
  if (n < 0) Fail(origin, line, "no SECTION Graph / Nodes line");
  if (declared_edges >= 0 &&
      declared_edges != static_cast<long long>(edges.RawCount())) {
    Fail(origin, line,
         "Edges declares " + std::to_string(declared_edges) + " but " +
             std::to_string(edges.RawCount()) + " edge lines were given");
  }

  ImportedWorkload out;
  out.graph = edges.Build(static_cast<int>(n));
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  if (declared_terminals >= 0 &&
      declared_terminals != static_cast<long long>(terminals.size())) {
    Fail(origin, line,
         "Terminals declares " + std::to_string(declared_terminals) +
             " but " + std::to_string(terminals.size()) +
             " distinct terminals were given");
  }
  if (!terminals.empty()) {
    std::vector<std::pair<NodeId, Label>> assign;
    assign.reserve(terminals.size());
    for (const NodeId t : terminals) assign.push_back({t, 1});
    out.terminals = MakeIcInstance(static_cast<int>(n), assign);
    out.has_terminals = true;
  }
  return out;
}

ImportedWorkload LoadSteinLib(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read SteinLib file: " + path);
  return ParseSteinLib(in, path);
}

ImportedWorkload ParseDimacs(std::istream& in, const std::string& origin) {
  std::string raw;
  int line = 0;
  long long n = -1;
  long long declared_edges = -1;
  EdgeAccumulator edges;

  std::istringstream fields;
  // A typo in a numeric column ("7x", an extra token) must fail, not import
  // a silently different graph.
  const auto no_trailing = [&](const std::string& head) {
    std::string trailing;
    if (fields >> trailing) {
      Fail(origin, line, "trailing tokens after '" + head + "'");
    }
  };

  while (ReadLine(in, raw)) {
    ++line;
    fields = std::istringstream(raw);
    std::string head;
    if (!(fields >> head)) continue;
    const std::string keyword = Lower(head);
    if (keyword == "c" || keyword == "n") continue;  // comment / node label

    if (keyword == "p") {
      if (n >= 0) Fail(origin, line, "duplicate 'p' header");
      std::string kind;
      long long nodes = 0;
      long long m = 0;
      if (!(fields >> kind >> nodes >> m)) {
        Fail(origin, line, "expected 'p <kind> <nodes> <edges>'");
      }
      if (nodes < 1 || nodes > kMaxImportNodes) {
        Fail(origin, line, "node count must be in [1, " +
                               std::to_string(kMaxImportNodes) + "]");
      }
      n = nodes;
      declared_edges = m;
      no_trailing(head);
    } else if (keyword == "e" || keyword == "a") {
      if (n < 0) Fail(origin, line, "'p' header must come first");
      long long u = 0;
      long long v = 0;
      if (!(fields >> u >> v)) {
        Fail(origin, line, "expected two endpoints after '" + head + "'");
      }
      long long w = 1;  // unweighted DIMACS variants omit the weight
      if (fields >> w) {
        no_trailing(head);
      } else if (!fields.eof()) {
        Fail(origin, line, "invalid weight after '" + head + "'");
      } else {
        w = 1;  // omitted: failed extraction zeroed it
      }
      if (u < 1 || u > n || v < 1 || v > n) {
        Fail(origin, line, "endpoint out of range [1, " + std::to_string(n) +
                               "]");
      }
      if (w < 1) Fail(origin, line, "edge weight must be >= 1");
      edges.Add(static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1),
                static_cast<Weight>(w));
      edges.CountRaw();
    } else {
      Fail(origin, line, "unknown DIMACS line '" + head + "'");
    }
  }

  if (n < 0) Fail(origin, line, "no 'p' header");
  if (declared_edges >= 0 &&
      declared_edges != static_cast<long long>(edges.RawCount())) {
    Fail(origin, line,
         "header declares " + std::to_string(declared_edges) + " edges but " +
             std::to_string(edges.RawCount()) + " edge lines were given");
  }

  ImportedWorkload out;
  out.graph = edges.Build(static_cast<int>(n));
  return out;
}

ImportedWorkload LoadDimacs(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read DIMACS file: " + path);
  return ParseDimacs(in, path);
}

}  // namespace dsf
