#include "workload/params.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace dsf {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error(what);
}

std::string KnownKeys(std::span<const ParamSpec> schema) {
  std::ostringstream os;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) os << " ";
    os << schema[i].name;
  }
  return os.str();
}

// Renders a bound/default the way the schema author wrote it: integral
// params print without a decimal point.
std::string RenderNumber(const ParamSpec& spec, double value) {
  if (spec.kind == ParamSpec::Kind::kInt) {
    return std::to_string(static_cast<long long>(value));
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

long long ParamMap::GetInt(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      DSF_CHECK_MSG(e.is_int, "parameter '" << name << "' is not integral");
      return e.i;
    }
  }
  DSF_CHECK_MSG(false, "parameter '" << name << "' not in validated map");
}

double ParamMap::GetReal(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.is_int ? static_cast<double>(e.i) : e.d;
  }
  DSF_CHECK_MSG(false, "parameter '" << name << "' not in validated map");
}

bool ParamMap::Has(std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::pair<std::string, std::string> SplitKeyValue(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size() ||
      token.find('=', eq + 1) != std::string::npos) {
    Fail("expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

ParamMap ValidateParams(
    std::string_view owner, std::span<const ParamSpec> schema,
    std::span<const std::pair<std::string, std::string>> raw) {
  ParamMap map;
  map.entries_.reserve(schema.size());
  for (const ParamSpec& spec : schema) {
    ParamMap::Entry entry;
    entry.name = std::string(spec.name);
    entry.is_int = spec.kind == ParamSpec::Kind::kInt;

    const std::string* text = nullptr;
    for (const auto& [key, value] : raw) {
      if (key != spec.name) continue;
      if (text != nullptr) {
        Fail("duplicate parameter '" + key + "' for '" + std::string(owner) +
             "'");
      }
      text = &value;
    }

    double value = spec.def;
    if (text != nullptr) {
      char* end = nullptr;
      errno = 0;
      if (entry.is_int) {
        const long long parsed = std::strtoll(text->c_str(), &end, 10);
        if (end == text->c_str() || *end != '\0' || errno == ERANGE) {
          Fail("parameter '" + entry.name + "' of '" + std::string(owner) +
               "' needs an integer, got '" + *text + "'");
        }
        value = static_cast<double>(parsed);
        entry.i = parsed;
      } else {
        const double parsed = std::strtod(text->c_str(), &end);
        if (end == text->c_str() || *end != '\0' || errno == ERANGE ||
            !std::isfinite(parsed)) {
          Fail("parameter '" + entry.name + "' of '" + std::string(owner) +
               "' needs a number, got '" + *text + "'");
        }
        value = parsed;
      }
      if (value < spec.min_value || value > spec.max_value) {
        Fail("parameter '" + entry.name + "' of '" + std::string(owner) +
             "' must be in [" + RenderNumber(spec, spec.min_value) + ", " +
             RenderNumber(spec, spec.max_value) + "], got '" + *text + "'");
      }
    }
    if (entry.is_int) {
      if (text == nullptr) entry.i = static_cast<long long>(spec.def);
    } else {
      entry.d = value;
    }
    map.entries_.push_back(std::move(entry));
  }

  for (const auto& [key, value] : raw) {
    bool known = false;
    for (const ParamSpec& spec : schema) {
      if (spec.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      Fail("unknown parameter '" + key + "' for '" + std::string(owner) +
           "' (known: " + KnownKeys(schema) + ")");
    }
  }
  return map;
}

std::string DescribeParam(const ParamSpec& spec) {
  std::ostringstream os;
  os << spec.name << ": "
     << (spec.kind == ParamSpec::Kind::kInt ? "int" : "real") << " in ["
     << RenderNumber(spec, spec.min_value) << ", "
     << RenderNumber(spec, spec.max_value) << "] (default "
     << RenderNumber(spec, spec.def) << ") — " << spec.description;
  return os.str();
}

}  // namespace dsf
