// Instance samplers: draw DSF-IC terminal sets and DSF-CR request sets from
// a topology deterministically, so scenario files and benches can say
// "3 components of 2 random terminals" instead of enumerating nodes by hand.
//
//   random-ic   k components x tpc terminals on distinct uniform nodes
//   random-cr   `pairs` distinct symmetric connection requests
//   corners-ic  farthest-point placement (metric corners), labels striped so
//               every component spans the graph
//   corners-cr  farthest-point placement, node i paired with node i+pairs
//   churn       state of a node-disjoint pair arrival/departure stream after
//               `steps` steps (workload/churn.hpp) — the repeat-traffic model
//               of the incremental re-solve tier
//
// `span` (random-* only) restricts draws to node ids [0, span) — on
// subdivided graphs, whose base nodes are the id prefix, the same seed then
// yields the same instance at every subdivision depth. `salt` replicates a
// draw, exactly like the generator parameter of the same name.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"
#include "workload/params.hpp"

namespace dsf {

// One named instance of a workload case, in either input form of the paper.
// (The CLI's ScenarioInstance is an alias of this type.)
struct WorkloadInstance {
  std::string name;
  bool use_cr = false;
  IcInstance ic;  // populated when !use_cr
  CrInstance cr;  // populated when use_cr
};

struct InstanceSampler {
  std::string_view name;
  std::string_view description;
  std::span<const ParamSpec> params;
  // `pm` has been validated against `params`; `seed` already includes salt.
  // The returned instance has an empty name (the caller owns naming).
  WorkloadInstance (*sample)(const Graph& g, const ParamMap& pm,
                             std::uint64_t seed);
};

class SamplerRegistry {
 public:
  [[nodiscard]] static const InstanceSampler* Find(
      std::string_view name) noexcept;
  // Throws std::runtime_error listing the known names when unknown.
  [[nodiscard]] static const InstanceSampler& Get(std::string_view name);
  [[nodiscard]] static std::vector<std::string_view> Names();
};

ParamMap ValidateSamplerParams(
    const InstanceSampler& sampler,
    std::span<const std::pair<std::string, std::string>> raw);

// Draws the instance (salt folded into the seed). Throws std::runtime_error
// when the graph is too small for the requested draw.
WorkloadInstance SampleInstance(const InstanceSampler& sampler, const Graph& g,
                                const ParamMap& pm, std::uint64_t seed);

// Convenience for benches/tests: validate + sample in one call.
WorkloadInstance SampleInstance(
    std::string_view sampler, const Graph& g,
    std::span<const std::pair<std::string, std::string>> raw,
    std::uint64_t seed);

}  // namespace dsf
