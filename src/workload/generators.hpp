// Named topology generators: every family in graph/generators.hpp behind a
// uniform `name + key=value params + seed -> Graph` interface.
//
// The registry makes the paper's D/s/k/t parameter sweeps reachable from
// data (scenario files, bench specs, the CLI) instead of hard-coded calls:
// a family is looked up by name, its parameters are validated against a
// self-describing schema (workload/params.hpp), and `BuildGenerator`
// produces the graph deterministically from a seed. The `salt` parameter —
// shared by every family — folds into the seed, so a `sweep salt 0 1 2 ...`
// axis replicates a random topology without touching its shape parameters.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "workload/params.hpp"

namespace dsf {

// One topology family. Plain data: the set of families is a compile-time
// property of the library, like the solver registry (solve/solver.hpp).
struct GeneratorFamily {
  std::string_view name;
  std::string_view description;
  std::span<const ParamSpec> params;
  // `pm` has been validated against `params`; `seed` already includes salt.
  Graph (*build)(const ParamMap& pm, std::uint64_t seed);
};

class GeneratorRegistry {
 public:
  // nullptr when the name is unknown.
  [[nodiscard]] static const GeneratorFamily* Find(
      std::string_view name) noexcept;
  // Throws std::runtime_error listing the known names when unknown.
  [[nodiscard]] static const GeneratorFamily& Get(std::string_view name);
  // All registered names, in canonical order.
  [[nodiscard]] static std::vector<std::string_view> Names();
};

// Validates `raw` key=value pairs against the family's schema (defaults
// applied). Throws std::runtime_error on unknown keys / bad values.
ParamMap ValidateGeneratorParams(
    const GeneratorFamily& family,
    std::span<const std::pair<std::string, std::string>> raw);

// Builds the graph: folds the map's `salt` into `seed`, then calls the
// family. Deterministic: same (family, params, seed) -> identical edge list.
// Cross-parameter violations (e.g. min_w > max_w, too many nodes) throw
// std::runtime_error naming the family.
Graph BuildGenerator(const GeneratorFamily& family, const ParamMap& pm,
                     std::uint64_t seed);

// Convenience for benches/tests: validate + build in one call.
Graph BuildGenerator(std::string_view family,
                     std::span<const std::pair<std::string, std::string>> raw,
                     std::uint64_t seed);

}  // namespace dsf
