#include "workload/spec.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "common/random.hpp"
#include "common/text.hpp"
#include "solve/solver_spec.hpp"
#include "workload/churn.hpp"
#include "workload/generators.hpp"
#include "workload/import.hpp"

namespace dsf {

namespace {

// Hand-written `graph` blocks are serving inputs, not a bulk format; the cap
// exists so out-of-range node counts fail instead of truncating.
constexpr long long kMaxExplicitNodes = 10'000'000;
// Expansion guard rails: a mistyped sweep should fail loudly, not allocate
// the machine.
constexpr std::size_t kMaxSweepValues = 64;
constexpr std::size_t kMaxExpandedCases = 512;
constexpr std::size_t kMaxExpandedInstances = 1024;

[[noreturn]] void Fail(const std::string& origin, int line,
                       const std::string& what) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << what;
  throw std::runtime_error(os.str());
}

// The pending (mutable) explicit instance: terminals/pairs accumulate here
// and are materialized when the instance closes.
struct PendingInstance {
  bool active = false;
  InstanceSpec spec;
};

std::string FileStem(const std::string& path) {
  const std::string stem = std::filesystem::path(path).stem().string();
  return stem.empty() ? "import" : stem;
}

// What the next `sweep` directive binds to.
enum class SweepTarget { kNone, kGenerator, kSampler };

struct ParserState {
  WorkloadSpec spec;
  std::string origin;
  bool seed_seen = false;
  PendingInstance pending;
  SweepTarget sweep_target = SweepTarget::kNone;
  // Unordered endpoint pairs of the current explicit case ("edge" hardening).
  std::set<std::pair<NodeId, NodeId>> edge_seen;

  [[nodiscard]] CaseSpec* Current() {
    return spec.cases.empty() ? nullptr : &spec.cases.back();
  }
};

void CheckInstanceName(ParserState& st, const std::string& name, int line) {
  for (const InstanceSpec& inst : st.Current()->instances) {
    if (inst.name == name) {
      Fail(st.origin, line,
           "duplicate instance name '" + name + "' in this case block");
    }
  }
}

void FlushInstance(ParserState& st, int line) {
  if (!st.pending.active) return;
  InstanceSpec& inst = st.pending.spec;
  if (inst.kind == InstanceSpec::Kind::kExplicitCr) {
    if (inst.pairs.empty()) {
      Fail(st.origin, line, "cr instance '" + inst.name + "' has no pairs");
    }
  } else {
    if (inst.terminals.empty()) {
      Fail(st.origin, line,
           "ic instance '" + inst.name + "' has no terminals");
    }
  }
  st.Current()->instances.push_back(std::move(inst));
  st.pending = PendingInstance{};
}

// Closes the current case block before a new one starts (or at EOF).
// Imported cases may still gain their implicit "terminals" instance at
// expansion time, so their emptiness is checked there.
void CloseCase(ParserState& st, int line) {
  CaseSpec* cs = st.Current();
  if (cs == nullptr) return;
  FlushInstance(st, line);
  if (cs->instances.empty() && cs->kind != CaseSpec::Kind::kImportStp) {
    Fail(st.origin, line,
         "case '" + cs->name + "' has no instances");
  }
  st.edge_seen.clear();
  st.sweep_target = SweepTarget::kNone;
}

// Schema of the directive the next `sweep` binds to, or nullptr.
std::span<const ParamSpec> SweepSchema(ParserState& st, std::string& owner) {
  if (st.sweep_target == SweepTarget::kGenerator) {
    const CaseSpec& cs = *st.Current();
    owner = cs.family;
    return GeneratorRegistry::Get(cs.family).params;
  }
  const InstanceSpec& inst = st.Current()->instances.back();
  owner = inst.sampler;
  return SamplerRegistry::Get(inst.sampler).params;
}

RawParams* SweepParams(ParserState& st) {
  if (st.sweep_target == SweepTarget::kGenerator) {
    return &st.Current()->params;
  }
  return &st.Current()->instances.back().params;
}

}  // namespace

WorkloadSpec ParseWorkloadSpec(std::istream& in, const std::string& origin) {
  ParserState st;
  st.origin = origin;
  st.spec.origin = origin;

  std::string raw;
  int line = 0;
  while (ReadLine(in, raw)) {
    ++line;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream fields(raw);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line

    const auto want_long = [&](const char* what) -> long long {
      long long value = 0;
      if (!(fields >> value)) {
        Fail(origin, line, std::string("expected ") + what + " after '" +
                               directive + "'");
      }
      return value;
    };
    const auto want_word = [&](const char* what) -> std::string {
      std::string value;
      if (!(fields >> value)) {
        Fail(origin, line, std::string("expected ") + what + " after '" +
                               directive + "'");
      }
      return value;
    };
    // Node range: fully checked here for explicit graphs; generated and
    // imported graphs only learn n at expansion time, which re-checks.
    const auto want_node = [&](const char* what) -> NodeId {
      const long long value = want_long(what);
      const CaseSpec* cs = st.Current();
      if (cs == nullptr) Fail(origin, line, "a graph source must come first");
      if (value < 0 ||
          (cs->kind == CaseSpec::Kind::kExplicit && value >= cs->n)) {
        Fail(origin, line, std::string(what) + " " + std::to_string(value) +
                               " out of range [0, " +
                               std::to_string(cs->n) + ")");
      }
      if (value > std::numeric_limits<NodeId>::max()) {
        Fail(origin, line, std::string(what) + " " + std::to_string(value) +
                               " out of node-id range");
      }
      return static_cast<NodeId>(value);
    };
    const auto no_trailing = [&] {
      std::string trailing;
      if (fields >> trailing) {
        Fail(origin, line, "trailing tokens after '" + directive + "'");
      }
    };
    // Shared tail of generate/import/sample: `k=v`... plus optional
    // `as <name>` (case blocks only).
    const auto parse_params = [&](RawParams& params, std::string* alias) {
      std::string token;
      while (fields >> token) {
        if (alias != nullptr && token == "as") {
          *alias = want_word("name");
          no_trailing();
          return;
        }
        try {
          params.fixed.push_back(SplitKeyValue(token));
        } catch (const std::runtime_error& e) {
          Fail(origin, line, e.what());
        }
      }
    };

    if (directive == "seed") {
      if (st.seed_seen) Fail(origin, line, "duplicate 'seed' directive");
      if (st.Current() != nullptr) {
        Fail(origin, line, "'seed' must precede the first graph source");
      }
      const long long value = want_long("seed value");
      // 0 is the batch engine's "keep per-request seeds" sentinel
      // (solve/batch.hpp); letting it through would silently disable the
      // per-request seed derivation the CLI wires this value into.
      if (value < 1) Fail(origin, line, "seed must be >= 1");
      no_trailing();
      st.spec.seed = static_cast<std::uint64_t>(value);
      st.seed_seen = true;
    } else if (directive == "as") {
      // Workload-level solver selection. Header position (like `seed`)
      // keeps the directive unambiguous: inside a case block `as` is the
      // aliasing token of generate/import lines.
      if (st.Current() != nullptr) {
        Fail(origin, line, "'as' must precede the first graph source");
      }
      if (!st.spec.solvers.empty()) {
        Fail(origin, line, "duplicate 'as' directive");
      }
      std::string token;
      while (fields >> token) {
        std::string why;
        if (!IsValidSolverSpec(token, &why)) Fail(origin, line, why);
        st.spec.solvers.push_back(std::move(token));
      }
      if (st.spec.solvers.empty()) {
        Fail(origin, line, "expected at least one solver spec after 'as'");
      }
    } else if (directive == "graph") {
      CloseCase(st, line);
      const long long value = want_long("node count");
      // Range-check before narrowing: 2^32+3 must not truncate to n=3.
      if (value <= 0 || value > kMaxExplicitNodes) {
        Fail(origin, line, "graph needs n in [1, " +
                               std::to_string(kMaxExplicitNodes) + "]");
      }
      CaseSpec cs;
      cs.kind = CaseSpec::Kind::kExplicit;
      cs.name = "graph";
      cs.line = line;
      cs.n = value;
      std::string token;
      if (fields >> token) {
        if (token != "as") Fail(origin, line, "trailing tokens after 'graph'");
        cs.name = want_word("name");
        no_trailing();
      }
      st.spec.cases.push_back(std::move(cs));
    } else if (directive == "generate") {
      CloseCase(st, line);
      const std::string family = want_word("generator family");
      CaseSpec cs;
      cs.kind = CaseSpec::Kind::kGenerate;
      cs.name = family;
      cs.family = family;
      cs.line = line;
      // Fail fast on unknown families and bad fixed params; the combined
      // fixed + sweep assignment is validated again at expansion.
      const GeneratorFamily* f = nullptr;
      try {
        f = &GeneratorRegistry::Get(family);
      } catch (const std::runtime_error& e) {
        Fail(origin, line, e.what());
      }
      parse_params(cs.params, &cs.name);
      try {
        (void)ValidateGeneratorParams(*f, cs.params.fixed);
      } catch (const std::runtime_error& e) {
        Fail(origin, line, e.what());
      }
      st.spec.cases.push_back(std::move(cs));
      st.sweep_target = SweepTarget::kGenerator;
    } else if (directive == "import") {
      CloseCase(st, line);
      const std::string format = want_word("import format (stp | dimacs)");
      if (format != "stp" && format != "dimacs") {
        Fail(origin, line, "unknown import format '" + format +
                               "' (expected stp or dimacs)");
      }
      CaseSpec cs;
      cs.kind = format == "stp" ? CaseSpec::Kind::kImportStp
                                : CaseSpec::Kind::kImportDimacs;
      cs.path = want_word("file path");
      cs.name = FileStem(cs.path);
      cs.line = line;
      std::string token;
      if (fields >> token) {
        if (token != "as") Fail(origin, line, "trailing tokens after 'import'");
        cs.name = want_word("name");
        no_trailing();
      }
      st.spec.cases.push_back(std::move(cs));
    } else if (directive == "edge") {
      CaseSpec* cs = st.Current();
      if (cs == nullptr || cs->kind != CaseSpec::Kind::kExplicit) {
        Fail(origin, line, "'edge' outside a 'graph' block");
      }
      const NodeId u = want_node("endpoint");
      const NodeId v = want_node("endpoint");
      const long long w = want_long("weight");
      no_trailing();
      if (u == v) Fail(origin, line, "self-loop");
      if (w < 1) Fail(origin, line, "edge weight must be >= 1");
      // Parallel edges would silently shadow each other in every solver
      // (only the lighter one can matter); reject both exact duplicates and
      // reversed restatements.
      const auto key = std::minmax(u, v);
      if (!st.edge_seen.insert({key.first, key.second}).second) {
        Fail(origin, line, "duplicate edge " + std::to_string(u) + " " +
                               std::to_string(v));
      }
      cs->edges.push_back({u, v, static_cast<Weight>(w)});
    } else if (directive == "ic" || directive == "cr") {
      if (st.Current() == nullptr) {
        Fail(origin, line, "a graph source must come first");
      }
      const std::string name = want_word("instance name");
      no_trailing();
      FlushInstance(st, line);
      CheckInstanceName(st, name, line);
      st.pending.active = true;
      st.pending.spec.kind = directive == "cr"
                                 ? InstanceSpec::Kind::kExplicitCr
                                 : InstanceSpec::Kind::kExplicitIc;
      st.pending.spec.name = name;
      st.pending.spec.line = line;
      st.sweep_target = SweepTarget::kNone;
    } else if (directive == "terminal") {
      if (!st.pending.active ||
          st.pending.spec.kind != InstanceSpec::Kind::kExplicitIc) {
        Fail(origin, line, "'terminal' outside an ic instance");
      }
      const NodeId v = want_node("node");
      const long long label = want_long("label");
      no_trailing();
      if (label < 1 || label > std::numeric_limits<Label>::max()) {
        Fail(origin, line, "labels must be in [1, " +
                               std::to_string(
                                   std::numeric_limits<Label>::max()) +
                               "]");
      }
      // A node holds exactly one label (Definition 2.2); letting a second
      // directive win silently would drop the first membership.
      for (const auto& [seen, _] : st.pending.spec.terminals) {
        if (seen == v) {
          Fail(origin, line,
               "node " + std::to_string(v) + " is already a terminal of '" +
                   st.pending.spec.name + "'");
        }
      }
      st.pending.spec.terminals.push_back({v, static_cast<Label>(label)});
    } else if (directive == "pair") {
      if (!st.pending.active ||
          st.pending.spec.kind != InstanceSpec::Kind::kExplicitCr) {
        Fail(origin, line, "'pair' outside a cr instance");
      }
      const NodeId u = want_node("node");
      const NodeId v = want_node("node");
      no_trailing();
      if (u == v) Fail(origin, line, "a node cannot request itself");
      for (const auto& [a, b] : st.pending.spec.pairs) {
        if ((a == u && b == v) || (a == v && b == u)) {
          Fail(origin, line,
               "duplicate pair in '" + st.pending.spec.name + "'");
        }
      }
      st.pending.spec.pairs.push_back({u, v});
    } else if (directive == "sample") {
      if (st.Current() == nullptr) {
        Fail(origin, line, "a graph source must come first");
      }
      FlushInstance(st, line);
      InstanceSpec inst;
      inst.kind = InstanceSpec::Kind::kSample;
      inst.sampler = want_word("sampler name");
      inst.name = want_word("instance name");
      inst.line = line;
      CheckInstanceName(st, inst.name, line);
      const InstanceSampler* s = nullptr;
      try {
        s = &SamplerRegistry::Get(inst.sampler);
      } catch (const std::runtime_error& e) {
        Fail(origin, line, e.what());
      }
      parse_params(inst.params, nullptr);
      try {
        (void)ValidateSamplerParams(*s, inst.params.fixed);
      } catch (const std::runtime_error& e) {
        Fail(origin, line, e.what());
      }
      st.Current()->instances.push_back(std::move(inst));
      st.sweep_target = SweepTarget::kSampler;
    } else if (directive == "churn") {
      if (st.Current() == nullptr) {
        Fail(origin, line, "a graph source must come first");
      }
      FlushInstance(st, line);
      InstanceSpec inst;
      inst.kind = InstanceSpec::Kind::kChurn;
      inst.name = want_word("instance name");
      inst.path = want_word("trace path");
      inst.line = line;
      CheckInstanceName(st, inst.name, line);
      std::string token;
      if (fields >> token) {
        // The only knob is the replay depth; k=v form keeps room for more.
        if (token.rfind("steps=", 0) != 0) {
          Fail(origin, line,
               "expected steps=<N> after the trace path, got '" + token + "'");
        }
        const std::string num = token.substr(6);
        std::size_t pos = 0;
        long long value = -1;
        try {
          value = std::stoll(num, &pos);
        } catch (const std::exception&) {
          pos = std::string::npos;
        }
        if (pos != num.size() || value < 0 || value > 1'000'000) {
          Fail(origin, line, "steps= needs an integer in [0, 1000000]");
        }
        inst.churn_steps = static_cast<int>(value);
        no_trailing();
      }
      st.Current()->instances.push_back(std::move(inst));
      st.sweep_target = SweepTarget::kNone;
    } else if (directive == "sweep") {
      if (st.Current() == nullptr || st.sweep_target == SweepTarget::kNone) {
        Fail(origin, line,
             "'sweep' must directly follow the generate or sample directive "
             "it modifies");
      }
      SweepAxis axis;
      axis.param = want_word("parameter name");
      axis.line = line;
      std::string value;
      while (fields >> value) axis.values.push_back(value);
      if (axis.values.empty()) {
        Fail(origin, line, "'sweep' needs at least one value");
      }
      if (axis.values.size() > kMaxSweepValues) {
        Fail(origin, line, "at most " + std::to_string(kMaxSweepValues) +
                               " values per sweep axis");
      }
      std::string owner;
      const auto schema = SweepSchema(st, owner);
      RawParams& params = *SweepParams(st);
      for (const auto& [key, _] : params.fixed) {
        if (key == axis.param) {
          Fail(origin, line, "parameter '" + axis.param +
                                 "' is both fixed and swept");
        }
      }
      for (const SweepAxis& other : params.sweeps) {
        if (other.param == axis.param) {
          Fail(origin, line, "duplicate sweep axis '" + axis.param + "'");
        }
      }
      std::set<std::string> distinct;
      for (const std::string& v : axis.values) {
        if (!distinct.insert(v).second) {
          Fail(origin, line, "duplicate sweep value '" + v + "'");
        }
        const std::vector<std::pair<std::string, std::string>> one{
            {axis.param, v}};
        try {
          // Validates key existence, kind, and range per value.
          (void)ValidateParams(owner, schema, one);
        } catch (const std::runtime_error& e) {
          Fail(origin, line, e.what());
        }
      }
      params.sweeps.push_back(std::move(axis));
    } else {
      Fail(origin, line, "unknown directive '" + directive + "'");
    }
  }

  if (st.spec.cases.empty()) Fail(origin, line, "no graph source");
  CloseCase(st, line);
  return st.spec;
}

WorkloadSpec LoadWorkloadSpec(const std::string& path) {
  // A bare SteinLib file is a complete workload on its own: one imported
  // case whose terminals become the single instance.
  if (path.size() > 4 && path.substr(path.size() - 4) == ".stp") {
    WorkloadSpec spec;
    spec.origin = path;
    CaseSpec cs;
    cs.kind = CaseSpec::Kind::kImportStp;
    cs.path = path;
    cs.name = FileStem(path);
    spec.cases.push_back(std::move(cs));
    return spec;
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file: " + path);
  WorkloadSpec spec = ParseWorkloadSpec(in, path);
  spec.base_dir = std::filesystem::path(path).parent_path().string();
  return spec;
}

// --- expansion ---------------------------------------------------------------

namespace {

// Renders the swept-axis assignment of one combination, e.g. "[n=64,p=0.2]".
std::string SweepSuffix(const RawParams& params,
                        std::span<const std::size_t> idx) {
  if (params.sweeps.empty()) return "";
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < params.sweeps.size(); ++i) {
    if (i > 0) os << ",";
    os << params.sweeps[i].param << "=" << params.sweeps[i].values[idx[i]];
  }
  os << "]";
  return os.str();
}

// Fixed params plus the swept values of one combination.
std::vector<std::pair<std::string, std::string>> CombineParams(
    const RawParams& params, std::span<const std::size_t> idx) {
  auto raw = params.fixed;
  for (std::size_t i = 0; i < params.sweeps.size(); ++i) {
    raw.push_back({params.sweeps[i].param, params.sweeps[i].values[idx[i]]});
  }
  return raw;
}

// Iterates the cross-product of the sweep axes in declaration order (last
// axis fastest); calls fn(idx) for every combination.
template <typename Fn>
void ForEachCombination(const RawParams& params, Fn&& fn) {
  std::vector<std::size_t> idx(params.sweeps.size(), 0);
  while (true) {
    fn(std::span<const std::size_t>(idx));
    std::size_t axis = idx.size();
    while (axis > 0) {
      --axis;
      if (++idx[axis] < params.sweeps[axis].values.size()) break;
      idx[axis] = 0;
      if (axis == 0) return;
    }
    if (idx.empty()) return;
  }
}

std::string ResolveImportPath(const WorkloadSpec& spec, const CaseSpec& cs) {
  const std::filesystem::path p(cs.path);
  if (p.is_absolute() || spec.base_dir.empty()) return cs.path;
  return (std::filesystem::path(spec.base_dir) / p).string();
}

}  // namespace

Workload ExpandWorkload(const WorkloadSpec& spec) {
  Workload out;
  out.seed = spec.seed;
  std::set<std::string> case_names;

  for (std::size_t block = 0; block < spec.cases.size(); ++block) {
    const CaseSpec& cs = spec.cases[block];
    // All randomness of a block derives from its declared position, not
    // from the expansion counter: sweeping a parameter never reshuffles the
    // random stream, so `sweep salt ...` is the replication axis and value
    // sweeps stay maximally correlated across variants.
    const std::uint64_t case_seed = DeriveSeed(spec.seed, block);

    // An imported topology is identical across (hypothetical) sweep
    // combinations; load it once per block.
    ImportedWorkload imported;
    if (cs.kind == CaseSpec::Kind::kImportStp) {
      imported = LoadSteinLib(ResolveImportPath(spec, cs));
    } else if (cs.kind == CaseSpec::Kind::kImportDimacs) {
      imported = LoadDimacs(ResolveImportPath(spec, cs));
    }

    ForEachCombination(cs.params, [&](std::span<const std::size_t> idx) {
      if (out.cases.size() >= kMaxExpandedCases) {
        Fail(spec.origin, cs.line,
             "workload expands to more than " +
                 std::to_string(kMaxExpandedCases) + " cases");
      }
      WorkloadCase wc;
      wc.name = cs.name + SweepSuffix(cs.params, idx);
      switch (cs.kind) {
        case CaseSpec::Kind::kExplicit:
          wc.source = "graph";
          wc.graph = MakeGraph(static_cast<int>(cs.n), cs.edges);
          break;
        case CaseSpec::Kind::kGenerate: {
          wc.source = "generate " + cs.family;
          try {
            const GeneratorFamily& family = GeneratorRegistry::Get(cs.family);
            const ParamMap pm = ValidateGeneratorParams(
                family, CombineParams(cs.params, idx));
            wc.graph = BuildGenerator(family, pm, DeriveSeed(case_seed, 0));
          } catch (const std::runtime_error& e) {
            Fail(spec.origin, cs.line, e.what());
          }
          break;
        }
        case CaseSpec::Kind::kImportStp:
          wc.source = "import stp " + cs.path;
          wc.graph = imported.graph;
          if (imported.has_terminals) {
            WorkloadInstance inst;
            inst.name = "terminals";
            inst.ic = imported.terminals;
            wc.instances.push_back(std::move(inst));
          }
          break;
        case CaseSpec::Kind::kImportDimacs:
          wc.source = "import dimacs " + cs.path;
          wc.graph = imported.graph;
          break;
      }

      if (!case_names.insert(wc.name).second) {
        Fail(spec.origin, cs.line,
             "duplicate case name '" + wc.name +
                 "'; disambiguate with 'as <name>'");
      }

      const int n = wc.graph.NumNodes();
      for (std::size_t j = 0; j < cs.instances.size(); ++j) {
        const InstanceSpec& inst = cs.instances[j];
        const std::uint64_t inst_seed = DeriveSeed(case_seed, 1 + j);
        if (inst.kind == InstanceSpec::Kind::kSample) {
          try {
            const InstanceSampler& sampler = SamplerRegistry::Get(inst.sampler);
            ForEachCombination(
                inst.params, [&](std::span<const std::size_t> sidx) {
                  if (wc.instances.size() >= kMaxExpandedInstances) {
                    Fail(spec.origin, inst.line,
                         "case expands to more than " +
                             std::to_string(kMaxExpandedInstances) +
                             " instances");
                  }
                  const ParamMap pm = ValidateSamplerParams(
                      sampler, CombineParams(inst.params, sidx));
                  WorkloadInstance built =
                      SampleInstance(sampler, wc.graph, pm, inst_seed);
                  built.name = inst.name + SweepSuffix(inst.params, sidx);
                  wc.instances.push_back(std::move(built));
                });
          } catch (const std::runtime_error& e) {
            // Re-wrapping an already-located error would stutter origins.
            if (std::string_view(e.what()).find(spec.origin + ":") == 0) {
              throw;
            }
            Fail(spec.origin, inst.line, e.what());
          }
          continue;
        }
        if (inst.kind == InstanceSpec::Kind::kChurn) {
          try {
            const std::filesystem::path p(inst.path);
            const std::string resolved =
                (p.is_absolute() || spec.base_dir.empty())
                    ? inst.path
                    : (std::filesystem::path(spec.base_dir) / p).string();
            const ChurnTrace trace = LoadChurnTrace(resolved);
            if (trace.base.NumNodes() != n) {
              throw std::runtime_error(
                  "churn trace '" + inst.path + "' covers " +
                  std::to_string(trace.base.NumNodes()) +
                  " nodes but the graph has " + std::to_string(n));
            }
            if (inst.churn_steps >
                static_cast<int>(trace.steps.size())) {
              throw std::runtime_error(
                  "churn instance '" + inst.name + "' replays " +
                  std::to_string(inst.churn_steps) +
                  " steps but the trace has only " +
                  std::to_string(trace.steps.size()));
            }
            WorkloadInstance built;
            built.name = inst.name;
            built.ic = trace.StateAt(inst.churn_steps);
            wc.instances.push_back(std::move(built));
          } catch (const std::runtime_error& e) {
            // Trace parse errors already carry their own origin:line.
            if (std::string_view(e.what()).find(spec.origin + ":") == 0) {
              throw;
            }
            Fail(spec.origin, inst.line, e.what());
          }
          continue;
        }
        // Explicit instances: node ranges were only provisionally checked at
        // parse time when the case's n was not yet known.
        WorkloadInstance built;
        built.name = inst.name;
        if (inst.kind == InstanceSpec::Kind::kExplicitCr) {
          for (const auto& [u, v] : inst.pairs) {
            if (u >= n || v >= n) {
              Fail(spec.origin, inst.line,
                   "pair of instance '" + inst.name +
                       "' references a node >= n = " + std::to_string(n));
            }
          }
          built.use_cr = true;
          built.cr = MakeCrInstance(n, inst.pairs);
        } else {
          for (const auto& [v, label] : inst.terminals) {
            if (v >= n) {
              Fail(spec.origin, inst.line,
                   "terminal of instance '" + inst.name +
                       "' references a node >= n = " + std::to_string(n));
            }
          }
          built.ic = MakeIcInstance(n, inst.terminals);
        }
        wc.instances.push_back(std::move(built));
      }

      if (wc.instances.empty()) {
        Fail(spec.origin, cs.line,
             "case '" + wc.name + "' has no instances (the imported file "
             "carries no terminals; add 'sample' or explicit instances)");
      }
      out.cases.push_back(std::move(wc));
    });
  }
  return out;
}

Workload LoadWorkload(const std::string& path) {
  return ExpandWorkload(LoadWorkloadSpec(path));
}

RequestMatrix BuildRequests(const Workload& workload,
                            std::span<const std::string> solvers,
                            const SolveOptions& base) {
  RequestMatrix matrix;
  for (const std::string& solver : solvers) {
    for (std::size_t c = 0; c < workload.cases.size(); ++c) {
      const WorkloadCase& wc = workload.cases[c];
      for (std::size_t i = 0; i < wc.instances.size(); ++i) {
        const WorkloadInstance& inst = wc.instances[i];
        SolveRequest req;
        req.solver = solver;
        req.graph = &wc.graph;
        req.use_cr = inst.use_cr;
        if (inst.use_cr) {
          req.cr = inst.cr;
        } else {
          req.ic = inst.ic;
        }
        req.options = base;
        matrix.requests.push_back(std::move(req));
        matrix.case_index.push_back(static_cast<int>(c));
        matrix.instance_index.push_back(static_cast<int>(i));
      }
    }
  }
  return matrix;
}

}  // namespace dsf
