#include "workload/churn.hpp"

#include <stdexcept>
#include <string>

#include "common/random.hpp"

namespace dsf {
namespace {

struct ActivePair {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Label label = kNoLabel;
};

}  // namespace

InstanceDelta ToDelta(const ChurnStep& step) {
  InstanceDelta delta;
  delta.add_terminals = step.add_terminals;
  delta.remove_terminals = step.remove_terminals;
  return delta;
}

IcInstance ChurnTrace::StateAt(int steps_applied) const {
  IcInstance state = base;
  for (int i = 0; i < steps_applied; ++i) {
    state = ApplyDelta(state, ToDelta(steps[static_cast<std::size_t>(i)]));
  }
  return state;
}

ChurnTrace SampleChurnTrace(int n, int range, int pairs, int num_steps,
                            int churn, std::uint64_t seed) {
  if (range == 0) range = n;
  if (range < 0 || range > n) {
    throw std::runtime_error("churn: draw range " + std::to_string(range) +
                             " outside [0, " + std::to_string(n) + "]");
  }
  if (pairs < 1) throw std::runtime_error("churn: needs at least one pair");
  if (churn > pairs) {
    throw std::runtime_error("churn: churn " + std::to_string(churn) +
                             " exceeds the pair population " +
                             std::to_string(pairs));
  }
  if (range < 2 * pairs + 2) {
    throw std::runtime_error(
        "churn: needs a draw range of at least 2 * pairs + 2 = " +
        std::to_string(2 * pairs + 2) + " nodes, have " +
        std::to_string(range));
  }

  SplitMix64 rng(seed);
  std::vector<char> used(static_cast<std::size_t>(range), 0);
  std::vector<ActivePair> active;
  active.reserve(static_cast<std::size_t>(pairs));
  Label next_label = 1;

  const auto draw_free = [&]() {
    NodeId v = 0;
    do {
      v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(range)));
    } while (used[static_cast<std::size_t>(v)]);
    used[static_cast<std::size_t>(v)] = 1;
    return v;
  };
  const auto arrive = [&]() {
    ActivePair p;
    p.u = draw_free();
    p.v = draw_free();
    p.label = next_label++;
    active.push_back(p);
    return p;
  };

  ChurnTrace trace;
  std::vector<std::pair<NodeId, Label>> assign;
  for (int i = 0; i < pairs; ++i) {
    const ActivePair p = arrive();
    assign.push_back({p.u, p.label});
    assign.push_back({p.v, p.label});
  }
  trace.base = MakeIcInstance(n, assign);

  trace.steps.reserve(static_cast<std::size_t>(num_steps));
  for (int s = 0; s < num_steps; ++s) {
    ChurnStep step;
    for (int c = 0; c < churn; ++c) {
      const auto idx = static_cast<std::size_t>(
          rng.NextBelow(static_cast<std::uint64_t>(active.size())));
      const ActivePair p = active[idx];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
      used[static_cast<std::size_t>(p.u)] = 0;
      used[static_cast<std::size_t>(p.v)] = 0;
      step.remove_terminals.push_back(p.u);
      step.remove_terminals.push_back(p.v);
    }
    for (int c = 0; c < churn; ++c) {
      const ActivePair p = arrive();
      step.add_terminals.push_back({p.u, p.label});
      step.add_terminals.push_back({p.v, p.label});
    }
    trace.steps.push_back(std::move(step));
  }
  return trace;
}

}  // namespace dsf
