#include "workload/churn.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/random.hpp"
#include "common/text.hpp"

namespace dsf {
namespace {

struct ActivePair {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Label label = kNoLabel;
};

[[noreturn]] void FailTrace(std::string_view origin, int line,
                            const std::string& what) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << what;
  throw std::runtime_error(os.str());
}

}  // namespace

InstanceDelta ToDelta(const ChurnStep& step) {
  InstanceDelta delta;
  delta.add_terminals = step.add_terminals;
  delta.remove_terminals = step.remove_terminals;
  return delta;
}

IcInstance ChurnTrace::StateAt(int steps_applied) const {
  IcInstance state = base;
  for (int i = 0; i < steps_applied; ++i) {
    state = ApplyDelta(state, ToDelta(steps[static_cast<std::size_t>(i)]));
  }
  return state;
}

ChurnTrace SampleChurnTrace(int n, int range, int pairs, int num_steps,
                            int churn, std::uint64_t seed) {
  if (range == 0) range = n;
  if (range < 0 || range > n) {
    throw std::runtime_error("churn: draw range " + std::to_string(range) +
                             " outside [0, " + std::to_string(n) + "]");
  }
  if (pairs < 1) throw std::runtime_error("churn: needs at least one pair");
  if (churn > pairs) {
    throw std::runtime_error("churn: churn " + std::to_string(churn) +
                             " exceeds the pair population " +
                             std::to_string(pairs));
  }
  if (range < 2 * pairs + 2) {
    throw std::runtime_error(
        "churn: needs a draw range of at least 2 * pairs + 2 = " +
        std::to_string(2 * pairs + 2) + " nodes, have " +
        std::to_string(range));
  }

  SplitMix64 rng(seed);
  std::vector<char> used(static_cast<std::size_t>(range), 0);
  std::vector<ActivePair> active;
  active.reserve(static_cast<std::size_t>(pairs));
  Label next_label = 1;

  const auto draw_free = [&]() {
    NodeId v = 0;
    do {
      v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(range)));
    } while (used[static_cast<std::size_t>(v)]);
    used[static_cast<std::size_t>(v)] = 1;
    return v;
  };
  const auto arrive = [&]() {
    ActivePair p;
    p.u = draw_free();
    p.v = draw_free();
    p.label = next_label++;
    active.push_back(p);
    return p;
  };

  ChurnTrace trace;
  std::vector<std::pair<NodeId, Label>> assign;
  for (int i = 0; i < pairs; ++i) {
    const ActivePair p = arrive();
    assign.push_back({p.u, p.label});
    assign.push_back({p.v, p.label});
  }
  trace.base = MakeIcInstance(n, assign);

  trace.steps.reserve(static_cast<std::size_t>(num_steps));
  for (int s = 0; s < num_steps; ++s) {
    ChurnStep step;
    for (int c = 0; c < churn; ++c) {
      const auto idx = static_cast<std::size_t>(
          rng.NextBelow(static_cast<std::uint64_t>(active.size())));
      const ActivePair p = active[idx];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
      used[static_cast<std::size_t>(p.u)] = 0;
      used[static_cast<std::size_t>(p.v)] = 0;
      step.remove_terminals.push_back(p.u);
      step.remove_terminals.push_back(p.v);
    }
    for (int c = 0; c < churn; ++c) {
      const ActivePair p = arrive();
      step.add_terminals.push_back({p.u, p.label});
      step.add_terminals.push_back({p.v, p.label});
    }
    trace.steps.push_back(std::move(step));
  }
  return trace;
}

void WriteChurnTrace(std::ostream& out, const ChurnTrace& trace) {
  out << "dsf-churn 1\n";
  out << "nodes " << trace.base.NumNodes() << "\n";
  const std::vector<NodeId> terminals = trace.base.Terminals();
  out << "base " << terminals.size() << "\n";
  for (const NodeId v : terminals) {
    out << "t " << v << " " << trace.base.LabelOf(v) << "\n";
  }
  out << "steps " << trace.steps.size() << "\n";
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const ChurnStep& step = trace.steps[i];
    out << "step " << i << "\n";
    for (const NodeId v : step.remove_terminals) out << "rm " << v << "\n";
    for (const auto& [v, label] : step.add_terminals) {
      out << "add " << v << " " << label << "\n";
    }
  }
  out << "eof\n";
}

ChurnTrace ParseChurnTrace(std::istream& in, std::string_view origin) {
  std::string raw;
  int line = 0;

  std::istringstream fields;
  // A typo in a numeric column must fail, not load a different trace.
  const auto no_trailing = [&](const std::string& head) {
    std::string trailing;
    if (fields >> trailing) {
      FailTrace(origin, line, "trailing tokens after '" + head + "'");
    }
  };
  // Record lines arrive in a fixed sequence, so the reader demands each one
  // by its keyword instead of dispatching on whatever appears.
  const auto next_record = [&](const std::string& keyword) {
    while (ReadLine(in, raw)) {
      ++line;
      fields = std::istringstream(raw);
      std::string head;
      if (!(fields >> head)) continue;  // blank line
      if (head == "#") continue;       // comment
      if (head != keyword) {
        FailTrace(origin, line,
                  "expected '" + keyword + "', got '" + head + "'");
      }
      return;
    }
    FailTrace(origin, line, "unexpected end of file (expected '" + keyword +
                                "')");
  };
  const auto want_int = [&](const char* what) -> long long {
    long long value = 0;
    if (!(fields >> value)) {
      FailTrace(origin, line, std::string("expected ") + what);
    }
    return value;
  };

  next_record("dsf-churn");
  if (want_int("format version") != 1) {
    FailTrace(origin, line, "unsupported dsf-churn version");
  }
  no_trailing("dsf-churn");

  next_record("nodes");
  const long long n = want_int("node count");
  no_trailing("nodes");
  if (n < 1 || n > 100'000'000) {
    FailTrace(origin, line, "node count out of range");
  }
  const auto node_in_range = [&](long long v) -> NodeId {
    if (v < 0 || v >= n) {
      FailTrace(origin, line, "node " + std::to_string(v) +
                                  " out of range [0, " + std::to_string(n) +
                                  ")");
    }
    return static_cast<NodeId>(v);
  };
  const auto want_label = [&]() -> Label {
    const long long l = want_int("label");
    if (l < 1) FailTrace(origin, line, "labels must be >= 1");
    return static_cast<Label>(l);
  };

  next_record("base");
  const long long base_count = want_int("base terminal count");
  no_trailing("base");
  if (base_count < 0 || base_count > n) {
    FailTrace(origin, line, "base terminal count out of range");
  }
  std::vector<std::pair<NodeId, Label>> assign;
  assign.reserve(static_cast<std::size_t>(base_count));
  NodeId prev = -1;
  for (long long i = 0; i < base_count; ++i) {
    next_record("t");
    const NodeId v = node_in_range(want_int("terminal node"));
    const Label label = want_label();
    no_trailing("t");
    if (v <= prev) {
      FailTrace(origin, line,
                "base terminals must be listed in increasing node order");
    }
    prev = v;
    assign.push_back({v, label});
  }

  ChurnTrace trace;
  trace.base = MakeIcInstance(static_cast<int>(n), assign);

  next_record("steps");
  const long long num_steps = want_int("step count");
  no_trailing("steps");
  if (num_steps < 0 || num_steps > 1'000'000) {
    FailTrace(origin, line, "step count out of range");
  }
  trace.steps.reserve(static_cast<std::size_t>(num_steps));

  // Step bodies have no count headers; rm/add lines run until the next
  // `step`/`eof` keyword, so the reader keeps one record of lookahead: when
  // a body loop reads past its end, it leaves the record in `head`/`fields`
  // and sets `pending` for the next take.
  std::string head;
  bool pending = false;
  const auto take_head = [&]() -> bool {
    if (pending) {
      pending = false;
      return true;
    }
    while (ReadLine(in, raw)) {
      ++line;
      fields = std::istringstream(raw);
      if (!(fields >> head)) continue;  // blank line
      if (head == "#") continue;
      return true;
    }
    return false;
  };
  const auto expect_head = [&](const std::string& keyword) {
    if (!take_head()) {
      FailTrace(origin, line,
                "unexpected end of file (expected '" + keyword + "')");
    }
    if (head != keyword) {
      FailTrace(origin, line,
                "expected '" + keyword + "', got '" + head + "'");
    }
  };

  for (long long s = 0; s < num_steps; ++s) {
    expect_head("step");
    if (want_int("step index") != s) {
      FailTrace(origin, line, "step indices must run 0.." +
                                  std::to_string(num_steps - 1) + " in order");
    }
    no_trailing("step");
    ChurnStep step;
    bool in_adds = false;
    while (true) {
      if (!take_head()) {
        FailTrace(origin, line, "unexpected end of file inside step " +
                                    std::to_string(s));
      }
      if (head == "rm") {
        if (in_adds) {
          FailTrace(origin, line, "'rm' lines must precede 'add' lines");
        }
        step.remove_terminals.push_back(node_in_range(want_int("node")));
        no_trailing("rm");
      } else if (head == "add") {
        in_adds = true;
        const NodeId v = node_in_range(want_int("node"));
        const Label label = want_label();
        no_trailing("add");
        step.add_terminals.push_back({v, label});
      } else {
        pending = true;  // next step's header or the trailer
        break;
      }
    }
    trace.steps.push_back(std::move(step));
  }

  expect_head("eof");
  no_trailing("eof");
  if (take_head()) FailTrace(origin, line, "content after eof trailer");
  return trace;
}

void SaveChurnTrace(const std::string& path, const ChurnTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write churn trace: " + path);
  WriteChurnTrace(out, trace);
  out.flush();
  if (!out) throw std::runtime_error("failed writing churn trace: " + path);
}

ChurnTrace LoadChurnTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read churn trace: " + path);
  return ParseChurnTrace(in, path);
}

}  // namespace dsf
