// Churn traces: demand arrival/departure streams over a stable graph.
//
// The repeat-traffic model of the incremental re-solve tier (DESIGN.md §5):
// a base population of demand pairs on a fixed topology, mutated step by
// step — each step retires `churn` random active pairs and admits `churn`
// fresh ones, keeping the population size constant. Pairs are node-disjoint
// (every node serves at most one active pair), so each pair maps to its own
// IC component and a step is exactly an `InstanceDelta` of terminal edits.
//
// Determinism contract: the trace is a pure function of its arguments, and
// it is prefix-stable — SampleChurnTrace(..., steps = k) agrees with the
// first k steps of SampleChurnTrace(..., steps = k + j). That is what lets
// a client, the churn sampler, and bench_serve independently reconstruct
// the same delta chain from one seed, and what makes the revised canonical
// key of "state k-1 + step k" equal the cold key of state k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "steiner/delta.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// One churn step: departures first, then arrivals (matching ApplyDelta's
// removals-before-additions order). Arriving pairs carry fresh labels —
// labels grow monotonically along the trace and are never reused.
struct ChurnStep {
  std::vector<std::pair<NodeId, Label>> add_terminals;
  std::vector<NodeId> remove_terminals;
};

// The step as the delta language of the revise op speaks it.
InstanceDelta ToDelta(const ChurnStep& step);

struct ChurnTrace {
  IcInstance base;               // state 0: the initial pair population
  std::vector<ChurnStep> steps;  // steps[i] maps state i to state i + 1
  // State after applying the first `steps_applied` steps to the base, via
  // the same ApplyDelta the serve tier uses (bit-equal label vectors).
  [[nodiscard]] IcInstance StateAt(int steps_applied) const;
};

// Samples a trace of `num_steps` steps over `pairs` node-disjoint pairs
// drawn from node ids [0, range) (range == 0 means all of [0, n)). Throws
// std::runtime_error when the draw cannot work (churn > pairs, or fewer
// than 2 * pairs + 2 nodes in the draw range, which rejection sampling
// needs to terminate promptly).
ChurnTrace SampleChurnTrace(int n, int range, int pairs, int num_steps,
                            int churn, std::uint64_t seed);

}  // namespace dsf
