// Churn traces: demand arrival/departure streams over a stable graph.
//
// The repeat-traffic model of the incremental re-solve tier (DESIGN.md §5):
// a base population of demand pairs on a fixed topology, mutated step by
// step — each step retires `churn` random active pairs and admits `churn`
// fresh ones, keeping the population size constant. Pairs are node-disjoint
// (every node serves at most one active pair), so each pair maps to its own
// IC component and a step is exactly an `InstanceDelta` of terminal edits.
//
// Determinism contract: the trace is a pure function of its arguments, and
// it is prefix-stable — SampleChurnTrace(..., steps = k) agrees with the
// first k steps of SampleChurnTrace(..., steps = k + j). That is what lets
// a client, the churn sampler, and bench_serve independently reconstruct
// the same delta chain from one seed, and what makes the revised canonical
// key of "state k-1 + step k" equal the cold key of state k.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "steiner/delta.hpp"
#include "steiner/instance.hpp"

namespace dsf {

// One churn step: departures first, then arrivals (matching ApplyDelta's
// removals-before-additions order). Arriving pairs carry fresh labels —
// labels grow monotonically along the trace and are never reused.
struct ChurnStep {
  std::vector<std::pair<NodeId, Label>> add_terminals;
  std::vector<NodeId> remove_terminals;
};

// The step as the delta language of the revise op speaks it.
InstanceDelta ToDelta(const ChurnStep& step);

struct ChurnTrace {
  IcInstance base;               // state 0: the initial pair population
  std::vector<ChurnStep> steps;  // steps[i] maps state i to state i + 1
  // State after applying the first `steps_applied` steps to the base, via
  // the same ApplyDelta the serve tier uses (bit-equal label vectors).
  [[nodiscard]] IcInstance StateAt(int steps_applied) const;
};

// Samples a trace of `num_steps` steps over `pairs` node-disjoint pairs
// drawn from node ids [0, range) (range == 0 means all of [0, n)). Throws
// std::runtime_error when the draw cannot work (churn > pairs, or fewer
// than 2 * pairs + 2 nodes in the draw range, which rejection sampling
// needs to terminate promptly).
ChurnTrace SampleChurnTrace(int n, int range, int pairs, int num_steps,
                            int churn, std::uint64_t seed);

// Trace persistence — the scenario-file form the suite's `churn` directive
// replays. Line-oriented text, one record per line:
//
//   dsf-churn 1          magic + format version
//   nodes N              base instance node count
//   base K               number of base terminals, then K lines of
//   t V L                  terminal V with label L (increasing node order)
//   steps S              number of steps, then per step:
//   step I                 header (I = 0-based step index), followed by
//   rm V                   one line per removed terminal (stored order)
//   add V L                one line per added terminal (stored order)
//   eof                  trailer (guards against truncation)
//
// Write→parse is lossless: terminals are emitted in the increasing node
// order MakeIcInstance sorts to, and step vectors keep their stored order,
// so the reloaded trace is bit-equal (same label vectors, same deltas, same
// canonical keys). Parse errors throw std::runtime_error prefixed
// "origin:line:".
void WriteChurnTrace(std::ostream& out, const ChurnTrace& trace);
ChurnTrace ParseChurnTrace(std::istream& in, std::string_view origin);
// File wrappers; Save refuses to write an unreadable path, Load a missing
// one, both with the path in the error.
void SaveChurnTrace(const std::string& path, const ChurnTrace& trace);
ChurnTrace LoadChurnTrace(const std::string& path);

}  // namespace dsf
