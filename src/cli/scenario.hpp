// Scenario files: the `dsf` CLI's input format — one weighted graph plus any
// number of named instances, in either input form of the paper (DSF-IC
// terminals with labels, Definition 2.2; DSF-CR connection-request pairs,
// Definition 2.1). Line-oriented text; `#` starts a comment; blank lines are
// ignored:
//
//   graph <n>            # required first directive; nodes are 0..n-1
//   edge <u> <v> <w>     # undirected, weight >= 1
//   ic <name>            # begins a DSF-IC instance
//   terminal <v> <label> # terminal of the current ic instance (label >= 1)
//   cr <name>            # begins a DSF-CR instance
//   pair <u> <v>         # symmetric connection request of the current cr
//
// Parse errors throw std::runtime_error naming the offending line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct ScenarioInstance {
  std::string name;
  bool use_cr = false;
  IcInstance ic;  // populated when !use_cr
  CrInstance cr;  // populated when use_cr
};

struct Scenario {
  Graph graph;  // finalized
  std::vector<ScenarioInstance> instances;
};

// `origin` is used in error messages (a path or "<string>").
Scenario ParseScenario(std::istream& in, const std::string& origin);

// Reads and parses `path`; throws std::runtime_error when unreadable.
Scenario LoadScenario(const std::string& path);

}  // namespace dsf
