// Single-topology view of a workload file (workload/spec.hpp) — the
// original `dsf` scenario shape: one weighted graph plus any number of
// named instances, in either input form of the paper (DSF-IC terminals with
// labels, Definition 2.2; DSF-CR connection-request pairs, Definition 2.1).
//
// Parsing and expansion live in the workload layer; these wrappers exist
// for callers that want exactly one graph (library users, tests). Files
// using the multi-case directives (`generate`, `import`, `sweep`, ...) that
// expand to a single case load fine; multi-case workloads are rejected —
// use LoadWorkload directly for those.
//
// Parse errors throw std::runtime_error naming the offending line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "workload/samplers.hpp"
#include "workload/spec.hpp"

namespace dsf {

// One named instance; `name`, `use_cr`, and the matching `ic`/`cr` member.
using ScenarioInstance = WorkloadInstance;

struct Scenario {
  Graph graph;  // finalized
  std::vector<ScenarioInstance> instances;
};

// `origin` is used in error messages (a path or "<string>").
Scenario ParseScenario(std::istream& in, const std::string& origin);

// Reads and parses `path`; throws std::runtime_error when unreadable.
Scenario LoadScenario(const std::string& path);

}  // namespace dsf
