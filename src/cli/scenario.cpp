#include "cli/scenario.hpp"

#include <stdexcept>
#include <utility>

namespace dsf {

namespace {

Scenario SingleCase(Workload workload, const std::string& origin) {
  if (workload.cases.size() != 1) {
    throw std::runtime_error(
        origin + ": expands to " + std::to_string(workload.cases.size()) +
        " cases; the scenario API takes exactly one (use LoadWorkload)");
  }
  Scenario scenario;
  scenario.graph = std::move(workload.cases[0].graph);
  scenario.instances = std::move(workload.cases[0].instances);
  return scenario;
}

}  // namespace

Scenario ParseScenario(std::istream& in, const std::string& origin) {
  return SingleCase(ExpandWorkload(ParseWorkloadSpec(in, origin)), origin);
}

Scenario LoadScenario(const std::string& path) {
  return SingleCase(LoadWorkload(path), path);
}

}  // namespace dsf
