#include "cli/scenario.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dsf {

namespace {

// Scenario files are hand-written serving inputs, not a bulk graph format;
// the cap exists so out-of-range node counts fail instead of truncating.
constexpr long long kMaxScenarioNodes = 10'000'000;

[[noreturn]] void Fail(const std::string& origin, int line,
                       const std::string& what) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << what;
  throw std::runtime_error(os.str());
}

// The pending (mutable) instance: terminals/pairs accumulate here and are
// materialized into IcInstance / CrInstance when the instance closes.
struct PendingInstance {
  std::string name;
  bool use_cr = false;
  std::vector<std::pair<NodeId, Label>> terminals;
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

}  // namespace

Scenario ParseScenario(std::istream& in, const std::string& origin) {
  Scenario scenario;
  std::vector<Edge> edges;
  int n = -1;
  bool have_instance = false;
  PendingInstance pending;

  const auto flush_instance = [&](int line) {
    if (!have_instance) return;
    ScenarioInstance inst;
    inst.name = pending.name;
    inst.use_cr = pending.use_cr;
    if (pending.use_cr) {
      if (pending.pairs.empty()) {
        Fail(origin, line, "cr instance '" + pending.name + "' has no pairs");
      }
      inst.cr = MakeCrInstance(n, pending.pairs);
    } else {
      if (pending.terminals.empty()) {
        Fail(origin, line,
             "ic instance '" + pending.name + "' has no terminals");
      }
      inst.ic = MakeIcInstance(n, pending.terminals);
    }
    scenario.instances.push_back(std::move(inst));
    pending = PendingInstance{};
  };

  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream fields(raw);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line

    const auto want_long = [&](const char* what) -> long long {
      long long value = 0;
      if (!(fields >> value)) {
        Fail(origin, line, std::string("expected ") + what + " after '" +
                               directive + "'");
      }
      return value;
    };
    const auto want_node = [&](const char* what) -> NodeId {
      const long long value = want_long(what);
      if (n < 0) Fail(origin, line, "'graph <n>' must come first");
      if (value < 0 || value >= n) {
        Fail(origin, line, std::string(what) + " " + std::to_string(value) +
                               " out of range [0, " + std::to_string(n) + ")");
      }
      return static_cast<NodeId>(value);
    };

    if (directive == "graph") {
      if (n >= 0) Fail(origin, line, "duplicate 'graph' directive");
      const long long value = want_long("node count");
      // Range-check before narrowing: 2^32+3 must not truncate to n=3.
      if (value <= 0 || value > kMaxScenarioNodes) {
        Fail(origin, line, "graph needs n in [1, " +
                               std::to_string(kMaxScenarioNodes) + "]");
      }
      n = static_cast<int>(value);
    } else if (directive == "edge") {
      const NodeId u = want_node("endpoint");
      const NodeId v = want_node("endpoint");
      const long long w = want_long("weight");
      if (u == v) Fail(origin, line, "self-loop");
      if (w < 1) Fail(origin, line, "edge weight must be >= 1");
      edges.push_back({u, v, static_cast<Weight>(w)});
    } else if (directive == "ic" || directive == "cr") {
      if (n < 0) Fail(origin, line, "'graph <n>' must come first");
      std::string name;
      if (!(fields >> name)) Fail(origin, line, "instance needs a name");
      flush_instance(line);
      have_instance = true;
      pending.name = name;
      pending.use_cr = directive == "cr";
    } else if (directive == "terminal") {
      if (!have_instance || pending.use_cr) {
        Fail(origin, line, "'terminal' outside an ic instance");
      }
      const NodeId v = want_node("node");
      const long long label = want_long("label");
      if (label < 1 || label > std::numeric_limits<Label>::max()) {
        Fail(origin, line, "labels must be in [1, " +
                               std::to_string(
                                   std::numeric_limits<Label>::max()) +
                               "]");
      }
      // A node holds exactly one label (Definition 2.2); letting a second
      // directive win silently would drop the first membership.
      for (const auto& [seen, _] : pending.terminals) {
        if (seen == v) {
          Fail(origin, line,
               "node " + std::to_string(v) + " is already a terminal of '" +
                   pending.name + "'");
        }
      }
      pending.terminals.push_back({v, static_cast<Label>(label)});
    } else if (directive == "pair") {
      if (!have_instance || !pending.use_cr) {
        Fail(origin, line, "'pair' outside a cr instance");
      }
      const NodeId u = want_node("node");
      const NodeId v = want_node("node");
      if (u == v) Fail(origin, line, "a node cannot request itself");
      for (const auto& [a, b] : pending.pairs) {
        if ((a == u && b == v) || (a == v && b == u)) {
          Fail(origin, line, "duplicate pair in '" + pending.name + "'");
        }
      }
      pending.pairs.push_back({u, v});
    } else {
      Fail(origin, line, "unknown directive '" + directive + "'");
    }
    std::string trailing;
    if (fields >> trailing) {
      Fail(origin, line, "trailing tokens after '" + directive + "'");
    }
  }
  if (n < 0) Fail(origin, line, "no 'graph' directive");
  flush_instance(line);
  if (scenario.instances.empty()) Fail(origin, line, "no instances");

  scenario.graph = MakeGraph(n, edges);
  return scenario;
}

Scenario LoadScenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file: " + path);
  return ParseScenario(in, path);
}

}  // namespace dsf
