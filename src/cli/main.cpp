// `dsf` — command-line front end of the solver engine (DESIGN.md §3, §4).
//
// Loads a workload file (workload/spec.hpp: hand-written graphs, registry
// generators with sweep axes, SteinLib/DIMACS imports — each with named or
// sampled IC/CR instances), expands it into concrete cases, builds the
// case × instance × solver request matrix, executes it on the BatchEngine,
// and emits one JSON document with per-request results and batch
// aggregates. Exit status is 0 iff every output was feasible.
//
// The `serve`, `shard-router`, and `client` subcommands front the resident
// service layer (src/serve/, DESIGN.md §5): a persistent socket server with
// a canonical-hash result cache, a fault-tolerant router spreading requests
// over several such servers, and a line-protocol client for both. The
// `suite` subcommand runs the benchmark wall (src/suite/, DESIGN.md §9):
// manifest-driven corpus, per-solver baselines, and regression gating.
//
//   dsf --scenario FILE [--solvers all|spec,spec,...] [--seed N]
//       [--threads N] [--epsilon X] [--repetitions N] [--deadline-ms N]
//       [--reference] [--no-prune] [--json FILE]
//   dsf serve [--port N] [--host A] [--threads N] [--cache N]
//       [--batch-max N] [--max-pending N] [--deadline-ms N]
//       [--send-timeout-ms N] [--recv-timeout-ms N] [--fault SPEC]
//   dsf shard-router --backend HOST:PORT [--backend HOST:PORT ...]
//       [--port N] [--host A] [--retries N] [--backoff-ms N]
//       [--probe-interval-ms N] [--hot-cache N] [--fault SPEC]
//   dsf client (--scenario FILE | --generate SPEC [--instance SPEC]
//       | --stats | --ping) [--port N] [--host A] [--solvers LIST]
//       [--seed N] [--epsilon X] [--repetitions N] [--deadline-ms N]
//       [--no-prune] [--repeat N] [--retries N] [--backoff-ms N]
//       [--json FILE] [--revise KEY [--delta SPEC] [--revise-mode M]]
//   dsf suite [--manifest FILE] [--baseline FILE] [--record | --check]
//       [--out FILE] [--threads N] [--emit-corpus DIR]
//       [--inject-cost N] [--inject-p95-ms X]
//   dsf --list-solvers
//   dsf --list-generators
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/json.hpp"
#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "solve/batch.hpp"
#include "solve/solver.hpp"
#include "solve/solver_spec.hpp"
#include "steiner/exact.hpp"
#include "suite/baseline.hpp"
#include "suite/check.hpp"
#include "suite/corpus.hpp"
#include "suite/manifest.hpp"
#include "suite/runner.hpp"
#include "workload/generators.hpp"
#include "workload/samplers.hpp"
#include "workload/spec.hpp"

namespace dsf {
namespace {

struct CliArgs {
  std::string scenario_path;
  std::vector<std::string> solvers;  // empty => all registered
  std::uint64_t seed = 0;
  bool seed_set = false;  // --seed given: overrides the scenario-level seed
  int threads = 1;
  Real epsilon = 0.0L;
  int repetitions = 1;
  int deadline_ms = 0;  // anytime per-unit deadline; 0 = none
  bool reference = false;
  bool prune = true;
  std::string json_path;  // empty => stdout
  bool list_solvers = false;
  bool list_generators = false;
  bool help = false;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dsf --scenario FILE [options]\n"
               "       dsf serve [--port N] [--threads N] [--cache N]\n"
               "       dsf shard-router --backend HOST:PORT"
               " [--backend HOST:PORT ...]\n"
               "       dsf client (--scenario FILE | --generate SPEC |"
               " --stats | --ping)\n"
               "                  [--port N] [--repeat N] [options]\n"
               "       dsf suite [--manifest FILE] [--record | --check]"
               " (see dsf suite -h)\n"
               "       dsf --list-solvers\n"
               "       dsf --list-generators\n"
               "\n"
               "options:\n"
               "  --scenario FILE     workload file (graph sources, sweeps,"
               " ic/cr/sampled\n"
               "                      instances); a bare SteinLib .stp file"
               " also works\n"
               "  --solvers LIST      comma-separated solver specs, or 'all'"
               " (default when\n"
               "                      the scenario has no 'as' directive);"
               " a spec is a\n"
               "                      registry name or portfolio(roster="
               "a+b+c,mode=all|first\n"
               "                      [,deadline_ms=N])\n"
               "  --seed N            overrides the scenario-level seed"
               " (workload expansion\n"
               "                      and request master seed)\n"
               "  --threads N         batch executors (0 = hardware"
               " concurrency)\n"
               "  --epsilon X         Algorithm 2 epsilon for the moat"
               " solvers\n"
               "  --repetitions N     dist-rand repetitions\n"
               "  --deadline-ms N     anytime deadline per unit: return the"
               " best feasible\n"
               "                      forest found within N wall ms\n"
               "  --reference         also solve exactly, report ratios"
               " (small instances)\n"
               "  --no-prune          skip minimal-subforest pruning\n"
               "  --json FILE         write the JSON document to FILE"
               " (default stdout)\n"
               "  --list-solvers      print the solver registry and exit\n"
               "  --list-generators   print the generator and sampler"
               " registries with\n"
               "                      their parameter schemas and exit\n");
}

// Strict numeric parsing: trailing garbage and overflow are usage errors,
// not silently-zero values (atoi("x2") == 0 would flip semantics).
bool ParseI64(const char* flag, const char* v, long long& out,
              std::string& error) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    error = std::string("invalid value for ") + flag + ": '" + v + "'";
    return false;
  }
  out = value;
  return true;
}

bool ParseU64(const char* flag, const char* v, std::uint64_t& out,
              std::string& error) {
  char* end = nullptr;
  errno = 0;
  if (v[0] == '-') {
    error = std::string("invalid value for ") + flag + ": '" + v + "'";
    return false;
  }
  const unsigned long long value = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    error = std::string("invalid value for ") + flag + ": '" + v + "'";
    return false;
  }
  out = value;
  return true;
}

bool ParseReal(const char* flag, const char* v, Real& out,
               std::string& error) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) {
    error = std::string("invalid value for ") + flag + ": '" + v + "'";
    return false;
  }
  out = static_cast<Real>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, CliArgs& args, std::string& error) {
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      error = std::string("missing value for ") + argv[i];
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      args.help = true;
    } else if (flag == "--list-solvers") {
      args.list_solvers = true;
    } else if (flag == "--list-generators") {
      args.list_generators = true;
    } else if (flag == "--scenario") {
      const char* v = need_value(i);
      if (!v) return false;
      args.scenario_path = v;
    } else if (flag == "--solvers") {
      const char* v = need_value(i);
      if (!v) return false;
      if (std::strcmp(v, "all") != 0) {
        // Paren-aware split: portfolio(...) specs carry commas of their own.
        for (std::string& spec : SplitSolverList(v)) {
          args.solvers.push_back(std::move(spec));
        }
      }
    } else if (flag == "--seed") {
      const char* v = need_value(i);
      if (!v || !ParseU64("--seed", v, args.seed, error)) return false;
      // 0 is BatchEngine's "keep per-request seeds" sentinel; accepting it
      // would silently stop deriving per-request seeds.
      if (args.seed == 0) {
        error = "--seed must be >= 1";
        return false;
      }
      args.seed_set = true;
    } else if (flag == "--threads") {
      const char* v = need_value(i);
      long long threads = 0;
      if (!v || !ParseI64("--threads", v, threads, error)) return false;
      if (threads < 0 || threads > 1024) {
        error = "--threads must be in [0, 1024]";
        return false;
      }
      args.threads = static_cast<int>(threads);
    } else if (flag == "--epsilon") {
      const char* v = need_value(i);
      if (!v || !ParseReal("--epsilon", v, args.epsilon, error)) return false;
      if (args.epsilon < 0.0L) {
        error = "--epsilon must be >= 0";
        return false;
      }
    } else if (flag == "--repetitions") {
      const char* v = need_value(i);
      long long reps = 0;
      if (!v || !ParseI64("--repetitions", v, reps, error)) return false;
      if (reps < 1 || reps > 1 << 20) {
        error = "--repetitions must be in [1, 1048576]";
        return false;
      }
      args.repetitions = static_cast<int>(reps);
    } else if (flag == "--deadline-ms") {
      const char* v = need_value(i);
      long long ms = 0;
      if (!v || !ParseI64("--deadline-ms", v, ms, error)) return false;
      if (ms < 0 || ms > 86'400'000) {
        error = "--deadline-ms must be in [0, 86400000]";
        return false;
      }
      args.deadline_ms = static_cast<int>(ms);
    } else if (flag == "--reference") {
      args.reference = true;
    } else if (flag == "--no-prune") {
      args.prune = false;
    } else if (flag == "--json") {
      const char* v = need_value(i);
      if (!v) return false;
      args.json_path = v;
    } else {
      error = "unknown flag: " + flag;
      return false;
    }
  }
  return true;
}

void WriteResult(JsonWriter& json, const WorkloadCase& wc,
                 const WorkloadInstance& inst, const SolveResult& r) {
  json.BeginObject();
  json.Key("solver");
  json.String(r.solver);
  json.Key("case");
  json.String(wc.name);
  json.Key("instance");
  json.String(inst.name);
  json.Key("input");
  json.String(inst.use_cr ? "cr" : "ic");
  json.Key("weight");
  json.Int(static_cast<long long>(r.weight));
  json.Key("feasible");
  json.Bool(r.feasible);
  if (r.cancelled) {
    json.Key("cancelled");
    json.Bool(true);
  }
  json.Key("edges");
  json.BeginArray();
  for (const EdgeId e : r.forest) json.Int(e);
  json.EndArray();
  // kInfWeight marks an unreachable reference (unsatisfiable instance);
  // emitting the sentinel as a number would be garbage.
  if (r.reference_weight >= 0 && r.reference_weight < kInfWeight) {
    json.Key("reference_weight");
    json.Int(static_cast<long long>(r.reference_weight));
    json.Key("approx_ratio");
    json.Double(r.approx_ratio);
  }
  if (r.dual_lower_bound > 0) {
    json.Key("dual_lower_bound");
    json.Double(FixedToReal(r.dual_lower_bound));
  }
  json.Key("rounds");
  json.Int(r.stats.rounds);
  json.Key("charged_rounds");
  json.Int(r.stats.charged_rounds);
  json.Key("messages");
  json.Int(r.stats.messages);
  json.Key("total_bits");
  json.Int(r.stats.total_bits);
  if (inst.use_cr) {
    json.Key("transform_rounds");
    json.Int(r.transform_rounds);
    json.Key("transform_messages");
    json.Int(r.transform_messages);
    json.Key("transform_bits");
    json.Int(r.transform_bits);
  }
  json.Key("wall_ms");
  json.Double(r.wall_ms);
  json.EndObject();
}

int RunCli(const CliArgs& args) {
  WorkloadSpec spec = LoadWorkloadSpec(args.scenario_path);
  if (args.seed_set) spec.seed = args.seed;
  const Workload workload = ExpandWorkload(spec);

  // Solver selection: --solvers beats the scenario's `as` directive beats
  // "every registered solver". Specs are canonicalized up front so the JSON
  // lists the same strings the results (and the serve cache key) carry.
  std::vector<std::string> solver_names =
      args.solvers.empty() ? spec.solvers : args.solvers;
  if (solver_names.empty()) {
    for (const auto name : SolverRegistry::Names()) {
      solver_names.emplace_back(name);
    }
  }
  for (auto& name : solver_names) {
    name = ParseSolverSpec(name).Canonical();  // fail fast on bad specs
  }

  SolveOptions base;
  base.epsilon = args.epsilon;
  base.repetitions = args.repetitions;
  base.prune = args.prune;
  base.validate = true;
  base.deadline_ms = args.deadline_ms;
  RequestMatrix matrix = BuildRequests(workload, solver_names, base);

  BatchOptions bopt;
  bopt.threads = args.threads;
  bopt.master_seed = spec.seed;
  BatchEngine engine(bopt);
  std::vector<SolveResult> results = engine.Run(matrix.requests);
  const BatchStats& stats = engine.LastStats();

  if (args.reference) {
    // The exact reference depends only on the (case, instance) cell, so it
    // is solved once per cell instead of once per cell x solver.
    std::vector<std::vector<Weight>> reference(workload.cases.size());
    for (std::size_t c = 0; c < workload.cases.size(); ++c) {
      const WorkloadCase& wc = workload.cases[c];
      reference[c].reserve(wc.instances.size());
      for (const WorkloadInstance& inst : wc.instances) {
        reference[c].push_back(ExactSteinerForestWeight(
            wc.graph, inst.use_cr ? CrToIc(inst.cr) : inst.ic));
      }
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      SolveResult& r = results[i];
      r.reference_weight =
          reference[static_cast<std::size_t>(matrix.case_index[i])]
                   [static_cast<std::size_t>(matrix.instance_index[i])];
      if (r.reference_weight > 0 && r.reference_weight < kInfWeight) {
        r.approx_ratio = static_cast<double>(r.weight) /
                         static_cast<double>(r.reference_weight);
      } else if (r.reference_weight == 0 && r.weight == 0) {
        r.approx_ratio = 1.0;
      }
    }
  }

  std::ofstream file;
  if (!args.json_path.empty()) {
    file.open(args.json_path);
    if (!file) {
      std::fprintf(stderr, "dsf: cannot write %s\n", args.json_path.c_str());
      return 2;
    }
  }
  std::ostream& out = args.json_path.empty() ? std::cout : file;

  JsonWriter json(out);
  json.BeginObject();
  json.Key("scenario");
  json.String(args.scenario_path);
  json.Key("seed");
  json.UInt(spec.seed);
  json.Key("cases");
  json.BeginArray();
  for (const WorkloadCase& wc : workload.cases) {
    json.BeginObject();
    json.Key("name");
    json.String(wc.name);
    json.Key("source");
    json.String(wc.source);
    json.Key("n");
    json.Int(wc.graph.NumNodes());
    json.Key("m");
    json.Int(wc.graph.NumEdges());
    json.Key("total_weight");
    json.Int(static_cast<long long>(wc.graph.TotalWeight()));
    json.Key("instances");
    json.Int(static_cast<long long>(wc.instances.size()));
    json.EndObject();
  }
  json.EndArray();
  json.Key("solvers");
  json.BeginArray();
  for (const auto& name : solver_names) json.String(name);
  json.EndArray();
  json.Key("results");
  json.BeginArray();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadCase& wc =
        workload.cases[static_cast<std::size_t>(matrix.case_index[i])];
    const WorkloadInstance& inst =
        wc.instances[static_cast<std::size_t>(matrix.instance_index[i])];
    WriteResult(json, wc, inst, results[i]);
  }
  json.EndArray();
  json.Key("batch");
  json.BeginObject();
  json.Key("requests");
  json.Int(stats.requests);
  json.Key("threads");
  json.Int(engine.Threads());
  json.Key("infeasible");
  json.Int(stats.infeasible);
  json.Key("wall_ms");
  json.Double(stats.wall_ms);
  json.Key("instances_per_sec");
  json.Double(stats.instances_per_sec);
  json.Key("p50_ms");
  json.Double(stats.p50_ms);
  json.Key("p95_ms");
  json.Double(stats.p95_ms);
  json.EndObject();
  json.EndObject();
  out << "\n";
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "dsf: error writing JSON output%s%s\n",
                 args.json_path.empty() ? "" : " to ",
                 args.json_path.c_str());
    return 2;
  }

  if (!args.json_path.empty()) {
    std::printf("%-10s  %-18s %-14s %-5s %10s %8s %9s %8s\n", "solver",
                "case", "instance", "input", "weight", "ok", "rounds",
                "wall_ms");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const WorkloadCase& wc =
          workload.cases[static_cast<std::size_t>(matrix.case_index[i])];
      const WorkloadInstance& inst =
          wc.instances[static_cast<std::size_t>(matrix.instance_index[i])];
      std::printf("%-10s  %-18s %-14s %-5s %10lld %8s %9ld %8.2f\n",
                  r.solver.c_str(), wc.name.c_str(), inst.name.c_str(),
                  inst.use_cr ? "cr" : "ic",
                  static_cast<long long>(r.weight),
                  r.feasible ? "yes" : "NO", r.stats.rounds, r.wall_ms);
    }
    std::printf("batch: %d requests, %d threads, %.1f inst/s, p50 %.2f ms, "
                "p95 %.2f ms -> %s\n",
                stats.requests, engine.Threads(), stats.instances_per_sec,
                stats.p50_ms, stats.p95_ms, args.json_path.c_str());
  }
  return stats.infeasible == 0 ? 0 : 1;
}

void PrintServeUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dsf serve [options]\n"
               "\n"
               "options:\n"
               "  --port N          listen port (default 0 = ephemeral;"
               " the bound port is\n"
               "                    printed as a JSON line on stdout)\n"
               "  --host A          bind address (default 127.0.0.1)\n"
               "  --threads N       batch engine executors (0 = hardware"
               " concurrency)\n"
               "  --cache N         result cache capacity in entries"
               " (default 4096; 0 disables)\n"
               "  --cache-shards N  cache shards (default 8)\n"
               "  --batch-max N     max units per dispatched batch"
               " (default 32)\n"
               "  --max-pending N   admission bound on queued + running"
               " units (default 1024)\n"
               "  --deadline-ms N   cap every unit's anytime deadline at N"
               " wall ms\n"
               "                    (default 0 = uncapped); requests asking"
               " for less keep\n"
               "                    their tighter deadline\n"
               "  --send-timeout-ms N  per-connection send deadline"
               " (default 30000; 0 disables)\n"
               "  --recv-timeout-ms N  per-connection receive deadline"
               " (default 300000; 0 disables)\n"
               "  --fault SPEC      chaos hook: exit_after=N, drop_every=N,\n"
               "                    truncate_every=N, delay_every=N,"
               " delay_ms=D\n"
               "                    (DSF_FAULT env is the fallback)\n"
               "\n"
               "SIGINT / SIGTERM drain the queue and exit 0.\n");
}

void PrintClientUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dsf client (--scenario FILE | --generate SPEC"
               " [--instance SPEC]\n"
               "                   | --stats | --ping) [options]\n"
               "\n"
               "options:\n"
               "  --port N          server port (required)\n"
               "  --host A          server address (default 127.0.0.1)\n"
               "  --scenario FILE   send FILE's workload text inline"
               " (imports excluded)\n"
               "  --generate SPEC   named generator spec, e.g. 'grid rows=4"
               " cols=4'\n"
               "  --instance SPEC   sampler spec for --generate, e.g."
               " 'random-ic k=2 tpc=2'\n"
               "  --stats           request the /stats counters\n"
               "  --ping            liveness probe\n"
               "  --revise KEY      op=revise against the cached base result\n"
               "                    named by KEY (32-hex \"key\" of a prior"
               " response);\n"
               "                    the solve framing describes the BASE"
               " instance\n"
               "  --delta SPEC      edits for --revise: add=U-V rm=U-V"
               " (CR pairs),\n"
               "                    addt=V:L rmt=V (IC terminals);"
               " comma/space\n"
               "                    separated, default empty\n"
               "  --revise-mode M   warm (default) | exact-match\n"
               "  --solvers LIST    comma-separated solver specs (default"
               " all; portfolio(...)\n"
               "                    specs allowed)\n"
               "  --seed N          spec-level seed override (>= 1)\n"
               "  --epsilon X       Algorithm 2 epsilon\n"
               "  --repetitions N   dist-rand repetitions\n"
               "  --deadline-ms N   per-unit anytime deadline forwarded to"
               " the server\n"
               "  --no-prune        skip minimal-subforest pruning\n"
               "  --repeat N        send the same solve N times (duplicate"
               " burst)\n"
               "  --retries N       connect retries (default 0; exponential"
               " backoff)\n"
               "  --backoff-ms N    base retry backoff (default 50)\n"
               "  --json FILE       also write the response lines to FILE\n");
}

int RunServeCommand(int argc, char** argv) {
  ServeOptions options;
  std::string error;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        error = "missing value for " + flag;
        return nullptr;
      }
      return argv[++i];
    };
    long long value = 0;
    if (flag == "--help" || flag == "-h") {
      PrintServeUsage(stdout);
      return 0;
    } else if (flag == "--port") {
      const char* v = need_value();
      if (!v || !ParseI64("--port", v, value, error)) break;
      if (value < 0 || value > 65535) {
        error = "--port must be in [0, 65535]";
        break;
      }
      options.port = static_cast<int>(value);
    } else if (flag == "--host") {
      const char* v = need_value();
      if (!v) break;
      options.host = v;
    } else if (flag == "--threads") {
      const char* v = need_value();
      if (!v || !ParseI64("--threads", v, value, error)) break;
      if (value < 0 || value > 1024) {
        error = "--threads must be in [0, 1024]";
        break;
      }
      options.threads = static_cast<int>(value);
    } else if (flag == "--cache") {
      const char* v = need_value();
      if (!v || !ParseI64("--cache", v, value, error)) break;
      if (value < 0 || value > (1LL << 30)) {
        error = "--cache must be in [0, 2^30]";
        break;
      }
      options.cache_entries = static_cast<std::size_t>(value);
    } else if (flag == "--cache-shards") {
      const char* v = need_value();
      if (!v || !ParseI64("--cache-shards", v, value, error)) break;
      if (value < 1 || value > 64) {
        error = "--cache-shards must be in [1, 64]";
        break;
      }
      options.cache_shards = static_cast<int>(value);
    } else if (flag == "--batch-max") {
      const char* v = need_value();
      if (!v || !ParseI64("--batch-max", v, value, error)) break;
      if (value < 1 || value > 4096) {
        error = "--batch-max must be in [1, 4096]";
        break;
      }
      options.batch_max = static_cast<int>(value);
    } else if (flag == "--max-pending") {
      const char* v = need_value();
      if (!v || !ParseI64("--max-pending", v, value, error)) break;
      if (value < 1 || value > (1 << 24)) {
        error = "--max-pending must be in [1, 2^24]";
        break;
      }
      options.max_pending = static_cast<int>(value);
    } else if (flag == "--deadline-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--deadline-ms", v, value, error)) break;
      if (value < 0 || value > 86'400'000) {
        error = "--deadline-ms must be in [0, 86400000]";
        break;
      }
      options.deadline_ms = static_cast<int>(value);
    } else if (flag == "--send-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--send-timeout-ms", v, value, error)) break;
      if (value < 0 || value > 86'400'000) {
        error = "--send-timeout-ms must be in [0, 86400000]";
        break;
      }
      options.send_timeout_ms = static_cast<int>(value);
    } else if (flag == "--recv-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--recv-timeout-ms", v, value, error)) break;
      if (value < 0 || value > 86'400'000) {
        error = "--recv-timeout-ms must be in [0, 86400000]";
        break;
      }
      options.recv_timeout_ms = static_cast<int>(value);
    } else if (flag == "--fault") {
      const char* v = need_value();
      if (!v) break;
      options.fault_spec = v;
    } else {
      error = "unknown flag: " + flag;
      break;
    }
  }
  if (!error.empty()) {
    std::fprintf(stderr, "dsf serve: %s\n", error.c_str());
    PrintServeUsage(stderr);
    return 2;
  }
  // Env fallback: chaos harnesses that cannot edit the command line (CI
  // matrix entries, wrapper scripts) arm the fault hook via DSF_FAULT.
  if (options.fault_spec.empty()) {
    if (const char* env = std::getenv("DSF_FAULT")) options.fault_spec = env;
  }
  return RunServe(options);
}

int RunClientCommand(int argc, char** argv) {
  ClientArgs args;
  bool port_set = false;
  std::string error;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        error = "missing value for " + flag;
        return nullptr;
      }
      return argv[++i];
    };
    long long value = 0;
    if (flag == "--help" || flag == "-h") {
      PrintClientUsage(stdout);
      return 0;
    } else if (flag == "--port") {
      const char* v = need_value();
      if (!v || !ParseI64("--port", v, value, error)) break;
      if (value < 1 || value > 65535) {
        error = "--port must be in [1, 65535]";
        break;
      }
      args.port = static_cast<int>(value);
      port_set = true;
    } else if (flag == "--host") {
      const char* v = need_value();
      if (!v) break;
      args.host = v;
    } else if (flag == "--scenario") {
      const char* v = need_value();
      if (!v) break;
      args.scenario_path = v;
    } else if (flag == "--generate") {
      const char* v = need_value();
      if (!v) break;
      args.generate = v;
    } else if (flag == "--instance") {
      const char* v = need_value();
      if (!v) break;
      args.instance = v;
    } else if (flag == "--stats") {
      args.stats = true;
    } else if (flag == "--ping") {
      args.ping = true;
    } else if (flag == "--revise") {
      const char* v = need_value();
      if (!v) break;
      args.revise_base = v;
    } else if (flag == "--delta") {
      const char* v = need_value();
      if (!v) break;
      args.delta = v;
    } else if (flag == "--revise-mode") {
      const char* v = need_value();
      if (!v) break;
      if (std::strcmp(v, "warm") != 0 && std::strcmp(v, "exact-match") != 0) {
        error = "--revise-mode must be warm or exact-match";
        break;
      }
      args.revise_mode = v;
    } else if (flag == "--solvers") {
      const char* v = need_value();
      if (!v) break;
      if (std::strcmp(v, "all") != 0) args.solvers = v;
    } else if (flag == "--seed") {
      const char* v = need_value();
      if (!v || !ParseU64("--seed", v, args.seed, error)) break;
      if (args.seed == 0) {
        error = "--seed must be >= 1";
        break;
      }
      args.seed_set = true;
    } else if (flag == "--epsilon") {
      const char* v = need_value();
      Real eps = 0.0L;
      if (!v || !ParseReal("--epsilon", v, eps, error)) break;
      if (eps < 0.0L) {
        error = "--epsilon must be >= 0";
        break;
      }
      args.epsilon = static_cast<double>(eps);
    } else if (flag == "--repetitions") {
      const char* v = need_value();
      if (!v || !ParseI64("--repetitions", v, value, error)) break;
      if (value < 1 || value > 1 << 20) {
        error = "--repetitions must be in [1, 1048576]";
        break;
      }
      args.repetitions = static_cast<int>(value);
    } else if (flag == "--deadline-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--deadline-ms", v, value, error)) break;
      if (value < 0 || value > 86'400'000) {
        error = "--deadline-ms must be in [0, 86400000]";
        break;
      }
      args.deadline_ms = static_cast<int>(value);
    } else if (flag == "--no-prune") {
      args.prune = false;
    } else if (flag == "--repeat") {
      const char* v = need_value();
      if (!v || !ParseI64("--repeat", v, value, error)) break;
      if (value < 1 || value > 1 << 20) {
        error = "--repeat must be in [1, 1048576]";
        break;
      }
      args.repeat = static_cast<int>(value);
    } else if (flag == "--retries") {
      const char* v = need_value();
      if (!v || !ParseI64("--retries", v, value, error)) break;
      if (value < 0 || value > 100) {
        error = "--retries must be in [0, 100]";
        break;
      }
      args.retry.retries = static_cast<int>(value);
    } else if (flag == "--backoff-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--backoff-ms", v, value, error)) break;
      if (value < 0 || value > 60'000) {
        error = "--backoff-ms must be in [0, 60000]";
        break;
      }
      args.retry.backoff_ms = static_cast<int>(value);
    } else if (flag == "--json") {
      const char* v = need_value();
      if (!v) break;
      args.json_path = v;
    } else {
      error = "unknown flag: " + flag;
      break;
    }
  }
  if (error.empty()) {
    const int modes = (!args.scenario_path.empty() ? 1 : 0) +
                      (!args.generate.empty() ? 1 : 0) +
                      (args.stats ? 1 : 0) + (args.ping ? 1 : 0);
    if (modes != 1) {
      error = "need exactly one of --scenario, --generate, --stats, --ping";
    } else if (!port_set) {
      error = "--port is required";
    } else if (!args.instance.empty() && args.generate.empty()) {
      error = "--instance needs --generate";
    } else if (!args.revise_base.empty() && (args.stats || args.ping)) {
      error = "--revise needs a solve framing (--scenario or --generate)";
    } else if ((!args.delta.empty() || !args.revise_mode.empty()) &&
               args.revise_base.empty()) {
      error = "--delta / --revise-mode need --revise";
    }
  }
  if (!error.empty()) {
    std::fprintf(stderr, "dsf client: %s\n", error.c_str());
    PrintClientUsage(stderr);
    return 2;
  }
  return RunClient(args);
}

void PrintRouterUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dsf shard-router --backend HOST:PORT"
               " [--backend HOST:PORT ...] [options]\n"
               "\n"
               "options:\n"
               "  --backend H:P        one backend `dsf serve` endpoint"
               " (repeatable; >= 1)\n"
               "  --port N             listen port (default 0 = ephemeral)\n"
               "  --host A             bind address (default 127.0.0.1)\n"
               "  --retries N          attempts beyond the first per request"
               " (default 3)\n"
               "  --backoff-ms N       base retry backoff (default 50;"
               " exponential + jitter)\n"
               "  --ring-replicas N    virtual nodes per backend"
               " (default 64)\n"
               "  --probe-interval-ms N  health-probe cadence (default 250;"
               " 0 disables)\n"
               "  --probe-timeout-ms N   per-probe deadline (default 1000)\n"
               "  --connect-timeout-ms N upstream connect deadline"
               " (default 1000)\n"
               "  --upstream-timeout-ms N  upstream response deadline"
               " (default 60000)\n"
               "  --failures-to-down N   failures before a backend is marked"
               " down (default 1)\n"
               "  --successes-to-up N    consecutive probe successes to"
               " re-admit (default 2)\n"
               "  --hot-cache N        router-local response cache entries"
               " (default 512;\n"
               "                       0 disables)\n"
               "  --send-timeout-ms N  downstream send deadline"
               " (default 30000)\n"
               "  --recv-timeout-ms N  downstream receive deadline"
               " (default 300000)\n"
               "  --fault SPEC         chaos hook on the router's own"
               " listener\n"
               "\n"
               "SIGINT / SIGTERM drain in-flight requests and exit 0.\n");
}

int RunShardRouterCommand(int argc, char** argv) {
  RouterOptions options;
  std::string error;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        error = "missing value for " + flag;
        return nullptr;
      }
      return argv[++i];
    };
    long long value = 0;
    if (flag == "--help" || flag == "-h") {
      PrintRouterUsage(stdout);
      return 0;
    } else if (flag == "--backend") {
      const char* v = need_value();
      if (!v) break;
      try {
        options.backends.push_back(ParseBackendSpec(v));
      } catch (const std::exception& e) {
        error = e.what();
        break;
      }
    } else if (flag == "--port") {
      const char* v = need_value();
      if (!v || !ParseI64("--port", v, value, error)) break;
      if (value < 0 || value > 65535) {
        error = "--port must be in [0, 65535]";
        break;
      }
      options.port = static_cast<int>(value);
    } else if (flag == "--host") {
      const char* v = need_value();
      if (!v) break;
      options.host = v;
    } else if (flag == "--retries") {
      const char* v = need_value();
      if (!v || !ParseI64("--retries", v, value, error)) break;
      if (value < 0 || value > 100) {
        error = "--retries must be in [0, 100]";
        break;
      }
      options.retry.retries = static_cast<int>(value);
    } else if (flag == "--backoff-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--backoff-ms", v, value, error)) break;
      if (value < 0 || value > 60'000) {
        error = "--backoff-ms must be in [0, 60000]";
        break;
      }
      options.retry.backoff_ms = static_cast<int>(value);
    } else if (flag == "--ring-replicas") {
      const char* v = need_value();
      if (!v || !ParseI64("--ring-replicas", v, value, error)) break;
      if (value < 1 || value > 4096) {
        error = "--ring-replicas must be in [1, 4096]";
        break;
      }
      options.ring_replicas = static_cast<int>(value);
    } else if (flag == "--probe-interval-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--probe-interval-ms", v, value, error)) break;
      if (value < 0 || value > 3'600'000) {
        error = "--probe-interval-ms must be in [0, 3600000]";
        break;
      }
      options.probe_interval_ms = static_cast<int>(value);
    } else if (flag == "--probe-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--probe-timeout-ms", v, value, error)) break;
      if (value < 1 || value > 600'000) {
        error = "--probe-timeout-ms must be in [1, 600000]";
        break;
      }
      options.probe_timeout_ms = static_cast<int>(value);
    } else if (flag == "--connect-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--connect-timeout-ms", v, value, error)) break;
      if (value < 1 || value > 600'000) {
        error = "--connect-timeout-ms must be in [1, 600000]";
        break;
      }
      options.connect_timeout_ms = static_cast<int>(value);
    } else if (flag == "--upstream-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--upstream-timeout-ms", v, value, error)) break;
      if (value < 1 || value > 86'400'000) {
        error = "--upstream-timeout-ms must be in [1, 86400000]";
        break;
      }
      options.upstream_recv_timeout_ms = static_cast<int>(value);
    } else if (flag == "--failures-to-down") {
      const char* v = need_value();
      if (!v || !ParseI64("--failures-to-down", v, value, error)) break;
      if (value < 1 || value > 1000) {
        error = "--failures-to-down must be in [1, 1000]";
        break;
      }
      options.health.failures_to_down = static_cast<int>(value);
    } else if (flag == "--successes-to-up") {
      const char* v = need_value();
      if (!v || !ParseI64("--successes-to-up", v, value, error)) break;
      if (value < 1 || value > 1000) {
        error = "--successes-to-up must be in [1, 1000]";
        break;
      }
      options.health.successes_to_up = static_cast<int>(value);
    } else if (flag == "--hot-cache") {
      const char* v = need_value();
      if (!v || !ParseI64("--hot-cache", v, value, error)) break;
      if (value < 0 || value > (1LL << 30)) {
        error = "--hot-cache must be in [0, 2^30]";
        break;
      }
      options.hot_cache_entries = static_cast<std::size_t>(value);
    } else if (flag == "--send-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--send-timeout-ms", v, value, error)) break;
      if (value < 0 || value > 86'400'000) {
        error = "--send-timeout-ms must be in [0, 86400000]";
        break;
      }
      options.send_timeout_ms = static_cast<int>(value);
    } else if (flag == "--recv-timeout-ms") {
      const char* v = need_value();
      if (!v || !ParseI64("--recv-timeout-ms", v, value, error)) break;
      if (value < 0 || value > 86'400'000) {
        error = "--recv-timeout-ms must be in [0, 86400000]";
        break;
      }
      options.recv_timeout_ms = static_cast<int>(value);
    } else if (flag == "--fault") {
      const char* v = need_value();
      if (!v) break;
      options.fault_spec = v;
    } else {
      error = "unknown flag: " + flag;
      break;
    }
  }
  if (error.empty() && options.backends.empty()) {
    error = "at least one --backend HOST:PORT is required";
  }
  if (!error.empty()) {
    std::fprintf(stderr, "dsf shard-router: %s\n", error.c_str());
    PrintRouterUsage(stderr);
    return 2;
  }
  if (options.fault_spec.empty()) {
    if (const char* env = std::getenv("DSF_FAULT")) options.fault_spec = env;
  }
  return RunShardRouter(options);
}

void PrintSuiteUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dsf suite [--manifest FILE] [--record | --check |"
               " --emit-corpus DIR]\n"
               "                 [options]\n"
               "\n"
               "Runs the benchmark wall: every instance of the manifest"
               " against every\n"
               "solver of its roster, measuring cost, ratio vs the dual"
               " lower bound,\n"
               "rounds, messages, and p50/p95 latency per cell.\n"
               "\n"
               "options:\n"
               "  --manifest FILE     suite manifest (default\n"
               "                      scenarios/suite/manifest.dsf-suite)\n"
               "  --baseline FILE     committed baseline path (default\n"
               "                      bench/SUITE_baseline.json)\n"
               "  --record            write the fresh run to --baseline"
               " (regenerates the\n"
               "                      committed wall; do this deliberately)\n"
               "  --check             diff the fresh run against --baseline:"
               " quality exact,\n"
               "                      p95 banded; exit 1 with a regression"
               " table on drift\n"
               "  --out FILE          also write the fresh run's JSON to"
               " FILE\n"
               "  --threads N         batch executors (0 = hardware"
               " concurrency)\n"
               "  --emit-corpus DIR   write the deterministic instance corpus"
               " into DIR\n"
               "                      and exit (CI diffs it against"
               " scenarios/suite/)\n"
               "  --inject-cost N     test hook: add N to every cell's cost"
               " after measuring\n"
               "  --inject-p95-ms X   test hook: add X ms to every cell's"
               " p95\n"
               "\n"
               "With neither --record nor --check, the fresh baseline JSON"
               " goes to stdout\n"
               "(or --out).\n");
}

int RunSuiteCommand(int argc, char** argv) {
  std::string manifest_path = "scenarios/suite/manifest.dsf-suite";
  std::string baseline_path = "bench/SUITE_baseline.json";
  std::string out_path;
  std::string corpus_dir;
  bool record = false;
  bool check = false;
  SuiteRunOptions run_options;
  std::string error;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        error = "missing value for " + flag;
        return nullptr;
      }
      return argv[++i];
    };
    long long value = 0;
    if (flag == "--help" || flag == "-h") {
      PrintSuiteUsage(stdout);
      return 0;
    } else if (flag == "--manifest") {
      const char* v = need_value();
      if (!v) break;
      manifest_path = v;
    } else if (flag == "--baseline") {
      const char* v = need_value();
      if (!v) break;
      baseline_path = v;
    } else if (flag == "--out") {
      const char* v = need_value();
      if (!v) break;
      out_path = v;
    } else if (flag == "--record") {
      record = true;
    } else if (flag == "--check") {
      check = true;
    } else if (flag == "--emit-corpus") {
      const char* v = need_value();
      if (!v) break;
      corpus_dir = v;
    } else if (flag == "--threads") {
      const char* v = need_value();
      if (!v || !ParseI64("--threads", v, value, error)) break;
      if (value < 0 || value > 1024) {
        error = "--threads must be in [0, 1024]";
        break;
      }
      run_options.threads = static_cast<int>(value);
    } else if (flag == "--inject-cost") {
      const char* v = need_value();
      if (!v || !ParseI64("--inject-cost", v, value, error)) break;
      run_options.inject_cost_delta = value;
    } else if (flag == "--inject-p95-ms") {
      const char* v = need_value();
      Real ms = 0.0L;
      if (!v || !ParseReal("--inject-p95-ms", v, ms, error)) break;
      if (ms < 0.0L) {
        error = "--inject-p95-ms must be >= 0";
        break;
      }
      run_options.inject_p95_ms = static_cast<double>(ms);
    } else {
      error = "unknown flag: " + flag;
      break;
    }
  }
  if (error.empty() && record && check) {
    error = "--record and --check are mutually exclusive";
  }
  if (!error.empty()) {
    std::fprintf(stderr, "dsf suite: %s\n", error.c_str());
    PrintSuiteUsage(stderr);
    return 2;
  }

  if (!corpus_dir.empty()) {
    EmitSuiteCorpus(corpus_dir);
    std::printf("dsf suite: wrote %zu corpus files to %s\n",
                SuiteCorpusFiles().size(), corpus_dir.c_str());
    return 0;
  }

  const SuiteManifest manifest = LoadSuiteManifest(manifest_path);
  SuiteBaseline fresh = RunSuite(manifest, run_options);
  fresh.manifest = manifest_path;
  fresh.manifest_digest = SuiteDigest(manifest);
  for (const std::string& path : fresh.skipped_sources) {
    std::fprintf(stderr,
                 "dsf suite: note: optional source '%s' absent, skipped "
                 "(scripts/fetch_steinlib.sh fetches real sets)\n",
                 path.c_str());
  }

  if (!out_path.empty()) SaveSuiteBaseline(out_path, fresh);

  if (record) {
    SaveSuiteBaseline(baseline_path, fresh);
    std::printf("dsf suite: recorded %zu cells (%zu solvers x %zu instances)"
                " to %s [digest %s]\n",
                fresh.cells.size(), fresh.solvers.size(),
                fresh.solvers.empty()
                    ? static_cast<std::size_t>(0)
                    : fresh.cells.size() / fresh.solvers.size(),
                baseline_path.c_str(), fresh.manifest_digest.c_str());
    return 0;
  }
  if (check) {
    const SuiteBaseline committed = LoadSuiteBaseline(baseline_path);
    const SuiteCheckResult result = CompareBaselines(committed, fresh);
    std::fputs(result.report.c_str(), result.ok ? stdout : stderr);
    return result.ok ? 0 : 1;
  }

  // Plain run: emit the fresh baseline document.
  if (out_path.empty()) {
    std::fputs(SuiteBaselineToJson(fresh).c_str(), stdout);
  }
  return 0;
}

void PrintGenerators() {
  std::printf("generators (graph sources for 'generate <family> k=v ...'):\n");
  for (const auto name : GeneratorRegistry::Names()) {
    const GeneratorFamily& f = GeneratorRegistry::Get(name);
    std::printf("  %-14s %s\n", std::string(name).c_str(),
                std::string(f.description).c_str());
    for (const ParamSpec& p : f.params) {
      std::printf("      %s\n", DescribeParam(p).c_str());
    }
  }
  std::printf("\nsamplers (instances for 'sample <sampler> <name> k=v "
              "...'):\n");
  for (const auto name : SamplerRegistry::Names()) {
    const InstanceSampler& s = SamplerRegistry::Get(name);
    std::printf("  %-14s %s\n", std::string(name).c_str(),
                std::string(s.description).c_str());
    for (const ParamSpec& p : s.params) {
      std::printf("      %s\n", DescribeParam(p).c_str());
    }
  }
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    try {
      return dsf::RunServeCommand(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dsf serve: %s\n", e.what());
      return 2;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "shard-router") == 0) {
    try {
      return dsf::RunShardRouterCommand(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dsf shard-router: %s\n", e.what());
      return 2;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0) {
    try {
      return dsf::RunClientCommand(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dsf client: %s\n", e.what());
      return 2;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "suite") == 0) {
    try {
      return dsf::RunSuiteCommand(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dsf suite: %s\n", e.what());
      return 2;
    }
  }
  dsf::CliArgs args;
  std::string error;
  if (!dsf::ParseArgs(argc, argv, args, error)) {
    std::fprintf(stderr, "dsf: %s\n", error.c_str());
    dsf::PrintUsage(stderr);
    return 2;
  }
  if (args.help) {
    dsf::PrintUsage(stdout);
    return 0;
  }
  if (args.list_solvers) {
    for (const auto name : dsf::SolverRegistry::Names()) {
      const dsf::Solver& s = dsf::SolverRegistry::Get(name);
      std::printf("%-10s %s %s\n", std::string(name).c_str(),
                  s.Distributed() ? "[dist]" : "[cent]",
                  std::string(s.Description()).c_str());
    }
    return 0;
  }
  if (args.list_generators) {
    dsf::PrintGenerators();
    return 0;
  }
  if (args.scenario_path.empty()) {
    std::fprintf(stderr, "dsf: --scenario is required\n");
    dsf::PrintUsage(stderr);
    return 2;
  }
  try {
    return dsf::RunCli(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsf: %s\n", e.what());
    return 2;
  }
}
