#include "cli/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace dsf {

namespace {

void WriteEscaped(std::ostream& out, std::string_view value) {
  out << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    DSF_CHECK_MSG(!opened_root_, "JSON document already complete");
    opened_root_ = true;
    return;
  }
  if (stack_.back() == '{') {
    DSF_CHECK_MSG(key_pending_, "object member needs Key() first");
    key_pending_ = false;
  } else {
    if (has_member_.back()) out_ << ',';
    has_member_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << '{';
  stack_.push_back('{');
  has_member_.push_back(false);
}

void JsonWriter::EndObject() {
  DSF_CHECK(!stack_.empty() && stack_.back() == '{' && !key_pending_);
  stack_.pop_back();
  has_member_.pop_back();
  out_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << '[';
  stack_.push_back('[');
  has_member_.push_back(false);
}

void JsonWriter::EndArray() {
  DSF_CHECK(!stack_.empty() && stack_.back() == '[');
  stack_.pop_back();
  has_member_.pop_back();
  out_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  DSF_CHECK(!stack_.empty() && stack_.back() == '{' && !key_pending_);
  if (has_member_.back()) out_ << ',';
  has_member_.back() = true;
  WriteEscaped(out_, key);
  out_ << ':';
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  WriteEscaped(out_, value);
}

void JsonWriter::Int(long long value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out_ << buf;
}

void JsonWriter::DoubleExact(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out_ << buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
}

// --- parsing -----------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return std::string(fallback);
  if (!v->IsString()) {
    throw std::runtime_error("field '" + std::string(key) +
                             "' must be a string");
  }
  return v->string;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->IsNumber()) {
    throw std::runtime_error("field '" + std::string(key) +
                             "' must be a number");
  }
  return v->number;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->IsBool()) {
    throw std::runtime_error("field '" + std::string(key) +
                             "' must be a boolean");
  }
  return v->boolean;
}

namespace {

constexpr int kMaxJsonDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue(0);
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxJsonDepth) Fail("nesting too deep");
    SkipWs();
    JsonValue v;
    switch (Peek()) {
      case '{': {
        v.kind = JsonValue::Kind::kObject;
        ++pos_;
        SkipWs();
        if (Peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          SkipWs();
          std::string key = ParseString();
          if (v.Find(key) != nullptr) Fail("duplicate key '" + key + "'");
          SkipWs();
          Expect(':');
          v.object.emplace_back(std::move(key), ParseValue(depth + 1));
          SkipWs();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          Expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = JsonValue::Kind::kArray;
        ++pos_;
        SkipWs();
        if (Peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.array.push_back(ParseValue(depth + 1));
          SkipWs();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          Expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = ParseString();
        return v;
      case 't':
        if (!Consume("true")) Fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!Consume("false")) Fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!Consume("null")) Fail("invalid literal");
        return v;
      default:
        v.kind = JsonValue::Kind::kNumber;
        v.number = ParseNumber(v.string);
        return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              Fail("invalid \\u escape");
            }
            const char h = text_[pos_++];
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // UTF-8 encode the BMP code point; surrogate pairs are not needed
          // by the protocol (specs are ASCII) but pass through as two
          // 3-byte sequences rather than failing.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: Fail("unknown escape");
      }
    }
  }

  double ParseNumber(std::string& literal) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      Fail("invalid number '" + token + "'");
    }
    literal = token;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace dsf
