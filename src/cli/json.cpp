#include "cli/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace dsf {

namespace {

void WriteEscaped(std::ostream& out, std::string_view value) {
  out << '"';
  for (const char c : value) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    DSF_CHECK_MSG(!opened_root_, "JSON document already complete");
    opened_root_ = true;
    return;
  }
  if (stack_.back() == '{') {
    DSF_CHECK_MSG(key_pending_, "object member needs Key() first");
    key_pending_ = false;
  } else {
    if (has_member_.back()) out_ << ',';
    has_member_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << '{';
  stack_.push_back('{');
  has_member_.push_back(false);
}

void JsonWriter::EndObject() {
  DSF_CHECK(!stack_.empty() && stack_.back() == '{' && !key_pending_);
  stack_.pop_back();
  has_member_.pop_back();
  out_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << '[';
  stack_.push_back('[');
  has_member_.push_back(false);
}

void JsonWriter::EndArray() {
  DSF_CHECK(!stack_.empty() && stack_.back() == '[');
  stack_.pop_back();
  has_member_.pop_back();
  out_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  DSF_CHECK(!stack_.empty() && stack_.back() == '{' && !key_pending_);
  if (has_member_.back()) out_ << ',';
  has_member_.back() = true;
  WriteEscaped(out_, key);
  out_ << ':';
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  WriteEscaped(out_, value);
}

void JsonWriter::Int(long long value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out_ << buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
}

}  // namespace dsf
