// Minimal JSON emitter for the `dsf` CLI (no third-party dependency). The
// writer tracks the container stack and comma state, so callers only name
// keys and values; strings are escaped per RFC 8259, non-finite doubles are
// emitted as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace dsf {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Containers. The root container is opened by the first Begin* call.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Introduces the next member of the enclosing object; follow with a value
  // or a Begin* call.
  void Key(std::string_view key);

  // Values (array elements or the value of the pending Key).
  void String(std::string_view value);
  void Int(long long value);
  void UInt(std::uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  // True once the root container has closed (the document is complete).
  [[nodiscard]] bool Done() const noexcept {
    return opened_root_ && stack_.empty();
  }

 private:
  void BeforeValue();

  std::ostream& out_;
  // One frame per open container: whether it already holds a member.
  std::vector<bool> has_member_;
  std::vector<char> stack_;  // '{' or '['
  bool key_pending_ = false;
  bool opened_root_ = false;
};

}  // namespace dsf
