// Minimal JSON emitter and parser (no third-party dependency). The writer
// tracks the container stack and comma state, so callers only name keys and
// values; strings are escaped per RFC 8259, non-finite doubles are emitted
// as null (JSON has no NaN/Inf). The parser materializes a document tree
// (`JsonValue`) for the wire protocol of the service layer (serve/) and for
// tests/benches that inspect responses.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsf {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Containers. The root container is opened by the first Begin* call.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Introduces the next member of the enclosing object; follow with a value
  // or a Begin* call.
  void Key(std::string_view key);

  // Values (array elements or the value of the pending Key).
  void String(std::string_view value);
  void Int(long long value);
  void UInt(std::uint64_t value);
  void Double(double value);
  // Shortest round-trippable representation (%.17g): for values that are
  // inputs to further computation (wire-protocol options), where Double's
  // display precision (%.6g) would change the result downstream.
  void DoubleExact(double value);
  void Bool(bool value);
  void Null();

  // True once the root container has closed (the document is complete).
  [[nodiscard]] bool Done() const noexcept {
    return opened_root_ && stack_.empty();
  }

 private:
  void BeforeValue();

  std::ostream& out_;
  // One frame per open container: whether it already holds a member.
  std::vector<bool> has_member_;
  std::vector<char> stack_;  // '{' or '['
  bool key_pending_ = false;
  bool opened_root_ = false;
};

// --- parsing -----------------------------------------------------------------

// One node of a parsed document. Object member order is preserved (vector of
// pairs, not a map): duplicate keys are rejected at parse time, so lookup by
// key is unambiguous.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  // kString: the decoded text. kNumber: the raw literal as written — exact
  // 64-bit integers survive even when `number` (a double) cannot represent
  // them (seeds above 2^53 must not silently collapse onto neighbours).
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool IsNull() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool IsBool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool IsNumber() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool IsString() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool IsArray() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool IsObject() const noexcept {
    return kind == Kind::kObject;
  }

  // Member lookup on objects; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* Find(std::string_view key) const noexcept;

  // Typed convenience accessors used by the wire protocol: return the
  // fallback when the member is absent; throw std::runtime_error (naming
  // the key) when present with the wrong type.
  [[nodiscard]] std::string GetString(std::string_view key,
                                      std::string_view fallback) const;
  [[nodiscard]] double GetNumber(std::string_view key, double fallback) const;
  [[nodiscard]] bool GetBool(std::string_view key, bool fallback) const;
};

// Parses exactly one JSON document; trailing non-whitespace, duplicate
// object keys, and malformed input throw std::runtime_error with a byte
// offset. Depth is capped (64) so deeply nested garbage cannot overflow the
// stack.
JsonValue ParseJson(std::string_view text);

}  // namespace dsf
