#include "lowerbounds/disjointness.hpp"

#include <algorithm>

#include "dist/det_moat.hpp"
#include "dist/randomized.hpp"
#include "steiner/validate.hpp"

namespace dsf {

SdInstance MakeSdInstance(int universe, bool disjoint, SplitMix64& rng) {
  DSF_CHECK(universe >= 2);
  SdInstance sd;
  sd.disjoint = disjoint;
  // Partition [1..m] into two halves; A draws from the first, B from the
  // second, so they are disjoint by construction; a NO instance additionally
  // shares one random element.
  std::vector<int> elems(static_cast<std::size_t>(universe));
  for (int i = 0; i < universe; ++i) elems[static_cast<std::size_t>(i)] = i + 1;
  for (int i = universe - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(i + 1)));
    std::swap(elems[static_cast<std::size_t>(i)], elems[static_cast<std::size_t>(j)]);
  }
  const int half = universe / 2;
  for (int i = 0; i < half; ++i) sd.a.push_back(elems[static_cast<std::size_t>(i)]);
  for (int i = half; i < universe; ++i) {
    sd.b.push_back(elems[static_cast<std::size_t>(i)]);
  }
  if (!disjoint) {
    // Share exactly one element (|A ∩ B| = 1, the hard regime).
    sd.b.push_back(sd.a.front());
  }
  std::sort(sd.a.begin(), sd.a.end());
  std::sort(sd.b.begin(), sd.b.end());
  return sd;
}

SdOutcome RunCrGadgetWithDetAlgorithm(const SdInstance& sd, int universe,
                                      std::uint64_t seed) {
  // The deterministic algorithm guarantees factor 2 (+ε); ρ = 3 suffices.
  const CrGadget gadget = BuildCrGadget(sd.a, sd.b, universe, 3);
  const IcInstance ic = CrToIc(gadget.cr);
  DetMoatOptions opt;
  opt.metered_cut = gadget.cut;
  const auto res = RunDistributedMoat(gadget.graph, ic, opt, seed);
  DSF_CHECK(IsFeasible(gadget.graph, MakeMinimal(ic), res.forest));
  SdOutcome out;
  out.answered_disjoint = CrGadgetAnswersDisjoint(gadget, res.forest);
  out.correct = out.answered_disjoint == sd.disjoint;
  out.cut_bits = res.stats.cut_bits;
  out.cut_messages = res.stats.cut_messages;
  out.rounds = res.stats.rounds;
  out.solution_weight = gadget.graph.WeightOf(res.forest);
  return out;
}

SdOutcome RunIcGadgetWithDetAlgorithm(const SdInstance& sd, int universe,
                                      std::uint64_t seed) {
  const IcGadget gadget = BuildIcGadget(sd.a, sd.b, universe);
  DetMoatOptions opt;
  opt.metered_cut = gadget.cut;
  const auto res = RunDistributedMoat(gadget.graph, gadget.ic, opt, seed);
  DSF_CHECK(IsFeasible(gadget.graph, MakeMinimal(gadget.ic), res.forest));
  SdOutcome out;
  out.answered_disjoint = IcGadgetAnswersDisjoint(gadget, res.forest);
  out.correct = out.answered_disjoint == sd.disjoint;
  out.cut_bits = res.stats.cut_bits;
  out.cut_messages = res.stats.cut_messages;
  out.rounds = res.stats.rounds;
  out.solution_weight = gadget.graph.WeightOf(res.forest);
  return out;
}

SdOutcome RunIcGadgetWithRandAlgorithm(const SdInstance& sd, int universe,
                                       std::uint64_t seed) {
  const IcGadget gadget = BuildIcGadget(sd.a, sd.b, universe);
  RandomizedOptions opt;
  opt.metered_cut = gadget.cut;
  const auto res =
      RunRandomizedSteinerForest(gadget.graph, gadget.ic, opt, seed);
  SdOutcome out;
  out.answered_disjoint = IcGadgetAnswersDisjoint(gadget, res.forest);
  out.correct = out.answered_disjoint == sd.disjoint;
  out.cut_bits = res.stats.cut_bits;
  out.cut_messages = res.stats.cut_messages;
  out.rounds = res.stats.rounds;
  out.solution_weight = gadget.graph.WeightOf(res.forest);
  return out;
}

}  // namespace dsf
