// Set-Disjointness harness for the lower-bound experiments (Section 3).
//
// The lower bounds are proved by reduction *from* Set Disjointness; the
// empirical counterpart runs our algorithms on the reduction gadgets and
// checks (a) the algorithm's output determines the SD answer correctly and
// (b) the communication crossing the Alice/Bob cut grows linearly in the
// universe size — i.e., the instances really do force Ω(m) bits over an
// O(1)-capacity cut, which is exactly the Ω̃(t) / Ω̃(k) round bound.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "lowerbounds/gadgets.hpp"

namespace dsf {

struct SdInstance {
  std::vector<int> a;
  std::vector<int> b;
  bool disjoint = true;
};

// Random SD instance over [1..universe]: dense A and B; when `disjoint` is
// false they share exactly one element (the hard regime noted in the paper:
// |A|, |B| ∈ Θ(m), |A ∩ B| <= 1).
SdInstance MakeSdInstance(int universe, bool disjoint, SplitMix64& rng);

struct SdOutcome {
  bool answered_disjoint = false;
  bool correct = false;
  long cut_bits = 0;
  long cut_messages = 0;
  long rounds = 0;
  Weight solution_weight = 0;
};

// Runs the deterministic distributed algorithm on the Lemma 3.1 (DSF-CR)
// gadget; the CR -> IC transformation (Lemma 2.3) is applied centrally.
SdOutcome RunCrGadgetWithDetAlgorithm(const SdInstance& sd, int universe,
                                      std::uint64_t seed = 1);

// Runs the deterministic algorithm on the Lemma 3.3 (DSF-IC) gadget.
SdOutcome RunIcGadgetWithDetAlgorithm(const SdInstance& sd, int universe,
                                      std::uint64_t seed = 1);

// Runs the randomized algorithm on the Lemma 3.3 gadget.
SdOutcome RunIcGadgetWithRandAlgorithm(const SdInstance& sd, int universe,
                                       std::uint64_t seed = 1);

}  // namespace dsf
