// Instance-specific dual lower bound on OPT.
//
// Lemma C.4: the moat-growing dual Σ_i act_i µ_i accumulated by Algorithm 1
// is a lower bound on the weight of ANY feasible Steiner forest for the
// instance. Unlike the communication-complexity bounds in disjointness.*
// (which bound rounds of hypothetical protocols), this bounds the objective
// itself — which makes it the denominator of the suite's per-cell
// approximation ratio: cost / FixedToReal(DualLowerBound(...)) certifies an
// upper bound on how far each solver is from optimal without ever running
// the (exponential) exact solver.
#pragma once

#include "graph/graph.hpp"
#include "steiner/instance.hpp"
#include "steiner/moat.hpp"

namespace dsf {

// The Lemma C.4 dual for `ic` on `g`, in Fixed units. Deterministic —
// Algorithm 1's event schedule is exact fixed-point arithmetic, so the value
// is bit-stable across platforms and thread counts. Instances whose minimal
// reduction has no terminals (nothing to connect) have bound 0.
Fixed DualLowerBound(const Graph& g, const IcInstance& ic);

}  // namespace dsf
