#include "lowerbounds/gadgets.hpp"

#include <algorithm>
#include <set>

namespace dsf {

namespace {

void CheckSubset(const std::vector<int>& s, int universe) {
  for (const int x : s) {
    DSF_CHECK_MSG(x >= 1 && x <= universe, "element " << x << " outside [1.."
                                                      << universe << "]");
  }
}

}  // namespace

CrGadget BuildCrGadget(const std::vector<int>& a, const std::vector<int>& b,
                       int universe, Weight rho) {
  DSF_CHECK(universe >= 1);
  DSF_CHECK(rho >= 1);
  CheckSubset(a, universe);
  CheckSubset(b, universe);
  const int m = universe;
  // Node layout: a_-1 = 0, a_0 = 1, a_i = 1 + i (i in 1..m),
  //              b_-1 = m+2, b_0 = m+3, b_i = m+3+i.
  const NodeId a_minus = 0;
  const NodeId a_zero = 1;
  const auto a_at = [](int i) { return static_cast<NodeId>(1 + i); };
  const NodeId b_minus = static_cast<NodeId>(m + 2);
  const NodeId b_zero = static_cast<NodeId>(m + 3);
  const auto b_at = [m](int i) { return static_cast<NodeId>(m + 3 + i); };
  const int n = 2 * m + 4;

  const std::set<int> in_a(a.begin(), a.end());
  const std::set<int> in_b(b.begin(), b.end());

  CrGadget g;
  g.universe = m;
  Graph graph(n);
  for (int i = 1; i <= m; ++i) {
    graph.AddEdge(in_a.contains(i) ? a_zero : a_minus, a_at(i), 1);
    graph.AddEdge(in_b.contains(i) ? b_zero : b_minus, b_at(i), 1);
  }
  const Weight heavy_w = rho * (2 * m + 2) + 1;
  const EdgeId e_heavy1 = graph.AddEdge(a_zero, b_zero, heavy_w);
  const EdgeId e_heavy2 = graph.AddEdge(a_minus, b_minus, heavy_w);
  const EdgeId e_light1 = graph.AddEdge(a_zero, b_minus, 1);
  const EdgeId e_light2 = graph.AddEdge(a_minus, b_zero, 1);
  graph.Finalize();
  g.graph = std::move(graph);
  g.cut = {e_heavy1, e_heavy2, e_light1, e_light2};
  g.heavy = {e_heavy1, e_heavy2};

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const int i : a) pairs.push_back({a_at(i), b_at(i)});
  for (const int i : b) pairs.push_back({b_at(i), a_at(i)});
  // Chain Alice's demands together (and Bob's): these requests are local to
  // one side (no extra communication) and collapse the request graph to at
  // most two input components, matching Lemma 3.1's "no more than two input
  // components". The reduction is unaffected: in the disjoint case each
  // chained component is spanned by one light cluster; in the intersecting
  // case the two light clusters are still only joined by heavy edges.
  for (std::size_t i = 1; i < a.size(); ++i) {
    pairs.push_back({a_at(a[i - 1]), a_at(a[i])});
  }
  for (std::size_t i = 1; i < b.size(); ++i) {
    pairs.push_back({b_at(b[i - 1]), b_at(b[i])});
  }
  g.cr = MakeCrInstance(n, pairs);
  return g;
}

bool CrGadgetAnswersDisjoint(const CrGadget& gadget,
                             std::span<const EdgeId> forest) {
  for (const EdgeId e : forest) {
    if (std::find(gadget.heavy.begin(), gadget.heavy.end(), e) !=
        gadget.heavy.end()) {
      return false;  // heavy edge used => intersection nonempty
    }
  }
  return true;
}

IcGadget BuildIcGadget(const std::vector<int>& a, const std::vector<int>& b,
                       int universe) {
  DSF_CHECK(universe >= 1);
  CheckSubset(a, universe);
  CheckSubset(b, universe);
  const int m = universe;
  // a_0 = 0, a_i = i (1..m), b_0 = m+1, b_i = m+1+i.
  const NodeId a_zero = 0;
  const auto a_at = [](int i) { return static_cast<NodeId>(i); };
  const NodeId b_zero = static_cast<NodeId>(m + 1);
  const auto b_at = [m](int i) { return static_cast<NodeId>(m + 1 + i); };
  const int n = 2 * m + 2;

  IcGadget g;
  g.universe = m;
  Graph graph(n);
  for (int i = 1; i <= m; ++i) {
    graph.AddEdge(a_zero, a_at(i), 1);
    graph.AddEdge(b_zero, b_at(i), 1);
  }
  g.bridge = graph.AddEdge(a_zero, b_zero, 1);
  graph.Finalize();
  g.graph = std::move(graph);
  g.cut = {g.bridge};

  std::vector<std::pair<NodeId, Label>> labels;
  for (const int i : a) labels.push_back({a_at(i), static_cast<Label>(i)});
  for (const int i : b) labels.push_back({b_at(i), static_cast<Label>(i)});
  g.ic = MakeIcInstance(n, labels);
  return g;
}

bool IcGadgetAnswersDisjoint(const IcGadget& gadget,
                             std::span<const EdgeId> forest) {
  return std::find(forest.begin(), forest.end(), gadget.bridge) == forest.end();
}

PathGadget BuildPathGadget(int path_length, int stride) {
  DSF_CHECK(path_length >= 2);
  DSF_CHECK(stride >= 1);
  const int n_path = path_length + 1;
  const NodeId hub = static_cast<NodeId>(n_path);
  Graph graph(n_path + 1);
  for (int i = 0; i < path_length; ++i) {
    graph.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1);
  }
  const Weight hub_w = 2 * static_cast<Weight>(path_length);
  for (int i = 0; i < n_path; i += stride) {
    graph.AddEdge(hub, static_cast<NodeId>(i), hub_w);
  }
  // Ensure the last path node also reaches the hub (diameter control).
  if ((n_path - 1) % stride != 0) {
    graph.AddEdge(hub, static_cast<NodeId>(n_path - 1), hub_w);
  }
  graph.Finalize();

  PathGadget g;
  g.graph = std::move(graph);
  g.path_length = path_length;
  g.ic = MakeIcInstance(n_path + 1,
                        {{0, 1}, {static_cast<NodeId>(n_path - 1), 1}});
  return g;
}

}  // namespace dsf
