#include "lowerbounds/dual_bound.hpp"

namespace dsf {

Fixed DualLowerBound(const Graph& g, const IcInstance& ic) {
  const IcInstance minimal = MakeMinimal(ic);
  if (minimal.NumTerminals() == 0) return 0;
  return CentralizedMoatGrowing(g, minimal, MoatOptions{}).dual_sum;
}

}  // namespace dsf
