// Lower-bound gadget families (Section 3).
//
// Lemma 3.1 (DSF-CR, Ω(t/log n), D <= 4, k <= 2): Alice's star pair / Bob's
// star pair joined by four cross edges, two of them heavier than ρ times any
// feasible solution of a disjoint instance; a ρ-approximate solution uses a
// heavy edge iff A ∩ B ≠ ∅, so solving DSF-CR answers Set Disjointness and
// everything Alice and Bob exchange crosses the four-edge cut.
//
// Lemma 3.3 (DSF-IC, Ω(k/log n), unweighted, D = 3): two stars joined by one
// edge; element i in A (resp. B) labels leaf a_i (resp. b_i) with component
// i. The joining edge is in any feasible output iff A ∩ B ≠ ∅.
//
// Lemma 3.4 (Ω(s) for s ∈ O(√n), t = 2, k = 1): a weighted path between the
// two terminals plus a heavy low-diameter hub overlay, so D stays O(1) while
// every least-weight route still traverses the whole path.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "steiner/instance.hpp"

namespace dsf {

struct CrGadget {
  Graph graph;
  CrInstance cr;
  std::vector<EdgeId> cut;    // the four Alice/Bob cross edges
  std::vector<EdgeId> heavy;  // the two heavy cross edges
  int universe = 0;           // m: |[m]| of the Set-Disjointness instance
};

// Builds the Lemma 3.1 gadget for A, B ⊆ {1..universe}. `rho` is the
// approximation ratio the tested algorithm guarantees (heavy weight is
// rho * (2m + 2) + 1).
CrGadget BuildCrGadget(const std::vector<int>& a, const std::vector<int>& b,
                       int universe, Weight rho);

// True iff the forest answers "A and B are disjoint" (no heavy edge used).
bool CrGadgetAnswersDisjoint(const CrGadget& gadget,
                             std::span<const EdgeId> forest);

struct IcGadget {
  Graph graph;
  IcInstance ic;
  std::vector<EdgeId> cut;  // the single (a0, b0) edge
  EdgeId bridge = kNoEdge;
  int universe = 0;
};

// Builds the Lemma 3.3 gadget (all unit weights, diameter 3).
IcGadget BuildIcGadget(const std::vector<int>& a, const std::vector<int>& b,
                       int universe);

bool IcGadgetAnswersDisjoint(const IcGadget& gadget,
                             std::span<const EdgeId> forest);

struct PathGadget {
  Graph graph;
  IcInstance ic;  // t = 2 terminals (path endpoints), k = 1
  int path_length = 0;
};

// Builds the Lemma 3.4-flavored family: a unit-weight path of `path_length`
// edges between the two terminals, plus a hub joined to every `stride`-th
// path node with weight ~2*path_length (keeps D <= 4 without creating
// weighted shortcuts).
PathGadget BuildPathGadget(int path_length, int stride);

}  // namespace dsf
