#include "suite/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/random.hpp"
#include "graph/generators.hpp"
#include "workload/churn.hpp"

namespace dsf {

namespace {

// One B/C/D-lookalike: a connected sparse random graph with `terminals`
// distinct terminal nodes, rendered in strict SteinLib form (1-based ids,
// declared counts equal to line counts, EOF trailer) so the importer's
// hardening is exercised by real files, not synthetic streams.
struct StpShape {
  const char* name;
  int n;
  double p;
  int terminals;
  std::uint64_t seed;
};

// Sized like SteinLib's B (50 nodes), C, and D tiers but capped for CI:
// every committed instance runs through five solvers (including a CONGEST
// simulation) in the suite wall on every push.
constexpr StpShape kShapes[] = {
    {"b_like_01", 50, 0.08, 9, 1001},
    {"b_like_02", 50, 0.12, 9, 1002},
    {"c_like_01", 100, 0.05, 12, 1003},
    {"c_like_02", 100, 0.08, 12, 1004},
    {"d_like_01", 160, 0.03, 16, 1005},
    {"d_like_02", 160, 0.05, 16, 1006},
};

std::string RenderStp(const StpShape& shape) {
  SplitMix64 rng(shape.seed);
  const Graph g = MakeConnectedRandom(shape.n, shape.p, 1, 10, rng);

  // Distinct terminals, drawn after the graph so topology and terminal set
  // come from one stream; sorted because SteinLib files list them sorted.
  std::vector<NodeId> terminals;
  std::vector<char> used(static_cast<std::size_t>(shape.n), 0);
  while (static_cast<int>(terminals.size()) < shape.terminals) {
    const NodeId v = static_cast<NodeId>(
        rng.NextBelow(static_cast<std::uint64_t>(shape.n)));
    if (used[static_cast<std::size_t>(v)]) continue;
    used[static_cast<std::size_t>(v)] = 1;
    terminals.push_back(v);
  }
  std::sort(terminals.begin(), terminals.end());

  std::ostringstream os;
  os << "33D32945 STP File, STP Format Version 1.0\n";
  os << "\n";
  os << "SECTION Comment\n";
  os << "Name \"" << shape.name << "\"\n";
  os << "Creator \"dsf suite --emit-corpus (deterministic)\"\n";
  os << "Remark \"SteinLib-class lookalike; do not hand-edit\"\n";
  os << "END\n";
  os << "\n";
  os << "SECTION Graph\n";
  os << "Nodes " << g.NumNodes() << "\n";
  os << "Edges " << g.NumEdges() << "\n";
  for (const Edge& e : g.Edges()) {
    os << "E " << (e.u + 1) << " " << (e.v + 1) << " " << e.w << "\n";
  }
  os << "END\n";
  os << "\n";
  os << "SECTION Terminals\n";
  os << "Terminals " << terminals.size() << "\n";
  for (const NodeId v : terminals) os << "T " << (v + 1) << "\n";
  os << "END\n";
  os << "\n";
  os << "EOF\n";
  return os.str();
}

std::string RenderChurnTrace() {
  // Matches the er n=100 case in scenarios/suite/adversarial.dsf: 8
  // node-disjoint pairs over all 100 nodes, 6 steps of 2 retire/admit each.
  const ChurnTrace trace = SampleChurnTrace(100, 0, 8, 6, 2, 77);
  std::ostringstream os;
  WriteChurnTrace(os, trace);
  return os.str();
}

}  // namespace

std::vector<CorpusFile> SuiteCorpusFiles() {
  std::vector<CorpusFile> files;
  for (const StpShape& shape : kShapes) {
    files.push_back({std::string(shape.name) + ".stp", RenderStp(shape)});
  }
  files.push_back({"churn_base.trace", RenderChurnTrace()});
  return files;
}

void EmitSuiteCorpus(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const CorpusFile& file : SuiteCorpusFiles()) {
    const std::string path =
        (std::filesystem::path(dir) / file.name).string();
    std::ofstream out(path, std::ios::out | std::ios::binary);
    if (!out) throw std::runtime_error("cannot write corpus file: " + path);
    out << file.content;
    out.flush();
    if (!out) throw std::runtime_error("failed writing corpus file: " + path);
  }
}

}  // namespace dsf
