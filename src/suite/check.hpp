// Baseline comparison: the regression gate behind `dsf suite --check`.
//
// Tolerance policy (DESIGN.md §9): quality fields are compared exactly —
// the solvers are deterministic and fixed-point, so ANY drift in cost,
// feasibility, dual bound, rounds, or messages is a behavior change that
// must be acknowledged by regenerating the baseline. Timing fields are
// machine-dependent, so only a p95 that exceeds the committed p95 by more
// than the banded tolerance (committed * (1 + band) + floor, knobs stamped
// into the committed baseline) counts as a regression. A digest mismatch
// means the corpus itself changed; comparing cells across different corpora
// would be meaningless, so that fails fast with a "stale baseline" verdict.
#pragma once

#include <string>
#include <vector>

#include "suite/runner.hpp"

namespace dsf {

struct SuiteRegression {
  std::string cell;    // "solver / case / instance", or "<suite>" for
                       // structural failures (digest, cell-set mismatch)
  std::string metric;  // "cost", "p95_ms", "missing cell", ...
  std::string committed;
  std::string fresh;
};

struct SuiteCheckResult {
  bool ok = true;
  // Human-readable verdict: one line per regression plus a summary, or the
  // all-clear line. Always printable as-is.
  std::string report;
  std::vector<SuiteRegression> regressions;
};

SuiteCheckResult CompareBaselines(const SuiteBaseline& committed,
                                  const SuiteBaseline& fresh);

}  // namespace dsf
