#include "suite/runner.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/random.hpp"
#include "lowerbounds/dual_bound.hpp"
#include "solve/batch.hpp"
#include "steiner/moat.hpp"
#include "workload/spec.hpp"

namespace dsf {

namespace {

// One expanded source with provenance for error messages.
struct ExpandedSource {
  Workload workload;
  std::string path;  // as written in the manifest
};

}  // namespace

SuiteBaseline RunSuite(const SuiteManifest& manifest,
                       const SuiteRunOptions& options) {
  SuiteBaseline out;
  out.manifest = manifest.origin;
  out.seed = manifest.seed;
  out.timing_reps = manifest.timing_reps;
  out.latency_band = manifest.latency_band;
  out.latency_floor_ms = manifest.latency_floor_ms;
  out.solvers = manifest.solvers;

  // Expand every source. The workloads own the graphs the requests borrow,
  // so they must outlive the batch runs below.
  std::vector<ExpandedSource> sources;
  for (const SuiteSource& src : manifest.sources) {
    const std::string resolved = ResolveSuitePath(manifest, src);
    if (src.kind == SuiteSource::Kind::kOptionalStp) {
      std::ifstream probe(resolved);
      if (!probe) {
        out.skipped_sources.push_back(src.path);
        continue;
      }
    }
    ExpandedSource expanded;
    expanded.path = src.path;
    try {
      expanded.workload = LoadWorkload(resolved);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(manifest.origin + ":" +
                               std::to_string(src.line) + ": source '" +
                               src.path + "': " + e.what());
    }
    sources.push_back(std::move(expanded));
  }

  // Case names must be suite-unique: cells are keyed (solver, case,
  // instance), and a silent collision would make the baseline diff compare
  // unrelated measurements.
  std::set<std::string> case_names;
  for (const ExpandedSource& src : sources) {
    for (const WorkloadCase& wc : src.workload.cases) {
      if (!case_names.insert(wc.name).second) {
        throw std::runtime_error(
            manifest.origin + ": duplicate case name '" + wc.name +
            "' across suite sources; disambiguate with 'as <name>'");
      }
    }
  }

  // Flatten the matrix in baseline order (solver-major, then source /
  // case / instance declaration order) and derive the per-cell seeds. The
  // digest pins the manifest, the manifest pins this enumeration, so cell k
  // always replays seed DeriveSeed(suite seed, k).
  struct CellRef {
    const WorkloadCase* wc = nullptr;
    const WorkloadInstance* inst = nullptr;
  };
  std::vector<CellRef> refs;
  std::vector<SolveRequest> requests;
  for (const std::string& solver : manifest.solvers) {
    for (const ExpandedSource& src : sources) {
      for (const WorkloadCase& wc : src.workload.cases) {
        for (const WorkloadInstance& inst : wc.instances) {
          SolveRequest req;
          req.solver = solver;
          req.graph = &wc.graph;
          req.use_cr = inst.use_cr;
          if (inst.use_cr) {
            req.cr = inst.cr;
          } else {
            req.ic = inst.ic;
          }
          req.seed = DeriveSeed(manifest.seed, requests.size());
          requests.push_back(std::move(req));
          refs.push_back({&wc, &inst});
        }
      }
    }
  }

  // The dual bound is per (case, instance) — identical across solvers — so
  // compute it once for the first solver's stripe and reuse.
  const std::size_t stripe =
      manifest.solvers.empty() ? 0 : requests.size() / manifest.solvers.size();
  std::vector<Fixed> duals(stripe, 0);
  for (std::size_t i = 0; i < stripe; ++i) {
    const CellRef& ref = refs[i];
    const IcInstance ic =
        ref.inst->use_cr ? CrToIc(ref.inst->cr) : ref.inst->ic;
    duals[i] = DualLowerBound(ref.wc->graph, ic);
  }

  // master_seed stays 0: the explicit per-request seeds above must survive
  // into every repetition, or rep 2's cells would not replay rep 0's runs.
  BatchEngine engine(BatchOptions{options.threads, 0});
  std::vector<SolveResult> first;
  std::vector<std::vector<double>> wall_ms(requests.size());
  for (int rep = 0; rep < manifest.timing_reps; ++rep) {
    std::vector<SolveResult> results = engine.Run(requests);
    for (std::size_t i = 0; i < results.size(); ++i) {
      wall_ms[i].push_back(results[i].wall_ms);
    }
    if (rep == 0) {
      first = std::move(results);
    } else {
      // Cross-rep determinism is what licenses the exact quality diff; a
      // mismatch here means a solver broke its seed contract.
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].weight != first[i].weight ||
            results[i].forest != first[i].forest) {
          throw std::runtime_error(
              "suite: solver '" + requests[i].solver +
              "' is not deterministic across repetitions on case '" +
              refs[i].wc->name + "' instance '" + refs[i].inst->name + "'");
        }
      }
    }
  }

  out.cells.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const CellRef& ref = refs[i];
    const SolveResult& res = first[i];
    SuiteCell cell;
    cell.solver = requests[i].solver;
    cell.case_name = ref.wc->name;
    cell.instance = ref.inst->name;
    cell.source = ref.wc->source;
    cell.n = ref.wc->graph.NumNodes();
    cell.m = ref.wc->graph.NumEdges();
    cell.cost = res.weight + options.inject_cost_delta;
    cell.feasible = res.feasible;
    cell.dual_lb_fixed = duals[i % (stripe == 0 ? 1 : stripe)];
    if (cell.dual_lb_fixed > 0) {
      cell.ratio = static_cast<double>(cell.cost) /
                   static_cast<double>(FixedToReal(cell.dual_lb_fixed));
    }
    cell.rounds = res.stats.rounds;
    cell.messages = res.stats.messages;
    std::sort(wall_ms[i].begin(), wall_ms[i].end());
    cell.p50_ms = PercentileOfSorted(wall_ms[i], 0.5);
    cell.p95_ms = PercentileOfSorted(wall_ms[i], 0.95) + options.inject_p95_ms;
    out.cells.push_back(std::move(cell));
  }
  return out;
}

}  // namespace dsf
