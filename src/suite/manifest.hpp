// Suite manifests: the benchmark wall's instance-source list.
//
// `scenarios/suite/manifest.dsf-suite` names everything one `dsf suite` run
// measures: which instance sources to expand, which solvers to run them
// through, and the knobs of the latency tolerance policy. Line-oriented
// text; `#` starts a comment; blank lines are ignored:
//
//   seed <N>               # suite master seed, >= 1 (default 1); per-cell
//                          #   solver seeds derive from it
//   solver <spec>          # one roster entry: a registry name or a
//                          #   parameterized spec (repeat per solver)
//   timing-reps <N>        # timed repetitions of the matrix (default 3);
//                          #   p50/p95 are taken across the reps
//   latency-band <X>       # p95 regression tolerance: fresh p95 may exceed
//                          #   the committed p95 by the factor (1 + X) ...
//   latency-floor-ms <X>   # ... plus this absolute floor (absorbs CI noise
//                          #   on sub-millisecond cells)
//   stp <path>             # SteinLib instance (terminals become the
//                          #   single "terminals" instance)
//   optional-stp <path>    # like stp, but an absent file is skipped and
//                          #   recorded, not an error (real SteinLib sets
//                          #   live behind scripts/fetch_steinlib.sh)
//   spec <path>            # a full .dsf workload spec (generators,
//                          #   samplers, churn replays, sweeps)
//
// Paths resolve relative to the manifest file. `SuiteDigest` fingerprints
// the manifest AND the content of every referenced file, so `--check` can
// tell "the corpus changed, regenerate the baseline" apart from "a solver
// regressed".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsf {

struct SuiteSource {
  enum class Kind { kStp, kOptionalStp, kSpec };
  Kind kind = Kind::kStp;
  std::string path;  // as written; resolved against SuiteManifest::base_dir
  int line = 0;
};

struct SuiteManifest {
  std::string origin;    // for error messages
  std::string base_dir;  // directory source paths resolve against
  std::uint64_t seed = 1;
  std::vector<std::string> solvers;
  int timing_reps = 3;
  double latency_band = 3.0;
  double latency_floor_ms = 50.0;
  std::vector<SuiteSource> sources;
};

// Rejects malformed input with `origin:line` errors (unknown directives,
// invalid solver specs, duplicate solvers/paths, out-of-range knobs, empty
// roster or source list).
SuiteManifest ParseSuiteManifest(std::istream& in, const std::string& origin);

// Reads and parses `path` (sets base_dir to its directory). Throws
// std::runtime_error when unreadable.
SuiteManifest LoadSuiteManifest(const std::string& path);

// `source.path` joined onto the manifest's base_dir (absolute paths pass
// through).
std::string ResolveSuitePath(const SuiteManifest& manifest,
                             const SuiteSource& source);

// Hex fingerprint of the manifest's semantic content: seed, knobs, roster,
// and per source its kind, path, and the bytes of the resolved file (absent
// optional files hash as a distinguished marker). Any corpus edit — a new
// source line, a regenerated .stp, a fetched optional set — changes the
// digest, which is what lets `--check` fail a stale baseline loudly instead
// of diffing cells across different corpora.
std::string SuiteDigest(const SuiteManifest& manifest);

}  // namespace dsf
