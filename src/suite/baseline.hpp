// Canonical baseline serialization for the suite wall.
//
// `bench/SUITE_baseline.json` is a committed artifact that gets diffed —
// by `dsf suite --check` and by humans reading version control — so the
// encoding is canonical: fixed key order, quality fields segregated from
// timing fields (a quality diff is a bug, a timing diff is a machine), and
// every double emitted in round-trippable %.17g form. Write → read → write
// is byte-identical, which is what makes the committed file a fixed point
// of `--record` on an unchanged tree.
#pragma once

#include <iosfwd>
#include <string>

#include "suite/runner.hpp"

namespace dsf {

// Bumped when the cell schema changes; readers reject other versions.
inline constexpr int kSuiteBaselineVersion = 1;

void WriteSuiteBaseline(std::ostream& out, const SuiteBaseline& baseline);
// The document as a string (the canonical bytes `--record` commits).
std::string SuiteBaselineToJson(const SuiteBaseline& baseline);

// Strict readers: throw std::runtime_error (mentioning `origin`) on version
// mismatches, missing fields, or type errors. Integer fields are recovered
// from the raw JSON literals, not the double approximation, so 64-bit
// costs/duals survive exactly.
SuiteBaseline ParseSuiteBaseline(const std::string& text,
                                 const std::string& origin);
SuiteBaseline LoadSuiteBaseline(const std::string& path);
void SaveSuiteBaseline(const std::string& path, const SuiteBaseline& baseline);

}  // namespace dsf
