// Suite runner: the manifest's instance x solver matrix on the BatchEngine.
//
// One run measures every (instance, solver) cell twice over:
//   * quality — cost, feasibility, the Lemma C.4 dual lower bound and the
//     cost/dual ratio, simulator rounds and messages. All of these are
//     bit-stable (fixed-point arithmetic, seeded solvers, deterministic
//     simulator), so the baseline diff can demand exact equality.
//   * timing — p50/p95 wall milliseconds across `timing_reps` repetitions
//     of the whole matrix. Timing is machine-dependent and only ever
//     compared within the banded tolerance policy.
// Per-cell seeds derive from the suite seed and the cell's position, NOT
// from the BatchEngine's master-seed knob: every repetition must replay the
// identical seed per cell or the reps would not be comparable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "suite/manifest.hpp"

namespace dsf {

// One (instance, solver) measurement. `cost` and friends are stored in the
// widest integer form so the JSON round-trip is exact.
struct SuiteCell {
  std::string solver;
  std::string case_name;
  std::string instance;
  std::string source;  // e.g. "import stp b_like_01.stp", "generate er"
  long long n = 0;     // case topology size (context, compared exactly)
  long long m = 0;
  // Quality (exact comparison):
  long long cost = 0;
  bool feasible = false;
  long long dual_lb_fixed = 0;  // Lemma C.4 dual, Fixed units (2^-12)
  double ratio = 0.0;           // cost / FixedToReal(dual); 0 when dual == 0
  long long rounds = 0;
  long long messages = 0;
  // Timing (banded comparison):
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

struct SuiteBaseline {
  std::string manifest;  // manifest path as given on the command line
  std::string manifest_digest;
  std::uint64_t seed = 1;
  int timing_reps = 3;
  double latency_band = 3.0;
  double latency_floor_ms = 50.0;
  std::vector<std::string> solvers;
  // Optional sources whose files were absent this run (not fetched).
  std::vector<std::string> skipped_sources;
  std::vector<SuiteCell> cells;
};

struct SuiteRunOptions {
  int threads = 1;  // BatchEngine executors
  // Regression-injection hooks for tests and the CI fail-on-inject proof:
  // added to every cell's cost / p95 after measurement, so `--check` must
  // flag them against an honest committed baseline.
  long long inject_cost_delta = 0;
  double inject_p95_ms = 0.0;
};

// Expands every source, runs the full matrix `timing_reps` times, and
// returns the populated baseline. Throws std::runtime_error on unreadable
// required sources, expansion failures, and duplicate (case, instance)
// names across sources.
SuiteBaseline RunSuite(const SuiteManifest& manifest,
                       const SuiteRunOptions& options = {});

}  // namespace dsf
