#include "suite/baseline.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cli/json.hpp"

namespace dsf {

namespace {

[[noreturn]] void Fail(const std::string& origin, const std::string& what) {
  throw std::runtime_error(origin + ": " + what);
}

const JsonValue& Need(const JsonValue& obj, const char* key,
                      const std::string& origin) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) Fail(origin, std::string("missing field '") + key + "'");
  return *v;
}

// Integers come back from the raw literal, not the double: a 64-bit cost
// above 2^53 must not collapse onto a neighbour through the double detour.
long long NeedInt(const JsonValue& obj, const char* key,
                  const std::string& origin) {
  const JsonValue& v = Need(obj, key, origin);
  if (!v.IsNumber()) Fail(origin, std::string("'") + key + "' must be a number");
  char* end = nullptr;
  const long long value = std::strtoll(v.string.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    Fail(origin, std::string("'") + key + "' must be an integer");
  }
  return value;
}

std::uint64_t NeedU64(const JsonValue& obj, const char* key,
                      const std::string& origin) {
  const JsonValue& v = Need(obj, key, origin);
  if (!v.IsNumber()) Fail(origin, std::string("'") + key + "' must be a number");
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(v.string.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    Fail(origin, std::string("'") + key + "' must be a non-negative integer");
  }
  return value;
}

double NeedDouble(const JsonValue& obj, const char* key,
                  const std::string& origin) {
  const JsonValue& v = Need(obj, key, origin);
  if (!v.IsNumber()) Fail(origin, std::string("'") + key + "' must be a number");
  return v.number;
}

bool NeedBool(const JsonValue& obj, const char* key,
              const std::string& origin) {
  const JsonValue& v = Need(obj, key, origin);
  if (!v.IsBool()) Fail(origin, std::string("'") + key + "' must be a bool");
  return v.boolean;
}

std::string NeedString(const JsonValue& obj, const char* key,
                       const std::string& origin) {
  const JsonValue& v = Need(obj, key, origin);
  if (!v.IsString()) {
    Fail(origin, std::string("'") + key + "' must be a string");
  }
  return v.string;
}

std::vector<std::string> NeedStringArray(const JsonValue& obj, const char* key,
                                         const std::string& origin) {
  const JsonValue& v = Need(obj, key, origin);
  if (!v.IsArray()) Fail(origin, std::string("'") + key + "' must be an array");
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const JsonValue& item : v.array) {
    if (!item.IsString()) {
      Fail(origin, std::string("'") + key + "' must hold strings");
    }
    out.push_back(item.string);
  }
  return out;
}

}  // namespace

void WriteSuiteBaseline(std::ostream& out, const SuiteBaseline& baseline) {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("dsf_suite_version");
  w.Int(kSuiteBaselineVersion);

  w.Key("context");
  w.BeginObject();
  w.Key("manifest");
  w.String(baseline.manifest);
  w.Key("manifest_digest");
  w.String(baseline.manifest_digest);
  w.Key("seed");
  w.UInt(baseline.seed);
  w.Key("timing_reps");
  w.Int(baseline.timing_reps);
  w.Key("latency_band");
  w.DoubleExact(baseline.latency_band);
  w.Key("latency_floor_ms");
  w.DoubleExact(baseline.latency_floor_ms);
  w.Key("solvers");
  w.BeginArray();
  for (const std::string& solver : baseline.solvers) w.String(solver);
  w.EndArray();
  w.Key("instances");
  w.Int(baseline.solvers.empty()
            ? 0
            : static_cast<long long>(baseline.cells.size() /
                                     baseline.solvers.size()));
  w.Key("skipped_sources");
  w.BeginArray();
  for (const std::string& path : baseline.skipped_sources) w.String(path);
  w.EndArray();
  w.EndObject();

  w.Key("cells");
  w.BeginArray();
  for (const SuiteCell& cell : baseline.cells) {
    w.BeginObject();
    w.Key("solver");
    w.String(cell.solver);
    w.Key("case");
    w.String(cell.case_name);
    w.Key("instance");
    w.String(cell.instance);
    w.Key("source");
    w.String(cell.source);
    w.Key("n");
    w.Int(cell.n);
    w.Key("m");
    w.Int(cell.m);
    w.Key("quality");
    w.BeginObject();
    w.Key("cost");
    w.Int(cell.cost);
    w.Key("feasible");
    w.Bool(cell.feasible);
    w.Key("dual_lb_fixed");
    w.Int(cell.dual_lb_fixed);
    w.Key("ratio");
    w.DoubleExact(cell.ratio);
    w.Key("rounds");
    w.Int(cell.rounds);
    w.Key("messages");
    w.Int(cell.messages);
    w.EndObject();
    w.Key("timing");
    w.BeginObject();
    w.Key("p50_ms");
    w.DoubleExact(cell.p50_ms);
    w.Key("p95_ms");
    w.DoubleExact(cell.p95_ms);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
}

std::string SuiteBaselineToJson(const SuiteBaseline& baseline) {
  std::ostringstream os;
  WriteSuiteBaseline(os, baseline);
  return os.str();
}

SuiteBaseline ParseSuiteBaseline(const std::string& text,
                                 const std::string& origin) {
  JsonValue doc;
  try {
    doc = ParseJson(text);
  } catch (const std::runtime_error& e) {
    Fail(origin, e.what());
  }
  if (!doc.IsObject()) Fail(origin, "baseline must be a JSON object");
  const long long version = NeedInt(doc, "dsf_suite_version", origin);
  if (version != kSuiteBaselineVersion) {
    Fail(origin, "unsupported dsf_suite_version " + std::to_string(version) +
                     " (expected " + std::to_string(kSuiteBaselineVersion) +
                     ")");
  }

  SuiteBaseline out;
  const JsonValue& ctx = Need(doc, "context", origin);
  if (!ctx.IsObject()) Fail(origin, "'context' must be an object");
  out.manifest = NeedString(ctx, "manifest", origin);
  out.manifest_digest = NeedString(ctx, "manifest_digest", origin);
  out.seed = NeedU64(ctx, "seed", origin);
  out.timing_reps = static_cast<int>(NeedInt(ctx, "timing_reps", origin));
  out.latency_band = NeedDouble(ctx, "latency_band", origin);
  out.latency_floor_ms = NeedDouble(ctx, "latency_floor_ms", origin);
  out.solvers = NeedStringArray(ctx, "solvers", origin);
  out.skipped_sources = NeedStringArray(ctx, "skipped_sources", origin);

  const JsonValue& cells = Need(doc, "cells", origin);
  if (!cells.IsArray()) Fail(origin, "'cells' must be an array");
  out.cells.reserve(cells.array.size());
  for (const JsonValue& item : cells.array) {
    if (!item.IsObject()) Fail(origin, "each cell must be an object");
    SuiteCell cell;
    cell.solver = NeedString(item, "solver", origin);
    cell.case_name = NeedString(item, "case", origin);
    cell.instance = NeedString(item, "instance", origin);
    cell.source = NeedString(item, "source", origin);
    cell.n = NeedInt(item, "n", origin);
    cell.m = NeedInt(item, "m", origin);
    const JsonValue& quality = Need(item, "quality", origin);
    if (!quality.IsObject()) Fail(origin, "'quality' must be an object");
    cell.cost = NeedInt(quality, "cost", origin);
    cell.feasible = NeedBool(quality, "feasible", origin);
    cell.dual_lb_fixed = NeedInt(quality, "dual_lb_fixed", origin);
    cell.ratio = NeedDouble(quality, "ratio", origin);
    cell.rounds = NeedInt(quality, "rounds", origin);
    cell.messages = NeedInt(quality, "messages", origin);
    const JsonValue& timing = Need(item, "timing", origin);
    if (!timing.IsObject()) Fail(origin, "'timing' must be an object");
    cell.p50_ms = NeedDouble(timing, "p50_ms", origin);
    cell.p95_ms = NeedDouble(timing, "p95_ms", origin);
    out.cells.push_back(std::move(cell));
  }
  return out;
}

SuiteBaseline LoadSuiteBaseline(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) throw std::runtime_error("cannot read suite baseline: " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return ParseSuiteBaseline(content.str(), path);
}

void SaveSuiteBaseline(const std::string& path, const SuiteBaseline& baseline) {
  std::ofstream out(path, std::ios::out | std::ios::binary);
  if (!out) throw std::runtime_error("cannot write suite baseline: " + path);
  WriteSuiteBaseline(out, baseline);
  out.flush();
  if (!out) throw std::runtime_error("failed writing suite baseline: " + path);
}

}  // namespace dsf
