// The checked-in instance corpus, generated deterministically.
//
// SteinLib's B/C/D classes are sparse random graphs at increasing scale
// with small terminal sets; the corpus emits structural lookalikes (same
// shape, sized for CI budgets) in SteinLib's own .stp format, so the suite
// exercises the real importer path end-to-end, plus the churn trace the
// manifest's replay instances consume. Everything is a pure function of
// hard-coded seeds: `dsf suite --emit-corpus <dir>` reproduces the
// committed files byte-for-byte, which CI uses to detect hand-edits that
// would silently diverge from the generator.
#pragma once

#include <string>
#include <vector>

namespace dsf {

struct CorpusFile {
  std::string name;     // file name, e.g. "b_like_01.stp"
  std::string content;  // exact bytes
};

// The full corpus in deterministic order: six B/C/D-class .stp lookalikes
// and the churn replay trace.
std::vector<CorpusFile> SuiteCorpusFiles();

// Writes every corpus file into `dir` (created if needed). Throws
// std::runtime_error on I/O failure.
void EmitSuiteCorpus(const std::string& dir);

}  // namespace dsf
