#include "suite/manifest.hpp"

#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/text.hpp"
#include "solve/solver_spec.hpp"

namespace dsf {

namespace {

[[noreturn]] void Fail(const std::string& origin, int line,
                       const std::string& what) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << what;
  throw std::runtime_error(os.str());
}

}  // namespace

SuiteManifest ParseSuiteManifest(std::istream& in, const std::string& origin) {
  SuiteManifest manifest;
  manifest.origin = origin;
  bool seed_seen = false;
  bool reps_seen = false;
  bool band_seen = false;
  bool floor_seen = false;

  std::string raw;
  int line = 0;
  while (ReadLine(in, raw)) {
    ++line;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream fields(raw);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line

    const auto want_long = [&](const char* what) -> long long {
      long long value = 0;
      if (!(fields >> value)) {
        Fail(origin, line, std::string("expected ") + what + " after '" +
                               directive + "'");
      }
      return value;
    };
    const auto want_real = [&](const char* what) -> double {
      double value = 0;
      if (!(fields >> value)) {
        Fail(origin, line, std::string("expected ") + what + " after '" +
                               directive + "'");
      }
      return value;
    };
    const auto want_word = [&](const char* what) -> std::string {
      std::string value;
      if (!(fields >> value)) {
        Fail(origin, line, std::string("expected ") + what + " after '" +
                               directive + "'");
      }
      return value;
    };
    const auto no_trailing = [&] {
      std::string trailing;
      if (fields >> trailing) {
        Fail(origin, line, "trailing tokens after '" + directive + "'");
      }
    };
    const auto add_source = [&](SuiteSource::Kind kind) {
      SuiteSource src;
      src.kind = kind;
      src.path = want_word("file path");
      src.line = line;
      no_trailing();
      for (const SuiteSource& other : manifest.sources) {
        if (other.path == src.path) {
          Fail(origin, line, "duplicate source path '" + src.path + "'");
        }
      }
      manifest.sources.push_back(std::move(src));
    };

    if (directive == "seed") {
      if (seed_seen) Fail(origin, line, "duplicate 'seed' directive");
      const long long value = want_long("seed value");
      if (value < 1) Fail(origin, line, "seed must be >= 1");
      no_trailing();
      manifest.seed = static_cast<std::uint64_t>(value);
      seed_seen = true;
    } else if (directive == "solver") {
      const std::string spec = want_word("solver spec");
      no_trailing();
      std::string why;
      if (!IsValidSolverSpec(spec, &why)) Fail(origin, line, why);
      for (const std::string& other : manifest.solvers) {
        if (other == spec) {
          Fail(origin, line, "duplicate solver '" + spec + "'");
        }
      }
      manifest.solvers.push_back(spec);
    } else if (directive == "timing-reps") {
      if (reps_seen) Fail(origin, line, "duplicate 'timing-reps' directive");
      const long long value = want_long("repetition count");
      if (value < 1 || value > 100) {
        Fail(origin, line, "timing-reps must be in [1, 100]");
      }
      no_trailing();
      manifest.timing_reps = static_cast<int>(value);
      reps_seen = true;
    } else if (directive == "latency-band") {
      if (band_seen) Fail(origin, line, "duplicate 'latency-band' directive");
      const double value = want_real("band factor");
      if (!(value >= 0.0) || value > 1000.0) {
        Fail(origin, line, "latency-band must be in [0, 1000]");
      }
      no_trailing();
      manifest.latency_band = value;
      band_seen = true;
    } else if (directive == "latency-floor-ms") {
      if (floor_seen) {
        Fail(origin, line, "duplicate 'latency-floor-ms' directive");
      }
      const double value = want_real("floor in ms");
      if (!(value >= 0.0) || value > 1e9) {
        Fail(origin, line, "latency-floor-ms must be in [0, 1e9]");
      }
      no_trailing();
      manifest.latency_floor_ms = value;
      floor_seen = true;
    } else if (directive == "stp") {
      add_source(SuiteSource::Kind::kStp);
    } else if (directive == "optional-stp") {
      add_source(SuiteSource::Kind::kOptionalStp);
    } else if (directive == "spec") {
      add_source(SuiteSource::Kind::kSpec);
    } else {
      Fail(origin, line, "unknown directive '" + directive + "'");
    }
  }

  if (manifest.solvers.empty()) {
    Fail(origin, line, "a suite manifest needs at least one 'solver' line");
  }
  if (manifest.sources.empty()) {
    Fail(origin, line, "a suite manifest needs at least one source line");
  }
  return manifest;
}

SuiteManifest LoadSuiteManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read suite manifest: " + path);
  SuiteManifest manifest = ParseSuiteManifest(in, path);
  manifest.base_dir = std::filesystem::path(path).parent_path().string();
  return manifest;
}

std::string ResolveSuitePath(const SuiteManifest& manifest,
                             const SuiteSource& source) {
  const std::filesystem::path p(source.path);
  if (p.is_absolute() || manifest.base_dir.empty()) return source.path;
  return (std::filesystem::path(manifest.base_dir) / p).string();
}

std::string SuiteDigest(const SuiteManifest& manifest) {
  Fnv1a h;
  h.Bytes("dsf-suite-digest-v1");
  h.U64(manifest.seed);
  h.I64(manifest.timing_reps);
  h.U64(std::bit_cast<std::uint64_t>(manifest.latency_band));
  h.U64(std::bit_cast<std::uint64_t>(manifest.latency_floor_ms));
  h.I64(static_cast<std::int64_t>(manifest.solvers.size()));
  for (const std::string& solver : manifest.solvers) {
    h.Bytes(solver).Byte(0);
  }
  h.I64(static_cast<std::int64_t>(manifest.sources.size()));
  for (const SuiteSource& src : manifest.sources) {
    h.Byte(static_cast<std::uint8_t>(src.kind));
    h.Bytes(src.path).Byte(0);
    std::ifstream in(ResolveSuitePath(manifest, src),
                     std::ios::in | std::ios::binary);
    if (!in) {
      // Only tolerable for optional sources; the runner rejects missing
      // required files before any digest is compared, so hashing a marker
      // here keeps the digest total without duplicating that error path.
      h.Bytes("<absent>");
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    h.I64(static_cast<std::int64_t>(text.size()));
    h.Bytes(text);
  }

  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << h.Digest();
  return os.str();
}

}  // namespace dsf
