#include "suite/check.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace dsf {

namespace {

std::string CellKey(const SuiteCell& cell) {
  return cell.solver + " / " + cell.case_name + " / " + cell.instance;
}

std::string FormatMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", ms);
  return buf;
}

std::string FormatRatio(double r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", r);
  return buf;
}

}  // namespace

SuiteCheckResult CompareBaselines(const SuiteBaseline& committed,
                                  const SuiteBaseline& fresh) {
  SuiteCheckResult result;
  auto add = [&](const std::string& cell, const std::string& metric,
                 std::string was, std::string now) {
    result.regressions.push_back(
        {cell, metric, std::move(was), std::move(now)});
  };

  // A corpus change invalidates every cell comparison at once; report it
  // alone so the verdict says "regenerate", not "120 regressions".
  if (committed.manifest_digest != fresh.manifest_digest) {
    add("<suite>", "manifest_digest", committed.manifest_digest,
        fresh.manifest_digest);
    result.ok = false;
    std::ostringstream os;
    os << "suite --check: STALE BASELINE\n"
       << "  the manifest or a file it references changed since the "
          "baseline was recorded\n"
       << "  committed digest: " << committed.manifest_digest << "\n"
       << "  fresh digest:     " << fresh.manifest_digest << "\n"
       << "  if the corpus change is intentional, regenerate with: "
          "dsf suite --record\n";
    result.report = os.str();
    return result;
  }

  std::map<std::string, const SuiteCell*> fresh_cells;
  for (const SuiteCell& cell : fresh.cells) fresh_cells[CellKey(cell)] = &cell;
  std::map<std::string, const SuiteCell*> committed_cells;
  for (const SuiteCell& cell : committed.cells) {
    committed_cells[CellKey(cell)] = &cell;
  }
  for (const auto& [key, cell] : fresh_cells) {
    if (committed_cells.find(key) == committed_cells.end()) {
      add(key, "extra cell", "<absent>", "present");
    }
  }

  const double band = committed.latency_band;
  const double floor_ms = committed.latency_floor_ms;
  for (const SuiteCell& base : committed.cells) {
    const std::string key = CellKey(base);
    const auto it = fresh_cells.find(key);
    if (it == fresh_cells.end()) {
      add(key, "missing cell", "present", "<absent>");
      continue;
    }
    const SuiteCell& now = *it->second;
    const auto exact = [&](const char* metric, long long was,
                           long long is) {
      if (was != is) add(key, metric, std::to_string(was), std::to_string(is));
    };
    exact("n", base.n, now.n);
    exact("m", base.m, now.m);
    exact("cost", base.cost, now.cost);
    if (base.feasible != now.feasible) {
      add(key, "feasible", base.feasible ? "true" : "false",
          now.feasible ? "true" : "false");
    }
    exact("dual_lb_fixed", base.dual_lb_fixed, now.dual_lb_fixed);
    if (base.ratio != now.ratio) {
      add(key, "ratio", FormatRatio(base.ratio), FormatRatio(now.ratio));
    }
    exact("rounds", base.rounds, now.rounds);
    exact("messages", base.messages, now.messages);
    // Timing: only a p95 beyond the committed band is a regression. Faster
    // is never flagged — committing a faster baseline is a deliberate act.
    const double limit = base.p95_ms * (1.0 + band) + floor_ms;
    if (now.p95_ms > limit) {
      add(key, "p95_ms",
          FormatMs(base.p95_ms) + " (limit " + FormatMs(limit) + ")",
          FormatMs(now.p95_ms));
    }
  }

  result.ok = result.regressions.empty();
  std::ostringstream os;
  if (result.ok) {
    os << "suite --check: OK (" << committed.cells.size()
       << " cells match the committed baseline; p95 within " << band
       << "x band + " << floor_ms << "ms floor)\n";
  } else {
    os << "suite --check: " << result.regressions.size()
       << " regression(s) across " << committed.cells.size() << " cells\n";
    // Column widths for an aligned, human-readable table.
    std::size_t w_cell = 4;
    std::size_t w_metric = 6;
    std::size_t w_was = 9;
    for (const SuiteRegression& r : result.regressions) {
      w_cell = std::max(w_cell, r.cell.size());
      w_metric = std::max(w_metric, r.metric.size());
      w_was = std::max(w_was, r.committed.size());
    }
    const auto pad = [](const std::string& s, std::size_t width) {
      return s + std::string(width - s.size(), ' ');
    };
    os << "  " << pad("cell", w_cell) << "  " << pad("metric", w_metric)
       << "  " << pad("committed", w_was) << "  fresh\n";
    for (const SuiteRegression& r : result.regressions) {
      os << "  " << pad(r.cell, w_cell) << "  " << pad(r.metric, w_metric)
         << "  " << pad(r.committed, w_was) << "  " << r.fresh << "\n";
    }
    os << "  quality fields compare exactly; regenerate intentionally with: "
          "dsf suite --record\n";
  }
  result.report = os.str();
  return result;
}

}  // namespace dsf
