#include "steiner/exact.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "steiner/mst.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

TEST(ExactSteinerTreeTest, TwoTerminalsIsShortestPath) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(15, 0.25, 1, 20, rng);
    const std::vector<NodeId> terms{0, 14};
    const auto d = Dijkstra(g, 0);
    EXPECT_EQ(ExactSteinerTreeWeight(g, terms), d.dist[14]) << seed;
  }
}

TEST(ExactSteinerTreeTest, SingleOrNoTerminalIsZero) {
  const Graph g = MakePath(4);
  EXPECT_EQ(ExactSteinerTreeWeight(g, std::vector<NodeId>{}), 0);
  EXPECT_EQ(ExactSteinerTreeWeight(g, std::vector<NodeId>{2}), 0);
}

TEST(ExactSteinerTreeTest, ClassicSteinerPointExample) {
  // Star where center 0 is a Steiner point: terminals 1,2,3 each at
  // distance 1 from the center, pairwise distance 2 direct.
  Graph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(0, 3, 1);
  g.AddEdge(1, 2, 2);
  g.AddEdge(2, 3, 2);
  g.Finalize();
  const std::vector<NodeId> terms{1, 2, 3};
  EXPECT_EQ(ExactSteinerTreeWeight(g, terms), 3);  // via the Steiner point
}

TEST(ExactSteinerTreeTest, AllNodesTerminalsEqualsMst) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(10, 0.4, 1, 30, rng);
    std::vector<NodeId> terms;
    for (NodeId v = 0; v < 10; ++v) terms.push_back(v);
    EXPECT_EQ(ExactSteinerTreeWeight(g, terms), MstWeight(g)) << seed;
  }
}

TEST(ExactSteinerTreeTest, DisconnectedTerminalsInfinite) {
  Graph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(2, 3, 1);
  g.Finalize();
  const std::vector<NodeId> terms{0, 3};
  EXPECT_GE(ExactSteinerTreeWeight(g, terms), kInfWeight);
}

TEST(ExactSteinerForestTest, SingleComponentMatchesTree) {
  SplitMix64 rng(1);
  const Graph g = MakeConnectedRandom(12, 0.3, 1, 15, rng);
  const IcInstance ic = MakeIcInstance(12, {{0, 1}, {5, 1}, {9, 1}});
  const std::vector<NodeId> terms{0, 5, 9};
  EXPECT_EQ(ExactSteinerForestWeight(g, ic), ExactSteinerTreeWeight(g, terms));
}

TEST(ExactSteinerForestTest, IndependentComponentsSum) {
  // Two far-apart components on a path: optimum = sum of the spans.
  const Graph g = MakePath(10);
  const IcInstance ic = MakeIcInstance(10, {{0, 1}, {2, 1}, {7, 2}, {9, 2}});
  EXPECT_EQ(ExactSteinerForestWeight(g, ic), 2 + 2);
}

TEST(ExactSteinerForestTest, SharingBeatsSeparation) {
  // Components 1 = {0, 3} and 2 = {1, 2} interleaved on a path: a single
  // shared segment 0..3 (weight 3) beats any disjoint pair of trees.
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {3, 1}, {1, 2}, {2, 2}});
  EXPECT_EQ(ExactSteinerForestWeight(g, ic), 3);
}

TEST(ExactSteinerForestTest, EmptyInstanceZero) {
  const Graph g = MakePath(3);
  EXPECT_EQ(ExactSteinerForestWeight(g, MakeIcInstance(3, {})), 0);
}

TEST(ExactSteinerForestTest, SingletonComponentsDropped) {
  const Graph g = MakePath(6);
  const IcInstance ic = MakeIcInstance(6, {{0, 1}, {2, 1}, {5, 9}});
  EXPECT_EQ(ExactSteinerForestWeight(g, ic), 2);
}

TEST(ExactSteinerForestTest, PartitionChoiceMatters) {
  // Triangle of components where merging all three into one tree is optimal.
  // Star center 0 with three arms of weight 1; each arm tip is its own
  // component paired with a far twin reachable only through the center.
  Graph g(7);
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(0, 3, 1);
  g.AddEdge(1, 4, 1);
  g.AddEdge(2, 5, 1);
  g.AddEdge(3, 6, 1);
  g.Finalize();
  const IcInstance ic = MakeIcInstance(7, {{4, 1}, {5, 1}, {6, 2}, {1, 2}});
  // Component 1 = {4,5}: needs 4-1-0-2-5 (w 4). Component 2 = {6,1}: needs
  // 6-3-0-1 (w 3). Sharing edges 1-0: total exact = 4 + 3 - 1 (edge 0-1
  // shared)... the exact solver must find weight 6.
  EXPECT_EQ(ExactSteinerForestWeight(g, ic), 6);
}

TEST(ExactSolutionTest, TreeEdgesRealizeTheOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed * 11 + 2);
    const Graph g = MakeConnectedRandom(14, 0.3, 1, 20, rng);
    const std::vector<NodeId> terms{0, 5, 9, 13};
    const ExactSolution sol = ExactSteinerTree(g, terms);
    ASSERT_LT(sol.weight, kInfWeight) << seed;
    EXPECT_EQ(g.WeightOf(sol.edges), sol.weight) << seed;
    EXPECT_TRUE(g.IsForest(sol.edges)) << seed;
    const IcInstance ic =
        MakeIcInstance(14, {{0, 1}, {5, 1}, {9, 1}, {13, 1}});
    EXPECT_TRUE(IsFeasible(g, ic, sol.edges)) << seed;
  }
}

TEST(ExactSolutionTest, ForestEdgesRealizeTheOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed * 7 + 1);
    const Graph g = MakeConnectedRandom(14, 0.3, 1, 16, rng);
    const IcInstance ic =
        MakeIcInstance(14, {{0, 1}, {13, 1}, {3, 2}, {10, 2}, {6, 3}, {8, 3}});
    const ExactSolution sol = ExactSteinerForest(g, ic);
    ASSERT_LT(sol.weight, kInfWeight) << seed;
    EXPECT_EQ(g.WeightOf(sol.edges), sol.weight) << seed;
    EXPECT_TRUE(g.IsForest(sol.edges)) << seed;
    EXPECT_TRUE(IsFeasible(g, ic, sol.edges)) << seed;
    EXPECT_TRUE(IsMinimalFeasible(g, ic, sol.edges)) << seed;
  }
}

TEST(ExactSolutionTest, ForestEdgesOnSharingInstance) {
  // The SharingBeatsSeparation path: the realizing edges are the shared
  // segment 0-1-2-3, one tree covering both components.
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {3, 1}, {1, 2}, {2, 2}});
  const ExactSolution sol = ExactSteinerForest(g, ic);
  EXPECT_EQ(sol.weight, 3);
  EXPECT_EQ(sol.edges, (std::vector<EdgeId>{0, 1, 2}));
}

TEST(ExactSteinerForestTest, TooManyTerminalsFailsLoudly) {
  // 8 components x 2 terminals = 16 terminals: under the component cap but
  // over kExactForestMaxTerminals — must throw instead of grinding through
  // a 3^16-subset Dreyfus-Wagner on the full union.
  const Graph g = MakePath(16);
  std::vector<std::pair<NodeId, Label>> assign;
  for (int c = 0; c < 8; ++c) {
    assign.push_back({static_cast<NodeId>(2 * c), static_cast<Label>(c + 1)});
    assign.push_back(
        {static_cast<NodeId>(2 * c + 1), static_cast<Label>(c + 1)});
  }
  EXPECT_THROW(ExactSteinerForestWeight(g, MakeIcInstance(16, assign)),
               std::logic_error);
}

}  // namespace
}  // namespace dsf
