#include "congest/network.hpp"

#include <gtest/gtest.h>

#include "congest/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_paths.hpp"

namespace dsf {
namespace {

StaticKnowledge KnownFor(const Graph& g) {
  StaticKnowledge k;
  k.n = g.NumNodes();
  k.diameter_bound = UnweightedDiameter(g);
  k.spd_bound = ShortestPathDiameter(g);
  return k;
}

// A trivial program: every node sends its id to all neighbors in round 0 and
// records what it hears.
class HelloProgram : public NodeProgram {
 public:
  explicit HelloProgram(NodeId id) : id_(id) {}

  void OnRound(NodeApi& api) override {
    if (api.Round() == 0) {
      for (int i = 0; i < api.Degree(); ++i) {
        api.Send(i, Message{kChApp, {id_}});
      }
      return;
    }
    for (const auto& d : api.Inbox()) {
      heard.push_back(d.msg.fields[0]);
      EXPECT_EQ(d.from_node, static_cast<NodeId>(d.msg.fields[0]));
    }
    done_ = true;
  }

  [[nodiscard]] bool Done() const override { return done_; }

  std::vector<std::int64_t> heard;

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(NetworkTest, MessagesDeliveredNextRound) {
  const Graph g = MakePath(3);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId v) { return std::make_unique<HelloProgram>(v); });
  const auto stats = net.Run(10);
  EXPECT_FALSE(stats.hit_round_limit);
  auto& p1 = dynamic_cast<HelloProgram&>(net.ProgramAt(1));
  ASSERT_EQ(p1.heard.size(), 2u);
  EXPECT_EQ(stats.messages, 4);  // 1+2+1 directed sends
}

TEST(NetworkTest, StatsCountBits) {
  const Graph g = MakePath(2);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId v) { return std::make_unique<HelloProgram>(v); });
  const auto stats = net.Run(10);
  EXPECT_GT(stats.total_bits, 0);
  EXPECT_GT(stats.max_bits_per_edge_round, 0);
  EXPECT_LE(stats.max_bits_per_edge_round, net.Known().bandwidth_bits);
}

TEST(NetworkTest, CutMetering) {
  const Graph g = MakePath(4);  // edges 0:(0-1) 1:(1-2) 2:(2-3)
  Network net(g, KnownFor(g), 1);
  const std::vector<EdgeId> cut{1};
  net.RegisterCut(cut);
  net.Start([](NodeId v) { return std::make_unique<HelloProgram>(v); });
  const auto stats = net.Run(10);
  EXPECT_EQ(stats.cut_messages, 2);  // 1->2 and 2->1
  EXPECT_GT(stats.cut_bits, 0);
  EXPECT_LT(stats.cut_bits, stats.total_bits);
}

TEST(NetworkTest, RoundLimitFlag) {
  // A program that never finishes.
  class Forever : public NodeProgram {
   public:
    void OnRound(NodeApi&) override {}
    [[nodiscard]] bool Done() const override { return false; }
  };
  const Graph g = MakePath(2);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId) { return std::make_unique<Forever>(); });
  const auto stats = net.Run(25);
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(stats.rounds, 25);
}

TEST(NetworkTest, MarkedEdgesCollected) {
  class Marker : public NodeProgram {
   public:
    explicit Marker(NodeId id) : id_(id) {}
    void OnRound(NodeApi& api) override {
      if (id_ == 0 && api.Round() == 0) api.MarkEdge(0);
      done_ = true;
    }
    [[nodiscard]] bool Done() const override { return done_; }

   private:
    NodeId id_;
    bool done_ = false;
  };
  const Graph g = MakePath(3);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId v) { return std::make_unique<Marker>(v); });
  net.Run(5);
  const auto marked = net.MarkedEdges();
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_EQ(marked[0], 0);
}

TEST(NetworkTest, PerNodeRngIsDeterministicAndDistinct) {
  const Graph g = MakePath(3);
  class RngProbe : public NodeProgram {
   public:
    void OnRound(NodeApi& api) override {
      if (api.Round() == 0) value = api.Rng().Next();
      done_ = true;
    }
    [[nodiscard]] bool Done() const override { return done_; }
    std::uint64_t value = 0;

   private:
    bool done_ = false;
  };
  Network a(g, KnownFor(g), 99);
  a.Start([](NodeId) { return std::make_unique<RngProbe>(); });
  a.Run(3);
  Network b(g, KnownFor(g), 99);
  b.Start([](NodeId) { return std::make_unique<RngProbe>(); });
  b.Run(3);
  for (NodeId v = 0; v < 3; ++v) {
    const auto va = dynamic_cast<RngProbe&>(a.ProgramAt(v)).value;
    const auto vb = dynamic_cast<RngProbe&>(b.ProgramAt(v)).value;
    EXPECT_EQ(va, vb);
  }
  EXPECT_NE(dynamic_cast<RngProbe&>(a.ProgramAt(0)).value,
            dynamic_cast<RngProbe&>(a.ProgramAt(1)).value);
}

// --- BFS tree / TreeProgramBase ---

TEST(BfsTreeTest, DepthsMatchCentralizedBfs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(20, 0.15, 1, 9, rng);
    Network net(g, KnownFor(g), seed);
    net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
    const auto stats = net.Run(10000);
    EXPECT_FALSE(stats.hit_round_limit);
    const auto reference = Bfs(g, g.NumNodes() - 1);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const auto& p = dynamic_cast<BfsProbeProgram&>(net.ProgramAt(v));
      EXPECT_EQ(p.observed_depth, reference.depth[static_cast<std::size_t>(v)])
          << "node " << v << " seed " << seed;
    }
  }
}

TEST(BfsTreeTest, TreeBuildWithinDiameterPlusSlack) {
  const Graph g = MakePath(30);
  Network net(g, KnownFor(g), 0);
  net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
  const auto stats = net.Run(10000);
  EXPECT_FALSE(stats.hit_round_limit);
  // Tree build is D+2 rounds; FINISH broadcast adds <= D+1 more.
  EXPECT_LE(stats.rounds, 2 * 29 + 10);
}

TEST(BfsTreeTest, SingleNodeGraph) {
  Graph g(1);
  g.Finalize();
  Network net(g, KnownFor(g), 0);
  net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
  const auto stats = net.Run(100);
  EXPECT_FALSE(stats.hit_round_limit);
  const auto& p = dynamic_cast<BfsProbeProgram&>(net.ProgramAt(0));
  EXPECT_EQ(p.observed_depth, 0);
}

TEST(BfsTreeTest, StarRootedAtMaxId) {
  const Graph g = MakeStar(8);  // center 0, leaves 1..7; root is node 7
  Network net(g, KnownFor(g), 0);
  net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
  net.Run(1000);
  EXPECT_EQ(dynamic_cast<BfsProbeProgram&>(net.ProgramAt(7)).observed_depth, 0);
  EXPECT_EQ(dynamic_cast<BfsProbeProgram&>(net.ProgramAt(0)).observed_depth, 1);
  EXPECT_EQ(dynamic_cast<BfsProbeProgram&>(net.ProgramAt(3)).observed_depth, 2);
}

}  // namespace
}  // namespace dsf
