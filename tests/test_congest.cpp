#include "congest/network.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "congest/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_paths.hpp"

namespace dsf {
namespace {

StaticKnowledge KnownFor(const Graph& g) {
  StaticKnowledge k;
  k.n = g.NumNodes();
  k.diameter_bound = UnweightedDiameter(g);
  k.spd_bound = ShortestPathDiameter(g);
  return k;
}

// A trivial program: every node sends its id to all neighbors in round 0 and
// records what it hears.
class HelloProgram : public NodeProgram {
 public:
  explicit HelloProgram(NodeId id) : id_(id) {}

  void OnRound(NodeApi& api) override {
    if (api.Round() == 0) {
      for (int i = 0; i < api.Degree(); ++i) {
        api.Send(i, Message{kChApp, {id_}});
      }
      return;
    }
    for (const auto& d : api.Inbox()) {
      heard.push_back(d.msg.fields[0]);
      EXPECT_EQ(d.from_node, static_cast<NodeId>(d.msg.fields[0]));
    }
    done_ = true;
  }

  [[nodiscard]] bool Done() const override { return done_; }

  std::vector<std::int64_t> heard;

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(NetworkTest, MessagesDeliveredNextRound) {
  const Graph g = MakePath(3);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId v) { return std::make_unique<HelloProgram>(v); });
  const auto stats = net.Run(10);
  EXPECT_FALSE(stats.hit_round_limit);
  auto& p1 = dynamic_cast<HelloProgram&>(net.ProgramAt(1));
  ASSERT_EQ(p1.heard.size(), 2u);
  EXPECT_EQ(stats.messages, 4);  // 1+2+1 directed sends
}

TEST(NetworkTest, StatsCountBits) {
  const Graph g = MakePath(2);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId v) { return std::make_unique<HelloProgram>(v); });
  const auto stats = net.Run(10);
  EXPECT_GT(stats.total_bits, 0);
  EXPECT_GT(stats.max_bits_per_edge_round, 0);
  EXPECT_LE(stats.max_bits_per_edge_round, net.Known().bandwidth_bits);
}

TEST(NetworkTest, CutMetering) {
  const Graph g = MakePath(4);  // edges 0:(0-1) 1:(1-2) 2:(2-3)
  Network net(g, KnownFor(g), 1);
  const std::vector<EdgeId> cut{1};
  net.RegisterCut(cut);
  net.Start([](NodeId v) { return std::make_unique<HelloProgram>(v); });
  const auto stats = net.Run(10);
  EXPECT_EQ(stats.cut_messages, 2);  // 1->2 and 2->1
  EXPECT_GT(stats.cut_bits, 0);
  EXPECT_LT(stats.cut_bits, stats.total_bits);
}

TEST(NetworkTest, RoundLimitFlag) {
  // A program that never finishes.
  class Forever : public NodeProgram {
   public:
    void OnRound(NodeApi&) override {}
    [[nodiscard]] bool Done() const override { return false; }
  };
  const Graph g = MakePath(2);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId) { return std::make_unique<Forever>(); });
  const auto stats = net.Run(25);
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(stats.rounds, 25);
}

TEST(NetworkTest, MarkedEdgesCollected) {
  class Marker : public NodeProgram {
   public:
    explicit Marker(NodeId id) : id_(id) {}
    void OnRound(NodeApi& api) override {
      if (id_ == 0 && api.Round() == 0) api.MarkEdge(0);
      done_ = true;
    }
    [[nodiscard]] bool Done() const override { return done_; }

   private:
    NodeId id_;
    bool done_ = false;
  };
  const Graph g = MakePath(3);
  Network net(g, KnownFor(g), 1);
  net.Start([](NodeId v) { return std::make_unique<Marker>(v); });
  net.Run(5);
  const auto marked = net.MarkedEdges();
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_EQ(marked[0], 0);
}

TEST(NetworkTest, PerNodeRngIsDeterministicAndDistinct) {
  const Graph g = MakePath(3);
  class RngProbe : public NodeProgram {
   public:
    void OnRound(NodeApi& api) override {
      if (api.Round() == 0) value = api.Rng().Next();
      done_ = true;
    }
    [[nodiscard]] bool Done() const override { return done_; }
    std::uint64_t value = 0;

   private:
    bool done_ = false;
  };
  Network a(g, KnownFor(g), 99);
  a.Start([](NodeId) { return std::make_unique<RngProbe>(); });
  a.Run(3);
  Network b(g, KnownFor(g), 99);
  b.Start([](NodeId) { return std::make_unique<RngProbe>(); });
  b.Run(3);
  for (NodeId v = 0; v < 3; ++v) {
    const auto va = dynamic_cast<RngProbe&>(a.ProgramAt(v)).value;
    const auto vb = dynamic_cast<RngProbe&>(b.ProgramAt(v)).value;
    EXPECT_EQ(va, vb);
  }
  EXPECT_NE(dynamic_cast<RngProbe&>(a.ProgramAt(0)).value,
            dynamic_cast<RngProbe&>(a.ProgramAt(1)).value);
}

// --- FieldList payload edge cases through a delivery round-trip ---
// The message arena stores payloads inline (SoA header + FieldList); these
// pin that boundary-size, empty, and max-width payloads survive the
// send → arena → inbox path byte for byte.

// Echo rig: node 0 sends a scripted list of messages to node 1 in round 0;
// node 1 records exactly what arrives.
class PayloadSender : public NodeProgram {
 public:
  explicit PayloadSender(std::vector<Message> script)
      : script_(std::move(script)) {}
  void OnRound(NodeApi& api) override {
    if (api.Round() == 0) {
      for (auto& m : script_) api.Send(0, m);
    }
    done_ = true;
  }
  [[nodiscard]] bool Done() const override { return done_; }

 private:
  std::vector<Message> script_;
  bool done_ = false;
};

class PayloadReceiver : public NodeProgram {
 public:
  void OnRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      received.push_back(d.msg);
      from_locals.push_back(d.from_local);
    }
    if (api.Round() >= 1) done_ = true;
  }
  [[nodiscard]] bool Done() const override { return done_; }
  std::vector<Message> received;
  std::vector<int> from_locals;

 private:
  bool done_ = false;
};

std::vector<Message> RoundTrip(const std::vector<Message>& script) {
  const Graph g = MakePath(2);
  StaticKnowledge k;
  k.n = 2;
  k.diameter_bound = 1;
  k.bandwidth_bits = 1 << 14;  // roomy: these tests probe width, not budget
  Network net(g, k, 1);
  net.Start([&](NodeId v) -> std::unique_ptr<NodeProgram> {
    if (v == 0) return std::make_unique<PayloadSender>(script);
    return std::make_unique<PayloadReceiver>();
  });
  net.Run(5);
  auto& rx = dynamic_cast<PayloadReceiver&>(net.ProgramAt(1));
  for (const int fl : rx.from_locals) EXPECT_EQ(fl, 0);
  return rx.received;
}

TEST(FieldListRoundTripTest, CapacityBoundaryPayloadSurvives) {
  Message full{kChApp, {1, -2, 3, -4, 5, -6, 7, -8}};
  ASSERT_EQ(full.fields.size(), FieldList::kMaxFields);
  Message seven{kChBellman, {9, 8, 7, 6, 5, 4, 3}};
  const auto got = RoundTrip({full, seven});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].channel, kChApp);
  EXPECT_EQ(got[0].fields, full.fields);
  EXPECT_EQ(got[1].channel, kChBellman);
  EXPECT_EQ(got[1].fields, seven.fields);
  EXPECT_EQ(got[0].BitSize(), full.BitSize());
}

TEST(FieldListRoundTripTest, EmptyMessageSurvives) {
  Message empty{kChQuiesce, {}};
  const auto got = RoundTrip({empty});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].channel, kChQuiesce);
  EXPECT_TRUE(got[0].fields.empty());
  EXPECT_EQ(got[0].fields.size(), 0u);
  EXPECT_EQ(got[0].BitSize(), 4u);  // channel tag only
}

TEST(FieldListRoundTripTest, MaxWidthFieldsSurviveByteForByte) {
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  Message extreme{kChExchange, {lo, hi, lo + 1, hi - 1, 0, -1, 1, lo}};
  const auto got = RoundTrip({extreme});
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].fields.size(), FieldList::kMaxFields);
  for (std::size_t i = 0; i < FieldList::kMaxFields; ++i) {
    EXPECT_EQ(got[0].fields[i], extreme.fields[i]) << "field " << i;
  }
  // Byte-for-byte: the zigzag width estimate agrees, so no bit was bent.
  EXPECT_EQ(got[0].BitSize(), extreme.BitSize());
}

TEST(FieldListRoundTripTest, MixedScriptKeepsOrderAndValues) {
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  std::vector<Message> script;
  script.push_back(Message{kChApp, {}});
  script.push_back(Message{kChApp, {42}});
  script.push_back(Message{kChToken, {-hi, hi, 0}});
  script.push_back(Message{kChFilter, {1, 2, 3, 4, 5, 6, 7, 8}});
  const auto got = RoundTrip(script);
  ASSERT_EQ(got.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(got[i].channel, script[i].channel) << "msg " << i;
    EXPECT_EQ(got[i].fields, script[i].fields) << "msg " << i;
  }
}

// --- BFS tree / TreeProgramBase ---

TEST(BfsTreeTest, DepthsMatchCentralizedBfs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(20, 0.15, 1, 9, rng);
    Network net(g, KnownFor(g), seed);
    net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
    const auto stats = net.Run(10000);
    EXPECT_FALSE(stats.hit_round_limit);
    const auto reference = Bfs(g, g.NumNodes() - 1);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const auto& p = dynamic_cast<BfsProbeProgram&>(net.ProgramAt(v));
      EXPECT_EQ(p.observed_depth, reference.depth[static_cast<std::size_t>(v)])
          << "node " << v << " seed " << seed;
    }
  }
}

TEST(BfsTreeTest, TreeBuildWithinDiameterPlusSlack) {
  const Graph g = MakePath(30);
  Network net(g, KnownFor(g), 0);
  net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
  const auto stats = net.Run(10000);
  EXPECT_FALSE(stats.hit_round_limit);
  // Tree build is D+2 rounds; FINISH broadcast adds <= D+1 more.
  EXPECT_LE(stats.rounds, 2 * 29 + 10);
}

TEST(BfsTreeTest, SingleNodeGraph) {
  Graph g(1);
  g.Finalize();
  Network net(g, KnownFor(g), 0);
  net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
  const auto stats = net.Run(100);
  EXPECT_FALSE(stats.hit_round_limit);
  const auto& p = dynamic_cast<BfsProbeProgram&>(net.ProgramAt(0));
  EXPECT_EQ(p.observed_depth, 0);
}

TEST(BfsTreeTest, StarRootedAtMaxId) {
  const Graph g = MakeStar(8);  // center 0, leaves 1..7; root is node 7
  Network net(g, KnownFor(g), 0);
  net.Start([](NodeId v) { return std::make_unique<BfsProbeProgram>(v); });
  net.Run(1000);
  EXPECT_EQ(dynamic_cast<BfsProbeProgram&>(net.ProgramAt(7)).observed_depth, 0);
  EXPECT_EQ(dynamic_cast<BfsProbeProgram&>(net.ProgramAt(0)).observed_depth, 1);
  EXPECT_EQ(dynamic_cast<BfsProbeProgram&>(net.ProgramAt(3)).observed_depth, 2);
}

}  // namespace
}  // namespace dsf
