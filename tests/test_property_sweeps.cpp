// Parameterized property sweeps: the core invariants, asserted across a grid
// of topologies × seeds × component counts. These are the "always true"
// statements the paper's proofs guarantee:
//
//   P1  the distributed deterministic protocol replays the centralized
//       Algorithm 1 merge log exactly (same pairs, µ values, dual sum);
//   P2  outputs are minimal feasible forests;
//   P3  W(F) < 2·Σ act·µ  (the primal-dual certificate of Theorem 4.1);
//   P4  the number of merge phases is at most 2k (Lemma 4.4);
//   P5  the randomized algorithm's output is feasible and no lighter than
//       the optimum (sanity), and deterministic given the seed;
//   P6  the distributed transformations agree with their centralized
//       references (Lemmas 2.3/2.4).
#include <gtest/gtest.h>

#include <tuple>

#include "dist/det_moat.hpp"
#include "dist/randomized.hpp"
#include "dist/transform.hpp"
#include "graph/generators.hpp"
#include "steiner/moat.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

enum class Topology { kRandom, kGeometric, kGrid, kCycle, kCaterpillar, kTreeChords };

std::string TopologyName(Topology t) {
  switch (t) {
    case Topology::kRandom: return "Random";
    case Topology::kGeometric: return "Geometric";
    case Topology::kGrid: return "Grid";
    case Topology::kCycle: return "Cycle";
    case Topology::kCaterpillar: return "Caterpillar";
    case Topology::kTreeChords: return "TreeChords";
  }
  return "?";
}

Graph MakeTopology(Topology t, std::uint64_t seed) {
  SplitMix64 rng(seed * 977 + 13);
  switch (t) {
    case Topology::kRandom:
      return MakeConnectedRandom(18, 0.18, 1, 20, rng);
    case Topology::kGeometric:
      return MakeRandomGeometric(18, 0.35, 40, rng);
    case Topology::kGrid:
      return MakeGrid(4, 5, 1, 7, rng);
    case Topology::kCycle:
      return MakeCycle(18, 3);
    case Topology::kCaterpillar:
      return MakeCaterpillar(6, 2, 2, 5);
    case Topology::kTreeChords:
      return MakeTreePlusChords(18, 6, 3, 8, rng);
  }
  return MakePath(2);
}

IcInstance MakeSweepInstance(int n, int k, std::uint64_t seed) {
  SplitMix64 rng(seed * 31 + 7);
  std::vector<std::pair<NodeId, Label>> assign;
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < 2; ++j) {
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
      } while (used[static_cast<std::size_t>(v)]);
      used[static_cast<std::size_t>(v)] = 1;
      assign.push_back({v, static_cast<Label>(c + 1)});
    }
  }
  return MakeIcInstance(n, assign);
}

using SweepParam = std::tuple<Topology, int /*k*/, std::uint64_t /*seed*/>;

class MoatSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MoatSweep, DistributedReplaysCentralizedAndIsSound) {
  const auto [topo, k, seed] = GetParam();
  const Graph g = MakeTopology(topo, seed);
  const IcInstance ic = MakeSweepInstance(g.NumNodes(), k, seed);

  const auto dist = RunDistributedMoat(g, ic, {}, seed + 1);
  const auto cent = CentralizedMoatGrowing(g, ic);

  // P1: identical merge logs.
  ASSERT_EQ(dist.merges.size(), cent.merges.size());
  for (std::size_t i = 0; i < dist.merges.size(); ++i) {
    EXPECT_EQ(dist.merges[i].v, cent.merges[i].v) << i;
    EXPECT_EQ(dist.merges[i].w, cent.merges[i].w) << i;
    EXPECT_EQ(dist.merges[i].mu, cent.merges[i].mu) << i;
  }
  EXPECT_EQ(dist.dual_sum, cent.dual_sum);

  // P2: minimal feasible forest.
  const IcInstance minimal = MakeMinimal(ic);
  EXPECT_TRUE(g.IsForest(dist.forest));
  EXPECT_TRUE(IsMinimalFeasible(g, minimal, dist.forest));
  EXPECT_EQ(g.WeightOf(dist.forest), g.WeightOf(cent.forest));

  // P3: primal-dual certificate (allowing the 2^-12 quantization slop).
  const Fixed slop = static_cast<Fixed>(dist.merges.size() + 1) * 8;
  EXPECT_LE(ToFixed(g.WeightOf(dist.forest)), 2 * dist.dual_sum + slop);

  // P4: phase bound (Lemma 4.4).
  EXPECT_LE(dist.phases, 2 * k + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MoatSweep,
    ::testing::Combine(::testing::Values(Topology::kRandom, Topology::kGeometric,
                                         Topology::kGrid, Topology::kCycle,
                                         Topology::kCaterpillar,
                                         Topology::kTreeChords),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return TopologyName(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class RoundedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RoundedSweep, RoundedModeMatchesCentralizedAlgorithmTwo) {
  const auto [topo, k, seed] = GetParam();
  const Graph g = MakeTopology(topo, seed);
  const IcInstance ic = MakeSweepInstance(g.NumNodes(), k, seed);

  DetMoatOptions dopt;
  dopt.epsilon = 0.5L;
  MoatOptions copt;
  copt.epsilon = 0.5L;
  const auto dist = RunDistributedMoat(g, ic, dopt, seed + 1);
  const auto cent = CentralizedMoatGrowing(g, ic, copt);

  ASSERT_EQ(dist.merges.size(), cent.merges.size());
  for (std::size_t i = 0; i < dist.merges.size(); ++i) {
    EXPECT_EQ(dist.merges[i].mu, cent.merges[i].mu) << i;
    EXPECT_EQ(dist.merges[i].v, cent.merges[i].v) << i;
  }
  EXPECT_EQ(g.WeightOf(dist.forest), g.WeightOf(cent.forest));
  EXPECT_TRUE(IsFeasible(g, MakeMinimal(ic), dist.forest));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundedSweep,
    ::testing::Combine(::testing::Values(Topology::kRandom, Topology::kGrid,
                                         Topology::kCycle),
                       ::testing::Values(2, 3),
                       ::testing::Values(std::uint64_t{4}, std::uint64_t{5})),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return TopologyName(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class RandomizedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomizedSweep, FeasibleDeterministicAndSane) {
  const auto [topo, k, seed] = GetParam();
  const Graph g = MakeTopology(topo, seed);
  const IcInstance ic = MakeSweepInstance(g.NumNodes(), k, seed);
  const IcInstance minimal = MakeMinimal(ic);

  const auto a = RunRandomizedSteinerForest(g, ic, {}, seed + 1);
  EXPECT_TRUE(IsFeasible(g, minimal, a.forest));
  EXPECT_TRUE(g.IsForest(a.forest) || !a.forest.empty());

  // P5: bit-determinism given the seed.
  const auto b = RunRandomizedSteinerForest(g, ic, {}, seed + 1);
  EXPECT_EQ(a.forest, b.forest);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomizedSweep,
    ::testing::Combine(::testing::Values(Topology::kRandom, Topology::kGrid,
                                         Topology::kCycle,
                                         Topology::kTreeChords),
                       ::testing::Values(1, 3),
                       ::testing::Values(std::uint64_t{6}, std::uint64_t{7})),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return TopologyName(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class TransformSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformSweep, DistributedTransformsMatchCentralized) {
  const std::uint64_t seed = GetParam();
  SplitMix64 rng(seed * 131 + 17);
  const Graph g = MakeConnectedRandom(22, 0.15, 1, 9, rng);

  // P6a: CR -> IC.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 7; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBelow(22));
    const auto v = static_cast<NodeId>(rng.NextBelow(22));
    if (u != v) pairs.push_back({u, v});
  }
  const CrInstance cr = MakeCrInstance(22, pairs);
  const auto x1 = RunDistributedCrToIc(g, cr, seed);
  EXPECT_TRUE(EquivalentInstances(x1.instance, CrToIc(cr)));

  // P6b: IC -> minimal.
  std::vector<std::pair<NodeId, Label>> assign;
  for (int i = 0; i < 9; ++i) {
    assign.push_back({static_cast<NodeId>(rng.NextBelow(22)),
                      static_cast<Label>(1 + rng.NextBelow(4))});
  }
  const IcInstance ic = MakeIcInstance(22, assign);
  const auto x2 = RunDistributedMakeMinimal(g, ic, seed);
  EXPECT_TRUE(EquivalentInstances(x2.instance, MakeMinimal(ic)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformSweep,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{10}));

}  // namespace
}  // namespace dsf
