#include "steiner/instance.hpp"

#include <gtest/gtest.h>

namespace dsf {
namespace {

TEST(IcInstanceTest, TerminalAndComponentCounts) {
  const IcInstance ic = MakeIcInstance(6, {{0, 1}, {2, 1}, {3, 2}, {5, 2}});
  EXPECT_EQ(ic.NumTerminals(), 4);
  EXPECT_EQ(ic.NumComponents(), 2);
  EXPECT_TRUE(ic.IsTerminal(0));
  EXPECT_FALSE(ic.IsTerminal(1));
  EXPECT_EQ(ic.LabelOf(3), 2);
  EXPECT_EQ(ic.Terminals(), (std::vector<NodeId>{0, 2, 3, 5}));
  EXPECT_EQ(ic.DistinctLabels(), (std::vector<Label>{1, 2}));
}

TEST(IcInstanceTest, MinimalityCheck) {
  const IcInstance minimal = MakeIcInstance(4, {{0, 1}, {1, 1}});
  EXPECT_TRUE(minimal.IsMinimal());
  const IcInstance nonminimal = MakeIcInstance(4, {{0, 1}, {1, 1}, {2, 9}});
  EXPECT_FALSE(nonminimal.IsMinimal());
  EXPECT_EQ(nonminimal.NumNontrivialComponents(), 1);
}

TEST(IcInstanceTest, MakeMinimalDropsSingletons) {
  const IcInstance ic = MakeIcInstance(5, {{0, 1}, {1, 1}, {3, 7}});
  const IcInstance m = MakeMinimal(ic);
  EXPECT_TRUE(m.IsMinimal());
  EXPECT_EQ(m.NumComponents(), 1);
  EXPECT_FALSE(m.IsTerminal(3));
  EXPECT_TRUE(m.IsTerminal(0));
}

TEST(CrInstanceTest, TerminalsFromRequests) {
  const CrInstance cr = MakeCrInstance(6, {{0, 3}, {1, 4}});
  EXPECT_EQ(cr.NumTerminals(), 4);
  EXPECT_EQ(cr.Terminals(), (std::vector<NodeId>{0, 1, 3, 4}));
  EXPECT_EQ(cr.NumRequests(), 4);  // symmetric closure
}

TEST(CrToIcTest, RequestComponentsBecomeLabels) {
  // Requests 0-3 and 3-5 chain into one component; 1-4 is another.
  const CrInstance cr = MakeCrInstance(6, {{0, 3}, {3, 5}, {1, 4}});
  const IcInstance ic = CrToIc(cr);
  EXPECT_EQ(ic.NumComponents(), 2);
  EXPECT_EQ(ic.LabelOf(0), ic.LabelOf(3));
  EXPECT_EQ(ic.LabelOf(3), ic.LabelOf(5));
  EXPECT_EQ(ic.LabelOf(1), ic.LabelOf(4));
  EXPECT_NE(ic.LabelOf(0), ic.LabelOf(1));
  // Labels are the smallest terminal id of the component (Lemma 2.3).
  EXPECT_EQ(ic.LabelOf(0), 0);
  EXPECT_EQ(ic.LabelOf(1), 1);
}

TEST(CrToIcTest, EmptyRequests) {
  const CrInstance cr = MakeCrInstance(4, {});
  const IcInstance ic = CrToIc(cr);
  EXPECT_EQ(ic.NumTerminals(), 0);
  EXPECT_EQ(ic.NumComponents(), 0);
}

TEST(EquivalenceTest, SameGroupingDifferentLabelNames) {
  const IcInstance a = MakeIcInstance(5, {{0, 10}, {1, 10}, {3, 20}, {4, 20}});
  const IcInstance b = MakeIcInstance(5, {{0, 7}, {1, 7}, {3, 9}, {4, 9}});
  EXPECT_TRUE(EquivalentInstances(a, b));
}

TEST(EquivalenceTest, DifferentGroupingNotEquivalent) {
  const IcInstance a = MakeIcInstance(5, {{0, 1}, {1, 1}, {3, 2}, {4, 2}});
  const IcInstance b = MakeIcInstance(5, {{0, 1}, {3, 1}, {1, 2}, {4, 2}});
  EXPECT_FALSE(EquivalentInstances(a, b));
}

TEST(EquivalenceTest, SingletonsIgnored) {
  const IcInstance a = MakeIcInstance(5, {{0, 1}, {1, 1}, {4, 3}});
  const IcInstance b = MakeIcInstance(5, {{0, 2}, {1, 2}});
  EXPECT_TRUE(EquivalentInstances(a, b));
}

TEST(EquivalenceTest, CrRoundTripEquivalence) {
  const CrInstance cr = MakeCrInstance(8, {{0, 2}, {2, 4}, {5, 6}});
  const IcInstance ic = CrToIc(cr);
  // Terminal grouping must match the request components.
  const IcInstance expect =
      MakeIcInstance(8, {{0, 0}, {2, 0}, {4, 0}, {5, 5}, {6, 5}});
  EXPECT_TRUE(EquivalentInstances(ic, expect));
}

}  // namespace
}  // namespace dsf
