// The workload layer: generator/sampler registries, parameter validation,
// the sweep grammar and its expansion, and the SteinLib/DIMACS importers.
#include "workload/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/properties.hpp"
#include "solve/batch.hpp"
#include "workload/churn.hpp"
#include "workload/generators.hpp"
#include "workload/import.hpp"
#include "workload/samplers.hpp"

namespace dsf {
namespace {

using ParamList = std::vector<std::pair<std::string, std::string>>;

Workload ExpandString(const std::string& text) {
  std::istringstream in(text);
  return ExpandWorkload(ParseWorkloadSpec(in, "<string>"));
}

// --- generator invariants, every family x several seeds ----------------------

class GeneratorInvariants : public ::testing::TestWithParam<std::string> {};

// The loosest upper bound the family's schema promises for edge weights:
// [min_w, max_w] families bound by max_w, fixed-weight families by the
// largest weight parameter, geometric by sqrt(2) * scale rounded up.
Weight SchemaWeightCap(const ParamMap& pm) {
  if (pm.Has("max_w")) return pm.GetInt("max_w");
  if (pm.Has("scale")) return 2 * pm.GetInt("scale");
  Weight cap = 1;
  for (const char* name : {"w", "chord_w", "spine_w", "leg_w"}) {
    if (pm.Has(name)) cap = std::max<Weight>(cap, pm.GetInt(name));
  }
  return cap;
}

TEST_P(GeneratorInvariants, ConnectedSimpleBoundedAndDeterministic) {
  const GeneratorFamily& family = GeneratorRegistry::Get(GetParam());
  const ParamMap pm = ValidateGeneratorParams(family, ParamList{});
  const Weight cap = SchemaWeightCap(pm);
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const Graph a = BuildGenerator(family, pm, seed);
    const Graph b = BuildGenerator(family, pm, seed);

    // Same seed -> bit-identical edge list.
    ASSERT_EQ(a.NumNodes(), b.NumNodes());
    ASSERT_EQ(a.NumEdges(), b.NumEdges());
    for (EdgeId e = 0; e < a.NumEdges(); ++e) {
      ASSERT_EQ(a.GetEdge(e), b.GetEdge(e)) << "seed " << seed;
    }

    EXPECT_TRUE(IsConnected(a)) << "seed " << seed;

    std::set<std::pair<NodeId, NodeId>> seen;
    for (const Edge& e : a.Edges()) {
      EXPECT_NE(e.u, e.v) << "self-loop at seed " << seed;
      const auto key = std::minmax(e.u, e.v);
      EXPECT_TRUE(seen.insert({key.first, key.second}).second)
          << "parallel edge " << e.u << "-" << e.v << " at seed " << seed;
      EXPECT_GE(e.w, 1);
      EXPECT_LE(e.w, cap) << "weight above schema bound at seed " << seed;
    }
  }
}

std::vector<std::string> AllFamilyNames() {
  std::vector<std::string> names;
  for (const auto name : GeneratorRegistry::Names()) {
    names.emplace_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorInvariants, ::testing::ValuesIn(AllFamilyNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(GeneratorRegistryTest, SaltRedrawsRandomFamilies) {
  const Graph plain = BuildGenerator("er", ParamList{{"n", "40"}}, 5);
  const Graph salted =
      BuildGenerator("er", ParamList{{"n", "40"}, {"salt", "1"}}, 5);
  bool differs = plain.NumEdges() != salted.NumEdges();
  for (EdgeId e = 0; !differs && e < plain.NumEdges(); ++e) {
    differs = !(plain.GetEdge(e) == salted.GetEdge(e));
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorRegistryTest, RejectsBadParams) {
  EXPECT_THROW((void)GeneratorRegistry::Get("frobnicate"),
               std::runtime_error);
  EXPECT_THROW((void)BuildGenerator("er", ParamList{{"frob", "1"}}, 1),
               std::runtime_error);  // unknown key
  EXPECT_THROW((void)BuildGenerator("er", ParamList{{"n", "0"}}, 1),
               std::runtime_error);  // below range
  EXPECT_THROW((void)BuildGenerator("er", ParamList{{"n", "2x"}}, 1),
               std::runtime_error);  // trailing garbage
  EXPECT_THROW((void)BuildGenerator("er", ParamList{{"p", "nan"}}, 1),
               std::runtime_error);  // non-finite real
  EXPECT_THROW(
      (void)BuildGenerator(
          "er", ParamList{{"min_w", "9"}, {"max_w", "3"}}, 1),
      std::runtime_error);  // cross-field violation
  EXPECT_THROW(
      (void)BuildGenerator("er", ParamList{{"n", "4"}, {"n", "5"}}, 1),
      std::runtime_error);  // duplicate key
}

// --- samplers ----------------------------------------------------------------

TEST(SamplerTest, RandomIcShapeAndDeterminism) {
  const Graph g = BuildGenerator("grid", ParamList{}, 3);
  const ParamList params = {{"k", "3"}, {"tpc", "2"}};
  const WorkloadInstance a = SampleInstance("random-ic", g, params, 11);
  const WorkloadInstance b = SampleInstance("random-ic", g, params, 11);
  EXPECT_FALSE(a.use_cr);
  EXPECT_EQ(a.ic.NumTerminals(), 6);
  EXPECT_EQ(a.ic.NumComponents(), 3);
  EXPECT_TRUE(a.ic.IsMinimal());
  EXPECT_EQ(a.ic.labels, b.ic.labels);  // same seed -> same draw
  const WorkloadInstance c = SampleInstance("random-ic", g, params, 12);
  EXPECT_NE(a.ic.labels, c.ic.labels);
}

TEST(SamplerTest, RandomIcSpanPinsDrawsAcrossSubdivision) {
  // Base nodes are the id prefix of a subdivided graph: with span fixed to
  // the base size, every subdivision depth must see the same terminals.
  const ParamList base_params = {{"n", "20"}, {"pieces", "1"}};
  const ParamList deep_params = {{"n", "20"}, {"pieces", "4"}};
  const Graph shallow = BuildGenerator("subdivided-er", base_params, 9);
  const Graph deep = BuildGenerator("subdivided-er", deep_params, 9);
  const ParamList sample_params = {{"k", "2"}, {"tpc", "2"}, {"span", "20"}};
  const auto a = SampleInstance("random-ic", shallow, sample_params, 4);
  const auto b = SampleInstance("random-ic", deep, sample_params, 4);
  const auto ta = a.ic.Terminals();
  const auto tb = b.ic.Terminals();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i], tb[i]);
    EXPECT_LT(ta[i], 20);
    EXPECT_EQ(a.ic.LabelOf(ta[i]), b.ic.LabelOf(tb[i]));
  }
}

TEST(SamplerTest, RandomCrDrawsDistinctPairs) {
  const Graph g = BuildGenerator("er", ParamList{{"n", "24"}}, 2);
  const auto inst =
      SampleInstance("random-cr", g, ParamList{{"pairs", "5"}}, 6);
  EXPECT_TRUE(inst.use_cr);
  EXPECT_EQ(inst.cr.NumRequests(), 10);  // 5 symmetric pairs
  std::set<std::pair<NodeId, NodeId>> seen;
  for (NodeId v = 0; v < inst.cr.NumNodes(); ++v) {
    for (const NodeId w : inst.cr.requests[static_cast<std::size_t>(v)]) {
      EXPECT_NE(v, w);
      const auto key = std::minmax(v, w);
      seen.insert({key.first, key.second});
    }
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SamplerTest, CornersSpanTheMetric) {
  // On a path, the farthest-point sweep must reach both halves: the single
  // corners-cr request spans at least half the path regardless of the
  // random start node.
  const Graph g = BuildGenerator("path", ParamList{{"n", "30"}}, 1);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto inst =
        SampleInstance("corners-cr", g, ParamList{{"pairs", "1"}}, seed);
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    for (NodeId v = 0; v < inst.cr.NumNodes(); ++v) {
      if (!inst.cr.requests[static_cast<std::size_t>(v)].empty()) {
        (a == kNoNode ? a : b) = v;
      }
    }
    ASSERT_NE(a, kNoNode);
    ASSERT_NE(b, kNoNode);
    EXPECT_GE(std::abs(a - b), 15) << "seed " << seed;
  }
}

TEST(SamplerTest, CornersIcStripesLabels) {
  const Graph g = BuildGenerator("grid", ParamList{{"rows", "6"},
                                                   {"cols", "6"}},
                                 4);
  const auto inst = SampleInstance(
      "corners-ic", g, ParamList{{"k", "3"}, {"tpc", "2"}}, 4);
  EXPECT_EQ(inst.ic.NumTerminals(), 6);
  EXPECT_EQ(inst.ic.NumComponents(), 3);
  EXPECT_TRUE(inst.ic.IsMinimal());
}

TEST(SamplerTest, RejectsOversizedDraws) {
  const Graph g = BuildGenerator("path", ParamList{{"n", "4"}}, 1);
  EXPECT_THROW((void)SampleInstance(
                   "random-ic", g, ParamList{{"k", "3"}, {"tpc", "2"}}, 1),
               std::runtime_error);  // 6 terminals from 4 nodes
  EXPECT_THROW((void)SampleInstance(
                   "random-ic", g, ParamList{{"span", "9"}}, 1),
               std::runtime_error);  // span > n
  EXPECT_THROW(
      (void)SampleInstance("random-cr", g, ParamList{{"pairs", "7"}}, 1),
      std::runtime_error);  // > n(n-1)/2 distinct pairs
  EXPECT_THROW(
      (void)SampleInstance("corners-cr", g, ParamList{{"pairs", "3"}}, 1),
      std::runtime_error);  // 6 corners from 4 nodes
  EXPECT_THROW((void)SamplerRegistry::Get("frobnicate"), std::runtime_error);
}

// --- spec parsing and expansion ----------------------------------------------

TEST(WorkloadSpecTest, SweepsExpandToCrossProduct) {
  const Workload w = ExpandString(
      "seed 3\n"
      "generate grid rows=3 min_w=1 as mesh\n"
      "sweep cols 3 4\n"
      "sweep max_w 2 4 6\n"
      "sample random-ic spread k=2\n");
  ASSERT_EQ(w.cases.size(), 6u);
  EXPECT_EQ(w.seed, 3u);
  // Declaration order: first axis outermost, last axis fastest.
  EXPECT_EQ(w.cases[0].name, "mesh[cols=3,max_w=2]");
  EXPECT_EQ(w.cases[1].name, "mesh[cols=3,max_w=4]");
  EXPECT_EQ(w.cases[5].name, "mesh[cols=4,max_w=6]");
  for (const WorkloadCase& wc : w.cases) {
    EXPECT_EQ(wc.source, "generate grid");
    EXPECT_EQ(wc.graph.NumNodes(), 3 * (wc.name.find("cols=3") !=
                                                std::string::npos
                                            ? 3
                                            : 4));
    ASSERT_EQ(wc.instances.size(), 1u);
    EXPECT_EQ(wc.instances[0].name, "spread");
    EXPECT_EQ(wc.instances[0].ic.NumComponents(), 2);
  }
}

TEST(WorkloadSpecTest, ExpansionIsDeterministic) {
  const std::string text =
      "seed 17\n"
      "generate er n=30 p=0.1 as sparse\n"
      "sample random-ic spread k=2\n"
      "sample random-cr links pairs=2\n";
  const Workload a = ExpandString(text);
  const Workload b = ExpandString(text);
  ASSERT_EQ(a.cases.size(), b.cases.size());
  ASSERT_EQ(a.cases[0].graph.NumEdges(), b.cases[0].graph.NumEdges());
  for (EdgeId e = 0; e < a.cases[0].graph.NumEdges(); ++e) {
    EXPECT_EQ(a.cases[0].graph.GetEdge(e), b.cases[0].graph.GetEdge(e));
  }
  EXPECT_EQ(a.cases[0].instances[0].ic.labels,
            b.cases[0].instances[0].ic.labels);
  EXPECT_EQ(a.cases[0].instances[1].cr.requests,
            b.cases[0].instances[1].cr.requests);

  // A different workload seed redraws the topology.
  const Workload c = ExpandString(
      "seed 18\n"
      "generate er n=30 p=0.1 as sparse\n"
      "sample random-ic spread k=2\n"
      "sample random-cr links pairs=2\n");
  bool differs = a.cases[0].graph.NumEdges() != c.cases[0].graph.NumEdges();
  for (EdgeId e = 0; !differs && e < a.cases[0].graph.NumEdges(); ++e) {
    differs = !(a.cases[0].graph.GetEdge(e) == c.cases[0].graph.GetEdge(e));
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadSpecTest, SaltSweepReplicatesInstances) {
  const Workload w = ExpandString(
      "generate er n=30 p=0.1\n"
      "sample random-ic spread k=2\n"
      "sweep salt 0 1 2\n");
  ASSERT_EQ(w.cases.size(), 1u);
  ASSERT_EQ(w.cases[0].instances.size(), 3u);
  EXPECT_EQ(w.cases[0].instances[0].name, "spread[salt=0]");
  EXPECT_EQ(w.cases[0].instances[2].name, "spread[salt=2]");
  EXPECT_NE(w.cases[0].instances[0].ic.labels,
            w.cases[0].instances[1].ic.labels);
  EXPECT_NE(w.cases[0].instances[1].ic.labels,
            w.cases[0].instances[2].ic.labels);
}

TEST(WorkloadSpecTest, MixedSourcesAndExplicitInstances) {
  const Workload w = ExpandString(
      "graph 4 as tiny\n"
      "edge 0 1 2\n"
      "edge 1 2 3\n"
      "edge 2 3 1\n"
      "ic ends\n"
      "terminal 0 1\n"
      "terminal 3 1\n"
      "generate star n=5\n"
      "cr hub\n"
      "pair 1 4\n");
  ASSERT_EQ(w.cases.size(), 2u);
  EXPECT_EQ(w.cases[0].name, "tiny");
  EXPECT_EQ(w.cases[0].source, "graph");
  EXPECT_EQ(w.cases[1].name, "star");
  ASSERT_EQ(w.cases[1].instances.size(), 1u);
  EXPECT_TRUE(w.cases[1].instances[0].use_cr);
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  // Each entry: (spec text, reason it must be rejected).
  const char* bad[] = {
      "generate er n=30\n",                       // case without instances
      "generate er n=30\nsweep n 30 30\n"
      "sample random-ic s\n",                     // duplicate sweep value
      "generate er n=30\nsweep n 32 33\n"
      "sweep n 34 35\nsample random-ic s\n",      // duplicate sweep axis
      "generate er n=30\nsweep n 40 50\n"
      "sample random-ic s\n"
      "generate er n=30\nsweep n 40 50\n"
      "sample random-ic s\n",                     // colliding case names
      "generate er n=30\nsweep p 2\n"
      "sample random-ic s\n",                     // sweep value out of range
      "generate er n=30\nsweep frob 1\n"
      "sample random-ic s\n",                     // unknown sweep param
      "generate er n=30\n"
      "ic a\nterminal 0 1\nterminal 1 1\n"
      "sweep n 40\n",                             // sweep after explicit inst
      "sweep n 40\n",                             // sweep before any source
      "generate er p=0.5 p=0.6\n"
      "sample random-ic s\n",                     // duplicate fixed param
      "generate frobnicate\nsample random-ic s\n",  // unknown family
      "generate er n=30\nsample frobnicate s\n",    // unknown sampler
      "generate er n=30\nsample random-ic a\n"
      "sample random-ic a\n",                     // duplicate instance name
      "generate er nonsense\nsample random-ic s\n",  // not key=value
      "graph 3\nedge 0 1 1\nedge 0 1 2\n"
      "ic a\nterminal 0 1\nterminal 1 1\n",       // duplicate edge
      "graph 3\nedge 0 1 1\nedge 1 0 2\n"
      "ic a\nterminal 0 1\nterminal 1 1\n",       // parallel edge, reversed
      "seed 1\nseed 2\ngraph 2\nedge 0 1 1\n"
      "ic a\nterminal 0 1\nterminal 1 1\n",       // duplicate seed
      "seed 0\ngraph 2\nedge 0 1 1\n"
      "ic a\nterminal 0 1\nterminal 1 1\n",       // 0 = batch sentinel
      "graph 2\nedge 0 1 1\nseed 1\n"
      "ic a\nterminal 0 1\nterminal 1 1\n",       // seed after a source
      "generate er n=10\nic a\nterminal 15 1\n",  // terminal beyond n
      "generate er n=10\ncr a\npair 0 12\n",      // pair beyond n
      "import webdav foo.stp\n",                  // unknown import format
      "import stp /nonexistent/x.stp\n",          // unreadable import
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)ExpandString(text), std::runtime_error) << text;
  }
}

TEST(WorkloadSpecTest, ErrorsCarryOriginAndLine) {
  try {
    (void)ExpandString("generate grid rows=3 cols=3\nsweep rows 5000\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("<string>:2"), std::string::npos)
        << e.what();
  }
  // Expansion-time failures (sampler too large for the generated graph)
  // must also name the offending line.
  try {
    (void)ExpandString(
        "generate path n=4\nsample random-ic big k=4 tpc=2\n");
    FAIL() << "expected expansion error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("<string>:2"), std::string::npos)
        << e.what();
  }
}

TEST(WorkloadSpecTest, BuildRequestsIsSolverMajor) {
  const Workload w = ExpandString(
      "generate grid rows=3 cols=3\n"
      "sample random-ic a k=2\n"
      "sample random-cr b pairs=2\n"
      "generate path n=6\n"
      "ic ends\n"
      "terminal 0 1\n"
      "terminal 5 1\n");
  const std::vector<std::string> solvers = {"gw-moat", "mst-prune"};
  const RequestMatrix matrix = BuildRequests(w, solvers, {});
  ASSERT_EQ(matrix.requests.size(), 6u);  // 2 solvers x 3 instances
  EXPECT_EQ(matrix.requests[0].solver, "gw-moat");
  EXPECT_EQ(matrix.requests[3].solver, "mst-prune");
  for (std::size_t i = 0; i < matrix.requests.size(); ++i) {
    const auto c = static_cast<std::size_t>(matrix.case_index[i]);
    EXPECT_EQ(matrix.requests[i].graph, &w.cases[c].graph);
    const auto j = static_cast<std::size_t>(matrix.instance_index[i]);
    EXPECT_EQ(matrix.requests[i].use_cr, w.cases[c].instances[j].use_cr);
  }
}

TEST(WorkloadSpecTest, EndToEndSolveOnGeneratedSweep) {
  const Workload w = ExpandString(
      "seed 5\n"
      "generate grid rows=3 min_w=1 max_w=4\n"
      "sweep cols 3 4\n"
      "sample random-ic spread k=2\n");
  const std::vector<std::string> solvers = {"gw-moat", "dist-det"};
  const RequestMatrix matrix = BuildRequests(w, solvers, {});
  BatchOptions opt;
  opt.master_seed = w.seed;
  BatchEngine engine(opt);
  const auto results = engine.Run(matrix.requests);
  ASSERT_EQ(results.size(), 4u);
  for (const SolveResult& r : results) {
    EXPECT_TRUE(r.feasible) << r.solver;
    EXPECT_GT(r.weight, 0);
  }
}

// --- importers ---------------------------------------------------------------

constexpr char kTinyStp[] =
    "33D32945 STP File, STP Format Version 1.0\n"
    "SECTION Comment\n"
    "Name \"tiny\"\n"
    "END\n"
    "SECTION Graph\n"
    "Nodes 4\n"
    "Edges 5\n"
    "E 1 2 3\n"
    "E 2 3 1\n"
    "E 3 4 2\n"
    "E 1 4 7\n"
    "E 4 1 5\n"  // duplicate of {0,3}: keeps the minimum weight 5
    "END\n"
    "SECTION Terminals\n"
    "Terminals 2\n"
    "T 1\n"
    "T 4\n"
    "END\n"
    "EOF\n";

TEST(ImportTest, SteinLibGraphAndTerminals) {
  std::istringstream in(kTinyStp);
  const ImportedWorkload w = ParseSteinLib(in, "<stp>");
  EXPECT_EQ(w.graph.NumNodes(), 4);
  EXPECT_EQ(w.graph.NumEdges(), 4);  // duplicate collapsed
  Weight w03 = 0;
  for (const Edge& e : w.graph.Edges()) {
    const auto key = std::minmax(e.u, e.v);
    if (key.first == 0 && key.second == 3) w03 = e.w;
  }
  EXPECT_EQ(w03, 5);  // min of 7 and 5
  ASSERT_TRUE(w.has_terminals);
  EXPECT_EQ(w.terminals.NumTerminals(), 2);
  EXPECT_EQ(w.terminals.NumComponents(), 1);  // one label: a tree instance
  EXPECT_TRUE(w.terminals.IsTerminal(0));     // T 1 is node 0 (1-based input)
  EXPECT_TRUE(w.terminals.IsTerminal(3));
}

TEST(ImportTest, SteinLibAcceptsCrlfLineEndings) {
  // Published SteinLib archives unpack with Windows line endings on some
  // mirrors; the shared line reader strips the '\r' before tokenization.
  std::string crlf;
  for (const char c : std::string(kTinyStp)) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream in(crlf);
  const ImportedWorkload w = ParseSteinLib(in, "<stp>");
  EXPECT_EQ(w.graph.NumNodes(), 4);
  EXPECT_EQ(w.graph.NumEdges(), 4);
  ASSERT_TRUE(w.has_terminals);
  EXPECT_EQ(w.terminals.NumTerminals(), 2);
}

TEST(ImportTest, SteinLibRejectsMalformed) {
  const char* bad[] = {
      "",                                                    // empty
      "not an stp file\n",                                   // bad magic
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 2 1\nEND\n",                                      // missing EOF
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 2\n"
      "E 1 2 1\nEND\nEOF\n",                                 // count mismatch
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 3 1\nEND\nEOF\n",                                 // node beyond n
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 2 0\nEND\nEOF\n",                                 // weight < 1
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 2 1\nEND\nSECTION Terminals\nTerminals 2\nT 1\n"
      "END\nEOF\n",                                          // t mismatch
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 2 1\nfrob\nEND\nEOF\n",                           // unknown keyword
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 2 7x\nEND\nEOF\n",                                // weight typo
      "33D32945 STP\nSECTION Graph\nNodes 2\nEdges 1\n"
      "E 1 2 1 9\nEND\nEOF\n",                               // extra token
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW((void)ParseSteinLib(in, "<stp>"), std::runtime_error)
        << text;
  }
}

TEST(ImportTest, DimacsGraph) {
  std::istringstream in(
      "c a DIMACS-style graph\n"
      "p edge 5 5\n"
      "e 1 2 4\n"
      "e 2 3\n"      // weight defaults to 1
      "a 3 4 2\n"    // arcs are undirected here
      "a 4 3 6\n"    // reverse restatement: min weight wins
      "e 4 5 3\n");
  const ImportedWorkload w = ParseDimacs(in, "<dimacs>");
  EXPECT_EQ(w.graph.NumNodes(), 5);
  EXPECT_EQ(w.graph.NumEdges(), 4);
  EXPECT_FALSE(w.has_terminals);
  Weight w23 = 0;
  Weight w12 = 0;
  for (const Edge& e : w.graph.Edges()) {
    const auto key = std::minmax(e.u, e.v);
    if (key.first == 2 && key.second == 3) w23 = e.w;
    if (key.first == 1 && key.second == 2) w12 = e.w;
  }
  EXPECT_EQ(w23, 2);
  EXPECT_EQ(w12, 1);
}

TEST(ImportTest, DimacsRejectsMalformed) {
  const char* bad[] = {
      "e 1 2 1\n",                       // edge before header
      "c nothing\n",                     // no header
      "p edge 2 1\np edge 2 1\ne 1 2 1\ne 1 2 1\n",  // duplicate header
      "p edge 2 1\ne 1 3 1\n",           // endpoint beyond n
      "p edge 2 1\ne 1 2 0\n",           // weight < 1
      "p edge 2 2\ne 1 2 1\n",           // count mismatch
      "p edge 2 1\nq 1 2 1\n",           // unknown line
      "p edge 2 1\ne 1 2 5x\n",          // weight typo truncated
      "p edge 2 1\ne 1 2 x\n",           // non-numeric weight
      "p edge 2 1\ne 1 2 1 9\n",         // extra token
      "p edge 2 1 9\ne 1 2 1\n",         // extra header token
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW((void)ParseDimacs(in, "<dimacs>"), std::runtime_error)
        << text;
  }
}

TEST(ImportTest, StpLoadsAsSingleCaseWorkload) {
  const std::string path = ::testing::TempDir() + "/dsf_tiny_test.stp";
  {
    std::ofstream out(path);
    out << kTinyStp;
  }
  const Workload w = LoadWorkload(path);
  ASSERT_EQ(w.cases.size(), 1u);
  EXPECT_EQ(w.cases[0].name, "dsf_tiny_test");
  ASSERT_EQ(w.cases[0].instances.size(), 1u);
  EXPECT_EQ(w.cases[0].instances[0].name, "terminals");
  EXPECT_EQ(w.cases[0].instances[0].ic.NumTerminals(), 2);
}

// --- the new adversarial families --------------------------------------------

TEST(GeneratorRegistryTest, ExpanderFarPairsPlantsEndpointsOnTails) {
  // pairs=3, tail=8, core=32: endpoints are ids 0..5, each the tip of a
  // tail-long path into the core, so total n = 6 * 8 + 32.
  const Graph g = BuildGenerator(
      "expander-far-pairs",
      ParamList{{"pairs", "3"}, {"tail", "8"}, {"core", "32"}}, 3);
  EXPECT_EQ(g.NumNodes(), 6 * 8 + 32);
  for (NodeId endpoint = 0; endpoint < 6; ++endpoint) {
    EXPECT_EQ(g.Neighbors(endpoint).size(), 1u)
        << "endpoint " << endpoint << " must be a tail tip";
  }
}

TEST(GeneratorRegistryTest, PowerLawGrowsHubs) {
  const Graph g =
      BuildGenerator("power-law", ParamList{{"n", "200"}, {"m", "2"}}, 11);
  EXPECT_EQ(g.NumNodes(), 200);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_degree = std::max(max_degree, g.Neighbors(v).size());
  }
  // Preferential attachment concentrates degree: with m=2 the heaviest hub
  // sits far above the ~4 average degree for any seed.
  EXPECT_GE(max_degree, 8u);
}

// --- churn traces and the `churn` directive ----------------------------------

std::string TraceToString(const ChurnTrace& trace) {
  std::ostringstream os;
  WriteChurnTrace(os, trace);
  return os.str();
}

TEST(ChurnTraceTest, WriteParseWriteIsBitIdentical) {
  const ChurnTrace trace = SampleChurnTrace(60, 0, 6, 5, 2, 99);
  const std::string once = TraceToString(trace);
  std::istringstream in(once);
  const ChurnTrace parsed = ParseChurnTrace(in, "<mem>");
  EXPECT_EQ(TraceToString(parsed), once);
  EXPECT_EQ(parsed.base.NumTerminals(), trace.base.NumTerminals());
  ASSERT_EQ(parsed.steps.size(), trace.steps.size());
  // Replayed states match the original at every step depth.
  for (int k = 0; k <= static_cast<int>(trace.steps.size()); ++k) {
    const IcInstance a = trace.StateAt(k);
    const IcInstance b = parsed.StateAt(k);
    ASSERT_EQ(a.Terminals(), b.Terminals()) << "step " << k;
    for (const NodeId v : a.Terminals()) {
      EXPECT_EQ(a.LabelOf(v), b.LabelOf(v)) << "step " << k;
    }
  }
}

TEST(ChurnTraceTest, ParserRejectsMalformedWithOriginAndLine) {
  const auto error_of = [](const std::string& text) {
    std::istringstream in(text);
    try {
      (void)ParseChurnTrace(in, "<trace>");
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  // Wrong magic.
  EXPECT_NE(error_of("bogus 1\n").find("<trace>:1:"), std::string::npos);
  // Unsupported version.
  EXPECT_NE(error_of("dsf-churn 2\n").find("<trace>:1:"), std::string::npos);
  // Base terminals out of increasing node order (line 5).
  EXPECT_NE(error_of("dsf-churn 1\nnodes 10\nbase 2\nt 5 1\nt 3 1\n"
                     "steps 0\neof\n")
                .find("<trace>:5:"),
            std::string::npos);
  // Content after the trailer.
  EXPECT_NE(error_of("dsf-churn 1\nnodes 10\nbase 0\nsteps 0\neof\nx\n")
                .find("after eof"),
            std::string::npos);
  // Missing trailer.
  EXPECT_NE(error_of("dsf-churn 1\nnodes 10\nbase 0\nsteps 0\n")
                .find("eof"),
            std::string::npos);
}

TEST(WorkloadSpecTest, ChurnDirectiveReplaysTraceStates) {
  const ChurnTrace trace = SampleChurnTrace(50, 0, 5, 4, 2, 123);
  const std::string path = ::testing::TempDir() + "/dsf_churn_test.trace";
  SaveChurnTrace(path, trace);

  const Workload w = ExpandString(
      "generate er n=50 p=0.08 as base\n"
      "churn at0 " + path + "\n"
      "churn at4 " + path + " steps=4\n");
  ASSERT_EQ(w.cases.size(), 1u);
  ASSERT_EQ(w.cases[0].instances.size(), 2u);
  EXPECT_EQ(w.cases[0].instances[0].name, "at0");
  EXPECT_EQ(w.cases[0].instances[1].name, "at4");
  const IcInstance expect0 = trace.StateAt(0);
  const IcInstance expect4 = trace.StateAt(4);
  EXPECT_EQ(w.cases[0].instances[0].ic.Terminals(), expect0.Terminals());
  EXPECT_EQ(w.cases[0].instances[1].ic.Terminals(), expect4.Terminals());
}

TEST(WorkloadSpecTest, ChurnDirectiveRejectsBadUses) {
  const ChurnTrace trace = SampleChurnTrace(50, 0, 5, 4, 2, 123);
  const std::string path = ::testing::TempDir() + "/dsf_churn_test.trace";
  SaveChurnTrace(path, trace);

  // Before any case block.
  EXPECT_THROW((void)ExpandString("churn c " + path + "\n"),
               std::runtime_error);
  // Malformed steps= argument.
  EXPECT_THROW((void)ExpandString("generate er n=50\nchurn c " + path +
                                  " steps=abc\n"),
               std::runtime_error);
  // More steps than the trace holds.
  EXPECT_THROW((void)ExpandString("generate er n=50\nchurn c " + path +
                                  " steps=99\n"),
               std::runtime_error);
  // Node-count mismatch between trace (50) and case (40).
  EXPECT_THROW((void)ExpandString("generate er n=40\nchurn c " + path + "\n"),
               std::runtime_error);
}

// --- the committed suite corpus ----------------------------------------------

// Pins the exact shape of every checked-in SteinLib lookalike: a regenerated
// or hand-edited corpus changes these counts and must arrive together with a
// new suite baseline.
TEST(ImportTest, SuiteCorpusShapesArePinned) {
  struct Pin {
    const char* name;
    int n;
    EdgeId m;
    int terminals;
  };
  constexpr Pin kPins[] = {
      {"b_like_01", 50, 141, 9},  {"b_like_02", 50, 182, 9},
      {"c_like_01", 100, 357, 12}, {"c_like_02", 100, 461, 12},
      {"d_like_01", 160, 550, 16}, {"d_like_02", 160, 763, 16},
  };
  for (const Pin& pin : kPins) {
    const std::string path = std::string(DSF_SOURCE_DIR) +
                             "/scenarios/suite/" + pin.name + ".stp";
    const Workload w = LoadWorkload(path);
    ASSERT_EQ(w.cases.size(), 1u) << pin.name;
    EXPECT_EQ(w.cases[0].graph.NumNodes(), pin.n) << pin.name;
    EXPECT_EQ(w.cases[0].graph.NumEdges(), pin.m) << pin.name;
    ASSERT_EQ(w.cases[0].instances.size(), 1u) << pin.name;
    EXPECT_EQ(w.cases[0].instances[0].ic.NumTerminals(), pin.terminals)
        << pin.name;
  }
}

// The committed adversarial spec expands deterministically into the six
// generated instances the suite wall measures.
TEST(WorkloadSpecTest, CommittedAdversarialSpecExpands) {
  const Workload w = LoadWorkload(std::string(DSF_SOURCE_DIR) +
                                  "/scenarios/suite/adversarial.dsf");
  ASSERT_EQ(w.cases.size(), 3u);
  EXPECT_EQ(w.cases[0].name, "expander");
  EXPECT_EQ(w.cases[1].name, "powerlaw");
  EXPECT_EQ(w.cases[2].name, "er100");
  EXPECT_EQ(w.cases[0].instances.size(), 1u);
  EXPECT_EQ(w.cases[1].instances.size(), 2u);
  ASSERT_EQ(w.cases[2].instances.size(), 3u);
  // The churn replays share the trace's base population and drift apart as
  // steps apply.
  EXPECT_EQ(w.cases[2].instances[0].name, "churn0");
  EXPECT_EQ(w.cases[2].instances[0].ic.NumTerminals(), 16);
  EXPECT_EQ(w.cases[2].instances[2].name, "churn6");
}

TEST(ImportTest, SpecImportsStpWithSampledInstances) {
  const std::string path = ::testing::TempDir() + "/dsf_spec_test.stp";
  {
    std::ofstream out(path);
    out << kTinyStp;
  }
  const Workload w = ExpandString("import stp " + path +
                                  " as lib\n"
                                  "sample random-cr extra pairs=2\n");
  ASSERT_EQ(w.cases.size(), 1u);
  EXPECT_EQ(w.cases[0].name, "lib");
  ASSERT_EQ(w.cases[0].instances.size(), 2u);  // terminals + sampled
  EXPECT_EQ(w.cases[0].instances[0].name, "terminals");
  EXPECT_EQ(w.cases[0].instances[1].name, "extra");
  EXPECT_TRUE(w.cases[0].instances[1].use_cr);
}

}  // namespace
}  // namespace dsf
