#include "steiner/validate.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dsf {
namespace {

TEST(ValidateTest, EmptyForestInfeasibleWhenTerminalsSeparated) {
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {3, 1}});
  EXPECT_FALSE(IsFeasible(g, ic, std::vector<EdgeId>{}));
  EXPECT_FALSE(FeasibilityDiagnostic(g, ic, std::vector<EdgeId>{}).empty());
}

TEST(ValidateTest, FullPathFeasible) {
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {3, 1}});
  const std::vector<EdgeId> all{0, 1, 2};
  EXPECT_TRUE(IsFeasible(g, ic, all));
}

TEST(ValidateTest, NoTerminalsAlwaysFeasible) {
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {});
  EXPECT_TRUE(IsFeasible(g, ic, std::vector<EdgeId>{}));
}

TEST(ValidateTest, MultipleComponentsEachChecked) {
  const Graph g = MakeCycle(6);
  const IcInstance ic = MakeIcInstance(6, {{0, 1}, {2, 1}, {3, 2}, {5, 2}});
  // Edges 0:(0,1) 1:(1,2) connect component 1; component 2 left disconnected.
  EXPECT_FALSE(IsFeasible(g, ic, std::vector<EdgeId>{0, 1}));
  // Add edges 3:(3,4), 4:(4,5) to connect 3 and 5.
  EXPECT_TRUE(IsFeasible(g, ic, std::vector<EdgeId>{0, 1, 3, 4}));
}

TEST(ValidateTest, CrFeasibility) {
  const Graph g = MakePath(5);
  const CrInstance cr = MakeCrInstance(5, {{0, 2}, {3, 4}});
  EXPECT_FALSE(IsFeasibleCr(g, cr, std::vector<EdgeId>{0}));
  EXPECT_TRUE(IsFeasibleCr(g, cr, std::vector<EdgeId>{0, 1, 3}));
}

TEST(ValidateTest, MinimalFeasibleDetectsSlack) {
  const Graph g = MakePath(5);
  const IcInstance ic = MakeIcInstance(5, {{0, 1}, {2, 1}});
  const std::vector<EdgeId> slack{0, 1, 2};  // edge 2 unnecessary
  EXPECT_TRUE(IsFeasible(g, ic, slack));
  EXPECT_FALSE(IsMinimalFeasible(g, ic, slack));
  EXPECT_TRUE(IsMinimalFeasible(g, ic, std::vector<EdgeId>{0, 1}));
}

TEST(ValidateTest, DiagnosticNamesOffendingComponent) {
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 42}, {3, 42}});
  const auto diag = FeasibilityDiagnostic(g, ic, std::vector<EdgeId>{});
  EXPECT_NE(diag.find("42"), std::string::npos);
}

}  // namespace
}  // namespace dsf
