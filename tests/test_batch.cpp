// BatchEngine: bit-identical results across thread counts, master-seed
// discipline (request i == Solve with DeriveSeed(master, i)), and aggregate
// statistics.
#include "solve/batch.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "graph/generators.hpp"

namespace dsf {
namespace {

// A heterogeneous batch on one shared topology: every family, two
// instances, mixed input forms.
std::vector<SolveRequest> MakeBatch(const Graph& g) {
  const IcInstance ic =
      MakeIcInstance(g.NumNodes(), {{0, 1}, {15, 1}, {3, 2}, {12, 2}});
  const CrInstance cr = MakeCrInstance(g.NumNodes(), {{1, 14}, {2, 8}});
  std::vector<SolveRequest> batch;
  for (const auto name : SolverRegistry::Names()) {
    SolveRequest req;
    req.solver = std::string(name);
    req.graph = &g;
    req.ic = ic;
    batch.push_back(req);
    req.ic = {};
    req.cr = cr;
    req.use_cr = true;
    batch.push_back(std::move(req));
  }
  return batch;
}

void ExpectSameResults(const std::vector<SolveResult>& a,
                       const std::vector<SolveResult>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].solver, b[i].solver) << what << " i=" << i;
    EXPECT_EQ(a[i].forest, b[i].forest) << what << " i=" << i;
    EXPECT_EQ(a[i].weight, b[i].weight) << what << " i=" << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << what << " i=" << i;
    EXPECT_EQ(a[i].stats.rounds, b[i].stats.rounds) << what << " i=" << i;
    EXPECT_EQ(a[i].stats.messages, b[i].stats.messages) << what << " i=" << i;
    EXPECT_EQ(a[i].stats.total_bits, b[i].stats.total_bits)
        << what << " i=" << i;
    EXPECT_EQ(a[i].dual_lower_bound, b[i].dual_lower_bound)
        << what << " i=" << i;
  }
}

TEST(BatchEngineTest, BitIdenticalAcrossThreadCounts) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  const auto batch = MakeBatch(g);

  std::vector<SolveResult> baseline;
  for (const int threads : {1, 2, 4, 8}) {
    BatchOptions opt;
    opt.threads = threads;
    opt.master_seed = 99;
    BatchEngine engine(opt);
    auto results = engine.Run(batch);
    EXPECT_EQ(engine.LastStats().requests, static_cast<int>(batch.size()));
    EXPECT_EQ(engine.LastStats().infeasible, 0) << threads;
    if (threads == 1) {
      baseline = std::move(results);
    } else {
      ExpectSameResults(baseline, results, "threads");
    }
  }
}

TEST(BatchEngineTest, MasterSeedMatchesDirectPipelineCalls) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  const auto batch = MakeBatch(g);
  constexpr std::uint64_t kMaster = 1234;

  BatchOptions opt;
  opt.threads = 2;
  opt.master_seed = kMaster;
  BatchEngine engine(opt);
  const auto results = engine.Run(batch);

  std::vector<SolveResult> direct;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SolveRequest req = batch[i];
    req.seed = DeriveSeed(kMaster, i);
    req.options.net.threads = 1;
    direct.push_back(Solve(req));
  }
  ExpectSameResults(direct, results, "master-seed");
}

TEST(BatchEngineTest, ZeroMasterSeedKeepsRequestSeeds) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  SolveRequest req;
  req.solver = "dist-rand";
  req.graph = &g;
  req.ic = MakeIcInstance(16, {{0, 1}, {15, 1}, {3, 2}, {12, 2}});
  req.seed = 77;
  BatchEngine engine;  // threads = 1, master_seed = 0
  const auto results = engine.Run(std::vector<SolveRequest>{req});
  const SolveResult direct = Solve("dist-rand", g, req.ic, {}, 77);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].forest, direct.forest);
  EXPECT_EQ(results[0].stats.rounds, direct.stats.rounds);
}

TEST(BatchEngineTest, StatsAggregate) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  const auto batch = MakeBatch(g);
  BatchOptions opt;
  opt.master_seed = 5;
  BatchEngine engine(opt);
  const auto results = engine.Run(batch);
  const BatchStats& stats = engine.LastStats();

  EXPECT_EQ(stats.requests, static_cast<int>(batch.size()));
  EXPECT_EQ(stats.infeasible, 0);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.instances_per_sec, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.max_ms);
  Weight total = 0;
  long rounds = 0;
  for (const auto& r : results) {
    total += r.weight;
    rounds += r.stats.rounds;
  }
  EXPECT_EQ(stats.total_weight, total);
  EXPECT_EQ(stats.total_rounds, rounds);
}

TEST(BatchEngineTest, EmptyBatch) {
  BatchEngine engine;
  const auto results = engine.Run(std::vector<SolveRequest>{});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.LastStats().requests, 0);
  EXPECT_EQ(engine.LastStats().p95_ms, 0.0);
}

}  // namespace
}  // namespace dsf
