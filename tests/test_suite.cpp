// The suite wall: manifest parsing, baseline round-trips, regression
// checks, and the committed corpus staying a fixed point of its generator.
#include "suite/manifest.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "suite/baseline.hpp"
#include "suite/check.hpp"
#include "suite/corpus.hpp"
#include "suite/runner.hpp"

namespace dsf {
namespace {

SuiteManifest ParseString(const std::string& text) {
  std::istringstream in(text);
  return ParseSuiteManifest(in, "<string>");
}

std::string ErrorOf(const std::string& text) {
  try {
    (void)ParseString(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

constexpr char kTinyStp[] =
    "33D32945 STP File, STP Format Version 1.0\n"
    "SECTION Graph\n"
    "Nodes 4\n"
    "Edges 4\n"
    "E 1 2 1\n"
    "E 2 3 2\n"
    "E 3 4 1\n"
    "E 1 4 5\n"
    "END\n"
    "SECTION Terminals\n"
    "Terminals 2\n"
    "T 1\n"
    "T 3\n"
    "END\n"
    "EOF\n";

// Writes a self-contained manifest + one .stp source into TempDir and
// returns the manifest path.
std::string WriteTinySuite() {
  const std::string dir = ::testing::TempDir();
  const std::string stp_path = dir + "/suite_tiny.stp";
  {
    std::ofstream out(stp_path);
    out << kTinyStp;
  }
  const std::string manifest_path = dir + "/suite_tiny.dsf-suite";
  {
    std::ofstream out(manifest_path);
    out << "seed 7\n"
           "solver gw-moat\n"
           "solver mst-prune\n"
           "timing-reps 2\n"
           "latency-band 3\n"
           "latency-floor-ms 50\n"
           "stp suite_tiny.stp\n";
  }
  return manifest_path;
}

// --- manifest parsing --------------------------------------------------------

TEST(SuiteManifestTest, ParsesAllDirectives) {
  const SuiteManifest m = ParseString(
      "# comment\n"
      "seed 9\n"
      "solver gw-moat\n"
      "solver mst-prune\n"
      "timing-reps 5\n"
      "latency-band 2.5\n"
      "latency-floor-ms 10\n"
      "stp a.stp\n"
      "optional-stp b.stp\n"
      "spec c.dsf\n");
  EXPECT_EQ(m.seed, 9u);
  ASSERT_EQ(m.solvers.size(), 2u);
  EXPECT_EQ(m.solvers[0], "gw-moat");
  EXPECT_EQ(m.timing_reps, 5);
  EXPECT_DOUBLE_EQ(m.latency_band, 2.5);
  EXPECT_DOUBLE_EQ(m.latency_floor_ms, 10.0);
  ASSERT_EQ(m.sources.size(), 3u);
  EXPECT_EQ(m.sources[0].kind, SuiteSource::Kind::kStp);
  EXPECT_EQ(m.sources[1].kind, SuiteSource::Kind::kOptionalStp);
  EXPECT_EQ(m.sources[2].kind, SuiteSource::Kind::kSpec);
}

TEST(SuiteManifestTest, ErrorsCarryOriginAndLine) {
  // Unknown directive on line 3.
  EXPECT_NE(ErrorOf("solver gw-moat\nstp a.stp\nfrobnicate 1\n")
                .find("<string>:3:"),
            std::string::npos);
  // Invalid solver spec on line 1.
  EXPECT_NE(ErrorOf("solver no-such-solver\nstp a.stp\n").find("<string>:1:"),
            std::string::npos);
  // Duplicate solver on line 2.
  EXPECT_NE(ErrorOf("solver gw-moat\nsolver gw-moat\nstp a.stp\n")
                .find("<string>:2:"),
            std::string::npos);
  // Duplicate source path on line 3.
  EXPECT_NE(ErrorOf("solver gw-moat\nstp a.stp\nstp a.stp\n")
                .find("<string>:3:"),
            std::string::npos);
  // Out-of-range knob.
  EXPECT_NE(ErrorOf("solver gw-moat\ntiming-reps 0\nstp a.stp\n")
                .find("<string>:2:"),
            std::string::npos);
  // Empty roster / empty source list.
  EXPECT_NE(ErrorOf("stp a.stp\n").find("solver"), std::string::npos);
  EXPECT_NE(ErrorOf("solver gw-moat\n").find("source"), std::string::npos);
}

TEST(SuiteManifestTest, DigestTracksContentAndReferencedFiles) {
  const std::string manifest_path = WriteTinySuite();
  const SuiteManifest a = LoadSuiteManifest(manifest_path);
  const SuiteManifest b = LoadSuiteManifest(manifest_path);
  EXPECT_EQ(SuiteDigest(a), SuiteDigest(b));

  // A semantic knob flips the digest.
  SuiteManifest c = a;
  c.seed += 1;
  EXPECT_NE(SuiteDigest(a), SuiteDigest(c));

  // Editing a referenced file flips the digest, same manifest text.
  // (SuiteDigest reads the file at call time, so capture "before" first.)
  const std::string before = SuiteDigest(a);
  {
    std::ofstream out(::testing::TempDir() + "/suite_tiny.stp",
                      std::ios::app);
    out << "# touched\n";
  }
  EXPECT_NE(before, SuiteDigest(LoadSuiteManifest(manifest_path)));
  // Restore for the tests that follow.
  {
    std::ofstream out(::testing::TempDir() + "/suite_tiny.stp");
    out << kTinyStp;
  }
}

// --- runner + baseline -------------------------------------------------------

TEST(SuiteRunnerTest, RunsTheMatrixAndStampsContext) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  const SuiteBaseline b = RunSuite(manifest);
  ASSERT_EQ(b.cells.size(), 2u);  // 1 instance x 2 solvers
  EXPECT_EQ(b.solvers, manifest.solvers);
  EXPECT_EQ(b.seed, 7u);
  for (const SuiteCell& cell : b.cells) {
    EXPECT_EQ(cell.case_name, "suite_tiny");
    EXPECT_EQ(cell.instance, "terminals");
    EXPECT_EQ(cell.n, 4);
    EXPECT_EQ(cell.m, 4);
    EXPECT_TRUE(cell.feasible);
    EXPECT_GT(cell.cost, 0);
    EXPECT_GT(cell.dual_lb_fixed, 0);
    EXPECT_GE(cell.ratio, 1.0);
    EXPECT_GE(cell.p95_ms, cell.p50_ms);
  }
  // Quality is deterministic across whole runs, not just repetitions.
  const SuiteBaseline again = RunSuite(manifest);
  ASSERT_EQ(again.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < b.cells.size(); ++i) {
    EXPECT_EQ(again.cells[i].cost, b.cells[i].cost);
    EXPECT_EQ(again.cells[i].dual_lb_fixed, b.cells[i].dual_lb_fixed);
    EXPECT_EQ(again.cells[i].ratio, b.cells[i].ratio);
  }
}

TEST(SuiteBaselineTest, JsonRoundTripIsBitIdentical) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  SuiteBaseline b = RunSuite(manifest);
  b.manifest = "suite_tiny.dsf-suite";
  b.manifest_digest = SuiteDigest(manifest);
  b.skipped_sources.push_back("steinlib/b01.stp");

  const std::string once = SuiteBaselineToJson(b);
  const SuiteBaseline parsed = ParseSuiteBaseline(once, "<mem>");
  const std::string twice = SuiteBaselineToJson(parsed);
  EXPECT_EQ(once, twice);  // write -> read -> write is a fixed point

  EXPECT_EQ(parsed.manifest_digest, b.manifest_digest);
  EXPECT_EQ(parsed.seed, b.seed);
  EXPECT_EQ(parsed.skipped_sources, b.skipped_sources);
  ASSERT_EQ(parsed.cells.size(), b.cells.size());
  EXPECT_EQ(parsed.cells[0].cost, b.cells[0].cost);
  EXPECT_EQ(parsed.cells[0].ratio, b.cells[0].ratio);
  EXPECT_EQ(parsed.cells[0].p95_ms, b.cells[0].p95_ms);
}

TEST(SuiteBaselineTest, ReaderRejectsMalformedDocuments) {
  EXPECT_THROW((void)ParseSuiteBaseline("{}", "<mem>"), std::runtime_error);
  EXPECT_THROW((void)ParseSuiteBaseline("not json", "<mem>"),
               std::runtime_error);
  EXPECT_THROW(
      (void)ParseSuiteBaseline(
          R"({"dsf_suite_version":99,"context":{},"cells":[]})", "<mem>"),
      std::runtime_error);
}

// --- the --check gate --------------------------------------------------------

TEST(SuiteCheckTest, UnchangedRunPasses) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  const SuiteBaseline committed = RunSuite(manifest);
  const SuiteBaseline fresh = RunSuite(manifest);
  const SuiteCheckResult r = CompareBaselines(committed, fresh);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_NE(r.report.find("OK"), std::string::npos);
}

TEST(SuiteCheckTest, InjectedCostRegressionFails) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  const SuiteBaseline committed = RunSuite(manifest);
  SuiteRunOptions inject;
  inject.inject_cost_delta = 1;
  const SuiteBaseline fresh = RunSuite(manifest, inject);
  const SuiteCheckResult r = CompareBaselines(committed, fresh);
  EXPECT_FALSE(r.ok);
  bool saw_cost = false;
  bool saw_ratio = false;
  for (const SuiteRegression& reg : r.regressions) {
    saw_cost |= reg.metric == "cost";
    saw_ratio |= reg.metric == "ratio";  // injected cost moves the ratio too
  }
  EXPECT_TRUE(saw_cost);
  EXPECT_TRUE(saw_ratio);
  EXPECT_NE(r.report.find("cost"), std::string::npos);
}

TEST(SuiteCheckTest, InjectedLatencyRegressionFailsBeyondTheBand) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  const SuiteBaseline committed = RunSuite(manifest);
  SuiteRunOptions inject;
  inject.inject_p95_ms = 1e6;  // far past committed * (1 + 3) + 50ms
  const SuiteBaseline fresh = RunSuite(manifest, inject);
  const SuiteCheckResult r = CompareBaselines(committed, fresh);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.regressions.empty());
  for (const SuiteRegression& reg : r.regressions) {
    EXPECT_EQ(reg.metric, "p95_ms");  // quality must NOT drift on injection
  }
}

TEST(SuiteCheckTest, SmallLatencyJitterStaysWithinTheBand) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  const SuiteBaseline committed = RunSuite(manifest);
  SuiteRunOptions inject;
  inject.inject_p95_ms = 1.0;  // absorbed by the 50ms floor
  const SuiteBaseline fresh = RunSuite(manifest, inject);
  const SuiteCheckResult r = CompareBaselines(committed, fresh);
  EXPECT_TRUE(r.ok) << r.report;
}

TEST(SuiteCheckTest, DigestMismatchReportsStaleBaseline) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  SuiteBaseline committed = RunSuite(manifest);
  committed.manifest_digest = "0000000000000000";
  SuiteBaseline fresh = RunSuite(manifest);
  fresh.manifest_digest = SuiteDigest(manifest);
  const SuiteCheckResult r = CompareBaselines(committed, fresh);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].metric, "manifest_digest");
  EXPECT_NE(r.report.find("STALE BASELINE"), std::string::npos);
  EXPECT_NE(r.report.find("--record"), std::string::npos);
}

TEST(SuiteCheckTest, MissingAndExtraCellsAreStructuralRegressions) {
  const SuiteManifest manifest = LoadSuiteManifest(WriteTinySuite());
  const SuiteBaseline committed = RunSuite(manifest);
  SuiteBaseline fresh = committed;
  fresh.cells.pop_back();
  fresh.cells[0].instance = "renamed";
  const SuiteCheckResult r = CompareBaselines(committed, fresh);
  EXPECT_FALSE(r.ok);
  bool saw_missing = false;
  bool saw_extra = false;
  for (const SuiteRegression& reg : r.regressions) {
    saw_missing |= reg.metric == "missing cell";
    saw_extra |= reg.metric == "extra cell";
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_extra);
}

// --- the committed corpus ----------------------------------------------------

// The checked-in scenarios/suite/ files must be exactly what
// `dsf suite --emit-corpus` regenerates: a hand-edit would silently decouple
// the corpus from its seeds.
TEST(SuiteCorpusTest, CommittedFilesMatchTheGenerator) {
  const std::string dir = std::string(DSF_SOURCE_DIR) + "/scenarios/suite/";
  const std::vector<CorpusFile> files = SuiteCorpusFiles();
  ASSERT_EQ(files.size(), 7u);  // six .stp lookalikes + the churn trace
  for (const CorpusFile& file : files) {
    std::ifstream in(dir + file.name, std::ios::binary);
    ASSERT_TRUE(in) << "missing committed corpus file " << file.name;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), file.content)
        << file.name << " diverges from --emit-corpus; regenerate it";
  }
}

TEST(SuiteCorpusTest, CommittedManifestLoadsAndListsTheWall) {
  const SuiteManifest m = LoadSuiteManifest(
      std::string(DSF_SOURCE_DIR) + "/scenarios/suite/manifest.dsf-suite");
  EXPECT_GE(m.solvers.size(), 5u);
  EXPECT_GE(m.sources.size(), 8u);  // 6 stp + optional + spec
  EXPECT_EQ(m.seed, 9181u);
}

}  // namespace
}  // namespace dsf
