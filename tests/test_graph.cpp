#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dsf {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  g.Finalize();
  EXPECT_EQ(g.NumNodes(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.TotalWeight(), 0);
}

TEST(GraphTest, SingleNode) {
  Graph g(1);
  g.Finalize();
  EXPECT_EQ(g.NumNodes(), 1);
  EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(GraphTest, AddEdgeReturnsSequentialIds) {
  Graph g(3);
  EXPECT_EQ(g.AddEdge(0, 1, 5), 0);
  EXPECT_EQ(g.AddEdge(1, 2, 7), 1);
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.GetEdge(0).w, 5);
  EXPECT_EQ(g.GetEdge(1).w, 7);
}

TEST(GraphTest, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.AddEdge(1, 1, 1), std::logic_error);
}

TEST(GraphTest, RejectsNonPositiveWeight) {
  Graph g(2);
  EXPECT_THROW(g.AddEdge(0, 1, 0), std::logic_error);
  EXPECT_THROW(g.AddEdge(0, 1, -3), std::logic_error);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  Graph g(2);
  EXPECT_THROW(g.AddEdge(0, 2, 1), std::logic_error);
  EXPECT_THROW(g.AddEdge(-1, 1, 1), std::logic_error);
}

TEST(GraphTest, NeighborsListsBothDirections) {
  Graph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 2);
  g.AddEdge(2, 3, 3);
  g.Finalize();
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 2);
  EXPECT_EQ(g.Degree(3), 1);
  const auto nb0 = g.Neighbors(0);
  std::vector<NodeId> ids;
  for (const auto& inc : nb0) ids.push_back(inc.neighbor);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<NodeId>{1, 2}));
}

TEST(GraphTest, EdgeOther) {
  const Edge e{3, 7, 2};
  EXPECT_EQ(e.Other(3), 7);
  EXPECT_EQ(e.Other(7), 3);
}

TEST(GraphTest, TotalWeight) {
  Graph g(3);
  g.AddEdge(0, 1, 10);
  g.AddEdge(1, 2, 20);
  g.Finalize();
  EXPECT_EQ(g.TotalWeight(), 30);
}

TEST(GraphTest, WeightOfSubset) {
  Graph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 2);
  g.AddEdge(2, 3, 4);
  g.Finalize();
  const std::vector<EdgeId> subset{0, 2};
  EXPECT_EQ(g.WeightOf(subset), 5);
}

TEST(GraphTest, IsForestDetectsCycle) {
  Graph g(3);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 0, 1);
  g.Finalize();
  EXPECT_TRUE(g.IsForest(std::vector<EdgeId>{0, 1}));
  EXPECT_FALSE(g.IsForest(std::vector<EdgeId>{0, 1, 2}));
}

TEST(GraphTest, MakeGraphConvenience) {
  const Graph g = MakeGraph(3, {{0, 1, 2}, {1, 2, 3}});
  EXPECT_TRUE(g.Finalized());
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.Summary(), "Graph(n=3, m=2)");
}

TEST(GraphTest, ParallelEdgesKeepDistinctIds) {
  Graph g(2);
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 1, 9);
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_FALSE(g.IsForest(std::vector<EdgeId>{0, 1}));
}

}  // namespace
}  // namespace dsf
