// common/hash.hpp: the shared FNV-1a / SplitMix64 primitives, and the
// seed-derivation compatibility they must preserve.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/random.hpp"

namespace dsf {
namespace {

TEST(HashTest, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit digests.
  EXPECT_EQ(Fnv1a().Digest(), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a().Bytes("a").Digest(), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a().Bytes("foobar").Digest(), 0x85944171f73967e8ULL);
}

TEST(HashTest, Mix64IsABijectionOnSamples) {
  // Distinct inputs must keep distinct outputs (spot-check a range plus
  // structured values an identity hash would cluster).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second) << i;
  }
  EXPECT_TRUE(seen.insert(Mix64(~0ULL)).second);
  EXPECT_TRUE(seen.insert(Mix64(1ULL << 63)).second);
}

TEST(HashTest, Mix64Avalanches) {
  // Adjacent inputs differ in roughly half the output bits.
  for (std::uint64_t i = 1; i < 64; ++i) {
    const int flipped = __builtin_popcountll(Mix64(i) ^ Mix64(i + 1));
    EXPECT_GT(flipped, 16) << i;
    EXPECT_LT(flipped, 48) << i;
  }
}

TEST(HashTest, SplitMixNextIsMix64OverGoldenCounter) {
  // random.hpp's generator is defined in terms of the shared avalanche;
  // pin the equivalence so neither side drifts.
  SplitMix64 rng(42);
  for (std::uint64_t step = 1; step <= 8; ++step) {
    EXPECT_EQ(rng.Next(), Mix64(42 + step * kGoldenGamma));
  }
}

TEST(HashTest, DeriveSeedKeepsHistoricalValues) {
  // DeriveSeed feeds every recorded workload; its outputs are part of the
  // repo's compatibility surface. These values pin the pre-refactor
  // formulation (second SplitMix64 output of the decorrelated state).
  const auto reference = [](std::uint64_t master, std::uint64_t index) {
    SplitMix64 mix(master ^
                   (0x517cc1b727220a95ULL + index * 0x2545f4914f6cdd1dULL));
    mix.Next();
    return mix.Next();
  };
  for (std::uint64_t master : {1ULL, 7ULL, 123456789ULL, ~0ULL}) {
    for (std::uint64_t index : {0ULL, 1ULL, 2ULL, 63ULL, 1000000ULL}) {
      EXPECT_EQ(DeriveSeed(master, index), reference(master, index))
          << master << "/" << index;
    }
  }
}

TEST(HashTest, IdHashSpreadsConsecutiveKeys) {
  // The container-facing functor must not be the identity: consecutive
  // node ids land in unrelated buckets.
  std::unordered_set<NodeId, IdHash> set;
  for (NodeId v = 0; v < 1000; ++v) set.insert(v);
  EXPECT_EQ(set.size(), 1000u);
  std::size_t identical = 0;
  for (NodeId v = 0; v < 1000; ++v) {
    if (IdHash{}(v) == static_cast<std::size_t>(v)) ++identical;
  }
  EXPECT_LT(identical, 5u);
}

TEST(HashTest, HashCombineOrderMatters) {
  const std::uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const std::uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace dsf
