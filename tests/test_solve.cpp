// The unified solver layer: registry lookups, the shared pipeline on both
// input forms, and the cross-solver consistency sweep — every registered
// solver must return a feasible forest, and the deterministic solver must
// stay within its (2+ε) bound of the primal-dual lower bound reported by
// gw-moat (Theorem 4.1 / 4.2, Lemma C.4).
#include "solve/solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "graph/generators.hpp"
#include "solve/solver_spec.hpp"
#include "steiner/instance.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

const std::vector<std::string_view> kAllSolvers{
    "exact",        "gw-moat",  "mst-prune", "greedy-merge", "local-search",
    "dist-det",     "dist-rand", "dist-khan", "portfolio"};

IcInstance GridInstance() {
  return MakeIcInstance(16, {{0, 1}, {15, 1}, {3, 2}, {12, 2}});
}

TEST(SolverRegistryTest, KnowsAllNineFamilies) {
  EXPECT_EQ(SolverRegistry::Names(), kAllSolvers);
  for (const auto name : kAllSolvers) {
    const Solver* s = SolverRegistry::Find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->Name(), name);
    EXPECT_FALSE(s->Description().empty());
    EXPECT_EQ(&SolverRegistry::Get(name), s);
  }
  EXPECT_TRUE(SolverRegistry::Find("exact")->Distributed() == false);
  EXPECT_TRUE(SolverRegistry::Get("dist-det").Distributed());
}

TEST(SolverRegistryTest, UnknownNameFailsLoudly) {
  EXPECT_EQ(SolverRegistry::Find("nope"), nullptr);
  EXPECT_THROW((void)SolverRegistry::Get("nope"), std::logic_error);
  SolveRequest req;
  req.solver = "nope";
  // The pipeline rejects the name at the spec-parsing stage.
  EXPECT_THROW(Solve(req), std::runtime_error);
}

TEST(SolvePipelineTest, UniformResultAcrossFamilies) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  const IcInstance ic = GridInstance();
  const Weight opt = Solve("exact", g, ic).weight;
  ASSERT_GT(opt, 0);
  for (const auto name : kAllSolvers) {
    const SolveResult res = Solve(name, g, ic);
    // Result names are canonicalized specs — bare "portfolio" stringifies
    // with its default roster spelled out.
    EXPECT_EQ(res.solver, ParseSolverSpec(name).Canonical());
    EXPECT_TRUE(res.validated);
    EXPECT_TRUE(res.feasible) << name;
    EXPECT_TRUE(g.IsForest(res.forest)) << name;
    EXPECT_EQ(res.weight, g.WeightOf(res.forest)) << name;
    EXPECT_GE(res.weight, opt) << name;
    EXPECT_TRUE(std::is_sorted(res.forest.begin(), res.forest.end())) << name;
    const bool distributed = SolverRegistry::Get(name).Distributed();
    if (distributed) {
      EXPECT_GT(res.stats.rounds, 0) << name;
      EXPECT_GT(res.stats.messages, 0) << name;
    } else {
      EXPECT_EQ(res.stats.rounds, 0) << name;
    }
  }
}

TEST(SolvePipelineTest, DistributedMatchesCentralizedMoat) {
  // The repo's central invariant, restated through the registry: dist-det
  // replays gw-moat merge by merge, so weights and dual sums coincide.
  SplitMix64 rng(3);
  const Graph g = MakeConnectedRandom(24, 0.2, 1, 12, rng);
  const IcInstance ic =
      MakeIcInstance(24, {{0, 1}, {20, 1}, {5, 2}, {17, 2}, {9, 3}, {13, 3}});
  const SolveResult det = Solve("dist-det", g, ic);
  const SolveResult gw = Solve("gw-moat", g, ic);
  EXPECT_EQ(det.weight, gw.weight);
  EXPECT_EQ(det.dual_lower_bound, gw.dual_lower_bound);
  EXPECT_EQ(det.forest, gw.forest);
}

TEST(SolvePipelineTest, CrInputRoutesThroughDistributedTransform) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  const CrInstance cr = MakeCrInstance(16, {{1, 14}, {14, 11}, {2, 8}});
  for (const auto name : kAllSolvers) {
    const SolveResult res = Solve(name, g, cr);
    EXPECT_TRUE(res.feasible) << name;
    EXPECT_GT(res.transform_rounds, 0) << name;
    EXPECT_TRUE(IsFeasibleCr(g, cr, res.forest)) << name;
  }
  // The transform must agree with the centralized Lemma 2.3 reference.
  const SolveResult via_cr = Solve("dist-det", g, cr);
  const SolveResult via_ic = Solve("dist-det", g, CrToIc(cr));
  EXPECT_EQ(via_cr.weight, via_ic.weight);
  EXPECT_EQ(via_cr.forest, via_ic.forest);
}

TEST(SolvePipelineTest, ReferenceAccounting) {
  SplitMix64 rng(7);
  const Graph g = MakeGrid(4, 4, 1, 5, rng);
  const IcInstance ic = GridInstance();
  SolveOptions opt;
  opt.compute_reference = true;
  const SolveResult exact = Solve("exact", g, ic, opt);
  EXPECT_EQ(exact.reference_weight, exact.weight);
  EXPECT_DOUBLE_EQ(exact.approx_ratio, 1.0);
  const SolveResult det = Solve("dist-det", g, ic, opt);
  EXPECT_GT(det.reference_weight, 0);
  EXPECT_GE(det.approx_ratio, 1.0);
  EXPECT_LT(det.approx_ratio, 2.0);  // Theorem 4.1 (strict)
}

TEST(SolvePipelineTest, SeedDeterminism) {
  SplitMix64 rng(5);
  const Graph g = MakeConnectedRandom(20, 0.25, 1, 10, rng);
  const IcInstance ic =
      MakeIcInstance(20, {{0, 1}, {19, 1}, {4, 2}, {15, 2}});
  for (const auto name : kAllSolvers) {
    const SolveResult a = Solve(name, g, ic, {}, 42);
    const SolveResult b = Solve(name, g, ic, {}, 42);
    EXPECT_EQ(a.forest, b.forest) << name;
    EXPECT_EQ(a.stats.rounds, b.stats.rounds) << name;
    EXPECT_EQ(a.stats.total_bits, b.stats.total_bits) << name;
  }
}

// The satellite sweep: random grids and Erdős–Rényi graphs; every solver
// feasible, and the deterministic solver within (2+ε) of the dual bound.
TEST(SolverConsistencyTest, CrossSolverSweep) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SplitMix64 grng(seed * 19 + 3);
    const Graph grid = MakeGrid(5, 5, 1, 9, grng);
    SplitMix64 erng(seed * 23 + 7);
    const Graph er = MakeConnectedRandom(24, 0.18, 1, 20, erng);
    for (const Graph* g : {&grid, &er}) {
      const int n = g->NumNodes();
      SplitMix64 trng(seed * 31 + 11);
      std::vector<std::pair<NodeId, Label>> assign;
      std::vector<char> used(static_cast<std::size_t>(n), 0);
      for (int c = 0; c < 3; ++c) {
        for (int j = 0; j < 2; ++j) {
          NodeId v = 0;
          do {
            v = static_cast<NodeId>(trng.NextBelow(
                static_cast<std::uint64_t>(n)));
          } while (used[static_cast<std::size_t>(v)]);
          used[static_cast<std::size_t>(v)] = 1;
          assign.push_back({v, static_cast<Label>(c + 1)});
        }
      }
      const IcInstance ic = MakeIcInstance(n, assign);

      for (const Real eps : {0.0L, 0.25L}) {
        SolveOptions opt;
        opt.epsilon = eps;
        const SolveResult gw = Solve("gw-moat", *g, ic, opt, seed + 1);
        ASSERT_GT(gw.dual_lower_bound, 0) << seed;
        const SolveResult det = Solve("dist-det", *g, ic, opt, seed + 1);
        // Theorem 4.1 / 4.2: W(F) < (2+ε) Σ act·µ — exact in fixed point.
        const auto bound = static_cast<Fixed>(
            (2.0L + eps) * static_cast<Real>(gw.dual_lower_bound) + 1.0L);
        EXPECT_LE(ToFixed(det.weight), bound)
            << "seed=" << seed << " eps=" << static_cast<double>(eps);
      }

      for (const auto name : kAllSolvers) {
        const SolveResult res = Solve(name, *g, ic, {}, seed + 1);
        EXPECT_TRUE(res.feasible) << name << " seed=" << seed;
        EXPECT_TRUE(g->IsForest(res.forest)) << name << " seed=" << seed;
        EXPECT_TRUE(IsFeasible(*g, ic, res.forest))
            << name << " seed=" << seed;
      }
    }
  }
}

// Approximation quality of the new sequential solvers against the exact
// optimum on instances inside the exact solver's limits (≤14 terminals).
// The bounds are deliberately generous — they catch gross regressions
// (a broken merge rule, a local search that accepts worsening moves), not
// the theoretical constants.
TEST(SolverQualityTest, SequentialSolversNearOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 grng(seed * 41 + 13);
    const Graph g = MakeConnectedRandom(28, 0.2, 1, 25, grng);
    SplitMix64 trng(seed * 57 + 29);
    std::vector<std::pair<NodeId, Label>> assign;
    std::vector<char> used(28, 0);
    for (int c = 0; c < 4; ++c) {
      for (int j = 0; j < 2; ++j) {
        NodeId v = 0;
        do {
          v = static_cast<NodeId>(trng.NextBelow(28));
        } while (used[static_cast<std::size_t>(v)]);
        used[static_cast<std::size_t>(v)] = 1;
        assign.push_back({v, static_cast<Label>(c + 1)});
      }
    }
    const IcInstance ic = MakeIcInstance(28, assign);
    const Weight opt = Solve("exact", g, ic).weight;
    ASSERT_GT(opt, 0) << seed;

    const SolveResult greedy = Solve("greedy-merge", g, ic);
    EXPECT_TRUE(greedy.feasible) << seed;
    EXPECT_LE(greedy.weight, 3 * opt) << seed;

    const SolveResult local = Solve("local-search", g, ic);
    EXPECT_TRUE(local.feasible) << seed;
    EXPECT_LE(local.weight, 3 * opt) << seed;

    // Local search must never worsen a warm start below feasibility or
    // above its starting weight.
    SolveOptions warm;
    warm.warm_start = greedy.forest;
    const SolveResult refined = Solve("local-search", g, ic, warm);
    EXPECT_TRUE(refined.feasible) << seed;
    EXPECT_LE(refined.weight, greedy.weight) << seed;

    // mode=all portfolio: never worse than its best member.
    const SolveResult port = Solve(
        "portfolio(roster=gw-moat+mst-prune+greedy-merge+local-search)", g,
        ic);
    EXPECT_TRUE(port.feasible) << seed;
    const Weight best_member =
        std::min({Solve("gw-moat", g, ic).weight,
                  Solve("mst-prune", g, ic).weight, greedy.weight,
                  local.weight});
    EXPECT_LE(port.weight, best_member) << seed;
  }
}

}  // namespace
}  // namespace dsf
