#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dsf {
namespace {

TEST(PropertiesTest, PathParameters) {
  const Graph g = MakePath(6, 2);
  const auto p = ComputeParameters(g);
  EXPECT_TRUE(p.connected);
  EXPECT_EQ(p.unweighted_diameter, 5);
  EXPECT_EQ(p.shortest_path_diameter, 5);
  EXPECT_EQ(p.weighted_diameter, 10);
}

TEST(PropertiesTest, StarParameters) {
  const Graph g = MakeStar(9, 7);
  const auto p = ComputeParameters(g);
  EXPECT_EQ(p.unweighted_diameter, 2);
  EXPECT_EQ(p.shortest_path_diameter, 2);
  EXPECT_EQ(p.weighted_diameter, 14);
}

TEST(PropertiesTest, ShortestPathDiameterExceedsHopDiameter) {
  // Cycle with one heavy chord-avoiding structure: a 6-cycle where one edge is
  // heavy forces weighted shortest paths the long way around.
  Graph g(6);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 3, 1);
  g.AddEdge(3, 4, 1);
  g.AddEdge(4, 5, 1);
  g.AddEdge(5, 0, 100);
  g.Finalize();
  const auto p = ComputeParameters(g);
  EXPECT_EQ(p.unweighted_diameter, 3);
  EXPECT_EQ(p.shortest_path_diameter, 5);  // 0..5 along the light path
}

TEST(PropertiesTest, SAlwaysAtLeastD) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(30, 0.1, 1, 40, rng);
    const auto p = ComputeParameters(g);
    EXPECT_GE(p.shortest_path_diameter, p.unweighted_diameter) << seed;
  }
}

TEST(PropertiesTest, UnitWeightsMakeSEqualD) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(25, 0.15, 1, 1, rng);
    EXPECT_EQ(ShortestPathDiameter(g), UnweightedDiameter(g)) << seed;
  }
}

TEST(PropertiesTest, DisconnectedDetected) {
  Graph g(4);
  g.AddEdge(0, 1, 1);
  g.Finalize();
  EXPECT_FALSE(IsConnected(g));
  EXPECT_FALSE(ComputeParameters(g).connected);
}

TEST(PropertiesTest, CompleteGraphDiameterOne) {
  SplitMix64 rng(5);
  const Graph g = MakeComplete(8, 1, 1, rng);
  EXPECT_EQ(UnweightedDiameter(g), 1);
  EXPECT_EQ(WeightedDiameter(g), 1);
}

TEST(PropertiesTest, SingleNode) {
  Graph g(1);
  g.Finalize();
  const auto p = ComputeParameters(g);
  EXPECT_TRUE(p.connected);
  EXPECT_EQ(p.unweighted_diameter, 0);
  EXPECT_EQ(p.shortest_path_diameter, 0);
}

}  // namespace
}  // namespace dsf
