#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace dsf {
namespace {

TEST(UnionFindTest, InitiallyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SizeOf(i), 1);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3);
  EXPECT_EQ(uf.SizeOf(0), 2);
}

TEST(UnionFindTest, UnionReturnsFalseWhenAlreadyJoined) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_FALSE(uf.Connected(0, 4));
  EXPECT_EQ(uf.SizeOf(3), 4);
}

TEST(UnionFindTest, RandomizedMatchesNaive) {
  // Property check against a brute-force partition representation.
  SplitMix64 rng(0xDEADBEEF);
  const int n = 64;
  UnionFind uf(n);
  std::vector<int> naive(n);
  for (int i = 0; i < n; ++i) naive[static_cast<std::size_t>(i)] = i;
  const auto naive_union = [&](int a, int b) {
    const int ca = naive[static_cast<std::size_t>(a)];
    const int cb = naive[static_cast<std::size_t>(b)];
    if (ca == cb) return;
    for (int& c : naive) {
      if (c == cb) c = ca;
    }
  };
  for (int step = 0; step < 500; ++step) {
    const int a = static_cast<int>(rng.NextBelow(n));
    const int b = static_cast<int>(rng.NextBelow(n));
    if (a == b) continue;
    naive_union(a, b);
    uf.Union(a, b);
    const int x = static_cast<int>(rng.NextBelow(n));
    const int y = static_cast<int>(rng.NextBelow(n));
    EXPECT_EQ(uf.Connected(x, y),
              naive[static_cast<std::size_t>(x)] ==
                  naive[static_cast<std::size_t>(y)]);
  }
}

TEST(UnionFindTest, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.Find(3), std::logic_error);
  EXPECT_THROW(uf.Find(-1), std::logic_error);
}

}  // namespace
}  // namespace dsf
