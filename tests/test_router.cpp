// The shard-router tier (DESIGN.md §5): consistent hash ring, per-backend
// health machines, retry/backoff, canonical request keying, the hot cache,
// and the router end to end over sockets — failover on backend death,
// probe-gated re-admission, structured shedding when every replica is down,
// fault-injection (drop / truncate / delay) recovery, and the chaos
// contract: killing a backend mid-load never changes a single response
// byte relative to one-shot solves.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/json.hpp"
#include "common/random.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "solve/solver.hpp"
#include "workload/spec.hpp"

namespace dsf {
namespace {

// --- hash ring ---------------------------------------------------------------

TEST(HashRingTest, PreferenceOrderCoversAllBackendsDeterministically) {
  const HashRing ring(5, 64);
  for (std::uint64_t p :
       std::vector<std::uint64_t>{0ull, 1ull, Mix64(42), ~0ull}) {
    const std::vector<int> order = ring.PreferenceOrder(p);
    ASSERT_EQ(order.size(), 5u) << p;
    std::set<int> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), 5u) << p;
    EXPECT_EQ(order, ring.PreferenceOrder(p)) << p;  // deterministic
    EXPECT_EQ(order[0], ring.PrimaryBackend(p)) << p;
  }
}

TEST(HashRingTest, KeysSpreadAcrossBackends) {
  const HashRing ring(4, 64);
  std::vector<int> owned(4, 0);
  constexpr int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) {
    ++owned[static_cast<std::size_t>(
        ring.PrimaryBackend(Mix64(static_cast<std::uint64_t>(i))))];
  }
  // Virtual nodes keep the split coarse-grained fair: no backend owns less
  // than half or more than double its fair share.
  for (int b = 0; b < 4; ++b) {
    EXPECT_GT(owned[static_cast<std::size_t>(b)], kKeys / 8) << b;
    EXPECT_LT(owned[static_cast<std::size_t>(b)], kKeys / 2) << b;
  }
}

TEST(HashRingTest, SingleBackendOwnsEverything) {
  const HashRing ring(1, 16);
  EXPECT_EQ(ring.PrimaryBackend(123), 0);
  EXPECT_EQ(ring.PreferenceOrder(123), std::vector<int>{0});
}

// --- health machine ----------------------------------------------------------

TEST(HealthMachineTest, DownAfterFailuresProbesReAdmit) {
  HealthMachine m(HealthPolicy{2, 2});
  EXPECT_TRUE(m.IsUp());
  EXPECT_FALSE(m.RecordFailure());  // 1 of 2
  EXPECT_TRUE(m.IsUp());
  m.RecordSuccess();  // in-band success clears the streak while up
  EXPECT_FALSE(m.RecordFailure());  // streak restarted: 1 of 2
  EXPECT_TRUE(m.RecordFailure());   // 2 consecutive -> down transition
  EXPECT_FALSE(m.IsUp());
  EXPECT_FALSE(m.RecordFailure());  // already down: no second transition

  // In-band successes never re-admit: only probes prove recovery.
  m.RecordSuccess();
  EXPECT_FALSE(m.IsUp());

  EXPECT_FALSE(m.RecordProbeSuccess());  // 1 of 2
  EXPECT_FALSE(m.IsUp());
  EXPECT_TRUE(m.RecordProbeSuccess());  // consecutive -> up transition
  EXPECT_TRUE(m.IsUp());

  // A failure between probe successes resets the streak.
  EXPECT_FALSE(m.RecordFailure());
  EXPECT_TRUE(m.RecordFailure());
  EXPECT_FALSE(m.IsUp());
  EXPECT_FALSE(m.RecordProbeSuccess());
  EXPECT_FALSE(m.RecordFailure());
  EXPECT_FALSE(m.RecordProbeSuccess());  // streak restarted at 1
  EXPECT_FALSE(m.IsUp());
  EXPECT_TRUE(m.RecordProbeSuccess());
  EXPECT_TRUE(m.IsUp());
}

// --- retry backoff -----------------------------------------------------------

TEST(RetryBackoffTest, ExponentialBoundedJitterDeterministic) {
  const RetryPolicy policy{5, 100, 1000};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const long long uncapped = 100LL << std::min(attempt, 20);
    const long long cap = std::min<long long>(uncapped, 1000);
    const int d1 = BackoffDelayMs(policy, attempt, 42);
    const int d2 = BackoffDelayMs(policy, attempt, 42);
    EXPECT_EQ(d1, d2) << attempt;  // same (nonce, attempt) -> same delay
    EXPECT_GE(d1, cap / 2) << attempt;
    EXPECT_LE(d1, cap) << attempt;
  }
  // Distinct nonces decorrelate (no stampede in lockstep).
  std::set<int> delays;
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    delays.insert(BackoffDelayMs(policy, 3, nonce));
  }
  EXPECT_GT(delays.size(), 8u);
  // Zero base disables waiting; huge attempts do not overflow.
  EXPECT_EQ(BackoffDelayMs(RetryPolicy{1, 0, 1000}, 3, 1), 0);
  EXPECT_LE(BackoffDelayMs(policy, 1000, 1), 1000);
  EXPECT_GE(BackoffDelayMs(policy, 1000, 1), 1);
}

// --- canonical request keying ------------------------------------------------

TEST(RouterKeyTest, FramingInvariantContentSensitive) {
  const auto key = [](const char* line) {
    return RouterRequestKey(CanonicalRequestText(ParseJson(line)));
  };
  // Key order, whitespace, and the id are framing, not content.
  const CacheKey k = key(R"({"op":"solve","generate":"grid","seed":7})");
  EXPECT_EQ(k, key(R"({"seed":7,  "op":"solve","generate":"grid"})"));
  EXPECT_EQ(k, key(R"({"id":"x","op":"solve","generate":"grid","seed":7})"));
  // Content splits the key.
  EXPECT_NE(k, key(R"({"op":"solve","generate":"grid","seed":8})"));
  EXPECT_NE(k, key(R"({"op":"stats","generate":"grid","seed":7})"));
  EXPECT_NE(k, key(R"({"op":"solve","generate":"grid"})"));
}

TEST(RouterKeyTest, NestedObjectsSortAndNumbersStayRaw) {
  const JsonValue a = ParseJson(R"({"b":{"y":1,"x":2},"a":[1,{"q":3}]})");
  const JsonValue b = ParseJson(R"({"a":[1,{"q":3}],"b":{"x":2,"y":1}})");
  EXPECT_EQ(CanonicalRequestText(a), CanonicalRequestText(b));
  EXPECT_EQ(CanonicalRequestText(a), R"({"a":[1,{"q":3}],"b":{"x":2,"y":1}})");

  // Raw literals survive: seeds above 2^53 must not collapse through a
  // double, and distinct spellings of one value stay distinct (a cache
  // miss, never a wrong result).
  const auto key = [](const char* line) {
    return RouterRequestKey(CanonicalRequestText(ParseJson(line)));
  };
  EXPECT_NE(key(R"({"seed":9007199254740992})"),
            key(R"({"seed":9007199254740993})"));
  EXPECT_NE(key(R"({"e":1000})"), key(R"({"e":1e3})"));
}

TEST(RouterKeyTest, ReviseAffinityFollowsTheBaseSolve) {
  // Ring placement for a revise must equal the placement of the solve that
  // produced its base, so the revise lands where the base result is cached.
  const JsonValue solve =
      ParseJson(R"({"op":"solve","generate":"grid","seed":7})");
  const JsonValue revise = ParseJson(
      R"({"op":"revise","generate":"grid","seed":7,)"
      R"("base":"00112233445566778899aabbccddeeff",)"
      R"("delta":{"add_terminals":[[1,2]]},"mode":"warm"})");
  EXPECT_EQ(RouteAffinityText(revise), CanonicalRequestText(solve));
  // Different deltas against one base share placement...
  const JsonValue other_delta = ParseJson(
      R"({"op":"revise","generate":"grid","seed":7,)"
      R"("base":"00112233445566778899aabbccddeeff",)"
      R"("delta":{"remove_terminals":[4]}})");
  EXPECT_EQ(RouteAffinityText(revise), RouteAffinityText(other_delta));
  // ...but distinct base framings do not.
  const JsonValue other_solve =
      ParseJson(R"({"op":"solve","generate":"grid","seed":8})");
  EXPECT_NE(RouteAffinityText(revise), CanonicalRequestText(other_solve));
  // Non-revise requests pass through unchanged.
  EXPECT_EQ(RouteAffinityText(solve), CanonicalRequestText(solve));
}

// --- hot cache ---------------------------------------------------------------

TEST(HotCacheTest, LruEvictionAndCounters) {
  HotCache cache(2);
  const CacheKey k1{1, 1}, k2{2, 2}, k3{3, 3};
  EXPECT_FALSE(cache.Lookup(k1).has_value());
  cache.Insert(k1, "r1");
  cache.Insert(k2, "r2");
  EXPECT_EQ(cache.Lookup(k1).value_or(""), "r1");  // refreshes k1
  cache.Insert(k3, "r3");                          // evicts k2 (LRU)
  EXPECT_FALSE(cache.Lookup(k2).has_value());
  EXPECT_EQ(cache.Lookup(k1).value_or(""), "r1");
  EXPECT_EQ(cache.Lookup(k3).value_or(""), "r3");
  const HotCache::Counters c = cache.GetCounters();
  EXPECT_EQ(c.inserts, 3u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 2u);
}

TEST(HotCacheTest, ZeroCapacityDisables) {
  HotCache cache(0);
  cache.Insert({1, 1}, "r");
  EXPECT_FALSE(cache.Lookup({1, 1}).has_value());
  EXPECT_EQ(cache.GetCounters().entries, 0u);
}

// --- backend spec parsing ----------------------------------------------------

TEST(BackendSpecTest, ParsesHostPortAndBarePort) {
  const BackendSpec a = ParseBackendSpec("10.0.0.2:9001");
  EXPECT_EQ(a.host, "10.0.0.2");
  EXPECT_EQ(a.port, 9001);
  const BackendSpec b = ParseBackendSpec("9002");
  EXPECT_EQ(b.host, "127.0.0.1");
  EXPECT_EQ(b.port, 9002);
  for (const char* bad : {"", "host:", ":0", "host:70000", "host:9x", "x"}) {
    EXPECT_THROW((void)ParseBackendSpec(bad), std::runtime_error) << bad;
  }
}

// --- router end to end -------------------------------------------------------

constexpr char kWireSpec[] =
    "seed 5\n"
    "graph 6\n"
    "edge 0 1 2\n"
    "edge 1 2 3\n"
    "edge 2 3 1\n"
    "edge 3 4 4\n"
    "edge 4 5 1\n"
    "edge 0 5 2\n"
    "ic ends\n"
    "terminal 0 1\n"
    "terminal 3 1\n";

std::string EscapeForJson(const std::string& text) {
  std::ostringstream os;
  JsonWriter json(os);
  json.String(text);
  return os.str();
}

// Distinct specs differ in one edge weight; each is one solver unit.
std::string SpecText(int variant) {
  std::ostringstream os;
  os << "seed " << (variant + 1) << "\n"
     << "graph 6\n"
     << "edge 0 1 " << (variant % 9 + 1) << "\n"
     << "edge 1 2 3\nedge 2 3 1\nedge 3 4 4\nedge 4 5 1\nedge 0 5 2\n"
     << "ic ends\nterminal 0 1\nterminal 3 1\n";
  return os.str();
}

std::string SolveLine(int variant, const std::string& id = "") {
  std::ostringstream req;
  req << "{";
  if (!id.empty()) req << R"("id":)" << EscapeForJson(id) << ",";
  req << R"("op":"solve","spec":)" << EscapeForJson(SpecText(variant))
      << R"(,"solvers":["gw-moat"]})";
  return req.str();
}

struct ExpectedCell {
  Weight weight;
  std::vector<EdgeId> edges;
};

std::vector<ExpectedCell> OneShot(const std::string& spec_text,
                                  const std::vector<std::string>& solvers) {
  std::istringstream in(spec_text);
  WorkloadSpec spec = ParseWorkloadSpec(in, "<test>");
  const Workload workload = ExpandWorkload(spec);
  SolveOptions base;
  base.validate = true;
  const RequestMatrix matrix = BuildRequests(workload, solvers, base);
  std::vector<ExpectedCell> out;
  for (std::size_t i = 0; i < matrix.requests.size(); ++i) {
    const SolveResult r =
        Solve(matrix.requests[i],
              DeriveSeed(spec.seed, static_cast<std::uint64_t>(i)), 1);
    out.push_back({r.weight, r.forest});
  }
  return out;
}

std::vector<ExpectedCell> CellsOf(const JsonValue& response) {
  std::vector<ExpectedCell> out;
  const JsonValue* results = response.Find("results");
  if (results == nullptr) return out;
  for (const JsonValue& r : results->array) {
    ExpectedCell cell;
    cell.weight = static_cast<Weight>(r.GetNumber("weight", -1));
    for (const JsonValue& e : r.Find("edges")->array) {
      cell.edges.push_back(static_cast<EdgeId>(e.number));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

void ExpectMatchesOneShot(const JsonValue& response, int variant) {
  ASSERT_TRUE(response.GetBool("ok", false))
      << response.GetString("error", "");
  const auto expected = OneShot(SpecText(variant), {"gw-moat"});
  const auto cells = CellsOf(response);
  ASSERT_EQ(cells.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(cells[i].weight, expected[i].weight) << variant;
    EXPECT_EQ(cells[i].edges, expected[i].edges) << variant;
  }
}

RouterOptions FastRouter(std::vector<int> ports) {
  RouterOptions options;
  for (const int p : ports) options.backends.push_back({"127.0.0.1", p});
  options.probe_interval_ms = 0;  // tests drive ProbeNow() deterministically
  options.retry = RetryPolicy{3, 1, 8};
  options.connect_timeout_ms = 2'000;
  return options;
}

TEST(RouterTest, RoutesSolvesBitIdenticallyAndServesHotHits) {
  Server s1((ServeOptions())), s2((ServeOptions()));
  s1.Start();
  s2.Start();
  Router router(FastRouter({s1.Port(), s2.Port()}));
  router.Start();

  ClientConnection conn("127.0.0.1", router.Port());
  EXPECT_TRUE(conn.RoundTrip(R"({"op":"ping"})").GetBool("router", false));

  for (int variant = 0; variant < 6; ++variant) {
    ExpectMatchesOneShot(conn.RoundTrip(SolveLine(variant)), variant);
  }
  // The same requests again: hot-cache hits, byte-identical payloads even
  // with a different id (the id is re-injected around the cached line).
  for (int variant = 0; variant < 6; ++variant) {
    const JsonValue v = conn.RoundTrip(SolveLine(variant, "rq-7"));
    EXPECT_EQ(v.GetString("id", ""), "rq-7");
    ExpectMatchesOneShot(v, variant);
  }
  const RouterCounters counters = router.Counters();
  EXPECT_EQ(counters.hot_hits, 6u);
  EXPECT_EQ(counters.shed, 0u);

  // Both backends took traffic (6 variants over a 2-node ring).
  std::uint64_t forwarded = 0;
  for (const RouterBackendStatus& b : router.Backends()) {
    forwarded += b.forwarded;
  }
  EXPECT_EQ(forwarded, 6u);

  // The router's stats op reports routing state, not solver state.
  const JsonValue stats = conn.RoundTrip(R"({"op":"stats"})");
  ASSERT_TRUE(stats.GetBool("router", false));
  EXPECT_DOUBLE_EQ(stats.GetNumber("backends_up", 0), 2.0);
  ASSERT_NE(stats.Find("backends"), nullptr);
  EXPECT_EQ(stats.Find("backends")->array.size(), 2u);

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, FailsOverWhenABackendDies) {
  Server s1((ServeOptions())), s2((ServeOptions()));
  s1.Start();
  s2.Start();
  RouterOptions options = FastRouter({s1.Port(), s2.Port()});
  options.hot_cache_entries = 0;  // force every request through a backend
  Router router(options);
  router.Start();

  ClientConnection conn("127.0.0.1", router.Port());
  for (int variant = 0; variant < 8; ++variant) {
    ExpectMatchesOneShot(conn.RoundTrip(SolveLine(variant)), variant);
  }

  // Kill whichever backend carried the most traffic (ring placement is
  // deterministic but not known a priori): its port stops accepting and
  // the router's pooled fds to it go stale.
  const auto before = router.Backends();
  ASSERT_EQ(before.size(), 2u);
  const std::size_t kill = before[0].forwarded >= before[1].forwarded ? 0 : 1;
  ASSERT_GT(before[kill].forwarded, 0u);
  Server& victim = kill == 0 ? s1 : s2;
  victim.RequestShutdown();
  ASSERT_EQ(victim.Wait(), 0);

  // Every request still succeeds bit-identically via failover; the dead
  // backend is marked down after its transport failure.
  for (int variant = 0; variant < 8; ++variant) {
    ExpectMatchesOneShot(conn.RoundTrip(SolveLine(variant)), variant);
  }
  const auto backends = router.Backends();
  EXPECT_FALSE(backends[kill].up);
  EXPECT_TRUE(backends[1 - kill].up);
  EXPECT_EQ(router.Counters().shed, 0u);
  EXPECT_GT(router.Counters().retries, 0u);
  EXPECT_GT(router.Counters().failovers, 0u);

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, AllReplicasDownShedsStructuredUnavailable) {
  // Nothing listens on these ports: grab two ephemeral ports and free them.
  int p1 = 0, p2 = 0;
  {
    Server a((ServeOptions())), b((ServeOptions()));
    a.Start();
    b.Start();
    p1 = a.Port();
    p2 = b.Port();
    a.RequestShutdown();
    b.RequestShutdown();
    a.Wait();
    b.Wait();
  }
  Router router(FastRouter({p1, p2}));
  router.Start();

  ClientConnection conn("127.0.0.1", router.Port());
  const JsonValue v = conn.RoundTrip(SolveLine(0, "gone"));
  EXPECT_FALSE(v.GetBool("ok", true));
  EXPECT_EQ(v.GetString("error", ""), "unavailable");
  EXPECT_EQ(v.GetString("id", ""), "gone");
  EXPECT_DOUBLE_EQ(v.GetNumber("backends_down", 0), 2.0);
  EXPECT_DOUBLE_EQ(v.GetNumber("backends", 0), 2.0);
  EXPECT_GE(router.Counters().shed, 1u);
  for (const RouterBackendStatus& b : router.Backends()) {
    EXPECT_FALSE(b.up);
  }
  // The router itself stays alive and continues answering pings.
  EXPECT_TRUE(conn.RoundTrip(R"({"op":"ping"})").GetBool("pong", false));

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, ReAdmissionRequiresConsecutiveProbeSuccesses) {
  // Reserve a port by starting and draining a server on it, then point the
  // router at the (now dead) port.
  int port = 0;
  {
    Server placeholder((ServeOptions()));
    placeholder.Start();
    port = placeholder.Port();
    placeholder.RequestShutdown();
    placeholder.Wait();
  }
  RouterOptions options = FastRouter({port});
  options.health.successes_to_up = 2;
  Router router(options);
  router.Start();

  ClientConnection conn("127.0.0.1", router.Port());
  EXPECT_EQ(conn.RoundTrip(SolveLine(0)).GetString("error", ""),
            "unavailable");
  ASSERT_FALSE(router.Backends()[0].up);

  // The backend comes back on the same port. One probe success is not
  // enough to re-admit...
  ServeOptions sopt;
  sopt.port = port;
  Server revived(sopt);
  revived.Start();
  router.ProbeNow();
  EXPECT_FALSE(router.Backends()[0].up);
  EXPECT_EQ(conn.RoundTrip(SolveLine(0)).GetString("error", ""),
            "unavailable");
  // ...the second consecutive success is.
  router.ProbeNow();
  EXPECT_TRUE(router.Backends()[0].up);
  ExpectMatchesOneShot(conn.RoundTrip(SolveLine(0)), 0);

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, RetriesThroughDropTruncateAndDelayFaults) {
  Server backend((ServeOptions()));
  backend.Start();
  RouterOptions options = FastRouter({backend.Port()});
  options.hot_cache_entries = 0;
  // One backend: it must stay re-triable, not get blacklisted on the
  // first injected fault.
  options.health.failures_to_down = 100;
  Router router(options);
  router.Start();

  ClientConnection conn("127.0.0.1", router.Port());

  // Connection dropped without a reply before every 2nd response: absorbed
  // by the stale-pooled-fd retry or the attempt loop, never surfaced.
  backend.Fault().Configure("drop_every=2");
  for (int variant = 0; variant < 4; ++variant) {
    ExpectMatchesOneShot(conn.RoundTrip(SolveLine(variant)), variant);
  }

  // Half-written (truncated) reply: detected as malformed framing and
  // retried the same way.
  backend.Fault().Configure("truncate_every=2");
  for (int variant = 4; variant < 8; ++variant) {
    ExpectMatchesOneShot(conn.RoundTrip(SolveLine(variant)), variant);
  }
  EXPECT_TRUE(router.Backends()[0].up);
  EXPECT_EQ(router.Counters().shed, 0u);

  // Every reply truncated: the attempt budget runs dry and the request is
  // shed with the structured error — but the next healthy request recovers
  // in-band (failures_to_down was not reached, the backend is still up).
  backend.Fault().Configure("truncate_every=1");
  const JsonValue dead = conn.RoundTrip(SolveLine(8));
  EXPECT_FALSE(dead.GetBool("ok", true));
  EXPECT_EQ(dead.GetString("error", ""), "unavailable");
  EXPECT_GT(router.Counters().retries, 0u);
  EXPECT_GT(router.Backends()[0].failures, 0u);
  backend.Fault().Configure("");
  ExpectMatchesOneShot(conn.RoundTrip(SolveLine(8)), 8);

  // Delays within the upstream deadline pass through untouched.
  backend.Fault().Configure("delay_every=2, delay_ms=30");
  for (int variant = 9; variant < 11; ++variant) {
    ExpectMatchesOneShot(conn.RoundTrip(SolveLine(variant)), variant);
  }

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, ChaosKillOneBackendMidLoadKeepsResponsesBitIdentical) {
  // The chaos contract: 3 shards, concurrent client load, one shard dies
  // mid-stream — zero failed responses, zero shed requests, and every
  // response byte-identical to a sequential one-shot solve.
  Server s1((ServeOptions())), s2((ServeOptions())), s3((ServeOptions()));
  s1.Start();
  s2.Start();
  s3.Start();
  Router router(FastRouter({s1.Port(), s2.Port(), s3.Port()}));
  router.Start();

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  constexpr int kKillAfter = 8;  // responses per client before the kill
  std::atomic<int> done_before_kill{0};
  std::atomic<int> failures{0};
  std::vector<std::map<int, std::string>> raw(kClients);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ClientConnection conn("127.0.0.1", router.Port());
        for (int i = 0; i < kPerClient; ++i) {
          const int variant = (c * kPerClient + i) % 12;
          conn.SendLine(SolveLine(variant));
          std::string response;
          if (!conn.RecvLine(response)) {
            ++failures;
            return;
          }
          raw[static_cast<std::size_t>(c)][variant] = response;
          if (i + 1 == kKillAfter) ++done_before_kill;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }

  // Kill one shard only after every client is mid-stream, so the kill
  // lands while requests are in flight. (Bail out on client failure so a
  // broken run cannot spin here forever.)
  while (done_before_kill.load() < kClients && failures.load() == 0) {
    std::this_thread::yield();
  }
  s2.RequestShutdown();
  s2.Wait();

  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(router.Counters().shed, 0u);

  std::map<int, ExpectedCell> expected;
  for (int c = 0; c < kClients; ++c) {
    for (const auto& [variant, response] : raw[static_cast<std::size_t>(c)]) {
      const JsonValue v = ParseJson(response);
      ASSERT_TRUE(v.GetBool("ok", false))
          << "client " << c << " variant " << variant << ": "
          << v.GetString("error", "");
      const auto it = expected.find(variant);
      if (it == expected.end()) {
        const auto one_shot = OneShot(SpecText(variant), {"gw-moat"});
        ASSERT_EQ(one_shot.size(), 1u);
        expected.emplace(variant, one_shot[0]);
      }
      const auto cells = CellsOf(v);
      ASSERT_EQ(cells.size(), 1u);
      EXPECT_EQ(cells[0].weight, expected.at(variant).weight)
          << "variant " << variant;
      EXPECT_EQ(cells[0].edges, expected.at(variant).edges)
          << "variant " << variant;
    }
  }

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, DrainsCleanlyWhileProbesAreInFlight) {
  Server backend((ServeOptions()));
  backend.Start();
  RouterOptions options = FastRouter({backend.Port()});
  options.probe_interval_ms = 1;  // probe as hot as possible
  Router router(options);
  router.Start();

  ClientConnection conn("127.0.0.1", router.Port());
  ExpectMatchesOneShot(conn.RoundTrip(SolveLine(0)), 0);
  // Let several probe rounds overlap live traffic, then drain: Wait() must
  // stop the probe thread mid-cadence and return 0.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
  EXPECT_GT(router.Backends()[0].probes, 0u);
}

TEST(RouterTest, ForwardsProtocolErrorsWithoutBlamingBackends) {
  Server backend((ServeOptions()));
  backend.Start();
  Router router(FastRouter({backend.Port()}));
  router.Start();

  // A valid JSON error reply (unknown solver) is an answer, not a
  // transport failure: forwarded verbatim, backend stays up, no retries.
  ClientConnection conn("127.0.0.1", router.Port());
  std::ostringstream req;
  req << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
      << R"(,"solvers":["nope"]})";
  const JsonValue v = conn.RoundTrip(req.str());
  EXPECT_FALSE(v.GetBool("ok", true));
  EXPECT_FALSE(v.GetString("error", "").empty());
  EXPECT_TRUE(router.Backends()[0].up);
  EXPECT_EQ(router.Counters().retries, 0u);
  // Error replies are never hot-cached.
  EXPECT_EQ(router.HotCacheCounters().inserts, 0u);

  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

TEST(RouterTest, ReviseLandsOnTheBackendHoldingItsBase) {
  // Solve then revise through a 3-shard router: the affinity rewrite must
  // place the revise on the shard that cached the base (warm + base_hit),
  // and the response must be byte-comparable to the same solve + revise
  // against a single direct server.
  Server s1((ServeOptions())), s2((ServeOptions())), s3((ServeOptions()));
  s1.Start();
  s2.Start();
  s3.Start();
  Router router(FastRouter({s1.Port(), s2.Port(), s3.Port()}));
  router.Start();

  // 8 terminals keep a 2-edit delta warm-eligible at the default 0.25
  // fraction (limit = 2).
  const std::string spec =
      "seed 9\n"
      "graph 12\n"
      "edge 0 1 2\nedge 1 2 3\nedge 2 3 1\nedge 3 4 4\nedge 4 5 1\n"
      "edge 5 6 2\nedge 6 7 3\nedge 7 8 1\nedge 8 9 2\nedge 9 10 4\n"
      "edge 10 11 1\nedge 0 11 2\n"
      "ic ring\n"
      "terminal 0 1\nterminal 3 1\nterminal 1 2\nterminal 5 2\n"
      "terminal 6 3\nterminal 9 3\nterminal 2 4\nterminal 8 4\n";
  const std::string solve_line = R"({"op":"solve","spec":)" +
                                 EscapeForJson(spec) +
                                 R"(,"solvers":["local-search"]})";
  const auto revise_line = [&](const std::string& base_key) {
    return R"({"op":"revise","spec":)" + EscapeForJson(spec) +
           R"(,"solvers":["local-search"],"base":")" + base_key +
           R"(","delta":{"add_terminals":[[4,5],[10,5]]}})";
  };

  ClientConnection conn("127.0.0.1", router.Port());
  const JsonValue solve = conn.RoundTrip(solve_line);
  ASSERT_TRUE(solve.GetBool("ok", false)) << solve.GetString("error", "");
  const std::string base_key =
      solve.Find("results")->array[0].GetString("key", "");
  ASSERT_EQ(base_key.size(), 32u);

  const JsonValue revise = conn.RoundTrip(revise_line(base_key));
  ASSERT_TRUE(revise.GetBool("ok", false)) << revise.GetString("error", "");
  EXPECT_TRUE(revise.GetBool("base_hit", false));
  EXPECT_TRUE(revise.GetBool("warm", false));
  EXPECT_TRUE(revise.Find("results")->array[0].GetBool("feasible", false));

  // Same flow against a direct server: identical weight/edges/key.
  Server direct((ServeOptions()));
  direct.Start();
  ClientConnection direct_conn("127.0.0.1", direct.Port());
  const JsonValue want_solve = direct_conn.RoundTrip(solve_line);
  ASSERT_TRUE(want_solve.GetBool("ok", false));
  const std::string want_key =
      want_solve.Find("results")->array[0].GetString("key", "");
  EXPECT_EQ(base_key, want_key);
  const JsonValue want = direct_conn.RoundTrip(revise_line(want_key));
  ASSERT_TRUE(want.GetBool("ok", false)) << want.GetString("error", "");
  ASSERT_TRUE(want.GetBool("warm", false));
  const auto got_cells = CellsOf(revise);
  const auto want_cells = CellsOf(want);
  ASSERT_EQ(got_cells.size(), 1u);
  ASSERT_EQ(want_cells.size(), 1u);
  EXPECT_EQ(got_cells[0].weight, want_cells[0].weight);
  EXPECT_EQ(got_cells[0].edges, want_cells[0].edges);
  EXPECT_EQ(revise.GetString("key", ""), want.GetString("key", ""));

  direct.RequestShutdown();
  EXPECT_EQ(direct.Wait(), 0);
  router.RequestShutdown();
  EXPECT_EQ(router.Wait(), 0);
}

}  // namespace
}  // namespace dsf
