// The service layer (DESIGN.md §5): JSON parsing, canonical hashing, the
// sharded LRU result cache, admission/coalescing, the wire protocol, and
// the socket server end to end — including the concurrent-duplicate-stream
// correctness contract (N client threads, 80% duplicates, bit-identical to
// sequential one-shot solves, hits + misses == requests).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "cli/json.hpp"
#include "common/random.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/sockets.hpp"
#include "solve/solver.hpp"
#include "workload/spec.hpp"

namespace dsf {
namespace {

// --- JSON parser -------------------------------------------------------------

TEST(JsonParseTest, ParsesDocumentTree) {
  const JsonValue v = ParseJson(
      R"({"a":1.5,"b":"x\ny","c":[true,false,null],"d":{"e":-3}})");
  ASSERT_TRUE(v.IsObject());
  EXPECT_DOUBLE_EQ(v.GetNumber("a", 0.0), 1.5);
  EXPECT_EQ(v.GetString("b", ""), "x\ny");
  const JsonValue* c = v.Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_TRUE(c->array[2].IsNull());
  const JsonValue* d = v.Find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->GetNumber("e", 0.0), -3.0);
}

TEST(JsonParseTest, RoundTripsThroughWriter) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("spec");
  json.String("graph 4\nedge 0 1 3\t# quoted \"stuff\"\n");
  json.Key("seed");
  json.UInt(123456789);
  json.EndObject();
  const JsonValue v = ParseJson(os.str());
  EXPECT_EQ(v.GetString("spec", ""),
            "graph 4\nedge 0 1 3\t# quoted \"stuff\"\n");
  EXPECT_DOUBLE_EQ(v.GetNumber("seed", 0.0), 123456789.0);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",          "[1,",       "{\"a\":}",
      "{\"a\" 1}",  "tru",        "nul",       "\"unterminated",
      "{\"a\":1,}", "01x",        "{} trailing",
      "{\"a\":1,\"a\":2}",  // duplicate key
      "\"bad \\q escape\"",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)ParseJson(text), std::runtime_error) << text;
  }
}

// --- canonical hashing -------------------------------------------------------

Graph TestGraph(Weight w01 = 3) {
  return MakeGraph(4, {{0, 1, w01}, {1, 2, 1}, {2, 3, 4}, {0, 3, 2}});
}

SolveRequest IcRequest(const Graph& g, const std::string& solver = "gw-moat") {
  SolveRequest req;
  req.solver = solver;
  req.graph = &g;
  req.ic = MakeIcInstance(g.NumNodes(), {{0, 1}, {3, 1}});
  return req;
}

TEST(CanonicalHashTest, EqualWorkEqualKey) {
  const Graph g1 = TestGraph();
  const Graph g2 = TestGraph();
  const SolveRequest r1 = IcRequest(g1);
  const SolveRequest r2 = IcRequest(g2);
  EXPECT_EQ(CanonicalHash(HashGraph(g1), r1, 7),
            CanonicalHash(HashGraph(g2), r2, 7));
}

TEST(CanonicalHashTest, EveryFieldSplitsTheKey) {
  const Graph g = TestGraph();
  const CacheKey gh = HashGraph(g);
  const SolveRequest base = IcRequest(g);
  const CacheKey k = CanonicalHash(gh, base, 7);

  EXPECT_NE(k, CanonicalHash(HashGraph(TestGraph(5)), base, 7));  // graph
  EXPECT_NE(k, CanonicalHash(gh, base, 8));                      // seed
  EXPECT_NE(k, CanonicalHash(gh, IcRequest(g, "dist-det"), 7));  // solver
  SolveRequest eps = base;
  eps.options.epsilon = 0.25L;
  EXPECT_NE(k, CanonicalHash(gh, eps, 7));
  SolveRequest reps = base;
  reps.options.repetitions = 3;
  EXPECT_NE(k, CanonicalHash(gh, reps, 7));
  SolveRequest noprune = base;
  noprune.options.prune = false;
  EXPECT_NE(k, CanonicalHash(gh, noprune, 7));
  SolveRequest other = base;
  other.ic = MakeIcInstance(4, {{0, 1}, {2, 1}});
  EXPECT_NE(k, CanonicalHash(gh, other, 7));
}

TEST(CanonicalHashTest, InputFormIsPartOfTheKey) {
  const Graph g = TestGraph();
  const CacheKey gh = HashGraph(g);
  SolveRequest ic = IcRequest(g);
  SolveRequest cr;
  cr.solver = "gw-moat";
  cr.graph = &g;
  cr.use_cr = true;
  cr.cr = MakeCrInstance(4, {{0, 3}});
  // Equivalent problems through different input forms run different
  // pipelines (the CR form meters the distributed transform), so they must
  // not share a cache slot.
  EXPECT_NE(CanonicalHash(gh, ic, 7), CanonicalHash(gh, cr, 7));
}

// --- result cache ------------------------------------------------------------

SolveResult FakeResult(Weight w) {
  SolveResult r;
  r.solver = "fake";
  r.weight = w;
  r.forest = {static_cast<EdgeId>(w)};
  return r;
}

CacheKey KeyOf(std::uint64_t i) {
  return {Mix64(i), Mix64(i + 0x1234)};
}

TEST(ResultCacheTest, HitMissAndEvictionAccounting) {
  ResultCache cache(8, 1);  // one shard: LRU order is globally observable
  EXPECT_FALSE(cache.Lookup(KeyOf(1)).has_value());  // miss
  for (std::uint64_t i = 1; i <= 8; ++i) {
    cache.Insert(KeyOf(i), FakeResult(static_cast<Weight>(i)));
  }
  // Touch key 1 while the cache is full: the next eviction must fall on
  // key 2 (the least recently used), not on the refreshed key 1.
  const auto hit = cache.Lookup(KeyOf(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->weight, 1);
  cache.Insert(KeyOf(9), FakeResult(9));
  EXPECT_FALSE(cache.Lookup(KeyOf(2)).has_value());  // miss: evicted
  EXPECT_TRUE(cache.Lookup(KeyOf(1)).has_value());
  EXPECT_TRUE(cache.Lookup(KeyOf(9)).has_value());

  const CacheCounters c = cache.Counters();
  EXPECT_EQ(c.inserts, 9u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.entries, 8u);
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert(KeyOf(1), FakeResult(1));
  EXPECT_FALSE(cache.Lookup(KeyOf(1)).has_value());
  EXPECT_EQ(cache.Counters().entries, 0u);
}

TEST(ResultCacheTest, CapacityBoundWinsOverShardCount) {
  // --cache smaller than the shard count must not round per-shard capacity
  // up: resident entries are bounded by the configured capacity.
  ResultCache cache(4, 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    cache.Insert(KeyOf(i), FakeResult(static_cast<Weight>(i)));
  }
  EXPECT_LE(cache.Counters().entries, 4u);
  EXPECT_EQ(cache.Counters().capacity, 4u);
}

TEST(ResultCacheTest, ShardedInsertLookupAcrossManyKeys) {
  ResultCache cache(1024, 8);
  for (std::uint64_t i = 0; i < 500; ++i) {
    cache.Insert(KeyOf(i), FakeResult(static_cast<Weight>(i)));
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto hit = cache.Lookup(KeyOf(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->weight, static_cast<Weight>(i));
  }
}

// --- admission queue ---------------------------------------------------------

TEST(AdmissionTest, DuplicateInFlightKeysCoalesce) {
  ResultCache cache(1024);
  AdmissionOptions opts;
  opts.threads = 1;
  opts.batch_max = 1;  // one unit per dispatch: the tail stays queued
  AdmissionQueue queue(&cache, opts);

  // Heavy enough units (dist-det on a 256-cycle, ~ms each) that the tail
  // of a 10-deep, one-at-a-time queue is still queued when the duplicate
  // arrives microseconds later, even on a loaded machine.
  constexpr int kN = 256;
  std::vector<Edge> ring;
  for (NodeId v = 0; v < kN; ++v) {
    ring.push_back({v, static_cast<NodeId>((v + 1) % kN),
                    static_cast<Weight>(v % 5 + 1)});
  }
  const Graph g = MakeGraph(kN, ring);
  std::vector<SolveRequest> units;
  std::vector<CacheKey> keys;
  std::vector<std::uint64_t> seeds;
  const CacheKey gh = HashGraph(g);
  for (int i = 0; i < 10; ++i) {
    SolveRequest req;
    req.solver = "dist-det";
    req.graph = &g;
    req.ic = MakeIcInstance(
        kN, {{0, 1}, {static_cast<NodeId>(i % (kN - 1) + 1), 1}});
    units.push_back(req);
    seeds.push_back(static_cast<std::uint64_t>(i + 1));
    keys.push_back(CanonicalHash(gh, req, seeds.back()));
  }
  auto first = queue.SubmitAll(units, keys, seeds);
  ASSERT_EQ(first.tickets.size(), 10u);
  EXPECT_EQ(first.coalesced, 0u);

  // Re-submitting the tail unit while it is still queued must join the
  // existing ticket, not schedule a second computation.
  auto second = queue.SubmitAll({&units[9], 1}, {&keys[9], 1}, {&seeds[9], 1});
  ASSERT_EQ(second.tickets.size(), 1u);
  EXPECT_EQ(second.coalesced, 1u);
  EXPECT_EQ(second.tickets[0].get(), first.tickets[9].get());

  const SolveResult& a = first.tickets[9]->Wait();
  const SolveResult& b = second.tickets[0]->Wait();
  EXPECT_TRUE(first.tickets[9]->Error().empty());
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.weight, 0);
  queue.Drain();
  EXPECT_EQ(queue.Counters().admitted, 10u);
  EXPECT_EQ(queue.Counters().coalesced, 1u);
  EXPECT_EQ(queue.Counters().computed, 10u);
}

TEST(AdmissionTest, DepthBoundRejectsAtomically) {
  ResultCache cache(1024);
  AdmissionOptions opts;
  opts.max_pending = 1;
  AdmissionQueue queue(&cache, opts);

  const Graph g = TestGraph();
  const CacheKey gh = HashGraph(g);
  std::vector<SolveRequest> units(2, IcRequest(g));
  units[1].ic = MakeIcInstance(4, {{1, 1}, {2, 1}});
  std::vector<std::uint64_t> seeds = {1, 2};
  std::vector<CacheKey> keys = {CanonicalHash(gh, units[0], 1),
                                CanonicalHash(gh, units[1], 2)};
  auto rejected = queue.SubmitAll(units, keys, seeds);
  EXPECT_TRUE(rejected.tickets.empty());
  EXPECT_EQ(queue.Counters().rejected, 1u);
  EXPECT_EQ(queue.Counters().admitted, 0u);

  // A single unit fits the bound.
  auto ok = queue.SubmitAll({&units[0], 1}, {&keys[0], 1}, {&seeds[0], 1});
  ASSERT_EQ(ok.tickets.size(), 1u);
  ok.tickets[0]->Wait();
  EXPECT_TRUE(ok.tickets[0]->Error().empty());
}

TEST(AdmissionTest, PipelineErrorsSurfaceOnTheTicket) {
  ResultCache cache(1024);
  AdmissionOptions opts;
  opts.batch_max = 1;
  AdmissionQueue queue(&cache, opts);

  const Graph disconnected = MakeGraph(4, {{0, 1, 1}, {2, 3, 1}});
  SolveRequest req;
  req.solver = "dist-det";
  req.graph = &disconnected;
  req.ic = MakeIcInstance(4, {{0, 1}, {3, 1}});
  const CacheKey key = CanonicalHash(HashGraph(disconnected), req, 1);
  const std::uint64_t seed = 1;
  auto adm = queue.SubmitAll({&req, 1}, {&key, 1}, {&seed, 1});
  ASSERT_EQ(adm.tickets.size(), 1u);
  adm.tickets[0]->Wait();
  EXPECT_FALSE(adm.tickets[0]->Error().empty());
  EXPECT_FALSE(cache.Lookup(key).has_value());  // errors are never cached
}

// --- wire protocol (in process) ----------------------------------------------

constexpr char kWireSpec[] =
    "seed 5\n"
    "graph 6\n"
    "edge 0 1 2\n"
    "edge 1 2 3\n"
    "edge 2 3 1\n"
    "edge 3 4 4\n"
    "edge 4 5 1\n"
    "edge 0 5 2\n"
    "ic ends\n"
    "terminal 0 1\n"
    "terminal 3 1\n"
    "cr ring\n"
    "pair 1 4\n";

std::string EscapeForJson(const std::string& text) {
  std::ostringstream os;
  JsonWriter json(os);
  json.String(text);
  return os.str();
}

// What a one-shot CLI run would produce for (spec, solvers): the expected
// (weight, edges) per matrix cell, with the CLI's exact seed discipline.
struct ExpectedCell {
  Weight weight;
  std::vector<EdgeId> edges;
};
std::vector<ExpectedCell> OneShot(const std::string& spec_text,
                                  const std::vector<std::string>& solvers) {
  std::istringstream in(spec_text);
  WorkloadSpec spec = ParseWorkloadSpec(in, "<test>");
  const Workload workload = ExpandWorkload(spec);
  SolveOptions base;
  base.validate = true;
  const RequestMatrix matrix = BuildRequests(workload, solvers, base);
  std::vector<ExpectedCell> out;
  for (std::size_t i = 0; i < matrix.requests.size(); ++i) {
    const SolveResult r = Solve(
        matrix.requests[i], DeriveSeed(spec.seed, static_cast<std::uint64_t>(i)), 1);
    out.push_back({r.weight, r.forest});
  }
  return out;
}

std::vector<ExpectedCell> CellsOf(const JsonValue& response) {
  std::vector<ExpectedCell> out;
  const JsonValue* results = response.Find("results");
  if (results == nullptr) return out;
  for (const JsonValue& r : results->array) {
    ExpectedCell cell;
    cell.weight = static_cast<Weight>(r.GetNumber("weight", -1));
    for (const JsonValue& e : r.Find("edges")->array) {
      cell.edges.push_back(static_cast<EdgeId>(e.number));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

struct InProcessService {
  ResultCache cache{4096};
  AdmissionQueue queue{&cache, {}};
  ServeContext ctx{&cache, &queue};
};

TEST(ProtocolTest, SolveMatchesOneShotAndCaches) {
  InProcessService svc;
  const std::vector<std::string> solvers = {"gw-moat", "dist-det"};
  std::ostringstream req;
  req << R"({"op":"solve","id":"t1","spec":)" << EscapeForJson(kWireSpec)
      << R"(,"solvers":["gw-moat","dist-det"]})";

  const JsonValue cold = ParseJson(HandleRequestLine(svc.ctx, req.str()));
  ASSERT_TRUE(cold.GetBool("ok", false)) << cold.GetString("error", "");
  EXPECT_EQ(cold.GetString("id", ""), "t1");
  EXPECT_DOUBLE_EQ(cold.GetNumber("hits", -1), 0.0);
  EXPECT_DOUBLE_EQ(cold.GetNumber("misses", -1), 4.0);

  const auto expected = OneShot(kWireSpec, solvers);
  const auto cold_cells = CellsOf(cold);
  ASSERT_EQ(cold_cells.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(cold_cells[i].weight, expected[i].weight) << i;
    EXPECT_EQ(cold_cells[i].edges, expected[i].edges) << i;
  }

  // Warm pass: all hits, bit-identical payload, per-result cached flags.
  const JsonValue warm = ParseJson(HandleRequestLine(svc.ctx, req.str()));
  ASSERT_TRUE(warm.GetBool("ok", false));
  EXPECT_DOUBLE_EQ(warm.GetNumber("hits", -1), 4.0);
  EXPECT_DOUBLE_EQ(warm.GetNumber("misses", -1), 0.0);
  const auto warm_cells = CellsOf(warm);
  ASSERT_EQ(warm_cells.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(warm_cells[i].weight, expected[i].weight) << i;
    EXPECT_EQ(warm_cells[i].edges, expected[i].edges) << i;
  }
  for (const JsonValue& r : warm.Find("results")->array) {
    EXPECT_TRUE(r.GetBool("cached", false));
  }
}

TEST(ProtocolTest, SeedSplitsTheCacheAndChangesNothingElse) {
  InProcessService svc;
  const auto line = [&](int seed) {
    std::ostringstream req;
    req << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
        << R"(,"solvers":["gw-moat"],"seed":)" << seed << "}";
    return req.str();
  };
  const JsonValue a = ParseJson(HandleRequestLine(svc.ctx, line(11)));
  const JsonValue b = ParseJson(HandleRequestLine(svc.ctx, line(12)));
  ASSERT_TRUE(a.GetBool("ok", false));
  ASSERT_TRUE(b.GetBool("ok", false));
  // Different seeds must never share cache entries, even on a
  // deterministic solver where the payloads coincide.
  EXPECT_DOUBLE_EQ(b.GetNumber("hits", -1), 0.0);
}

TEST(ProtocolTest, SeedsAbove2To53StayExact) {
  // Seeds are part of the cache key and the bit-identity contract; a
  // double-typed JSON path would collapse 2^53 and 2^53+1 onto one key and
  // serve the wrong cached result. The parser keeps the raw literal.
  InProcessService svc;
  const auto line = [&](const char* seed) {
    std::ostringstream req;
    req << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
        << R"(,"solvers":["gw-moat"],"seed":)" << seed << "}";
    return req.str();
  };
  const std::string raw_a = HandleRequestLine(svc.ctx, line("9007199254740992"));
  const std::string raw_b = HandleRequestLine(svc.ctx, line("9007199254740993"));
  const JsonValue a = ParseJson(raw_a);
  const JsonValue b = ParseJson(raw_b);
  ASSERT_TRUE(a.GetBool("ok", false)) << a.GetString("error", "");
  ASSERT_TRUE(b.GetBool("ok", false)) << b.GetString("error", "");
  EXPECT_DOUBLE_EQ(b.GetNumber("hits", -1), 0.0);  // distinct cache keys
  // The exact seed echoes back, byte for byte.
  EXPECT_NE(raw_a.find("\"seed\":9007199254740992"), std::string::npos);
  EXPECT_NE(raw_b.find("\"seed\":9007199254740993"), std::string::npos);
  // The whole uint64 range is accepted, exactly like the CLI's --seed.
  const std::string raw_max =
      HandleRequestLine(svc.ctx, line("18446744073709551615"));
  ASSERT_TRUE(ParseJson(raw_max).GetBool("ok", false)) << raw_max;
  EXPECT_NE(raw_max.find("\"seed\":18446744073709551615"),
            std::string::npos);
}

TEST(ProtocolTest, GeneratorSpecForm) {
  InProcessService svc;
  const JsonValue v = ParseJson(HandleRequestLine(
      svc.ctx,
      R"({"op":"solve","generate":"grid rows=3 cols=3",)"
      R"("instance":"random-ic k=2 tpc=2","solvers":["gw-moat"],"seed":9})"));
  ASSERT_TRUE(v.GetBool("ok", false)) << v.GetString("error", "");
  const JsonValue* results = v.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 1u);
  EXPECT_TRUE(results->array[0].GetBool("feasible", false));
  EXPECT_EQ(results->array[0].GetString("instance", ""), "sampled");
}

TEST(ProtocolTest, PingStatsAndErrors) {
  InProcessService svc;
  EXPECT_TRUE(ParseJson(HandleRequestLine(svc.ctx, R"({"op":"ping"})"))
                  .GetBool("pong", false));

  const JsonValue stats =
      ParseJson(HandleRequestLine(svc.ctx, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.GetBool("ok", false));
  ASSERT_NE(stats.Find("cache"), nullptr);
  ASSERT_NE(stats.Find("queue"), nullptr);
  EXPECT_DOUBLE_EQ(stats.Find("cache")->GetNumber("capacity", 0), 4096.0);

  const char* bad[] = {
      "not json at all",
      R"([1,2,3])",                                  // not an object
      R"({"op":"frobnicate"})",                      // unknown op
      R"({"id":"x"})",                               // missing op
      R"({"op":"solve"})",                           // no spec
      R"({"op":"solve","spec":"graph 2\nedge 0 1 1\nic a\nterminal 0 1\nterminal 1 1\n","generate":"grid"})",
      R"({"op":"solve","spec":"import stp tiny.stp\n"})",      // wire import
      R"({"op":"solve","spec":"bogus directive\n"})",          // parse error
      R"({"op":"solve","spec":"graph 2\nedge 0 1 1\nic a\nterminal 0 1\nterminal 1 1\n","solvers":["nope"]})",
      R"({"op":"solve","spec":"graph 2\nedge 0 1 1\nic a\nterminal 0 1\nterminal 1 1\n","seed":0})",
      R"({"op":"solve","spec":"graph 2\nedge 0 1 1\nic a\nterminal 0 1\nterminal 1 1\n","epsilon":-1})",
  };
  for (const char* line : bad) {
    const JsonValue v = ParseJson(HandleRequestLine(svc.ctx, line));
    EXPECT_FALSE(v.GetBool("ok", true)) << line;
    EXPECT_FALSE(v.GetString("error", "").empty()) << line;
  }

  // A disconnected topology is rejected at admission, not mid-batch.
  const JsonValue disc = ParseJson(HandleRequestLine(
      svc.ctx,
      R"({"op":"solve","spec":"graph 4\nedge 0 1 1\nedge 2 3 1\nic a\nterminal 0 1\nterminal 1 1\n"})"));
  EXPECT_FALSE(disc.GetBool("ok", true));
  EXPECT_NE(disc.GetString("error", "").find("disconnected"),
            std::string::npos);
}

TEST(ProtocolTest, OverloadAnswersInsteadOfQueueing) {
  ResultCache cache(4096);
  AdmissionOptions opts;
  opts.max_pending = 1;
  AdmissionQueue queue(&cache, opts);
  ServeContext ctx{&cache, &queue};
  // Two units (one instance x two solvers) against a bound of one.
  std::ostringstream req;
  req << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
      << R"(,"solvers":["gw-moat","mst-prune"]})";
  const JsonValue v = ParseJson(HandleRequestLine(ctx, req.str()));
  EXPECT_FALSE(v.GetBool("ok", true));
  EXPECT_EQ(v.GetString("error", ""), "overloaded");
}

// --- socket server -----------------------------------------------------------

TEST(ServerTest, EndToEndOverSockets) {
  ServeOptions options;
  options.threads = 2;
  Server server(options);
  server.Start();
  ASSERT_GT(server.Port(), 0);

  {
    ClientConnection conn("127.0.0.1", server.Port());
    EXPECT_TRUE(conn.RoundTrip(R"({"op":"ping"})").GetBool("pong", false));

    std::ostringstream req;
    req << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
        << R"(,"solvers":["gw-moat","dist-det"]})";
    const JsonValue solve = conn.RoundTrip(req.str());
    ASSERT_TRUE(solve.GetBool("ok", false)) << solve.GetString("error", "");
    const auto expected = OneShot(kWireSpec, {"gw-moat", "dist-det"});
    const auto cells = CellsOf(solve);
    ASSERT_EQ(cells.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(cells[i].weight, expected[i].weight);
      EXPECT_EQ(cells[i].edges, expected[i].edges);
    }

    // CRLF framing from the client side must parse identically.
    conn.SendLine(req.str() + "\r");
    std::string response;
    ASSERT_TRUE(conn.RecvLine(response));
    EXPECT_TRUE(ParseJson(response).GetBool("ok", false));

    const JsonValue stats = conn.RoundTrip(R"({"op":"stats"})");
    EXPECT_DOUBLE_EQ(stats.Find("cache")->GetNumber("hits", -1), 4.0);
    EXPECT_DOUBLE_EQ(stats.Find("cache")->GetNumber("misses", -1), 4.0);
  }

  server.RequestShutdown();
  EXPECT_EQ(server.Wait(), 0);
  EXPECT_THROW(ClientConnection("127.0.0.1", server.Port()),
               std::runtime_error);
}

TEST(ServerTest, ConcurrentDuplicateStreamIsBitIdenticalToOneShot) {
  // The ISSUE's correctness contract: N client threads submitting an
  // 80%-duplicate stream get bit-identical solutions to sequential
  // one-shot solves, and cache hits + misses sum to the requests.
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  constexpr int kHotSpecs = 4;    // the duplicated 80%
  const std::vector<std::string> solvers = {"gw-moat"};

  // Distinct specs differ in an edge weight; every spec is one unit
  // (1 case x 1 instance x 1 solver).
  const auto spec_text = [](int variant) {
    std::ostringstream os;
    os << "seed " << (variant + 1) << "\n"
       << "graph 6\n"
       << "edge 0 1 " << (variant % 9 + 1) << "\n"
       << "edge 1 2 3\nedge 2 3 1\nedge 3 4 4\nedge 4 5 1\nedge 0 5 2\n"
       << "ic ends\nterminal 0 1\nterminal 3 1\n";
    return os.str();
  };

  ServeOptions options;
  options.threads = 2;
  Server server(options);
  server.Start();

  // variant stream per client: 80% hot (shared across clients), 20% unique.
  const auto variant_for = [&](int client, int i) {
    if (i % 5 != 4) return i % kHotSpecs;
    return 100 + client * kPerClient + i;  // unique cold spec
  };

  std::vector<std::map<int, ExpectedCell>> got(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ClientConnection conn("127.0.0.1", server.Port());
        for (int i = 0; i < kPerClient; ++i) {
          const int variant = variant_for(c, i);
          std::ostringstream req;
          req << R"({"op":"solve","spec":)" << EscapeForJson(spec_text(variant))
              << R"(,"solvers":["gw-moat"]})";
          const JsonValue v = conn.RoundTrip(req.str());
          if (!v.GetBool("ok", false)) {
            ++failures;
            continue;
          }
          const auto cells = CellsOf(v);
          if (cells.size() != 1) {
            ++failures;
            continue;
          }
          got[static_cast<std::size_t>(c)][variant] = cells[0];
        }
      } catch (const std::exception&) {
        failures += kPerClient;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Bit-identical to sequential one-shot solves, for every variant any
  // client saw (hot variants were computed once and served from cache /
  // coalesced in-flight everywhere else).
  std::map<int, ExpectedCell> expected;
  for (int c = 0; c < kClients; ++c) {
    for (const auto& [variant, cell] : got[static_cast<std::size_t>(c)]) {
      const auto it = expected.find(variant);
      if (it == expected.end()) {
        const auto one_shot = OneShot(spec_text(variant), solvers);
        ASSERT_EQ(one_shot.size(), 1u);
        expected.emplace(variant, one_shot[0]);
      }
      const ExpectedCell& want = expected.at(variant);
      EXPECT_EQ(cell.weight, want.weight) << "variant " << variant;
      EXPECT_EQ(cell.edges, want.edges) << "variant " << variant;
    }
  }

  // Counter contract: every unit was classified as exactly one cache hit
  // or cache miss.
  const CacheCounters cache = server.Cache().Counters();
  EXPECT_EQ(cache.hits + cache.misses,
            static_cast<std::uint64_t>(kClients * kPerClient));
  // Misses = scheduled computations = distinct keys actually computed; with
  // coalescing they can undercut the distinct-variant count, never exceed
  // the admitted total.
  const QueueCounters queue = server.Queue().Counters();
  EXPECT_EQ(cache.misses, queue.admitted + queue.coalesced);
  EXPECT_GT(cache.hits, 0u);

  server.RequestShutdown();
  EXPECT_EQ(server.Wait(), 0);
}

// --- failure edges -----------------------------------------------------------

TEST(ServerTest, OverloadRejectsThenRecoversOverSockets) {
  // A depth-bound rejection must be a clean structured answer, and it must
  // not wedge the queue: admissible work right after the reject succeeds.
  ServeOptions options;
  options.max_pending = 2;
  Server server(options);
  server.Start();

  ClientConnection conn("127.0.0.1", server.Port());
  // Four units (two instances x two solvers) against a bound of two.
  std::ostringstream heavy;
  heavy << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
        << R"(,"solvers":["gw-moat","mst-prune"]})";
  const JsonValue rejected = conn.RoundTrip(heavy.str());
  EXPECT_FALSE(rejected.GetBool("ok", true));
  EXPECT_EQ(rejected.GetString("error", ""), "overloaded");

  // Recovery on the same connection: a one-solver solve (two units) fits
  // the bound, is admitted, and solves bit-identically to the one-shot run.
  std::ostringstream light;
  light << R"({"op":"solve","spec":)" << EscapeForJson(kWireSpec)
        << R"(,"solvers":["gw-moat"]})";
  const JsonValue ok = conn.RoundTrip(light.str());
  ASSERT_TRUE(ok.GetBool("ok", false)) << ok.GetString("error", "");
  const auto expected = OneShot(kWireSpec, {"gw-moat"});
  const auto cells = CellsOf(ok);
  ASSERT_EQ(cells.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(cells[i].weight, expected[i].weight);
    EXPECT_EQ(cells[i].edges, expected[i].edges);
  }

  // A concurrent burst of admissible solves against the same bound: every
  // response is either a solution or a clean "overloaded" — never a hang,
  // never a broken connection.
  constexpr int kBurst = 4;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(kBurst);
  for (int c = 0; c < kBurst; ++c) {
    clients.emplace_back([&, c] {
      try {
        ClientConnection burst_conn("127.0.0.1", server.Port());
        std::ostringstream req;
        req << R"({"op":"solve","spec":)"
            << EscapeForJson(kWireSpec + std::string("pair 0 ") +
                             std::to_string(c % 3 + 2) + "\n")
            << R"(,"solvers":["gw-moat"]})";
        const JsonValue v = burst_conn.RoundTrip(req.str());
        if (!v.GetBool("ok", false) &&
            v.GetString("error", "") != "overloaded") {
          ++bad;
        }
      } catch (const std::exception&) {
        ++bad;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(server.Queue().Counters().rejected, 0u);

  // The queue drained back to empty: the next request is admitted again.
  EXPECT_TRUE(conn.RoundTrip(light.str()).GetBool("ok", false));

  server.RequestShutdown();
  EXPECT_EQ(server.Wait(), 0);
}

TEST(ServerTest, CoalescedLeaderConnectionDiesMidSolve) {
  // Client A submits a solve and hangs up without reading the reply;
  // client B submits the identical request. The ticket A led must still
  // complete and B's solution must be bit-identical to the in-process
  // handler's — a dead leader never poisons followers.
  ServeOptions options;
  Server server(options);
  server.Start();

  // Heavy enough that B usually lands while A's unit is still in flight
  // (the contract below holds either way: coalesced or served from cache).
  const std::string request =
      R"({"op":"solve","generate":"grid rows=12 cols=12",)"
      R"("instance":"random-ic k=3 tpc=3","solvers":["gw-moat"],"seed":17})";

  {
    ClientConnection leader("127.0.0.1", server.Port());
    leader.SendLine(request);
  }  // destructor closes the socket with the solve still in flight

  ClientConnection follower("127.0.0.1", server.Port());
  follower.SendLine(request);
  std::string response;
  ASSERT_TRUE(follower.RecvLine(response));

  const JsonValue got = ParseJson(response);
  ASSERT_TRUE(got.GetBool("ok", false)) << got.GetString("error", "");
  InProcessService svc;
  const JsonValue want = ParseJson(HandleRequestLine(svc.ctx, request));
  ASSERT_TRUE(want.GetBool("ok", false));
  const auto got_cells = CellsOf(got);
  const auto want_cells = CellsOf(want);
  ASSERT_EQ(got_cells.size(), want_cells.size());
  for (std::size_t i = 0; i < want_cells.size(); ++i) {
    EXPECT_EQ(got_cells[i].weight, want_cells[i].weight);
    EXPECT_EQ(got_cells[i].edges, want_cells[i].edges);
  }

  // Exactly one computation was scheduled for the pair; the duplicate was
  // coalesced onto the leader's ticket or answered from the cache.
  const CacheCounters cache = server.Cache().Counters();
  const QueueCounters queue = server.Queue().Counters();
  EXPECT_EQ(queue.admitted, 1u);
  EXPECT_EQ(cache.hits + queue.coalesced, 1u);
  EXPECT_EQ(cache.misses, 1u + queue.coalesced);

  server.RequestShutdown();
  EXPECT_EQ(server.Wait(), 0);
}

TEST(ServerTest, DrainsWithPartialLineInFlight) {
  // A client stalled mid-line (bytes sent, no newline) must not pin the
  // drain: SHUT_RD delivers EOF to its handler, which discards the
  // partial request and exits.
  ServeOptions options;
  Server server(options);
  server.Start();

  const int fd = ConnectTcp("127.0.0.1", server.Port(), 0);
  ASSERT_GE(fd, 0);
  const std::string partial = R"({"op":"ping")";  // no closing }, no \n
  ASSERT_TRUE(SendAll(fd, partial.data(), partial.size()));
  // Give the accept loop time to hand the bytes to a handler so the drain
  // path below exercises an in-flight partial read, not an empty socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  server.RequestShutdown();
  EXPECT_EQ(server.Wait(), 0);
  ::close(fd);
}

}  // namespace
}  // namespace dsf
