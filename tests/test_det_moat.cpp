// Tests for the distributed deterministic moat-growing protocol (Section 4.1
// / E.1, Theorem 4.17). The key assertion: the distributed emulation replays
// exactly the centralized Algorithm 1/2 merge sequence and produces an
// equivalent (weight-identical) minimal feasible forest.
#include "dist/det_moat.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "steiner/exact.hpp"
#include "steiner/mst.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

void ExpectMatchesCentralized(const Graph& g, const IcInstance& ic,
                              Real epsilon = 0.0L,
                              const std::string& context = "") {
  DetMoatOptions opt;
  opt.epsilon = epsilon;
  const auto dist = RunDistributedMoat(g, ic, opt);
  MoatOptions copt;
  copt.epsilon = epsilon;
  const auto cent = CentralizedMoatGrowing(g, ic, copt);

  EXPECT_TRUE(IsFeasible(g, MakeMinimal(ic), dist.forest))
      << context << ": " << FeasibilityDiagnostic(g, MakeMinimal(ic), dist.forest);
  EXPECT_TRUE(g.IsForest(dist.forest)) << context;

  // Merge sequences must agree step by step.
  ASSERT_EQ(dist.merges.size(), cent.merges.size()) << context;
  for (std::size_t i = 0; i < dist.merges.size(); ++i) {
    EXPECT_EQ(dist.merges[i].v, cent.merges[i].v) << context << " merge " << i;
    EXPECT_EQ(dist.merges[i].w, cent.merges[i].w) << context << " merge " << i;
    EXPECT_EQ(dist.merges[i].mu, cent.merges[i].mu) << context << " merge " << i;
    EXPECT_EQ(dist.merges[i].both_active, cent.merges[i].both_active)
        << context << " merge " << i;
  }
  EXPECT_EQ(dist.dual_sum, cent.dual_sum) << context;
  // Both outputs are minimal feasible subforests of weight-equal raw forests.
  EXPECT_EQ(g.WeightOf(dist.forest), g.WeightOf(cent.forest)) << context;
}

TEST(DetMoatTest, TwoTerminalPath) {
  const Graph g = MakePath(5, 2);
  const IcInstance ic = MakeIcInstance(5, {{0, 1}, {4, 1}});
  const auto res = RunDistributedMoat(g, ic);
  EXPECT_EQ(res.forest.size(), 4u);
  EXPECT_EQ(res.merges.size(), 1u);
}

TEST(DetMoatTest, DiamondPicksCheapSide) {
  const Graph g = MakeGraph(4, {{0, 1, 1}, {1, 3, 1}, {0, 2, 3}, {2, 3, 1}});
  const IcInstance ic = MakeIcInstance(4, {{0, 9}, {3, 9}});
  const auto res = RunDistributedMoat(g, ic);
  EXPECT_EQ(g.WeightOf(res.forest), 2);
}

TEST(DetMoatTest, MatchesCentralizedOnSmallFixtures) {
  {
    const Graph g = MakeStar(6, 2);
    const IcInstance ic = MakeIcInstance(6, {{1, 1}, {2, 1}, {3, 2}, {4, 2}});
    ExpectMatchesCentralized(g, ic, 0.0L, "star");
  }
  {
    const Graph g = MakeCycle(8, 3);
    const IcInstance ic = MakeIcInstance(8, {{0, 1}, {3, 1}, {5, 2}, {6, 2}});
    ExpectMatchesCentralized(g, ic, 0.0L, "cycle");
  }
  {
    SplitMix64 rng(5);
    const Graph g = MakeGrid(3, 3, 1, 4, rng);
    const IcInstance ic = MakeIcInstance(9, {{0, 1}, {8, 1}, {2, 2}, {6, 2}});
    ExpectMatchesCentralized(g, ic, 0.0L, "grid");
  }
}

TEST(DetMoatTest, MatchesCentralizedOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(16, 0.2, 1, 24, rng);
    const IcInstance ic =
        MakeIcInstance(16, {{0, 1}, {5, 1}, {9, 2}, {13, 2}, {3, 3}, {11, 3}});
    ExpectMatchesCentralized(g, ic, 0.0L, "seed " + std::to_string(seed));
  }
}

TEST(DetMoatTest, MatchesCentralizedRoundedMode) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed ^ 0x77);
    const Graph g = MakeConnectedRandom(14, 0.25, 1, 16, rng);
    const IcInstance ic = MakeIcInstance(14, {{0, 1}, {6, 1}, {3, 2}, {11, 2}});
    ExpectMatchesCentralized(g, ic, 0.5L, "rounded seed " + std::to_string(seed));
  }
}

TEST(DetMoatTest, TwoApproxAgainstExact) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SplitMix64 rng(seed ^ 0x1234);
    const Graph g = MakeConnectedRandom(12, 0.3, 1, 12, rng);
    const IcInstance ic = MakeIcInstance(12, {{0, 1}, {5, 1}, {8, 2}, {11, 2}});
    const auto res = RunDistributedMoat(g, ic);
    const Weight opt = ExactSteinerForestWeight(g, ic);
    EXPECT_LE(g.WeightOf(res.forest), 2 * opt) << seed;
  }
}

TEST(DetMoatTest, MstSpecialCase) {
  // t = n, k = 1: exact MST (paper, Main Techniques).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(12, 0.3, 1, 40, rng);
    std::vector<std::pair<NodeId, Label>> assign;
    for (NodeId v = 0; v < 12; ++v) assign.push_back({v, 1});
    const auto res = RunDistributedMoat(g, MakeIcInstance(12, assign));
    EXPECT_EQ(g.WeightOf(res.forest), MstWeight(g)) << seed;
  }
}

TEST(DetMoatTest, EmptyInstanceTerminatesWithNoEdges) {
  const Graph g = MakePath(6);
  const auto res = RunDistributedMoat(g, MakeIcInstance(6, {}));
  EXPECT_TRUE(res.forest.empty());
  EXPECT_EQ(res.phases, 0);
}

TEST(DetMoatTest, SingletonLabelsIgnored) {
  const Graph g = MakePath(6);
  const IcInstance ic = MakeIcInstance(6, {{0, 1}, {2, 1}, {5, 7}});
  const auto res = RunDistributedMoat(g, ic);
  EXPECT_EQ(g.WeightOf(res.forest), 2);
}

TEST(DetMoatTest, OutputIsMinimalFeasible) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed ^ 0x555);
    const Graph g = MakeConnectedRandom(15, 0.25, 1, 20, rng);
    const IcInstance ic = MakeIcInstance(15, {{0, 1}, {7, 1}, {4, 2}, {12, 2}});
    const auto res = RunDistributedMoat(g, ic);
    EXPECT_TRUE(IsMinimalFeasible(g, MakeMinimal(ic), res.forest)) << seed;
  }
}

TEST(DetMoatTest, PhaseCountBoundedByTwoK) {
  // Lemma 4.4 (exact mode): at most 2k merge phases.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(20, 0.2, 1, 25, rng);
    const IcInstance ic =
        MakeIcInstance(20, {{0, 1}, {5, 1}, {9, 2}, {13, 2}, {3, 3}, {17, 3}});
    const auto res = RunDistributedMoat(g, ic);
    EXPECT_LE(res.phases, 2 * ic.NumComponents() + 1) << seed;
  }
}

TEST(DetMoatTest, UnitWeightsWithTies) {
  // Heavily tied instance (all unit weights, symmetric star): output must
  // still be feasible, a forest, and within factor 2.
  const Graph g = MakeStar(9);
  const IcInstance ic =
      MakeIcInstance(9, {{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {6, 3}});
  const auto res = RunDistributedMoat(g, ic);
  EXPECT_TRUE(IsFeasible(g, ic, res.forest));
  const Weight opt = ExactSteinerForestWeight(g, ic);
  EXPECT_LE(g.WeightOf(res.forest), 2 * opt);
}

TEST(DetMoatTest, RoundsScaleReasonably) {
  // Sanity guard on round complexity: O(k(s + D) + t) with moderate
  // constants. (The benchmark suite measures the real scaling.)
  SplitMix64 rng(42);
  const Graph g = MakeConnectedRandom(30, 0.12, 1, 20, rng);
  const IcInstance ic = MakeIcInstance(30, {{0, 1}, {15, 1}, {7, 2}, {23, 2}});
  const auto params = ComputeParameters(g);
  const auto res = RunDistributedMoat(g, ic);
  const long bound =
      200L * (2 * 2 + 2) *
          (params.shortest_path_diameter + params.unweighted_diameter + 8) +
      50L * 30;
  EXPECT_LE(res.stats.rounds, bound);
}

TEST(DetMoatTest, BandwidthDiscipline) {
  SplitMix64 rng(4);
  const Graph g = MakeConnectedRandom(20, 0.2, 1, 30, rng);
  const IcInstance ic = MakeIcInstance(20, {{0, 1}, {10, 1}, {5, 2}, {15, 2}});
  const auto res = RunDistributedMoat(g, ic);
  // CONGEST discipline: per-edge per-round traffic stays within the model's
  // O(log n) budget (with the documented constant).
  EXPECT_LE(res.stats.max_bits_per_edge_round, 3 * 96);
}

}  // namespace
}  // namespace dsf
