// Tests for the centralized moat-growing algorithms (Algorithm 1 / 2) and the
// shared MoatBook bookkeeping.
#include "steiner/moat.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "steiner/exact.hpp"
#include "steiner/mst.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

// --- Fixed-point helpers ---

TEST(FixedTest, Conversions) {
  EXPECT_EQ(ToFixed(1), kFixedOne);
  EXPECT_EQ(ToFixed(5), 5 * kFixedOne);
  EXPECT_EQ(FixedToReal(kFixedOne), 1.0L);
  EXPECT_EQ(FixedToReal(kFixedOne / 2), 0.5L);
}

TEST(FixedTest, HalfUpRounding) {
  EXPECT_EQ(HalfUp(4), 2);
  EXPECT_EQ(HalfUp(5), 3);
  EXPECT_EQ(HalfUp(0), 0);
  EXPECT_EQ(HalfUp(1), 1);
}

// --- MoatBook ---

TEST(MoatBookTest, InitialState) {
  const std::vector<NodeId> terms{2, 5, 7, 9};
  const std::vector<Label> labels{1, 1, 2, 2};
  MoatBook book(terms, labels, MoatMode::kExact);
  EXPECT_EQ(book.NumTerminals(), 4);
  EXPECT_EQ(book.NumActiveMoats(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(book.ActiveTerminal(i));
    EXPECT_EQ(book.RadOf(i), 0);
  }
  EXPECT_EQ(book.IndexOf(5), 1);
  EXPECT_EQ(book.IndexOf(4), -1);
}

TEST(MoatBookTest, SingletonLabelStartsInactive) {
  const std::vector<NodeId> terms{0, 1, 2};
  const std::vector<Label> labels{1, 1, 5};  // label 5 is a singleton
  MoatBook book(terms, labels, MoatMode::kExact);
  EXPECT_TRUE(book.ActiveTerminal(0));
  EXPECT_FALSE(book.ActiveTerminal(2));
  EXPECT_EQ(book.NumActiveMoats(), 2);
}

TEST(MoatBookTest, MergeCompletingComponentDeactivates) {
  const std::vector<NodeId> terms{0, 1};
  const std::vector<Label> labels{3, 3};
  MoatBook book(terms, labels, MoatMode::kExact);
  const auto r = book.GrowAndMerge(ToFixed(2), 0, 1, 0);
  EXPECT_TRUE(r.activity_changed);
  EXPECT_TRUE(r.became_inactive);
  EXPECT_FALSE(r.involved_inactive);
  EXPECT_EQ(book.NumActiveMoats(), 0);
  EXPECT_EQ(book.RadOf(0), ToFixed(2));
  EXPECT_EQ(book.DualSum(), 2 * ToFixed(2));
}

TEST(MoatBookTest, CrossComponentMergeStaysActive) {
  const std::vector<NodeId> terms{0, 1, 2, 3};
  const std::vector<Label> labels{1, 1, 2, 2};
  MoatBook book(terms, labels, MoatMode::kExact);
  // Merge a label-1 terminal with a label-2 terminal: classes merge, the
  // moat stays active (2 of 4 class members inside).
  const auto r = book.GrowAndMerge(kFixedOne, 0, 2, 0);
  EXPECT_FALSE(r.activity_changed);
  EXPECT_FALSE(r.became_inactive);
  EXPECT_EQ(book.NumActiveMoats(), 3);
  // Completing the merged class requires both remaining terminals.
  book.GrowAndMerge(0, 0, 1, 0);
  EXPECT_EQ(book.NumActiveMoats(), 2);
  const auto r3 = book.GrowAndMerge(0, 2, 3, 0);
  EXPECT_TRUE(r3.became_inactive);
  EXPECT_EQ(book.NumActiveMoats(), 0);
}

TEST(MoatBookTest, RoundedModeDefersDeactivation) {
  const std::vector<NodeId> terms{0, 1};
  const std::vector<Label> labels{3, 3};
  MoatBook book(terms, labels, MoatMode::kRounded);
  const auto r = book.GrowAndMerge(kFixedOne, 0, 1, 0);
  EXPECT_FALSE(r.became_inactive);
  EXPECT_EQ(book.NumActiveMoats(), 1);  // still active (Algorithm 2 line 33)
  EXPECT_EQ(book.GrowAndCheckpoint(0), 1);
  EXPECT_EQ(book.NumActiveMoats(), 0);
}

TEST(MoatBookTest, InactiveMoatReactivatesOnMerge) {
  const std::vector<NodeId> terms{0, 1, 2, 3};
  const std::vector<Label> labels{1, 1, 2, 2};
  MoatBook book(terms, labels, MoatMode::kExact);
  book.GrowAndMerge(kFixedOne, 0, 1, 0);  // completes label 1 -> inactive
  EXPECT_FALSE(book.ActiveTerminal(0));
  const auto r = book.GrowAndMerge(kFixedOne, 2, 0, 1);  // active 2 + inactive
  EXPECT_TRUE(r.involved_inactive);
  EXPECT_TRUE(r.activity_changed);
  EXPECT_TRUE(book.ActiveTerminal(0));  // reactivated
  // Rad of 0 grew only while active (the first merge).
  EXPECT_EQ(book.RadOf(0), kFixedOne);
  EXPECT_EQ(book.RadOf(2), 2 * kFixedOne);
}

TEST(MoatBookTest, MinimalMergeSubsetDropsUselessMerges) {
  // Labels: {0,1} component A at nodes 0,1; {2,3} component B at 2,3.
  const std::vector<NodeId> terms{0, 1, 2, 3};
  const std::vector<Label> labels{1, 1, 2, 2};
  MoatBook book(terms, labels, MoatMode::kExact);
  book.GrowAndMerge(0, 0, 1, 0);  // needed for A
  book.GrowAndMerge(0, 2, 0, 0);  // merges B-side into A's moat (not needed)
  book.GrowAndMerge(0, 2, 3, 0);  // needed for B
  const auto subset = book.MinimalMergeSubset();
  EXPECT_EQ(subset, (std::vector<int>{0, 2}));
}

// --- Centralized Algorithm 1 ---

TEST(MoatGrowingTest, TwoTerminalsPickShortestPath) {
  // Diamond: cheap route 0-1-3 (weight 2), expensive 0-2-3 (weight 4).
  const Graph g = MakeGraph(4, {{0, 1, 1}, {1, 3, 1}, {0, 2, 3}, {2, 3, 1}});
  const IcInstance ic = MakeIcInstance(4, {{0, 9}, {3, 9}});
  const auto res = CentralizedMoatGrowing(g, ic);
  EXPECT_TRUE(IsFeasible(g, ic, res.forest));
  EXPECT_EQ(g.WeightOf(res.forest), 2);
  EXPECT_EQ(res.merges.size(), 1u);
  EXPECT_TRUE(res.merges[0].both_active);
}

TEST(MoatGrowingTest, OutputIsMinimalFeasibleForest) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(18, 0.2, 1, 20, rng);
    const IcInstance ic =
        MakeIcInstance(18, {{0, 1}, {5, 1}, {9, 2}, {13, 2}, {17, 2}});
    const auto res = CentralizedMoatGrowing(g, ic);
    EXPECT_TRUE(g.IsForest(res.forest)) << seed;
    EXPECT_TRUE(IsMinimalFeasible(g, ic, res.forest)) << seed;
  }
}

TEST(MoatGrowingTest, TwoApproxAgainstExactOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(14, 0.25, 1, 16, rng);
    const IcInstance ic = MakeIcInstance(14, {{0, 1}, {3, 1}, {6, 2}, {9, 2}});
    const auto res = CentralizedMoatGrowing(g, ic);
    const Weight opt = ExactSteinerForestWeight(g, ic);
    ASSERT_LT(opt, kInfWeight);
    EXPECT_TRUE(IsFeasible(g, ic, res.forest));
    EXPECT_LE(g.WeightOf(res.forest), 2 * opt) << "seed " << seed;
    EXPECT_GE(g.WeightOf(res.forest), opt) << "seed " << seed;
  }
}

TEST(MoatGrowingTest, DualSumLowerBoundsOutput) {
  // Theorem 4.1's chain: W(F) < 2 * Σ act_i µ_i <= 2 * OPT.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SplitMix64 rng(seed ^ 0xABC);
    const Graph g = MakeConnectedRandom(20, 0.2, 1, 25, rng);
    const IcInstance ic =
        MakeIcInstance(20, {{0, 1}, {4, 1}, {8, 2}, {12, 2}, {16, 3}, {19, 3}});
    const auto res = CentralizedMoatGrowing(g, ic);
    const Fixed weight_fixed = ToFixed(g.WeightOf(res.forest));
    // Small slop for the 2^-12 event-time quantization.
    const Fixed slop = static_cast<Fixed>(res.merges.size() + 1) * 8;
    EXPECT_LE(weight_fixed, 2 * res.dual_sum + slop) << seed;
  }
}

TEST(MoatGrowingTest, SteinerTreeSpecialCaseIsTerminalMst) {
  // k = 1: the output is (the graph edges of) an MST of the terminal metric;
  // with all nodes terminals it is exactly an MST (paper, Main Techniques).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(16, 0.3, 1, 50, rng);
    std::vector<std::pair<NodeId, Label>> assign;
    for (NodeId v = 0; v < 16; ++v) assign.push_back({v, 1});
    const IcInstance ic = MakeIcInstance(16, assign);
    const auto res = CentralizedMoatGrowing(g, ic);
    EXPECT_EQ(g.WeightOf(res.forest), MstWeight(g)) << seed;
  }
}

TEST(MoatGrowingTest, EmptyInstance) {
  const Graph g = MakePath(5);
  const IcInstance ic = MakeIcInstance(5, {});
  const auto res = CentralizedMoatGrowing(g, ic);
  EXPECT_TRUE(res.forest.empty());
  EXPECT_TRUE(res.merges.empty());
}

TEST(MoatGrowingTest, SingletonComponentsIgnored) {
  const Graph g = MakePath(5);
  const IcInstance ic = MakeIcInstance(5, {{0, 1}, {2, 1}, {4, 9}});
  const auto res = CentralizedMoatGrowing(g, ic);
  EXPECT_TRUE(IsFeasible(g, MakeMinimal(ic), res.forest));
  EXPECT_EQ(g.WeightOf(res.forest), 2);  // just 0-1-2
}

TEST(MoatGrowingTest, InfeasibleInstanceThrows) {
  Graph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(2, 3, 1);
  g.Finalize();
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {3, 1}});
  EXPECT_THROW(CentralizedMoatGrowing(g, ic), std::logic_error);
}

// Lemma 4.4: the number of merge phases is at most 2k.
TEST(MoatGrowingTest, MergePhasesBoundedByTwoK) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(24, 0.15, 1, 30, rng);
    const IcInstance ic = MakeIcInstance(
        24, {{0, 1}, {4, 1}, {8, 2}, {12, 2}, {16, 3}, {20, 3}, {2, 4}, {22, 4}});
    const auto res = CentralizedMoatGrowing(g, ic);
    const int k = ic.NumComponents();
    EXPECT_LE(res.merge_phases, 2 * k) << seed;
  }
}

// --- Algorithm 2 (rounded radii) ---

TEST(MoatGrowingRoundedTest, FeasibleAndWithinTwoPlusEps) {
  const Real eps = 0.5L;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(14, 0.25, 1, 16, rng);
    const IcInstance ic = MakeIcInstance(14, {{0, 1}, {3, 1}, {6, 2}, {9, 2}});
    MoatOptions opt;
    opt.epsilon = eps;
    const auto res = CentralizedMoatGrowing(g, ic, opt);
    const Weight optw = ExactSteinerForestWeight(g, ic);
    EXPECT_TRUE(IsFeasible(g, ic, res.forest)) << seed;
    EXPECT_LE(static_cast<Real>(g.WeightOf(res.forest)),
              (2.0L + eps) * static_cast<Real>(optw) + 0.01L)
        << seed;
    EXPECT_GT(res.growth_phases, 0) << seed;
  }
}

TEST(MoatGrowingRoundedTest, GrowthPhasesLogarithmic) {
  // Lemma F.1: #growth phases <= 1 + ceil(log_{1+eps/2}(WD / 2)).
  SplitMix64 rng(11);
  const Graph g = MakeConnectedRandom(30, 0.1, 1, 64, rng);
  MoatOptions opt;
  opt.epsilon = 1.0L;
  const IcInstance ic = MakeIcInstance(30, {{0, 1}, {15, 1}, {7, 2}, {23, 2}});
  const auto res = CentralizedMoatGrowing(g, ic, opt);
  // WD <= 30 * 64; log_{1.5} of that is ~18.7.
  EXPECT_LE(res.growth_phases, 22);
}

TEST(MoatGrowingRoundedTest, SmallEpsilonApproachesAlgorithmOne) {
  SplitMix64 rng(3);
  const Graph g = MakeConnectedRandom(16, 0.2, 1, 12, rng);
  const IcInstance ic = MakeIcInstance(16, {{0, 1}, {5, 1}, {10, 2}, {15, 2}});
  const auto exact = CentralizedMoatGrowing(g, ic);
  MoatOptions opt;
  opt.epsilon = 0.01L;
  const auto rounded = CentralizedMoatGrowing(g, ic, opt);
  // Outputs need not be identical, but weights should be close.
  const auto we = g.WeightOf(exact.forest);
  const auto wr = g.WeightOf(rounded.forest);
  EXPECT_LE(static_cast<Real>(wr), 1.1L * static_cast<Real>(we));
}

}  // namespace
}  // namespace dsf
