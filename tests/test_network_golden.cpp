// Golden-stats regression tests: the simulator's bit-reproducibility
// contract (DESIGN.md §2/§8). The pinned numbers below were captured from
// the pre-refactor simulator (O(m)-allocation rounds, adjacency-scan
// delivery, tick-everyone scheduling); the rearchitected hot loop — mirror
// incidence, dirty-list accounting, active-set scheduling, parallel phase
// (i) — must reproduce every one of them exactly, under every scheduler
// configuration. A drift in rounds, messages, bits, or the marked-edge set
// is a correctness bug, not a tuning artifact.
#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/random.hpp"
#include "congest/network.hpp"
#include "dist/det_moat.hpp"
#include "dist/randomized.hpp"
#include "graph/generators.hpp"
#include "steiner/instance.hpp"

namespace dsf {
namespace {

// The three scheduler configurations under test: the sequential legacy-shape
// path, active-set scheduling, and the thread-pool path (forced to 4
// executors so the pool machinery runs even on single-core CI).
const NetworkOptions kSequential{/*active_set=*/false, /*threads=*/1};
const NetworkOptions kActiveSet{/*active_set=*/true, /*threads=*/1};
const NetworkOptions kParallel{/*active_set=*/true, /*threads=*/4};

const NetworkOptions kAllConfigs[] = {kSequential, kActiveSet, kParallel};

IcInstance SpreadTerminals(int n, int k, SplitMix64& rng) {
  std::vector<std::pair<NodeId, Label>> assign;
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < 2; ++j) {
      NodeId v = 0;
      do {
        v = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
      } while (used[static_cast<std::size_t>(v)]);
      used[static_cast<std::size_t>(v)] = 1;
      assign.push_back({v, static_cast<Label>(c + 1)});
    }
  }
  return MakeIcInstance(n, assign);
}

void ExpectStats(const RunStats& s, long rounds, long messages,
                 long total_bits, long max_bits, long charged, long phases) {
  EXPECT_EQ(s.rounds, rounds);
  EXPECT_EQ(s.messages, messages);
  EXPECT_EQ(s.total_bits, total_bits);
  EXPECT_EQ(s.max_bits_per_edge_round, max_bits);
  EXPECT_EQ(s.cut_bits, 0);
  EXPECT_EQ(s.cut_messages, 0);
  EXPECT_EQ(s.charged_rounds, charged);
  EXPECT_EQ(s.phases, phases);
  EXPECT_FALSE(s.hit_round_limit);
}

// Deterministic run: the moat-growing protocol on a fixed random topology.
TEST(NetworkGoldenTest, DeterministicMoatPinnedUnderAllSchedulers) {
  SplitMix64 rng(7);
  const Graph g = MakeConnectedRandom(24, 0.2, 1, 16, rng);
  const IcInstance ic = SpreadTerminals(24, 3, rng);
  ASSERT_EQ(g.NumEdges(), 75);

  const std::vector<EdgeId> want_raw{9, 25, 52, 50, 20, 6, 43};
  const std::vector<EdgeId> want_forest{6, 9, 20, 25, 43, 50, 52};
  for (const auto& net_opts : kAllConfigs) {
    DetMoatOptions opts;
    opts.net = net_opts;
    const auto res = RunDistributedMoat(g, ic, opts, 5);
    SCOPED_TRACE(testing::Message() << "active_set=" << net_opts.active_set
                                    << " threads=" << net_opts.threads);
    ExpectStats(res.stats, /*rounds=*/68, /*messages=*/1916,
                /*total_bits=*/35828, /*max_bits=*/120, /*charged=*/0,
                /*phases=*/1);
    EXPECT_EQ(res.raw_forest, want_raw);
    EXPECT_EQ(res.forest, want_forest);
    EXPECT_EQ(res.dual_sum, 135168);
    EXPECT_EQ(res.phases, 1);
  }
}

// Randomized run: per-node RNG streams, embedding ranks, and token routing
// must all be scheduler-independent.
TEST(NetworkGoldenTest, RandomizedPinnedUnderAllSchedulers) {
  SplitMix64 rng(11);
  const Graph g = MakeConnectedRandom(20, 0.25, 1, 12, rng);
  const IcInstance ic = SpreadTerminals(20, 2, rng);
  ASSERT_EQ(g.NumEdges(), 52);

  const std::vector<EdgeId> want_forest{1, 4, 12, 18, 20, 27, 28, 33};
  for (const auto& net_opts : kAllConfigs) {
    RandomizedOptions opts;
    opts.repetitions = 1;
    opts.net = net_opts;
    const auto res = RunRandomizedSteinerForest(g, ic, opts, 9);
    SCOPED_TRACE(testing::Message() << "active_set=" << net_opts.active_set
                                    << " threads=" << net_opts.threads);
    ExpectStats(res.stats, /*rounds=*/47, /*messages=*/816,
                /*total_bits=*/36595, /*max_bits=*/175, /*charged=*/10,
                /*phases=*/0);
    EXPECT_EQ(res.forest, want_forest);
    EXPECT_EQ(res.le_rounds, 17);
    EXPECT_EQ(res.reduced_terminals, 0);
  }
}

// Network-level cross-config equality with a program that exercises RNG
// draws, marking/unmarking, and irregular sending — no protocol scaffolding
// in the way. All three schedulers must agree field by field.
class ChurnProgram : public NodeProgram {
 public:
  explicit ChurnProgram(NodeId id) : id_(id) {}

  void OnRound(NodeApi& api) override {
    if (api.Round() >= 12) {
      done_ = true;
      return;
    }
    const auto draw = api.Rng().Next();
    const int deg = api.Degree();
    if (deg == 0) return;
    const int local = static_cast<int>(draw % static_cast<std::uint64_t>(deg));
    if (draw % 3 == 0) {
      api.Send(local, Message{kChApp, {static_cast<std::int64_t>(draw & 0xff),
                                       id_, api.Round()}});
    }
    if (draw % 5 == 0) api.MarkEdge(local);
    if (draw % 7 == 0) api.UnmarkEdge(local);
    for (const auto& d : api.Inbox()) {
      if (d.msg.fields[0] % 2 == 0) api.MarkEdge(d.from_local);
    }
  }
  [[nodiscard]] bool Done() const override { return done_; }

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(NetworkGoldenTest, ChurnProgramAgreesAcrossSchedulers) {
  SplitMix64 rng(21);
  const Graph g = MakeConnectedRandom(40, 0.12, 1, 9, rng);
  StaticKnowledge known;
  known.n = g.NumNodes();
  known.diameter_bound = 10;

  std::vector<RunStats> stats;
  std::vector<std::vector<EdgeId>> marked;
  for (const auto& net_opts : kAllConfigs) {
    Network net(g, known, /*seed=*/77, net_opts);
    net.Start([](NodeId v) { return std::make_unique<ChurnProgram>(v); });
    stats.push_back(net.Run(100));
    marked.push_back(net.MarkedEdges());
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].rounds, stats[0].rounds);
    EXPECT_EQ(stats[i].messages, stats[0].messages);
    EXPECT_EQ(stats[i].total_bits, stats[0].total_bits);
    EXPECT_EQ(stats[i].max_bits_per_edge_round,
              stats[0].max_bits_per_edge_round);
    EXPECT_EQ(marked[i], marked[0]);
  }
  EXPECT_GT(stats[0].messages, 0);
  EXPECT_FALSE(marked[0].empty());
}

// Arena-delivery golden: a program that hammers exactly the surfaces the
// per-round message arena owns — several messages per edge per round across
// application and scaffolding channels (the latter exempt from app-activity
// tracking), payload widths from empty to the FieldList capacity, extreme
// field values, and mark/unmark churn — while folding every delivery, in
// inbox order, into a running checksum. The pinned RunStats and checksum
// were captured from the pre-arena simulator (per-node inbox vectors,
// recycled outboxes); the SoA arena with prefix-sum receiver offsets must
// reproduce them bit for bit under all three schedulers: any change to
// delivery order, payload bytes, accounting, or activity tracking moves the
// checksum.
class ArenaStressProgram : public NodeProgram {
 public:
  explicit ArenaStressProgram(NodeId id) : id_(id) {}

  void OnRound(NodeApi& api) override {
    for (const auto& d : api.Inbox()) {
      sum_ = Mix64(sum_ ^ static_cast<std::uint64_t>(d.from_local));
      sum_ = Mix64(sum_ ^ static_cast<std::uint64_t>(d.from_node));
      sum_ = Mix64(sum_ ^ static_cast<std::uint64_t>(d.msg.channel));
      for (const std::int64_t f : d.msg.fields) {
        sum_ = Mix64(sum_ ^ static_cast<std::uint64_t>(f));
      }
      if (d.msg.channel == kChApp && !d.msg.fields.empty() &&
          d.msg.fields[0] % 3 == 0) {
        api.MarkEdge(d.from_local);
      }
      if (d.msg.channel == kChToken && d.msg.fields[0] % 4 == 0) {
        api.UnmarkEdge(d.from_local);
      }
    }
    sum_ = Mix64(sum_ ^ static_cast<std::uint64_t>(api.LastAppActivity()));
    if (api.Round() >= 10) {
      done_ = true;
      return;
    }
    const int deg = api.Degree();
    for (int i = 0; i < deg; ++i) {
      const std::int64_t r = api.Round();
      // Empty payload on a scaffolding channel (no app activity).
      if ((id_ + r) % 3 == 0) api.Send(i, Message{kChQuiesce, {}});
      // Full-width payload with extreme values on an app channel.
      if ((id_ + i) % 2 == 0) {
        api.Send(i, Message{kChApp,
                            {std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::max(), id_, r,
                             -r, id_ * 3, 0, -1}});
      }
      // Mid-width payloads on two more channels, same edge, same round.
      api.Send(i, Message{kChApp, {id_ + r, i}});
      if (r % 4 == 1) api.Send(i, Message{kChToken, {id_ - 2 * r}});
      if (r % 5 == 2) api.Send(i, Message{kChCtrl, {i, id_, r, 7}});
    }
  }
  [[nodiscard]] bool Done() const override { return done_; }

  std::uint64_t sum_ = 0;

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(NetworkGoldenTest, ArenaDeliveryPinnedUnderAllSchedulers) {
  SplitMix64 rng(31);
  const Graph g = MakeConnectedRandom(48, 0.14, 1, 21, rng);
  ASSERT_EQ(g.NumEdges(), 200);
  StaticKnowledge known;
  known.n = g.NumNodes();
  known.diameter_bound = 8;
  known.bandwidth_bits = 1 << 12;  // roomy: several wide messages per edge

  for (const auto& net_opts : kAllConfigs) {
    Network net(g, known, /*seed=*/5, net_opts);
    net.Start([](NodeId v) { return std::make_unique<ArenaStressProgram>(v); });
    const auto stats = net.Run(100);
    SCOPED_TRACE(testing::Message() << "active_set=" << net_opts.active_set
                                    << " threads=" << net_opts.threads);
    ExpectStats(stats, /*rounds=*/11, /*messages=*/9317,
                /*total_bits=*/419806, /*max_bits=*/216, /*charged=*/0,
                /*phases=*/0);
    std::uint64_t combined = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      combined = Mix64(
          combined ^
          dynamic_cast<ArenaStressProgram&>(net.ProgramAt(v)).sum_);
    }
    EXPECT_EQ(combined, 2579996461171503996ULL);
    const auto marked = net.MarkedEdges();
    EXPECT_EQ(marked.size(), 137u);
    std::uint64_t marked_sum = 0;
    for (const EdgeId e : marked) {
      marked_sum = Mix64(marked_sum ^ static_cast<std::uint64_t>(e));
    }
    EXPECT_EQ(marked_sum, 10107931410210139188ULL);
  }
}

// Inbox ordering is part of the reproducibility contract the arena's
// counting-sort scatter must preserve: deliveries arrive grouped by sender
// in ascending node order, and multiple sends from one sender (same round)
// stay in send order.
TEST(NetworkGoldenTest, InboxOrderedBySenderThenSendOrder) {
  class ToCenter : public NodeProgram {
   public:
    explicit ToCenter(NodeId id) : id_(id) {}
    void OnRound(NodeApi& api) override {
      if (api.Round() == 0 && id_ != 0) {
        // Leaves: local edge 0 points at the star center.
        api.Send(0, Message{kChApp, {id_, 100}});
        api.Send(0, Message{kChApp, {id_, 200}});
      }
      if (api.Round() == 1 && id_ == 0) {
        for (const auto& d : api.Inbox()) {
          order.push_back({d.msg.fields[0], d.msg.fields[1]});
          EXPECT_EQ(d.from_node, static_cast<NodeId>(d.msg.fields[0]));
        }
      }
      done_ = true;
    }
    [[nodiscard]] bool Done() const override { return done_; }
    std::vector<std::pair<std::int64_t, std::int64_t>> order;

   private:
    NodeId id_;
    bool done_ = false;
  };

  const Graph g = MakeStar(6);  // center 0, leaves 1..5
  StaticKnowledge known;
  known.n = g.NumNodes();
  known.diameter_bound = 2;
  for (const auto& net_opts : kAllConfigs) {
    Network net(g, known, /*seed=*/3, net_opts);
    net.Start([](NodeId v) { return std::make_unique<ToCenter>(v); });
    net.Run(10);
    const auto& center = dynamic_cast<ToCenter&>(net.ProgramAt(0));
    std::vector<std::pair<std::int64_t, std::int64_t>> want;
    for (std::int64_t v = 1; v <= 5; ++v) {
      want.push_back({v, 100});
      want.push_back({v, 200});
    }
    EXPECT_EQ(center.order, want);
  }
}

// The default-bandwidth computation must survive n near the int limit (it
// used to shift a plain int past bit 30).
TEST(NetworkGoldenTest, DefaultBandwidthSurvivesHugeN) {
  const Graph g = MakePath(2);
  StaticKnowledge known;
  known.n = 2000000000;  // forces the shift loop up to bit 31
  known.diameter_bound = 1;
  Network net(g, known, 1);
  EXPECT_EQ(net.Known().bandwidth_bits, 8 * 31);
}

// Mirror incidence sanity at the graph layer: every slot's mirror points
// back at the same edge, and the mirror of the mirror is the slot itself.
TEST(NetworkGoldenTest, MirrorLocalsAreInvolutive) {
  SplitMix64 rng(3);
  const Graph g = MakeConnectedRandom(30, 0.15, 1, 5, rng);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto nb = g.Neighbors(u);
    const auto mirrors = g.MirrorLocals(u);
    ASSERT_EQ(nb.size(), mirrors.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId w = nb[i].neighbor;
      const auto back = static_cast<std::size_t>(mirrors[i]);
      const auto wnb = g.Neighbors(w);
      const auto wmirrors = g.MirrorLocals(w);
      ASSERT_LT(back, wnb.size());
      EXPECT_EQ(wnb[back].edge, nb[i].edge);
      EXPECT_EQ(wnb[back].neighbor, u);
      EXPECT_EQ(static_cast<std::size_t>(wmirrors[back]), i);
    }
  }
}

}  // namespace
}  // namespace dsf
