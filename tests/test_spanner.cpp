#include "steiner/spanner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace dsf {
namespace {

std::vector<std::vector<Weight>> RandomMetric(int m, SplitMix64& rng) {
  // Shortest-path closure of a random graph gives a genuine metric.
  const Graph g = MakeConnectedRandom(m, 0.3, 1, 50, rng);
  std::vector<std::vector<Weight>> d;
  for (NodeId v = 0; v < m; ++v) d.push_back(Dijkstra(g, v).dist);
  return d;
}

TEST(SpannerTest, StretchRespectedOnRandomMetrics) {
  for (int k = 1; k <= 4; ++k) {
    SplitMix64 rng(static_cast<std::uint64_t>(k));
    const auto dist = RandomMetric(16, rng);
    const auto spanner = GreedyMetricSpanner(dist, k);
    EXPECT_LE(SpannerStretch(dist, spanner), 2.0 * k - 1.0 + 1e-9) << "k=" << k;
  }
}

TEST(SpannerTest, StretchOneKeepsAllUsefulEdges) {
  SplitMix64 rng(7);
  const auto dist = RandomMetric(10, rng);
  const auto spanner = GreedyMetricSpanner(dist, 1);
  EXPECT_LE(SpannerStretch(dist, spanner), 1.0 + 1e-9);
}

TEST(SpannerTest, SparserThanCompleteGraphForLargerK) {
  SplitMix64 rng(3);
  const auto dist = RandomMetric(24, rng);
  const auto dense = GreedyMetricSpanner(dist, 1);
  const auto sparse = GreedyMetricSpanner(dist, 3);
  EXPECT_LT(sparse.size(), dense.size());
  // Theory: size O(m^{1+1/k}); for k = 3, comfortably below m^2 / 4.
  EXPECT_LT(sparse.size(), 24u * 24u / 4u);
}

TEST(SpannerTest, ConnectedOutput) {
  SplitMix64 rng(5);
  const auto dist = RandomMetric(12, rng);
  const auto spanner = GreedyMetricSpanner(dist, 2);
  // SpannerStretch throws if any finite pair is disconnected.
  EXPECT_NO_THROW(SpannerStretch(dist, spanner));
}

TEST(SpannerTest, TinyInputs) {
  const std::vector<std::vector<Weight>> one{{0}};
  EXPECT_TRUE(GreedyMetricSpanner(one, 2).empty());
  EXPECT_EQ(SpannerStretch(one, {}), 1.0);
  const std::vector<std::vector<Weight>> two{{0, 5}, {5, 0}};
  const auto sp = GreedyMetricSpanner(two, 2);
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_EQ(sp[0].w, 5);
}

}  // namespace
}  // namespace dsf
