// Tests for the randomized distributed algorithm (Section 5, Theorem 5.2)
// and the Khan et al.-style baseline.
#include "dist/randomized.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "steiner/exact.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

TEST(RandomizedTest, TwoTerminalPathFeasible) {
  const Graph g = MakePath(6, 2);
  const IcInstance ic = MakeIcInstance(6, {{0, 1}, {5, 1}});
  const auto res = RunRandomizedSteinerForest(g, ic);
  EXPECT_TRUE(IsFeasible(g, ic, res.forest));
  EXPECT_FALSE(res.forest.empty());
}

TEST(RandomizedTest, FeasibleAcrossSeedsAndGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(20, 0.15, 1, 16, rng);
    const IcInstance ic =
        MakeIcInstance(20, {{0, 1}, {7, 1}, {11, 2}, {15, 2}, {3, 3}, {18, 3}});
    const auto res = RunRandomizedSteinerForest(g, ic, {}, seed);
    EXPECT_TRUE(IsFeasible(g, ic, res.forest)) << seed;
    EXPECT_GE(g.WeightOf(res.forest), ExactSteinerForestWeight(g, ic)) << seed;
  }
}

TEST(RandomizedTest, ApproximationWithinLogFactor) {
  // O(log n) expected; with min-of-3 repetitions the ratio should be modest.
  double worst = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed ^ 0xAA);
    const Graph g = MakeConnectedRandom(16, 0.25, 1, 20, rng);
    const IcInstance ic = MakeIcInstance(16, {{0, 1}, {6, 1}, {9, 2}, {14, 2}});
    RandomizedOptions opts;
    opts.repetitions = 3;
    const auto res = RunRandomizedSteinerForest(g, ic, opts, seed);
    const Weight opt = ExactSteinerForestWeight(g, ic);
    ASSERT_GT(opt, 0);
    worst = std::max(worst, static_cast<double>(g.WeightOf(res.forest)) /
                                static_cast<double>(opt));
  }
  // Theory: O(log n) ≈ 4 * log2(16) at worst; typical instances are far
  // better. Guard against regressions with a loose cap.
  EXPECT_LE(worst, 16.0);
}

TEST(RandomizedTest, DeterministicGivenSeed) {
  SplitMix64 rng(5);
  const Graph g = MakeConnectedRandom(14, 0.25, 1, 10, rng);
  const IcInstance ic = MakeIcInstance(14, {{0, 1}, {7, 1}, {4, 2}, {11, 2}});
  const auto a = RunRandomizedSteinerForest(g, ic, {}, 123);
  const auto b = RunRandomizedSteinerForest(g, ic, {}, 123);
  EXPECT_EQ(a.forest, b.forest);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(RandomizedTest, DifferentSeedsMayDiffer) {
  SplitMix64 rng(6);
  const Graph g = MakeConnectedRandom(18, 0.2, 1, 25, rng);
  const IcInstance ic = MakeIcInstance(18, {{0, 1}, {9, 1}, {5, 2}, {14, 2}});
  // Both feasible; weights may differ (randomized embedding).
  const auto a = RunRandomizedSteinerForest(g, ic, {}, 1);
  const auto b = RunRandomizedSteinerForest(g, ic, {}, 2);
  EXPECT_TRUE(IsFeasible(g, ic, a.forest));
  EXPECT_TRUE(IsFeasible(g, ic, b.forest));
}

TEST(RandomizedTest, RepetitionsNeverHurtWeight) {
  SplitMix64 rng(8);
  const Graph g = MakeConnectedRandom(16, 0.2, 1, 30, rng);
  const IcInstance ic = MakeIcInstance(16, {{0, 1}, {8, 1}, {4, 2}, {13, 2}});
  RandomizedOptions one;
  one.repetitions = 1;
  RandomizedOptions five;
  five.repetitions = 5;
  const auto r1 = RunRandomizedSteinerForest(g, ic, one, 77);
  const auto r5 = RunRandomizedSteinerForest(g, ic, five, 77);
  EXPECT_LE(g.WeightOf(r5.forest), g.WeightOf(r1.forest));
  EXPECT_GT(r5.stats.rounds, r1.stats.rounds);  // repetitions cost rounds
}

TEST(RandomizedTest, TruncatedRegimeOnHighSpdGraph) {
  // A subdivided graph has s >> sqrt(n): exercises the S-truncation path and
  // the F-reduced second stage.
  SplitMix64 rng(4);
  const Graph base = MakeConnectedRandom(8, 0.3, 1, 6, rng);
  const Graph g = SubdivideEdges(base, 12);
  const auto params = ComputeParameters(g);
  ASSERT_GT(static_cast<long>(params.shortest_path_diameter) *
                params.shortest_path_diameter,
            static_cast<long>(g.NumNodes()));
  const IcInstance ic = MakeIcInstance(
      g.NumNodes(), {{0, 1}, {3, 1}, {5, 2}, {7, 2}});
  const auto res = RunRandomizedSteinerForest(g, ic, {}, 11);
  EXPECT_TRUE(res.truncated);
  EXPECT_TRUE(IsFeasible(g, ic, res.forest));
  EXPECT_GT(res.stats.charged_rounds, 0);  // substituted stage was charged
}

TEST(RandomizedTest, ForcedTruncationAlsoFeasible) {
  SplitMix64 rng(12);
  const Graph g = MakeConnectedRandom(24, 0.15, 1, 12, rng);
  const IcInstance ic = MakeIcInstance(24, {{0, 1}, {11, 1}, {6, 2}, {19, 2}});
  RandomizedOptions opts;
  opts.force_truncated = true;
  const auto res = RunRandomizedSteinerForest(g, ic, opts, 9);
  EXPECT_TRUE(res.truncated);
  EXPECT_TRUE(IsFeasible(g, ic, res.forest));
}

TEST(RandomizedTest, EmptyInstance) {
  const Graph g = MakePath(5);
  const auto res = RunRandomizedSteinerForest(g, MakeIcInstance(5, {}));
  EXPECT_TRUE(res.forest.empty());
}

TEST(RandomizedTest, SingletonLabelsIgnored) {
  const Graph g = MakePath(6);
  const IcInstance ic = MakeIcInstance(6, {{0, 1}, {2, 1}, {5, 9}});
  const auto res = RunRandomizedSteinerForest(g, ic);
  EXPECT_TRUE(IsFeasible(g, MakeMinimal(ic), res.forest));
}

TEST(RandomizedTest, OutputWithinVirtualTreeBound) {
  // Stage-1 weight is bounded by the virtual-tree optimum (Lemma G.8) —
  // loosely: never more than Σ over terminals of the full root-path weight.
  SplitMix64 rng(3);
  const Graph g = MakeConnectedRandom(12, 0.3, 1, 8, rng);
  const IcInstance ic = MakeIcInstance(12, {{0, 1}, {6, 1}});
  const auto res = RunRandomizedSteinerForest(g, ic, {}, 5);
  const auto params = ComputeParameters(g);
  // Root-path weight: Σ_i β 2^i <= 4 * WD per terminal.
  EXPECT_LE(g.WeightOf(res.forest), 2 * 4 * params.weighted_diameter);
}

// --- Khan baseline ---

TEST(KhanBaselineTest, FeasibleAndHeavierRounds) {
  SplitMix64 rng(2);
  const Graph g = MakeConnectedRandom(20, 0.15, 1, 14, rng);
  const IcInstance ic =
      MakeIcInstance(20, {{0, 1}, {9, 1}, {4, 2}, {13, 2}, {7, 3}, {17, 3}});
  const auto khan = RunKhanBaseline(g, ic, 21);
  EXPECT_TRUE(IsFeasible(g, ic, khan.forest));
  const auto ours = RunRandomizedSteinerForest(g, ic, {}, 21);
  // The baseline repeats the selection stage per label; with k = 3 labels it
  // should cost more rounds than the filtered single pass.
  EXPECT_GT(khan.stats.rounds, ours.stats.rounds);
}

TEST(KhanBaselineTest, SingleComponentComparable) {
  SplitMix64 rng(13);
  const Graph g = MakeConnectedRandom(15, 0.25, 1, 10, rng);
  const IcInstance ic = MakeIcInstance(15, {{0, 1}, {7, 1}, {12, 1}});
  const auto khan = RunKhanBaseline(g, ic, 5);
  EXPECT_TRUE(IsFeasible(g, ic, khan.forest));
}

}  // namespace
}  // namespace dsf
