#include "steiner/prune.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "steiner/mst.hpp"
#include "steiner/validate.hpp"

namespace dsf {
namespace {

TEST(PruneTest, DropsDanglingBranches) {
  const Graph g = MakePath(6);
  const IcInstance ic = MakeIcInstance(6, {{1, 1}, {3, 1}});
  const std::vector<EdgeId> forest{0, 1, 2, 3, 4};  // whole path
  const auto pruned = MinimalFeasibleSubforest(g, ic, forest);
  EXPECT_EQ(pruned, (std::vector<EdgeId>{1, 2}));  // only 1-2, 2-3
}

TEST(PruneTest, KeepsSharedTrunk) {
  // Star; two components both need the center.
  const Graph g = MakeStar(5);
  const IcInstance ic = MakeIcInstance(5, {{1, 1}, {2, 1}, {3, 2}, {4, 2}});
  const std::vector<EdgeId> all{0, 1, 2, 3};
  const auto pruned = MinimalFeasibleSubforest(g, ic, all);
  EXPECT_EQ(pruned.size(), 4u);
}

TEST(PruneTest, MultiTreeForest) {
  const Graph g = MakePath(7);
  const IcInstance ic = MakeIcInstance(7, {{0, 1}, {1, 1}, {5, 2}, {6, 2}});
  // Forest containing both spans plus slack in the middle, but NOT edge 2
  // (so the forest has two trees).
  const std::vector<EdgeId> forest{0, 1, 3, 4, 5};
  const auto pruned = MinimalFeasibleSubforest(g, ic, forest);
  EXPECT_EQ(pruned, (std::vector<EdgeId>{0, 5}));
}

TEST(PruneTest, PrunedOutputIsMinimalFeasible) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SplitMix64 rng(seed);
    const Graph g = MakeConnectedRandom(20, 0.2, 1, 30, rng);
    const IcInstance ic =
        MakeIcInstance(20, {{0, 1}, {7, 1}, {11, 2}, {15, 2}, {19, 2}});
    // Start from a spanning tree (feasible, far from minimal).
    const auto mst = KruskalMst(g);
    const auto pruned = MinimalFeasibleSubforest(g, ic, mst);
    EXPECT_TRUE(IsMinimalFeasible(g, ic, pruned)) << seed;
  }
}

TEST(PruneTest, NoTerminalsPrunesEverything) {
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {});
  const auto pruned =
      MinimalFeasibleSubforest(g, ic, std::vector<EdgeId>{0, 1, 2});
  EXPECT_TRUE(pruned.empty());
}

TEST(PruneTest, RejectsCyclicInput) {
  const Graph g = MakeCycle(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {2, 1}});
  EXPECT_THROW(MinimalFeasibleSubforest(g, ic, std::vector<EdgeId>{0, 1, 2, 3}),
               std::logic_error);
}

TEST(PruneTest, RejectsInfeasibleInput) {
  const Graph g = MakePath(4);
  const IcInstance ic = MakeIcInstance(4, {{0, 1}, {3, 1}});
  EXPECT_THROW(MinimalFeasibleSubforest(g, ic, std::vector<EdgeId>{0}),
               std::logic_error);
}

TEST(PruneTest, IdempotentOnMinimalInput) {
  const Graph g = MakePath(5);
  const IcInstance ic = MakeIcInstance(5, {{0, 1}, {4, 1}});
  const std::vector<EdgeId> minimal{0, 1, 2, 3};
  EXPECT_EQ(MinimalFeasibleSubforest(g, ic, minimal), minimal);
}

}  // namespace
}  // namespace dsf
